#include "confail/monitor/monitor.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "confail/monitor/injection_hooks.hpp"

#include "confail/obs/metrics.hpp"
#include "confail/support/assert.hpp"

namespace confail::monitor {

using events::kNoMonitor;
using events::kNoThread;

const char* selectPolicyName(SelectPolicy p) {
  switch (p) {
    case SelectPolicy::Fifo: return "fifo";
    case SelectPolicy::Lifo: return "lifo";
    case SelectPolicy::Random: return "random";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Virtual-mode state: all blocking is VirtualScheduler state.
// Invariant: owner == kNoThread implies the entry queue is empty, because
// every release (unlock / wait) immediately hands the lock to a queued
// thread if one exists.
// ---------------------------------------------------------------------------
struct Monitor::VirtualState {
  ThreadId owner = kNoThread;
  std::uint32_t depth = 0;
  struct Entry {
    ThreadId tid;
    std::uint32_t restoreDepth;  // 1 for fresh lock, saved depth for wait
  };
  std::vector<Entry> entry;
  struct Waiter {
    ThreadId tid;
    std::uint32_t savedDepth;
  };
  std::vector<Waiter> waiters;
};

// ---------------------------------------------------------------------------
// Real-mode state: native mutex + two condition variables.
//
// The wait set is an explicit ticket list so that a notification can only
// be consumed by a thread that was in the wait set when notify was called
// (the JLS semantics).  A counting scheme is NOT sufficient: a thread that
// starts waiting after the notify could steal the signal from the intended
// waiter and both end up asleep — a lost-wakeup deadlock that manifests
// readily in producer/consumer ping-pong.
// ---------------------------------------------------------------------------
struct Monitor::RealState {
  std::mutex m;
  std::condition_variable entryCv;  // lock handoff
  std::condition_variable waitCv;   // wait set
  ThreadId owner = kNoThread;
  std::uint32_t depth = 0;
  std::uint64_t nextTicket = 0;
  std::deque<std::uint64_t> waitSet;     // outstanding waiter tickets, FIFO
  std::set<std::uint64_t> signaled;      // tickets released by notify
};

Monitor::Monitor(Runtime& rt, std::string name, Options opts)
    : rt_(rt), name_(std::move(name)), id_(rt.registerMonitor(name_)), opts_(opts) {
  if (rt_.isVirtual()) {
    v_ = std::make_unique<VirtualState>();
    rt_.scheduler().addFingerprintSource(this);
    rt_.scheduler().addSnapshotSource(this);
  } else {
    r_ = std::make_unique<RealState>();
  }
  if (obs::Registry* m = rt_.metrics()) {
    contentionCounter_ = &m->counter("monitor.contention." + name_);
    waitCounter_ = &m->counter("monitor.wait." + name_);
    notifyCounter_ = &m->counter("monitor.notify." + name_);
  }
}

Monitor::~Monitor() {
  if (v_) {
    rt_.scheduler().removeSnapshotSource(this);
    rt_.scheduler().removeFingerprintSource(this);
  }
}

std::shared_ptr<const void> Monitor::saveState() const {
  return std::make_shared<VirtualState>(*v_);
}

void Monitor::restoreState(const std::shared_ptr<const void>& payload) {
  *v_ = *static_cast<const VirtualState*>(payload.get());
}

std::size_t Monitor::snapshotBytes() const {
  if (!v_) return 0;
  return sizeof(VirtualState) +
         v_->entry.capacity() * sizeof(VirtualState::Entry) +
         v_->waiters.capacity() * sizeof(VirtualState::Waiter);
}

std::uint64_t Monitor::stateFingerprint() const {
  if (!v_) return 0;
  const VirtualState& v = *v_;
  std::uint64_t h = sched::fpMix(sched::kFpSeed, sched::fpTag('m', id_));
  h = sched::fpMix(h, (static_cast<std::uint64_t>(v.owner) << 32) ^ v.depth);
  for (const VirtualState::Entry& e : v.entry) {
    h = sched::fpMix(h, (static_cast<std::uint64_t>(e.tid) << 32) ^
                            e.restoreDepth);
  }
  h = sched::fpMix(h, 0x9e3779b97f4a7c15ull);  // entry / wait-set separator
  for (const VirtualState::Waiter& w : v.waiters) {
    h = sched::fpMix(h, (static_cast<std::uint64_t>(w.tid) << 32) ^
                            w.savedDepth);
  }
  return h;
}

void Monitor::lock() {
  ThreadId self = rt_.currentThread();
  if (v_) vLock(self); else rLock(self);
}

void Monitor::unlock() {
  ThreadId self = rt_.currentThread();
  if (v_) vUnlock(self); else rUnlock(self);
}

void Monitor::wait() {
  ThreadId self = rt_.currentThread();
  if (v_) vWait(self); else rWait(self);
}

void Monitor::notifyOne() {
  ThreadId self = rt_.currentThread();
  if (v_) vNotify(self, /*all=*/false); else rNotify(self, /*all=*/false);
}

void Monitor::notifyAll() {
  ThreadId self = rt_.currentThread();
  if (v_) vNotify(self, /*all=*/true); else rNotify(self, /*all=*/true);
}

// ---------------------------------------------------------------------------
// Virtual mode
// ---------------------------------------------------------------------------

std::size_t Monitor::vSelect(std::size_t size, SelectPolicy policy) {
  CONFAIL_ASSERT(size > 0, "selection from empty queue");
  switch (policy) {
    case SelectPolicy::Fifo: return 0;
    case SelectPolicy::Lifo: return size - 1;
    case SelectPolicy::Random: return static_cast<std::size_t>(rt_.rngBelow(size));
  }
  return 0;
}

void Monitor::vLock(ThreadId self) {
  CONFAIL_CHECK(self != kNoThread, UsageError,
                "monitor used from outside a logical thread in virtual mode");
  VirtualState& v = *v_;
  if (v.owner == self) {
    // Reentrant entry: the object lock is already held; the Figure-1 model
    // (single lock token) fires nothing.
    snapshotBump();
    ++v.depth;
    return;
  }
  InjectionHooks* hooks = rt_.injection();
  if (hooks != nullptr) {
    switch (hooks->onLock(id_, self)) {
      case InjectionHooks::LockAction::Elide:
        // FF-T1: the thread proceeds as if it had entered the monitor —
        // no T1/T2, no mutual exclusion.  The matching unlock() arrives
        // as an onElidedUnlock() consultation.
        return;
      case InjectionHooks::LockAction::Starve:
        // FF-T2: the request fires but a grant never does.  The thread is
        // parked outside the entry queue (a queued thread would be granted
        // by the next release), so it starves even while the lock cycles.
        rt_.schedulePoint();
        rt_.emit(EventKind::LockRequest, id_, 0);  // T1, never answered
        if (contentionCounter_ != nullptr) contentionCounter_->inc();
        rt_.scheduler().block(sched::BlockKind::LockAcquire, id_);
        // Only reachable via run teardown (block() throws ExecutionAborted
        // for abandoned threads); nothing grants this request.
        return;
      case InjectionHooks::LockAction::Proceed:
        break;
    }
    // EF-T3/EF-T5: another thread arriving at the monitor is a wake
    // occasion for the wait set (the unlock site alone never sees waiters
    // in protocols where every exit notifies first).  If the lock is free
    // the moved waiter must be granted immediately — vLock's uncontended
    // path relies on "lock idle => entry queue empty".
    if (!v.waiters.empty()) {
      vInjectHookWake(*hooks);
      if (v.owner == kNoThread) vGrantNext();
    }
  }
  rt_.schedulePoint();  // allow preemption just before requesting the lock
  rt_.emit(EventKind::LockRequest, id_, 0);  // T1
  if (v.owner == kNoThread) {
    CONFAIL_ASSERT(v.entry.empty(), "lock idle but entry queue non-empty");
    snapshotBump();
    v.owner = self;
    v.depth = 1;
    rt_.emit(EventKind::LockAcquire, id_, 0);  // T2 (uncontended)
  } else {
    if (contentionCounter_ != nullptr) contentionCounter_->inc();
    snapshotBump();
    v.entry.push_back(VirtualState::Entry{self, 1});
    rt_.scheduler().block(sched::BlockKind::LockAcquire, id_);
    // vGrantNext() transferred ownership to us (and emitted T2) before the
    // scheduler resumed this thread.
    CONFAIL_ASSERT(v.owner == self && v.depth == 1, "lock handoff corrupted");
  }
  if (hooks != nullptr && hooks->releaseEarly(id_, self)) {
    // EF-T4: T4 fires the moment the lock is granted; the thread continues
    // its critical section unprotected and its eventual unlock() is
    // swallowed via onElidedUnlock().
    rt_.emit(EventKind::LockRelease, id_, 0);
    snapshotBump();
    v.owner = kNoThread;
    v.depth = 0;
    vGrantNext();
  }
}

void Monitor::vUnlock(ThreadId self) {
  VirtualState& v = *v_;
  if (rt_.scheduler().aborting()) {
    // Teardown: threads are being unwound one at a time and queued threads
    // may already have finished, so no events are emitted and no handoff is
    // attempted.  Just drop ownership if we held it.
    if (v.owner == self) {
      snapshotBump();
      v.owner = kNoThread;
      v.depth = 0;
    }
    return;
  }
  InjectionHooks* hooks = rt_.injection();
  if (v.owner != self) {
    if (hooks != nullptr && hooks->onElidedUnlock(id_, self)) return;
    throw IllegalMonitorState("unlock of monitor '" + name_ +
                              "' by a thread that does not own it");
  }
  if (v.depth > 1) {
    snapshotBump();
    --v.depth;  // inner exit of a reentrant region: lock stays held
    return;
  }
  if (hooks != nullptr && hooks->leakUnlock(id_, self)) {
    // FF-T4: the outermost release never fires.  Ownership is kept while
    // the thread walks away believing it released.
    rt_.schedulePoint();
    return;
  }
  rt_.emit(EventKind::LockRelease, id_, 0);  // T4
  snapshotBump();
  v.owner = kNoThread;
  v.depth = 0;
  vInjectSpuriousWakes();
  if (hooks != nullptr) vInjectHookWake(*hooks);
  vGrantNext();
  rt_.schedulePoint();  // natural preemption point after releasing
}

void Monitor::vGrantNext() {
  VirtualState& v = *v_;
  if (v.entry.empty()) return;
  CONFAIL_ASSERT(v.owner == kNoThread, "grant while lock held");
  std::size_t idx;
  std::size_t pick = 0;
  InjectionHooks* hooks = rt_.injection();
  if (hooks != nullptr && hooks->overrideGrant(id_, v.entry.size(), pick)) {
    CONFAIL_ASSERT(pick < v.entry.size(), "grant override out of range");
    idx = pick;  // EF-T2: the hook barges past the configured policy
  } else {
    idx = vSelect(v.entry.size(), opts_.grantPolicy);
  }
  snapshotBump();
  VirtualState::Entry e = v.entry[idx];
  v.entry.erase(v.entry.begin() + static_cast<std::ptrdiff_t>(idx));
  v.owner = e.tid;
  v.depth = e.restoreDepth;
  rt_.emitFor(e.tid, EventKind::LockAcquire, id_, 0);  // T2 (handoff)
  rt_.scheduler().unblock(e.tid);
}

void Monitor::vWait(ThreadId self) {
  VirtualState& v = *v_;
  CONFAIL_CHECK(v.owner == self, IllegalMonitorState,
                "wait on monitor '" + name_ + "' without owning its lock");
  InjectionHooks* hooks = rt_.injection();
  if (hooks != nullptr && hooks->suppressWait(id_, self)) {
    // FF-T3: the wait never fires — no T3, the lock stays held, the
    // caller returns immediately (a guard loop degenerates to a spin).
    rt_.schedulePoint();
    return;
  }
  const std::uint32_t saved = v.depth;
  if (waitCounter_ != nullptr) waitCounter_->inc();
  rt_.emit(EventKind::WaitBegin, id_, 0);  // T3 (releases the lock)
  snapshotBump();
  v.waiters.push_back(VirtualState::Waiter{self, saved});
  v.owner = kNoThread;
  v.depth = 0;
  vGrantNext();
  rt_.scheduler().block(sched::BlockKind::CondWait, id_);
  // A notifier moved us to the entry queue (T5) and a subsequent release
  // handed us the lock (T2) with our depth restored.
  CONFAIL_ASSERT(v.owner == self && v.depth == saved, "wait resume corrupted");
}

void Monitor::vNotify(ThreadId self, bool all) {
  VirtualState& v = *v_;
  CONFAIL_CHECK(v.owner == self, IllegalMonitorState,
                std::string(all ? "notifyAll" : "notify") + " on monitor '" +
                    name_ + "' without owning its lock");
  InjectionHooks* hooks = rt_.injection();
  if (hooks != nullptr && hooks->suppressNotify(id_, self, all)) {
    // FF-T5: the notification is lost — no call event, nobody wakes.
    return;
  }
  if (notifyCounter_ != nullptr) notifyCounter_->inc();
  rt_.emit(all ? EventKind::NotifyAllCall : EventKind::NotifyCall, id_,
           v.waiters.size());
  std::size_t count = all ? v.waiters.size() : std::min<std::size_t>(1, v.waiters.size());
  if (count > 0) snapshotBump();
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t idx = vSelect(v.waiters.size(), opts_.wakePolicy);
    VirtualState::Waiter w = v.waiters[idx];
    v.waiters.erase(v.waiters.begin() + static_cast<std::ptrdiff_t>(idx));
    v.entry.push_back(VirtualState::Entry{w.tid, w.savedDepth});
    rt_.emitFor(w.tid, EventKind::Notified, id_, self);  // T5: D -> B
    rt_.scheduler().reblock(w.tid, sched::BlockKind::LockAcquire, id_);
  }
}

void Monitor::vInjectHookWake(InjectionHooks& hooks) {
  VirtualState& v = *v_;
  if (v.waiters.empty()) return;
  const InjectionHooks::WakeInjection w =
      hooks.injectWake(id_, v.waiters.size());
  if (w == InjectionHooks::WakeInjection::None) return;
  // Wake the oldest waiter (a fixed choice keeps the deviation
  // deterministic independent of the wake policy's RNG stream).
  snapshotBump();
  VirtualState::Waiter waiter = v.waiters.front();
  v.waiters.erase(v.waiters.begin());
  v.entry.push_back(VirtualState::Entry{waiter.tid, waiter.savedDepth});
  if (w == InjectionHooks::WakeInjection::Spurious) {
    rt_.emitFor(waiter.tid, EventKind::SpuriousWake, id_, 0);  // EF-T3
  } else {
    // EF-T5: a Notified (T5) with no notify call backing it.
    rt_.emitFor(waiter.tid, EventKind::Notified, id_, kNoThread);
  }
  rt_.scheduler().reblock(waiter.tid, sched::BlockKind::LockAcquire, id_);
}

void Monitor::vInjectSpuriousWakes() {
  VirtualState& v = *v_;
  if (opts_.spuriousWakeProbability <= 0.0 || v.waiters.empty()) return;
  for (std::size_t i = v.waiters.size(); i-- > 0;) {
    if (!rt_.rngChance(opts_.spuriousWakeProbability)) continue;
    snapshotBump();
    VirtualState::Waiter w = v.waiters[i];
    v.waiters.erase(v.waiters.begin() + static_cast<std::ptrdiff_t>(i));
    v.entry.push_back(VirtualState::Entry{w.tid, w.savedDepth});
    rt_.emitFor(w.tid, EventKind::SpuriousWake, id_, 0);
    rt_.scheduler().reblock(w.tid, sched::BlockKind::LockAcquire, id_);
  }
}

// ---------------------------------------------------------------------------
// Real mode
// ---------------------------------------------------------------------------

void Monitor::rLock(ThreadId self) {
  RealState& r = *r_;
  std::unique_lock<std::mutex> g(r.m);
  if (r.owner == self) {
    ++r.depth;
    return;
  }
  rt_.emit(EventKind::LockRequest, id_, 0);  // T1
  if (r.owner != kNoThread && contentionCounter_ != nullptr) {
    contentionCounter_->inc();
  }
  r.entryCv.wait(g, [&] { return r.owner == kNoThread; });
  r.owner = self;
  r.depth = 1;
  rt_.emit(EventKind::LockAcquire, id_, 0);  // T2
}

void Monitor::rUnlock(ThreadId self) {
  RealState& r = *r_;
  std::unique_lock<std::mutex> g(r.m);
  CONFAIL_CHECK(r.owner == self, IllegalMonitorState,
                "unlock of monitor '" + name_ + "' by a non-owner");
  if (r.depth > 1) {
    --r.depth;
    return;
  }
  rt_.emit(EventKind::LockRelease, id_, 0);  // T4
  r.owner = kNoThread;
  r.depth = 0;
  g.unlock();
  r.entryCv.notify_one();
}

void Monitor::rWait(ThreadId self) {
  RealState& r = *r_;
  std::unique_lock<std::mutex> g(r.m);
  CONFAIL_CHECK(r.owner == self, IllegalMonitorState,
                "wait on monitor '" + name_ + "' without owning its lock");
  const std::uint32_t saved = r.depth;
  if (waitCounter_ != nullptr) waitCounter_->inc();
  rt_.emit(EventKind::WaitBegin, id_, 0);  // T3
  r.owner = kNoThread;
  r.depth = 0;
  const std::uint64_t ticket = r.nextTicket++;
  r.waitSet.push_back(ticket);
  r.entryCv.notify_one();  // the lock is free; admit an entry-queue thread
  r.waitCv.wait(g, [&] { return r.signaled.count(ticket) > 0; });
  r.signaled.erase(ticket);
  rt_.emit(EventKind::Notified, id_, kNoThread);  // T5 (notifier unknown here)
  r.entryCv.wait(g, [&] { return r.owner == kNoThread; });
  r.owner = self;
  r.depth = saved;
  rt_.emit(EventKind::LockAcquire, id_, 0);  // T2 (re-acquire)
}

void Monitor::rNotify(ThreadId self, bool all) {
  RealState& r = *r_;
  std::unique_lock<std::mutex> g(r.m);
  CONFAIL_CHECK(r.owner == self, IllegalMonitorState,
                std::string(all ? "notifyAll" : "notify") + " on monitor '" +
                    name_ + "' without owning its lock");
  if (notifyCounter_ != nullptr) notifyCounter_->inc();
  rt_.emit(all ? EventKind::NotifyAllCall : EventKind::NotifyCall, id_,
           r.waitSet.size());
  if (all) {
    for (std::uint64_t t : r.waitSet) r.signaled.insert(t);
    r.waitSet.clear();
  } else if (!r.waitSet.empty()) {
    r.signaled.insert(r.waitSet.front());  // oldest waiter (a legal choice)
    r.waitSet.pop_front();
  }
  g.unlock();
  r.waitCv.notify_all();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

bool Monitor::heldByCurrent() {
  ThreadId self = rt_.currentThread();
  if (v_) return v_->owner == self;
  std::lock_guard<std::mutex> g(r_->m);
  return r_->owner == self;
}

std::size_t Monitor::waitSetSize() {
  if (v_) return v_->waiters.size();
  std::lock_guard<std::mutex> g(r_->m);
  return r_->waitSet.size();
}

std::size_t Monitor::entryQueueLength() {
  if (v_) return v_->entry.size();
  return 0;  // implicit in the condition variable in real mode
}

std::uint32_t Monitor::depth() {
  if (v_) return v_->depth;
  std::lock_guard<std::mutex> g(r_->m);
  return r_->depth;
}

}  // namespace confail::monitor
