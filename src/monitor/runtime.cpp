#include "confail/monitor/runtime.hpp"

#include "confail/support/assert.hpp"

namespace confail::monitor {

namespace {
// Real-mode logical thread id of the current std::thread, per runtime.
struct RealTls {
  Runtime* rt = nullptr;
  ThreadId id = events::kNoThread;
};
thread_local RealTls realTls;

// Snapshot payload for Runtime (virtual mode).  The trace image is stored
// by value, not as a length to truncate to: checkpoints are restored in
// arbitrary order (a cache, not a stack), so after a sibling run rewound to
// a shallower point and appended its own events, the trace's first k slots
// no longer hold this checkpoint's prefix — only the captured content does.
struct RuntimeSnap {
  Xoshiro256 rng;
  std::uint32_t nextMonitorId;
  std::uint32_t nextVarId;
  std::uint32_t nextMethodId;
  std::uint32_t nextThreadId;
  std::vector<std::vector<MethodId>> methodStacks;
  std::vector<events::Event> traceImage;
};
}  // namespace

Runtime::Runtime(events::Trace& trace, sched::VirtualScheduler& sched,
                 std::uint64_t seed, obs::Registry* metrics)
    : mode_(Mode::Virtual), trace_(trace), sched_(&sched), metrics_(metrics),
      rng_(seed) {
  sched_->addFingerprintSource(this);
  sched_->addSnapshotSource(this);
}

Runtime::Runtime(events::Trace& trace, std::uint64_t seed,
                 obs::Registry* metrics)
    : mode_(Mode::Real), trace_(trace), metrics_(metrics), rng_(seed) {}

Runtime::~Runtime() {
  if (sched_ != nullptr) {
    sched_->removeSnapshotSource(this);
    sched_->removeFingerprintSource(this);
  }
  joinAll();
}

std::shared_ptr<const void> Runtime::saveState() const {
  return std::make_shared<RuntimeSnap>(RuntimeSnap{
      rng_, nextMonitorId_, nextVarId_, nextMethodId_, nextThreadId_,
      methodStacks_, trace_.events()});
}

void Runtime::restoreState(const std::shared_ptr<const void>& payload) {
  const RuntimeSnap& snap = *static_cast<const RuntimeSnap*>(payload.get());
  rng_ = snap.rng;
  nextMonitorId_ = snap.nextMonitorId;
  nextVarId_ = snap.nextVarId;
  nextMethodId_ = snap.nextMethodId;
  nextThreadId_ = snap.nextThreadId;
  methodStacks_ = snap.methodStacks;
  trace_.restore(snap.traceImage);
}

std::size_t Runtime::snapshotBytes() const {
  std::size_t n = sizeof(RuntimeSnap) +
                  methodStacks_.capacity() * sizeof(std::vector<MethodId>) +
                  trace_.size() * sizeof(events::Event);
  for (const std::vector<MethodId>& s : methodStacks_) {
    n += s.capacity() * sizeof(MethodId);
  }
  return n;
}

std::uint64_t Runtime::stateFingerprint() const {
  std::uint64_t h = sched::fpMix(sched::kFpSeed, rng_.stateHash());
  h = sched::fpMix(h, (static_cast<std::uint64_t>(nextMonitorId_) << 32) ^
                          nextVarId_);
  h = sched::fpMix(h, (static_cast<std::uint64_t>(nextMethodId_) << 32) ^
                          nextThreadId_);
  return h;
}

void Runtime::noteFootprint(EventKind kind, MonitorId monitorId,
                            std::uint64_t aux) {
  switch (kind) {
    case EventKind::Read:
      sched_->noteAccess(sched::fpTag('v', aux), /*isWrite=*/false);
      break;
    case EventKind::Write:
      sched_->noteAccess(sched::fpTag('v', aux), /*isWrite=*/true);
      break;
    case EventKind::LockRequest:
    case EventKind::LockAcquire:
    case EventKind::WaitBegin:
    case EventKind::LockRelease:
    case EventKind::Notified:
    case EventKind::NotifyCall:
    case EventKind::NotifyAllCall:
    case EventKind::SpuriousWake:
      // Any monitor operation orders against every other operation on the
      // same monitor (entry queue and wait set are shared state).
      sched_->noteAccess(sched::fpTag('m', monitorId), /*isWrite=*/true);
      break;
    case EventKind::ThreadSpawn:
      sched_->noteGlobalEffect();
      break;
    case EventKind::ClockAwait:
    case EventKind::ClockTick:
      // Abstract-clock traffic interacts with idle-handler time advance;
      // treat conservatively.
      sched_->noteGlobalEffect();
      break;
    case EventKind::ThreadStart:
    case EventKind::ThreadEnd:
    case EventKind::MethodEnter:
    case EventKind::MethodExit:
    case EventKind::GuardEval:
      break;  // thread-local bookkeeping: no shared footprint
  }
}

sched::VirtualScheduler& Runtime::scheduler() {
  CONFAIL_CHECK(sched_ != nullptr, UsageError,
                "scheduler() is only available in virtual mode");
  return *sched_;
}

ThreadId Runtime::allocateThread(const std::string& name) {
  // Called with mu_ held in real mode.
  ThreadId id = nextThreadId_++;
  if (methodStacks_.size() <= id) methodStacks_.resize(id + 1);
  trace_.nameThread(id, name);
  return id;
}

ThreadId Runtime::spawn(std::string name, std::function<void()> fn) {
  if (mode_ == Mode::Virtual) {
    ThreadId parent = sched_->currentThread();
    // The scheduler allocates ids densely in spawn order, mirroring ours.
    ThreadId id = sched_->spawn(name, [this, fn = std::move(fn)] {
      emit(EventKind::ThreadStart, events::kNoMonitor, 0);
      fn();
      emit(EventKind::ThreadEnd, events::kNoMonitor, 0);
    });
    snapshotBump();
    if (methodStacks_.size() <= id) methodStacks_.resize(id + 1);
    trace_.nameThread(id, std::move(name));
    if (parent != events::kNoThread) {
      emitFor(parent, EventKind::ThreadSpawn, events::kNoMonitor, id);
    }
    return id;
  }

  ThreadId id;
  ThreadId parent = currentThread();
  {
    std::lock_guard<std::mutex> g(mu_);
    id = allocateThread(name);
  }
  if (parent != events::kNoThread) {
    emitFor(parent, EventKind::ThreadSpawn, events::kNoMonitor, id);
  }
  std::thread real([this, id, fn = std::move(fn)] {
    realTls = RealTls{this, id};
    emit(EventKind::ThreadStart, events::kNoMonitor, 0);
    fn();
    emit(EventKind::ThreadEnd, events::kNoMonitor, 0);
    realTls = RealTls{};
  });
  {
    std::lock_guard<std::mutex> g(mu_);
    realThreads_.push_back(std::move(real));
  }
  return id;
}

void Runtime::joinAll() {
  if (mode_ == Mode::Virtual) return;
  std::vector<std::thread> pending;
  {
    std::lock_guard<std::mutex> g(mu_);
    pending.swap(realThreads_);
  }
  for (std::thread& t : pending) {
    if (t.joinable()) t.join();
  }
}

void Runtime::join(ThreadId t) {
  CONFAIL_CHECK(mode_ == Mode::Virtual, UsageError,
                "join(tid) is only available in virtual mode");
  sched_->joinThread(t);
}

ThreadId Runtime::currentThread() {
  if (mode_ == Mode::Virtual) return sched_->currentThread();
  if (realTls.rt == this) return realTls.id;
  // Auto-register the calling (e.g. main) thread so examples can invoke
  // component methods directly in real mode.
  std::lock_guard<std::mutex> g(mu_);
  ThreadId id = allocateThread("caller-" + std::to_string(nextThreadId_));
  realTls = RealTls{this, id};
  return id;
}

void Runtime::schedulePoint() {
  if (mode_ == Mode::Virtual) {
    if (sched_->onLogicalThread()) sched_->yield();
    return;
  }
  if (noiseProb_ > 0.0 && rngChance(noiseProb_)) {
    std::this_thread::yield();
  }
}

MonitorId Runtime::registerMonitor(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  if (mode_ == Mode::Virtual) snapshotBump();
  MonitorId id = nextMonitorId_++;
  trace_.nameMonitor(id, name);
  return id;
}

VarId Runtime::registerVar(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  if (mode_ == Mode::Virtual) snapshotBump();
  VarId id = nextVarId_++;
  trace_.nameVar(id, name);
  return id;
}

MethodId Runtime::registerMethod(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  if (mode_ == Mode::Virtual) snapshotBump();
  MethodId id = nextMethodId_++;
  trace_.nameMethod(id, name);
  return id;
}

std::uint64_t Runtime::emit(EventKind kind, MonitorId monitorId,
                            std::uint64_t aux, bool flag) {
  return emitFor(currentThread(), kind, monitorId, aux, flag);
}

std::uint64_t Runtime::emitFor(ThreadId thread, EventKind kind,
                               MonitorId monitorId, std::uint64_t aux,
                               bool flag) {
  if (mode_ == Mode::Virtual) {
    noteFootprint(kind, monitorId, aux);
    snapshotBump();  // the trace content is snapshotted state
  }
  events::Event e;
  e.thread = thread;
  e.kind = kind;
  e.monitor = monitorId;
  e.aux = aux;
  e.flag = flag;
  e.method = currentMethodOf(thread);
  return trace_.record(e);
}

void Runtime::pushMethod(MethodId m) {
  ThreadId t = currentThread();
  std::lock_guard<std::mutex> g(mu_);
  CONFAIL_ASSERT(t < methodStacks_.size(), "method push on unknown thread");
  if (mode_ == Mode::Virtual) snapshotBump();
  methodStacks_[t].push_back(m);
}

void Runtime::popMethod() {
  ThreadId t = currentThread();
  std::lock_guard<std::mutex> g(mu_);
  CONFAIL_ASSERT(t < methodStacks_.size() && !methodStacks_[t].empty(),
                 "method pop without push");
  if (mode_ == Mode::Virtual) snapshotBump();
  methodStacks_[t].pop_back();
}

MethodId Runtime::currentMethodOf(ThreadId t) {
  if (t == events::kNoThread) return events::kNoMethod;
  std::lock_guard<std::mutex> g(mu_);
  if (t >= methodStacks_.size() || methodStacks_[t].empty()) {
    return events::kNoMethod;
  }
  return methodStacks_[t].back();
}

std::uint64_t Runtime::rngBelow(std::uint64_t bound) {
  // Consuming a policy draw advances shared state: steps that both draw
  // from the RNG do not commute (the stream order is the state).
  if (mode_ == Mode::Virtual) {
    sched_->noteAccess(sched::fpTag('r', 0), /*isWrite=*/true);
    snapshotBump();
  }
  std::lock_guard<std::mutex> g(mu_);
  return rng_.below(bound);
}

bool Runtime::rngChance(double p) {
  if (mode_ == Mode::Virtual) {
    sched_->noteAccess(sched::fpTag('r', 0), /*isWrite=*/true);
    snapshotBump();
  }
  std::lock_guard<std::mutex> g(mu_);
  return rng_.chance(p);
}

MethodScope::MethodScope(Runtime& rt, MethodId method)
    : rt_(rt), method_(method) {
  rt_.pushMethod(method_);
  rt_.emit(EventKind::MethodEnter, events::kNoMonitor, method_);
}

MethodScope::~MethodScope() {
  rt_.emit(EventKind::MethodExit, events::kNoMonitor, method_);
  rt_.popMethod();
}

}  // namespace confail::monitor
