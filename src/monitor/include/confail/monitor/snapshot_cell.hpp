// SnapshotCell<T>: uninstrumented mutable component state that still
// participates in checkpoint/restore.
//
// Components keep some state outside SharedVar on purpose — a buffer's
// backing deque, say, is guarded by the component's monitor and must not
// generate Read/Write events of its own (the detectors would see phantom
// races on state the monitor already orders).  But incremental exploration
// snapshots *all* mutable state, so such fields would silently leak across
// a restore and corrupt sibling branches.
//
// SnapshotCell wraps the field: in virtual mode it registers with the
// scheduler as a SnapshotSource and every mutable access (`mut()`) bumps
// the copy-on-write version stamp.  It emits no events and takes no
// schedule points — it is invisible to detectors and to the DPOR footprint,
// exactly like the raw field it replaces (the owning monitor already orders
// all accesses).
//
// T must be copy-constructible and copy-assignable; a non-copyable field
// should call VirtualScheduler::poisonSnapshotSafety() instead (see
// SharedVar for the pattern).
#pragma once

#include <memory>
#include <utility>

#include "confail/monitor/runtime.hpp"
#include "confail/sched/snapshot.hpp"

namespace confail::monitor {

template <typename T>
class SnapshotCell : public sched::SnapshotSource {
 public:
  SnapshotCell(Runtime& rt, T init) : rt_(rt), value_(std::move(init)) {
    if (rt_.isVirtual()) rt_.scheduler().addSnapshotSource(this);
  }

  ~SnapshotCell() override {
    if (rt_.isVirtual()) rt_.scheduler().removeSnapshotSource(this);
  }

  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  /// Mutable access: bumps the snapshot version.  The caller must hold
  /// whatever monitor guards this field (same contract as the raw field).
  T& mut() {
    snapshotBump();
    return value_;
  }

  /// Read-only access: no version bump.
  const T& get() const { return value_; }

  std::size_t snapshotBytes() const override { return sizeof(T); }

 private:
  std::shared_ptr<const void> saveState() const override {
    return std::make_shared<T>(value_);
  }

  void restoreState(const std::shared_ptr<const void>& payload) override {
    value_ = *static_cast<const T*>(payload.get());
  }

  Runtime& rt_;
  T value_;
};

}  // namespace confail::monitor
