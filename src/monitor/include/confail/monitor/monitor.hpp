// Monitor: a from-scratch implementation of Java object-lock semantics.
//
// Semantics reproduced from the Java Language Specification (2nd ed.), which
// is what the IPPS'03 paper models:
//   * the lock is reentrant (owner + recursion depth);
//   * wait() fully releases the lock regardless of depth, suspends the
//     caller on the monitor's wait set, and re-acquires the lock (restoring
//     the depth) before returning;
//   * notify() moves one waiter — chosen arbitrarily — from the wait set to
//     the entry queue; notifyAll() moves all of them;
//   * wait/notify/notifyAll without ownership throw IllegalMonitorState
//     (IllegalMonitorStateException in Java);
//   * a notify with an empty wait set is lost (no memory, unlike a
//     semaphore) — the root of the FF-T5 "missed notification" failures;
//   * spurious wakeups may occur (injectable, probability-controlled).
//
// Every state change emits the corresponding Figure-1 transition event:
//   lock request -> T1 LockRequest        lock grant -> T2 LockAcquire
//   wait         -> T3 WaitBegin          outer unlock -> T4 LockRelease
//   waiter woken -> T5 Notified
// Reentrant (inner) lock/unlock pairs emit nothing: the Figure-1 model has
// a single lock token, and the JLS releases the object lock only at the
// outermost exit.
//
// The monitor runs in both execution modes of its Runtime:
//   * Virtual — blocking is VirtualScheduler state; the wake and grant
//     policies are deterministic per seed; deadlocks are observable.
//   * Real    — blocking uses an internal std::mutex/std::condition_variable
//     pair; used for native-speed benches.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "confail/monitor/runtime.hpp"
#include "confail/sched/snapshot.hpp"

namespace confail::obs {
class Counter;
}

namespace confail::monitor {

/// How the next thread is chosen from a monitor's entry queue (lock grant)
/// and wait set (notify).  The JLS allows any choice ("arbitrary"); the
/// policies let tests pin it down or model unfair JVMs.
enum class SelectPolicy : std::uint8_t {
  Fifo,    ///< oldest first (a fair JVM)
  Lifo,    ///< newest first (a maximally unfair JVM — drives starvation)
  Random,  ///< seeded-random (the JLS "arbitrary" choice)
};

const char* selectPolicyName(SelectPolicy p);

class Monitor : public sched::FingerprintSource, public sched::SnapshotSource {
 public:
  struct Options {
    SelectPolicy grantPolicy = SelectPolicy::Fifo;  ///< entry-queue choice
    SelectPolicy wakePolicy = SelectPolicy::Fifo;   ///< wait-set choice
    double spuriousWakeProbability = 0.0;  ///< virtual mode: per-unlock chance
  };

  Monitor(Runtime& rt, std::string name) : Monitor(rt, std::move(name), Options()) {}
  Monitor(Runtime& rt, std::string name, Options opts);
  ~Monitor() override;

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Fingerprint contribution (virtual mode): owner, recursion depth, and
  /// the exact order of the entry queue and wait set — queue order is
  /// observable state under Fifo/Lifo policies.
  std::uint64_t stateFingerprint() const override;

  /// Snapshot payload size (virtual mode): the VirtualState copy.
  std::size_t snapshotBytes() const override;

  /// Enter the monitor (Figure 1: T1, then T2 once the lock is granted).
  /// Reentrant: a thread already owning the lock increments the depth.
  void lock();

  /// Leave the monitor.  Releases the object lock at the outermost exit
  /// (Figure 1: T4).  Throws IllegalMonitorState if not the owner.
  void unlock();

  /// Java Object.wait(): release the lock fully, join the wait set
  /// (Figure 1: T3), stay suspended until notified (T5), then re-acquire
  /// the lock (T2) and return with the original recursion depth restored.
  void wait();

  /// Java Object.notify(): wake one waiter, chosen by the wake policy.
  /// A call with an empty wait set is lost.
  void notifyOne();

  /// Java Object.notifyAll(): wake every waiter.
  void notifyAll();

  MonitorId id() const { return id_; }
  const std::string& name() const { return name_; }

  // ---- introspection (tests, detectors, deadlock reports) ------------------
  /// True if the calling thread owns the lock.
  bool heldByCurrent();
  /// Number of threads currently in the wait set.
  std::size_t waitSetSize();
  /// Number of threads queued for lock entry (virtual mode; 0 in real mode,
  /// where the entry queue is implicit in the condition variable).
  std::size_t entryQueueLength();
  /// Current recursion depth (0 when unowned).
  std::uint32_t depth();

 private:
  struct VirtualState;
  struct RealState;

  // Snapshot protocol (virtual mode): a deep copy of VirtualState.
  std::shared_ptr<const void> saveState() const override;
  void restoreState(const std::shared_ptr<const void>& payload) override;

  // Virtual-mode helpers (defined in monitor.cpp).
  void vLock(ThreadId self);
  void vUnlock(ThreadId self);
  void vWait(ThreadId self);
  void vNotify(ThreadId self, bool all);
  void vGrantNext();
  void vInjectHookWake(InjectionHooks& hooks);
  void vInjectSpuriousWakes();
  std::size_t vSelect(std::size_t size, SelectPolicy policy);

  // Real-mode helpers.
  void rLock(ThreadId self);
  void rUnlock(ThreadId self);
  void rWait(ThreadId self);
  void rNotify(ThreadId self, bool all);

  Runtime& rt_;
  std::string name_;
  MonitorId id_;
  Options opts_;
  std::unique_ptr<VirtualState> v_;
  std::unique_ptr<RealState> r_;
  // Per-monitor counters, resolved once from the runtime's metrics registry
  // at construction (null when no registry is attached — the common,
  // uninstrumented case costs one branch per operation).
  obs::Counter* contentionCounter_ = nullptr;  ///< lock attempts that blocked
  obs::Counter* waitCounter_ = nullptr;        ///< wait() calls
  obs::Counter* notifyCounter_ = nullptr;      ///< notify()/notifyAll() calls
};

/// RAII equivalent of a Java `synchronized (m) { ... }` block.
///
/// The destructor is noexcept(false): in virtual mode the unlock contains a
/// schedule point, and a thread parked there when the run is torn down must
/// unwind via ExecutionAborted — which therefore may propagate out of this
/// destructor.  That is safe: the teardown path never runs while another
/// exception is in flight (the unlock short-circuits during unwinding).
class Synchronized {
 public:
  explicit Synchronized(Monitor& m) : m_(m) { m_.lock(); }
  ~Synchronized() noexcept(false) { m_.unlock(); }

  Synchronized(const Synchronized&) = delete;
  Synchronized& operator=(const Synchronized&) = delete;

 private:
  Monitor& m_;
};

}  // namespace confail::monitor
