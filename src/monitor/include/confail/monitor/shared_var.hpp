// SharedVar<T>: an instrumented shared variable.
//
// Every access emits a Read/Write event carrying the variable id, which is
// what the lockset (Eraser) and happens-before detectors consume to find
// FF-T1 interference (data races).  A schedule point precedes each access,
// so in virtual mode the explorer can interleave threads *between* the read
// and the write of an unsynchronized read-modify-write — making lost
// updates actually manifest, not just be flagged.
//
// The underlying storage is guarded by a private mutex in real mode so that
// an intentionally racy component (a mutant with synchronization removed)
// exhibits the logical race — interference on the component state — without
// committing C++ undefined behaviour on the raw memory.  The private mutex
// is not a monitor and is invisible to the detectors.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>

#include "confail/monitor/runtime.hpp"
#include "confail/sched/snapshot.hpp"

namespace confail::monitor {

template <typename T>
class SharedVar : public sched::FingerprintSource, public sched::SnapshotSource {
  // Snapshot support requires a copyable value; a SharedVar over a
  // move-only T poisons the scheduler's snapshot safety instead, forcing
  // the explorer onto the prefix-replay path for that program.
  static constexpr bool kSnapshottable =
      std::is_copy_constructible_v<T> && std::is_copy_assignable_v<T>;

 public:
  SharedVar(Runtime& rt, const std::string& name, T init)
      : rt_(rt), id_(rt.registerVar(name)), value_(std::move(init)) {
    if (rt_.isVirtual()) {
      rt_.scheduler().addFingerprintSource(this);
      if constexpr (kSnapshottable) {
        rt_.scheduler().addSnapshotSource(this);
      } else {
        rt_.scheduler().poisonSnapshotSafety();
      }
    }
  }

  ~SharedVar() override {
    if (rt_.isVirtual()) {
      if constexpr (kSnapshottable) rt_.scheduler().removeSnapshotSource(this);
      rt_.scheduler().removeFingerprintSource(this);
    }
  }

  SharedVar(const SharedVar&) = delete;
  SharedVar& operator=(const SharedVar&) = delete;

  /// Fingerprint contribution: the variable's current value when T is
  /// std::hash-able, otherwise a running hash of the write history.  The
  /// value itself must participate — a write count alone would equate
  /// states that diverge on the next read.
  std::uint64_t stateFingerprint() const override {
    std::lock_guard<std::mutex> g(mu_);
    std::uint64_t h = sched::fpMix(sched::kFpSeed, sched::fpTag('v', id_));
    if constexpr (requires(const T& t) { std::hash<T>{}(t); }) {
      h = sched::fpMix(h, std::hash<T>{}(value_));
    } else {
      h = sched::fpMix(h, historyHash_);
    }
    return h;
  }

  /// Instrumented read (emits a Read event; schedule point before access).
  T get() {
    rt_.schedulePoint();
    rt_.emit(EventKind::Read, events::kNoMonitor, id_);
    std::lock_guard<std::mutex> g(mu_);
    return value_;
  }

  /// Instrumented write (emits a Write event; schedule point before access).
  void set(T v) {
    rt_.schedulePoint();
    rt_.emit(EventKind::Write, events::kNoMonitor, id_);
    std::lock_guard<std::mutex> g(mu_);
    snapshotBump();
    value_ = std::move(v);
    if constexpr (requires(const T& t) { std::hash<T>{}(t); }) {
      // stateFingerprint() hashes the value directly.
    } else {
      ThreadId writer = rt_.currentThread();
      historyHash_ = sched::fpMix(historyHash_, writer);
    }
  }

  /// Uninstrumented peek for assertions in tests and invariant checks;
  /// emits nothing and takes no schedule point.
  T peek() const {
    std::lock_guard<std::mutex> g(mu_);
    return value_;
  }

  VarId id() const { return id_; }

  /// Snapshot payload size: the value plus the history hash.
  std::size_t snapshotBytes() const override { return sizeof(Snap); }

 private:
  struct Snap {
    T value;
    std::uint64_t historyHash;
  };

  std::shared_ptr<const void> saveState() const override {
    if constexpr (kSnapshottable) {
      std::lock_guard<std::mutex> g(mu_);
      return std::make_shared<Snap>(Snap{value_, historyHash_});
    } else {
      return nullptr;  // unreachable: non-copyable vars never register
    }
  }

  void restoreState(const std::shared_ptr<const void>& payload) override {
    if constexpr (kSnapshottable) {
      const Snap& s = *static_cast<const Snap*>(payload.get());
      std::lock_guard<std::mutex> g(mu_);
      value_ = s.value;
      historyHash_ = s.historyHash;
    }
  }

  Runtime& rt_;
  VarId id_;
  mutable std::mutex mu_;
  T value_;
  std::uint64_t historyHash_ = sched::kFpSeed;  // non-hashable T fallback
};

}  // namespace confail::monitor
