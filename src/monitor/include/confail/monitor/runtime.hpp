// Runtime: the execution context shared by all instrumented objects.
//
// A Runtime binds together
//   * the execution mode — Virtual (deterministic, scheduler-controlled) or
//     Real (native std::thread preemption),
//   * the Trace into which every instrumented operation records an Event,
//   * id allocation and naming for monitors / shared variables / methods,
//   * per-thread bookkeeping (component-method stacks for CoFG coverage),
//   * a seeded RNG for all policy decisions (wake selection, noise).
//
// Components (confail::components) take a Runtime& and work unchanged in
// both modes; tests and the explorer use Virtual mode, throughput benches
// use Real mode.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "confail/events/trace.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/support/rng.hpp"

namespace confail::obs {
class Registry;
}

namespace confail::monitor {

class InjectionHooks;

using events::EventKind;
using events::MethodId;
using events::MonitorId;
using events::ThreadId;
using events::VarId;

class Runtime : public sched::FingerprintSource, public sched::SnapshotSource {
 public:
  enum class Mode { Real, Virtual };

  /// Virtual-mode runtime: logical threads run under `sched`.  When
  /// `metrics` is non-null, monitors constructed on this runtime register
  /// per-monitor contention / wait / notify counters on it (the registry
  /// must outlive the monitors; not owned).
  Runtime(events::Trace& trace, sched::VirtualScheduler& sched,
          std::uint64_t seed, obs::Registry* metrics = nullptr);

  /// Real-mode runtime: threads are plain std::threads.
  Runtime(events::Trace& trace, std::uint64_t seed,
          obs::Registry* metrics = nullptr);

  ~Runtime() override;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Fingerprint contribution (virtual mode): the policy-RNG stream
  /// position and the id-registration counters.  Two runs in equal states
  /// must have consumed the same policy draws, or their futures diverge.
  std::uint64_t stateFingerprint() const override;

  /// Snapshot payload size (virtual mode): RNG + counters + method stacks.
  std::size_t snapshotBytes() const override;

  Mode mode() const { return mode_; }
  bool isVirtual() const { return mode_ == Mode::Virtual; }
  events::Trace& trace() { return trace_; }

  /// The metrics registry passed at construction (null when
  /// uninstrumented).  Instrumented wiring is normally owned by
  /// inject::ExploreConfig — see docs/injection.md ("Migration").
  obs::Registry* metrics() const { return metrics_; }

  /// Attach a fault-injection hooks object (virtual mode; see
  /// confail/monitor/injection_hooks.hpp).  Monitors consult the current
  /// pointer at every operation, so this may be called any time before the
  /// run starts.  Null detaches; the hooks must outlive the monitors'
  /// operations.  Not owned.
  void setInjection(InjectionHooks* hooks) { injection_ = hooks; }
  InjectionHooks* injection() const { return injection_; }

  /// The underlying scheduler.  UsageError in real mode.
  sched::VirtualScheduler& scheduler();

  /// Spawn a logical thread.  In virtual mode the thread does not start
  /// until VirtualScheduler::run(); in real mode it starts immediately.
  ThreadId spawn(std::string name, std::function<void()> fn);

  /// Real mode: join all spawned threads.  Virtual mode: no-op (the
  /// scheduler's run() owns thread lifetime).
  void joinAll();

  /// Java Thread.join: block the calling logical thread until `t`
  /// finishes.  Virtual mode only (real mode joins all at once via
  /// joinAll); throws UsageError otherwise.
  void join(ThreadId t);

  /// Logical id of the calling thread (kNoThread on an unregistered
  /// controller thread in virtual mode; in real mode the caller is
  /// auto-registered on first use so main() can drive components directly).
  ThreadId currentThread();

  /// A schedule point: in virtual mode, hands control to the strategy;
  /// in real mode, optionally injects scheduling noise (see setNoise).
  void schedulePoint();

  /// Real-mode noise injection: at each schedule point, with probability p,
  /// call std::this_thread::yield() to shake out interleavings (ConTest
  /// style).  Ignored in virtual mode.
  void setNoise(double probability) { noiseProb_ = probability; }

  // ---- id registration -----------------------------------------------------
  MonitorId registerMonitor(const std::string& name);
  VarId registerVar(const std::string& name);
  MethodId registerMethod(const std::string& name);

  // ---- event emission --------------------------------------------------------
  /// Record an event on behalf of the calling thread.  The innermost
  /// component method of that thread is attached automatically.
  std::uint64_t emit(EventKind kind, MonitorId monitor, std::uint64_t aux,
                     bool flag = false);

  /// Record an event on behalf of another thread (e.g. a notifier recording
  /// the Notified transition of the woken waiter).
  std::uint64_t emitFor(ThreadId thread, EventKind kind, MonitorId monitor,
                        std::uint64_t aux, bool flag = false);

  // ---- per-thread component-method stack (CoFG coverage) ---------------------
  void pushMethod(MethodId m);
  void popMethod();
  MethodId currentMethodOf(ThreadId t);

  // ---- deterministic policy randomness ---------------------------------------
  std::uint64_t rngBelow(std::uint64_t bound);
  bool rngChance(double p);

 private:
  // Snapshot protocol (virtual mode): policy-RNG stream, id counters, the
  // per-thread method stacks, and the trace length (restore truncates the
  // trace back to the checkpointed prefix).  Saves run on the controller
  // thread with every logical thread suspended, so no locking is needed.
  std::shared_ptr<const void> saveState() const override;
  void restoreState(const std::shared_ptr<const void>& payload) override;

  ThreadId allocateThread(const std::string& name);
  /// Map an emitted event onto the current step's footprint (virtual mode).
  void noteFootprint(EventKind kind, MonitorId monitorId, std::uint64_t aux);

  Mode mode_;
  events::Trace& trace_;
  sched::VirtualScheduler* sched_ = nullptr;  // virtual mode only
  obs::Registry* metrics_ = nullptr;          // optional, not owned
  InjectionHooks* injection_ = nullptr;       // optional, not owned

  std::mutex mu_;  // guards everything below in real mode
  Xoshiro256 rng_;
  std::uint32_t nextMonitorId_ = 0;
  std::uint32_t nextVarId_ = 0;
  std::uint32_t nextMethodId_ = 0;
  std::uint32_t nextThreadId_ = 0;                  // real mode
  std::vector<std::thread> realThreads_;            // real mode
  std::vector<std::vector<MethodId>> methodStacks_; // indexed by ThreadId
  double noiseProb_ = 0.0;
};

/// RAII marker for a component method: emits MethodEnter/MethodExit and
/// maintains the per-thread method stack used to attribute events to CoFG
/// nodes.  Declare one at the top of every public component method.
class MethodScope {
 public:
  MethodScope(Runtime& rt, MethodId method);
  ~MethodScope();

  MethodScope(const MethodScope&) = delete;
  MethodScope& operator=(const MethodScope&) = delete;

 private:
  Runtime& rt_;
  MethodId method_;
};

}  // namespace confail::monitor
