// InjectionHooks: the monitor layer's fault-injection seam.
//
// A Runtime may carry one InjectionHooks implementation (see
// Runtime::setInjection).  Monitors consult it at every Figure-1 transition
// point and let it *deviate* the semantics — suppress a firing (the
// failure-to-fire classes) or force one that should not happen (the
// erroneous-firing classes).  The default implementation of every hook is
// "no deviation", so an attached hooks object only perturbs the operations
// its overrides opt into, and a null pointer costs one branch per
// operation.
//
// The seam is virtual-mode only: deviations must be deterministic under
// the virtual scheduler so the explorer can enumerate and replay them
// (confail::inject::Injector is the production implementation).  Real-mode
// monitors ignore the hooks entirely.
//
// Contract for implementations:
//   * Hooks are invoked from logical threads while the scheduler runs, so
//     they may not block or yield; they decide and return.
//   * Any internal state that advances when a hook fires is shared state
//     for exploration purposes: implementations must register as a
//     FingerprintSource and note a scheduler access when they mutate
//     (Injector does both), or fingerprint pruning and sleep sets become
//     unsound.
#pragma once

#include <cstddef>
#include <cstdint>

#include "confail/events/event.hpp"

namespace confail::monitor {

class InjectionHooks {
 public:
  /// Deviation applied to a lock() call (vLock entry, non-reentrant case).
  enum class LockAction : std::uint8_t {
    Proceed,  ///< normal semantics
    Elide,    ///< FF-T1: skip the acquire — the thread runs unsynchronized
    Starve,   ///< FF-T2: emit the request, then suspend forever (no grant)
  };

  /// Wake injected at a lock release while the wait set is non-empty.
  enum class WakeInjection : std::uint8_t {
    None,
    Spurious,  ///< EF-T3: wake a waiter with no notification (SpuriousWake)
    Phantom,   ///< EF-T5: wake a waiter as if notified (Notified, no call)
  };

  virtual ~InjectionHooks() = default;

  /// Consulted at every non-reentrant lock() call.
  virtual LockAction onLock(events::MonitorId, events::ThreadId) {
    return LockAction::Proceed;
  }

  /// Consulted when a thread unlocks a monitor it does not own — return
  /// true to silently swallow the call (the matching acquire was elided or
  /// force-released by this hooks object) instead of throwing
  /// IllegalMonitorState.
  virtual bool onElidedUnlock(events::MonitorId, events::ThreadId) {
    return false;
  }

  /// Consulted at the outermost unlock(), before T4 fires.  Returning true
  /// leaks the lock: no release event, ownership kept (FF-T4).
  virtual bool leakUnlock(events::MonitorId, events::ThreadId) {
    return false;
  }

  /// Consulted right after a lock grant returns to the acquiring thread.
  /// Returning true forces an immediate release (T4 fires, ownership
  /// drops) while the thread continues as if still inside the monitor
  /// (EF-T4).  The thread's eventually-matching unlock() arrives as an
  /// onElidedUnlock() consultation.
  virtual bool releaseEarly(events::MonitorId, events::ThreadId) {
    return false;
  }

  /// Consulted at every wait() call, after the ownership check.  Returning
  /// true skips the wait entirely — no T3, the lock stays held (FF-T3).
  virtual bool suppressWait(events::MonitorId, events::ThreadId) {
    return false;
  }

  /// Consulted at every notify()/notifyAll() call, after the ownership
  /// check.  Returning true loses the notification — no event, no wake
  /// (FF-T5).
  virtual bool suppressNotify(events::MonitorId, events::ThreadId,
                              bool /*all*/) {
    return false;
  }

  /// Consulted when the entry queue is non-empty and a grant is due.
  /// Return true and set `pick` (an index into the entry queue, oldest
  /// first) to override the configured grant policy — index size-1 is the
  /// newest entry, i.e. a barging grant (EF-T2).
  virtual bool overrideGrant(events::MonitorId, std::size_t /*queueSize*/,
                             std::size_t& /*pick*/) {
    return false;
  }

  /// Consulted at every outermost unlock while waiters exist.  The monitor
  /// performs the returned wake itself (moving the chosen waiter to the
  /// entry queue exactly like the probability-based spurious-wake path).
  virtual WakeInjection injectWake(events::MonitorId,
                                   std::size_t /*waitSetSize*/) {
    return WakeInjection::None;
  }
};

}  // namespace confail::monitor
