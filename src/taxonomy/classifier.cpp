#include "confail/taxonomy/classifier.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace confail::taxonomy {

using events::Event;
using events::EventKind;
using events::ThreadId;

bool FailureReport::has(FailureClass c) const {
  for (const auto& f : failures) {
    if (f.cls == c) return true;
  }
  return false;
}

std::vector<FailureClass> FailureReport::classes() const {
  std::vector<FailureClass> out;
  for (FailureClass c : allFailureClasses()) {
    if (has(c)) out.push_back(c);
  }
  return out;
}

std::string FailureReport::describe() const {
  std::ostringstream os;
  if (failures.empty()) {
    os << "no concurrency failures classified\n";
    return os.str();
  }
  for (const auto& f : failures) {
    os << failureClassName(f.cls) << " ("
       << deviationName(deviationOf(f.cls)) << " of "
       << transitionName(transitionOf(f.cls)) << ")  via " << f.source
       << ": " << f.evidence << '\n';
  }
  return os.str();
}

std::vector<FailureClass> Classifier::classesOf(detect::FindingKind kind) {
  using detect::FindingKind;
  switch (kind) {
    case FindingKind::DataRace:
      return {FailureClass::FF_T1};
    case FindingKind::UnnecessarySync:
      return {FailureClass::EF_T1};
    case FindingKind::DeadlockCycle:
      // Circular lock acquisition: requesters are permanently suspended
      // (FF-T2) because holders never release (FF-T4, "acquiring an
      // additional lock which is locked by another thread").
      return {FailureClass::FF_T2, FailureClass::FF_T4};
    case FindingKind::LockHeldForever:
      return {FailureClass::FF_T4, FailureClass::FF_T2};
    case FindingKind::Starvation:
      return {FailureClass::FF_T2};
    case FindingKind::WaitingForever:
    case FindingKind::LostNotify:
    case FindingKind::NotifySingleInsufficient:
      return {FailureClass::FF_T5};
    case FindingKind::GuardNotRechecked:
      return {FailureClass::EF_T5};
    case FindingKind::EarlyRelease:
      return {FailureClass::EF_T4};
    case FindingKind::MissedWait:
      return {FailureClass::FF_T3};
    case FindingKind::SpuriousWakeup:
      return {FailureClass::EF_T3};
    case FindingKind::PhantomNotify:
      return {FailureClass::EF_T5};
    case FindingKind::BargingAcquire:
      return {FailureClass::EF_T2};
  }
  return {};
}

void Classifier::addFindings(FailureReport& report,
                             const std::vector<detect::Finding>& findings,
                             const events::Trace& trace) {
  for (const detect::Finding& f : findings) {
    for (FailureClass c : classesOf(f.kind)) {
      report.failures.push_back(ClassifiedFailure{
          c, f.describe(trace),
          std::string("detector:") + detect::findingKindName(f.kind)});
    }
  }
}

void Classifier::addRunOutcome(FailureReport& report, const sched::RunResult& run,
                               const events::Trace& trace) {
  switch (run.outcome) {
    case sched::Outcome::Deadlock:
      for (const sched::BlockedThreadInfo& b : run.blocked) {
        std::ostringstream os;
        os << "thread '" << b.name << "' permanently blocked ("
           << sched::blockKindName(b.kind) << ")";
        switch (b.kind) {
          case sched::BlockKind::CondWait:
            report.failures.push_back(ClassifiedFailure{
                FailureClass::FF_T5, os.str(), "run-outcome:deadlock"});
            break;
          case sched::BlockKind::LockAcquire:
            report.failures.push_back(ClassifiedFailure{
                FailureClass::FF_T2, os.str(), "run-outcome:deadlock"});
            break;
          default:
            // Clock/join/custom blocking is test-harness state, not a
            // monitor failure; leave it to the completion-time reports.
            break;
        }
      }
      break;
    case sched::Outcome::StepLimit: {
      // A runaway loop.  If the spinning happened while holding a lock the
      // trace shows an acquire without release; classify as FF-T4.
      std::map<ThreadId, int> heldCount;
      for (const Event& e : trace.events()) {
        if (e.kind == EventKind::LockAcquire) ++heldCount[e.thread];
        if (e.kind == EventKind::LockRelease || e.kind == EventKind::WaitBegin) {
          --heldCount[e.thread];
        }
      }
      bool anyHeld = false;
      for (const auto& [t, n] : heldCount) anyHeld = anyHeld || n > 0;
      report.failures.push_back(ClassifiedFailure{
          FailureClass::FF_T4,
          anyHeld ? "step limit exhausted with a lock still held (endless "
                    "loop in a critical section)"
                  : "step limit exhausted (endless loop; no lock held)",
          "run-outcome:step-limit"});
      break;
    }
    default:
      break;
  }
}

namespace {

/// Activity of one thread between two trace positions.
struct WindowActivity {
  std::size_t waits = 0;
  std::size_t notified = 0;
  std::size_t spurious = 0;
};

WindowActivity activityIn(const std::vector<Event>& events, ThreadId tid,
                          std::uint64_t fromSeq, std::uint64_t toSeq) {
  WindowActivity a;
  for (const Event& e : events) {
    if (e.thread != tid || e.seq < fromSeq || e.seq > toSeq) continue;
    if (e.kind == EventKind::WaitBegin) ++a.waits;
    if (e.kind == EventKind::Notified) ++a.notified;
    if (e.kind == EventKind::SpuriousWake) ++a.spurious;
  }
  return a;
}

/// Find the logical thread id carrying `name` in the trace.
ThreadId threadByName(const events::Trace& trace,
                      const std::vector<Event>& events,
                      const std::string& name) {
  ThreadId maxTid = 0;
  for (const Event& e : events) {
    if (e.thread != events::kNoThread) maxTid = std::max(maxTid, e.thread);
  }
  for (ThreadId t = 0; t <= maxTid; ++t) {
    if (trace.threadName(t) == name) return t;
  }
  return events::kNoThread;
}

}  // namespace

void Classifier::addCallReports(FailureReport& report,
                                const conan::Results& results,
                                const events::Trace& trace) {
  const std::vector<Event> events = trace.events();

  // Map blocked threads (by name) from the run result, for hung calls.
  std::map<std::string, sched::BlockKind> blockedByName;
  for (const auto& b : results.run.blocked) blockedByName[b.name] = b.kind;

  for (const conan::CallReport& r : results.reports) {
    if (r.passed()) continue;

    const ThreadId tid = threadByName(trace, events, r.thread);

    // Bracket the call: from this thread's ClockAwait with aux==startTick
    // to its next ClockAwait (or the end of the trace).
    std::uint64_t fromSeq = 0;
    std::uint64_t toSeq = events.empty() ? 0 : events.back().seq;
    bool foundStart = false;
    for (const Event& e : events) {
      if (e.thread != tid || e.kind != EventKind::ClockAwait) continue;
      if (!foundStart) {
        if (e.aux == r.startTick) {
          fromSeq = e.seq;
          foundStart = true;
        }
      } else {
        toSeq = e.seq;
        break;
      }
    }
    const WindowActivity act =
        foundStart ? activityIn(events, tid, fromSeq, toSeq) : WindowActivity{};

    std::ostringstream ev;
    ev << "call " << r.label << " on thread '" << r.thread << "' ";

    if (!r.completed && !r.hangOk) {
      // Hung call: use the block kind at deadlock to pick the class.
      auto it = blockedByName.find(r.thread);
      sched::BlockKind bk = it != blockedByName.end() ? it->second
                                                      : sched::BlockKind::None;
      if (bk == sched::BlockKind::CondWait) {
        if (r.expectWait.has_value() && !*r.expectWait) {
          ev << "suspended on an unexpected wait and was never notified";
          report.failures.push_back(ClassifiedFailure{
              FailureClass::EF_T3, ev.str(), "completion-time"});
        } else {
          ev << "waited but was never notified";
          report.failures.push_back(ClassifiedFailure{
              FailureClass::FF_T5, ev.str(), "completion-time"});
        }
      } else if (bk == sched::BlockKind::LockAcquire) {
        ev << "blocked forever acquiring the monitor lock";
        report.failures.push_back(ClassifiedFailure{
            FailureClass::FF_T2, ev.str(), "completion-time"});
      } else {
        ev << "never completed";
        report.failures.push_back(ClassifiedFailure{
            FailureClass::FF_T2, ev.str(), "completion-time"});
      }
      continue;
    }

    if (r.completed && !r.timeOk) {
      // Early-vs-late is inferred from the tester's expectWait hint and the
      // thread's observed wait/wake activity during the call.
      if (act.waits == 0 && r.expectWait.value_or(false)) {
        ev << "completed without ever waiting (expected to suspend)";
        report.failures.push_back(ClassifiedFailure{
            FailureClass::FF_T3,
            ev.str() + " — overlaps EF-T4: the lock was released by "
                       "completing instead of by waiting",
            "completion-time"});
      } else if (act.waits > 0 && (act.notified > 0 || act.spurious > 0)) {
        ev << "completed at the wrong time after a wake (premature or "
              "mistimed notification)";
        report.failures.push_back(ClassifiedFailure{
            FailureClass::EF_T5, ev.str(), "completion-time"});
      } else if (act.waits > 0 && !r.expectWait.value_or(true)) {
        ev << "suspended on an unexpected wait before completing late";
        report.failures.push_back(ClassifiedFailure{
            FailureClass::EF_T3, ev.str(), "completion-time"});
      } else {
        ev << "completed outside its expected tick window";
        report.failures.push_back(ClassifiedFailure{
            FailureClass::FF_T3, ev.str(), "completion-time"});
      }
      continue;
    }

    if (r.completed && !r.hangOk) {
      // Expected to hang but completed: the thread skipped its suspension.
      if (act.waits == 0) {
        ev << "completed although it was expected to stay suspended (no "
              "wait performed)";
        report.failures.push_back(ClassifiedFailure{
            FailureClass::FF_T3, ev.str(), "completion-time"});
      } else {
        ev << "woke and completed although it was expected to stay suspended";
        report.failures.push_back(ClassifiedFailure{
            FailureClass::EF_T5, ev.str(), "completion-time"});
      }
      continue;
    }

    if (!r.valueOk) {
      ev << "returned the wrong value (state corrupted — interference)";
      report.failures.push_back(
          ClassifiedFailure{FailureClass::FF_T1, ev.str(), "completion-time"});
    }
  }
}

FailureReport Classifier::classifyAll(
    const std::vector<detect::Finding>& findings, const sched::RunResult& run,
    const conan::Results& results, const events::Trace& trace) {
  FailureReport report;
  addFindings(report, findings, trace);
  addRunOutcome(report, run, trace);
  addCallReports(report, results, trace);
  return report;
}

}  // namespace confail::taxonomy
