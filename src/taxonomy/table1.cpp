#include "confail/taxonomy/table1.hpp"

#include <vector>

#include "confail/support/text.hpp"

namespace confail::taxonomy {

namespace {

std::vector<std::vector<std::string>> tableRows(
    const std::string& extraHeader,
    const std::map<FailureClass, std::string>* extra) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"Transition", "Failure", "Cause",
                                     "Conditions", "Consequences",
                                     "Testing Notes"};
  if (extra) header.push_back(extraHeader);
  rows.push_back(std::move(header));

  for (FailureClass c : allFailureClasses()) {
    const FailureClassInfo& fi = info(c);
    std::vector<std::string> row;
    row.push_back(transitionName(transitionOf(c)));
    row.push_back(std::string(deviationName(deviationOf(c))) + " (" +
                  failureClassName(c) + ")");
    if (fi.applicable) {
      row.push_back(fi.cause);
      row.push_back(fi.conditions);
      row.push_back(fi.consequences);
      row.push_back(fi.testingNotes);
    } else {
      row.push_back("Not applicable");
      row.push_back("");
      row.push_back("");
      row.push_back("");
    }
    if (extra) {
      auto it = extra->find(c);
      row.push_back(it != extra->end() ? it->second : "");
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

std::string renderTable1() {
  return renderTable(tableRows("", nullptr), 26);
}

std::string renderTable1With(const std::string& extraHeader,
                             const std::map<FailureClass, std::string>& extra) {
  return renderTable(tableRows(extraHeader, &extra), 22);
}

}  // namespace confail::taxonomy
