// Table 1 rendering: regenerates the paper's classification table from the
// taxonomy data, optionally extended with a "Detected by / Reproduced by"
// column filled in by the fault-injection harness (bench/table1).
#pragma once

#include <map>
#include <string>

#include "confail/taxonomy/taxonomy.hpp"

namespace confail::taxonomy {

/// The paper's Table 1 (Transition / Failure / Cause / Conditions /
/// Consequences / Testing Notes) as ASCII.
std::string renderTable1();

/// Table 1 extended with one extra column per-class, e.g. the detection
/// result of the fault-injection experiment.
std::string renderTable1With(const std::string& extraHeader,
                             const std::map<FailureClass, std::string>& extra);

}  // namespace confail::taxonomy
