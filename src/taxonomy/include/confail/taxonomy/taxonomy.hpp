// The paper's primary contribution as a machine-usable artifact:
//   * the five Figure-1 transitions with their model semantics, and
//   * the ten-way classification of concurrency failures of Table 1 —
//     {failure to fire, erroneous firing} x {T1..T5} — with the cause,
//     conditions, consequences and testing-notes text of each class.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace confail::taxonomy {

/// The transitions of the paper's Figure 1 Petri-net model.
enum class Transition : std::uint8_t {
  T1,  ///< requesting an object lock (A -> B)
  T2,  ///< locking an object (B + E -> C)
  T3,  ///< waiting on an object (C -> D + E)
  T4,  ///< releasing an object lock (C -> A + E)
  T5,  ///< thread notification (D -> B, caused by another thread)
};

const char* transitionName(Transition t);
const char* transitionDescription(Transition t);

/// The two HAZOP deviations applied to each transition (Section 5).
enum class Deviation : std::uint8_t {
  FailureToFire,    ///< the transition should have fired but did not
  ErroneousFiring,  ///< the transition fired when it should not have
};

const char* deviationName(Deviation d);

/// The ten failure classes of Table 1.
enum class FailureClass : std::uint8_t {
  FF_T1,  ///< interference / data race
  EF_T1,  ///< unnecessary synchronization
  FF_T2,  ///< thread permanently suspended (lock never granted)
  EF_T2,  ///< not applicable (JVM assumed correct)
  FF_T3,  ///< required wait never made
  EF_T3,  ///< erroneous call to wait
  FF_T4,  ///< lock never released
  EF_T4,  ///< lock released prematurely
  FF_T5,  ///< thread never notified
  EF_T5,  ///< thread notified before it should be
};

inline constexpr std::size_t kFailureClassCount = 10;

/// All classes in Table 1 row order.
const std::array<FailureClass, kFailureClassCount>& allFailureClasses();

const char* failureClassName(FailureClass c);  ///< e.g. "FF-T1"

/// Parse a class name ("FF-T5"; case-insensitive, '_' accepted for '-').
/// Returns false when the spelling matches no Table 1 class.
bool parseFailureClass(const std::string& spec, FailureClass& out);

Transition transitionOf(FailureClass c);
Deviation deviationOf(FailureClass c);

/// One row of Table 1.
struct FailureClassInfo {
  FailureClass cls;
  std::string cause;         ///< Table 1 "Cause"
  std::string conditions;    ///< Table 1 "Conditions"
  std::string consequences;  ///< Table 1 "Consequences"
  std::string testingNotes;  ///< Table 1 "Testing Notes"
  bool applicable = true;    ///< false only for EF-T2
};

/// The full Table 1 contents (text follows the paper).
const FailureClassInfo& info(FailureClass c);

}  // namespace confail::taxonomy
