// Classifier: maps raw observations — detector findings, scheduler run
// outcomes, ConAn completion-time reports — onto the ten failure classes of
// Table 1.  This is the operational half of the paper's contribution: the
// classification is not just a table, it tells you *which observation
// technique reveals which class*, and the classifier encodes exactly those
// connections.
#pragma once

#include <string>
#include <vector>

#include "confail/conan/test_driver.hpp"
#include "confail/detect/finding.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/taxonomy/taxonomy.hpp"

namespace confail::taxonomy {

/// One classified failure with the evidence that produced it.
struct ClassifiedFailure {
  FailureClass cls;
  std::string evidence;
  std::string source;  ///< detector / run-outcome / completion-time
};

/// The aggregate verdict for one test execution.
struct FailureReport {
  std::vector<ClassifiedFailure> failures;

  bool has(FailureClass c) const;
  /// Distinct classes present, in Table 1 order.
  std::vector<FailureClass> classes() const;
  std::string describe() const;
};

class Classifier {
 public:
  /// Table 1 testing-notes mapping: which classes a finding kind indicates.
  static std::vector<FailureClass> classesOf(detect::FindingKind kind);

  /// Classify detector findings.
  static void addFindings(FailureReport& report,
                          const std::vector<detect::Finding>& findings,
                          const events::Trace& trace);

  /// Classify a virtual-scheduler outcome (deadlock / step limit).
  static void addRunOutcome(FailureReport& report, const sched::RunResult& run,
                            const events::Trace& trace);

  /// Classify ConAn completion-time violations, cross-referencing the trace
  /// (per-call activity is bracketed by the ClockAwait events the driver's
  /// threads emit).
  static void addCallReports(FailureReport& report, const conan::Results& results,
                             const events::Trace& trace);

  /// Convenience: run the standard detector battery plus the above.
  static FailureReport classifyAll(const std::vector<detect::Finding>& findings,
                                   const sched::RunResult& run,
                                   const conan::Results& results,
                                   const events::Trace& trace);
};

}  // namespace confail::taxonomy
