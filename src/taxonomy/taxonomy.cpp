#include "confail/taxonomy/taxonomy.hpp"

#include <cctype>

#include "confail/support/assert.hpp"

namespace confail::taxonomy {

const char* transitionName(Transition t) {
  switch (t) {
    case Transition::T1: return "T1";
    case Transition::T2: return "T2";
    case Transition::T3: return "T3";
    case Transition::T4: return "T4";
    case Transition::T5: return "T5";
  }
  return "?";
}

const char* transitionDescription(Transition t) {
  switch (t) {
    case Transition::T1:
      return "requesting an object lock: fired by a thread entering a "
             "synchronized block (A -> B)";
    case Transition::T2:
      return "locking an object: fired by the runtime serving the requesting "
             "thread an object lock; blocked in B if no lock is available "
             "(B + E -> C)";
    case Transition::T3:
      return "waiting on an object: the code calls wait, which also releases "
             "the object lock (C -> D + E)";
    case Transition::T4:
      return "releasing an object lock: the thread leaves the synchronized "
             "block (C -> A + E)";
    case Transition::T5:
      return "thread notification: a waiting thread wakes and moves to B to "
             "re-acquire the lock; caused by another thread's notify (the "
             "dashed arc) — a thread in the wait state cannot wake itself "
             "(D -> B)";
  }
  return "?";
}

const char* deviationName(Deviation d) {
  switch (d) {
    case Deviation::FailureToFire: return "failure to fire";
    case Deviation::ErroneousFiring: return "erroneous firing";
  }
  return "?";
}

const std::array<FailureClass, kFailureClassCount>& allFailureClasses() {
  static const std::array<FailureClass, kFailureClassCount> all = {
      FailureClass::FF_T1, FailureClass::EF_T1, FailureClass::FF_T2,
      FailureClass::EF_T2, FailureClass::FF_T3, FailureClass::EF_T3,
      FailureClass::FF_T4, FailureClass::EF_T4, FailureClass::FF_T5,
      FailureClass::EF_T5,
  };
  return all;
}

const char* failureClassName(FailureClass c) {
  switch (c) {
    case FailureClass::FF_T1: return "FF-T1";
    case FailureClass::EF_T1: return "EF-T1";
    case FailureClass::FF_T2: return "FF-T2";
    case FailureClass::EF_T2: return "EF-T2";
    case FailureClass::FF_T3: return "FF-T3";
    case FailureClass::EF_T3: return "EF-T3";
    case FailureClass::FF_T4: return "FF-T4";
    case FailureClass::EF_T4: return "EF-T4";
    case FailureClass::FF_T5: return "FF-T5";
    case FailureClass::EF_T5: return "EF-T5";
  }
  return "?";
}

bool parseFailureClass(const std::string& spec, FailureClass& out) {
  std::string upper = spec;
  for (char& c : upper) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (c == '_') c = '-';
  }
  for (FailureClass cls : allFailureClasses()) {
    if (upper == failureClassName(cls)) {
      out = cls;
      return true;
    }
  }
  return false;
}

Transition transitionOf(FailureClass c) {
  switch (c) {
    case FailureClass::FF_T1:
    case FailureClass::EF_T1: return Transition::T1;
    case FailureClass::FF_T2:
    case FailureClass::EF_T2: return Transition::T2;
    case FailureClass::FF_T3:
    case FailureClass::EF_T3: return Transition::T3;
    case FailureClass::FF_T4:
    case FailureClass::EF_T4: return Transition::T4;
    case FailureClass::FF_T5:
    case FailureClass::EF_T5: return Transition::T5;
  }
  return Transition::T1;
}

Deviation deviationOf(FailureClass c) {
  switch (c) {
    case FailureClass::FF_T1:
    case FailureClass::FF_T2:
    case FailureClass::FF_T3:
    case FailureClass::FF_T4:
    case FailureClass::FF_T5: return Deviation::FailureToFire;
    default: return Deviation::ErroneousFiring;
  }
}

const FailureClassInfo& info(FailureClass c) {
  // Text follows the paper's Table 1 (lightly condensed where the original
  // wraps across cells).
  static const std::array<FailureClassInfo, kFailureClassCount> rows = {{
      {FailureClass::FF_T1,
       "Thread does not access a synchronized block when required",
       "Two or more threads access a shared resource",
       "Interference (also known as a race condition or data race)",
       "Static analysis / model checking (often combined with dynamic "
       "analysis)",
       true},
      {FailureClass::EF_T1,
       "Program logic accesses critical section",
       "No more than one thread accesses shared resources; the thread is not "
       "required to wait or notify other threads",
       "Unnecessary synchronization",
       "Static analysis / model checking (often combined with dynamic "
       "analysis)",
       true},
      {FailureClass::FF_T2,
       "The object lock to be acquired has been acquired by another thread",
       "Another thread has acquired the lock being acquired by this thread; "
       "either one thread continuously holds the lock, or one or more "
       "threads repeatedly acquire the lock being requested",
       "The thread is permanently suspended",
       "Static and dynamic analysis",
       true},
      {FailureClass::EF_T2,
       "Not applicable (the JVM is assumed to be implemented correctly)",
       "",
       "",
       "",
       false},
      {FailureClass::FF_T3,
       "No call to wait is made",
       "Thread is required to make a call to wait",
       "Program code may erroneously execute in a critical section, or leave "
       "a critical section prematurely",
       "Check completion time of call",
       true},
      {FailureClass::EF_T3,
       "Program logic makes an erroneous call to wait",
       "A call to wait is not desired",
       "A thread may suspend indefinitely if no other thread exists to "
       "notify it; the object lock is released",
       "Check completion time of call",
       true},
      {FailureClass::FF_T4,
       "The thread never releases the object lock, or fires T3 (waits) "
       "instead",
       "Thread is in an endless loop, waiting for blocking input that never "
       "arrives, or acquiring an additional lock held by another thread",
       "Thread never completes; other threads may be blocked waiting for "
       "the lock",
       "Check completion time of call",
       true},
      {FailureClass::EF_T4,
       "Thread releases the object lock prematurely (leaves the block too "
       "early, reassigns the variable holding the lock, or fires T4 instead "
       "of T3)",
       "None",
       "Thread exits and subsequent statements may access shared resources",
       "Static analysis and completion time of call",
       true},
      {FailureClass::FF_T5,
       "Thread is not notified",
       "No other thread calls notify whilst this thread is in the wait "
       "state; includes notify instead of notifyAll with unfair selection, "
       "and the single-thread case",
       "Thread is permanently suspended",
       "Check completion time of call",
       true},
      {FailureClass::EF_T5,
       "Thread is notified before it should be",
       "None",
       "Thread prematurely re-enters the critical section",
       "Check completion time of call",
       true},
  }};
  for (const auto& r : rows) {
    if (r.cls == c) return r;
  }
  CONFAIL_ASSERT(false, "unknown failure class");
  return rows[0];
}

}  // namespace confail::taxonomy
