// FlatMapN<W>: a flat open-addressing hash table from W-word keys to 32-bit
// values (FlatMap64 is the one-word alias).
//
// Both hot state-space engines key on a compact fixed-width encoding of a
// state (the Petri reachability engine packs a 1-bounded marking into one
// bit per place — one word for <= 64 places, up to four words for the
// N-thread x M-monitor nets; the explorer's visited set keys on a
// (depth, fingerprint) mix), so the table avoids the per-node allocation,
// pointer chasing and bucket indirection of std::unordered_map: storage is
// a single contiguous slot array probed linearly, and lookups on the
// BFS/DFS hot path touch one cache line in the common case.  Capacity is a
// power of two, pre-reservable, and doubles at ~70% load.  No erase
// (neither engine removes states mid-enumeration).
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "confail/support/assert.hpp"

namespace confail {

template <std::size_t W>
class FlatMapN {
  static_assert(W >= 1 && W <= 8, "key width is 1..8 words");

 public:
  /// One word for W == 1 (so call sites pass plain integers), a fixed
  /// array otherwise.
  using Key = std::conditional_t<W == 1, std::uint64_t,
                                 std::array<std::uint64_t, W>>;

  /// Sentinel marking an empty slot.  Values passed to findOrInsert must be
  /// distinct from it (state indices are capped well below 2^32-1).
  static constexpr std::uint32_t kNoValue = 0xffffffffu;

  /// `expected` is the anticipated number of entries; the table pre-reserves
  /// enough slots that no rehash happens before `expected` insertions.
  explicit FlatMapN(std::size_t expected = 0) { reserve(expected); }

  /// Value stored under `key`, or kNoValue if absent.  Safe to call from
  /// several threads concurrently as long as no findOrInsert runs at the
  /// same time (the Petri engine's barrier-phased frontier relies on this).
  std::uint32_t find(const Key& key) const {
    std::size_t i = static_cast<std::size_t>(hash(key)) & mask_;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.value == kNoValue) return kNoValue;
      if (s.key == key) return s.value;
      i = (i + 1) & mask_;
    }
  }

  /// Insert (key -> value) if the key is absent.  Returns the resident value
  /// (existing or just-inserted) and whether an insertion happened.
  std::pair<std::uint32_t, bool> findOrInsert(const Key& key,
                                              std::uint32_t value) {
    CONFAIL_ASSERT(value != kNoValue, "kNoValue is reserved");
    std::size_t i = static_cast<std::size_t>(hash(key)) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.value == kNoValue) {
        s.key = key;
        s.value = value;
        ++size_;
        if (size_ * 10 >= slots_.size() * 7) grow();
        return {value, true};
      }
      if (s.key == key) return {s.value, false};
      i = (i + 1) & mask_;
    }
  }

  std::size_t size() const { return size_; }

  /// Grow the slot array so at least `expected` entries fit under the load
  /// factor.  Never shrinks.
  void reserve(std::size_t expected) {
    std::size_t want = 16;
    while (want * 7 < (expected + 1) * 10) want <<= 1;
    if (want <= slots_.size()) return;
    rehash(want);
  }

 private:
  struct Slot {
    Key key{};
    std::uint32_t value = kNoValue;
  };

  /// SplitMix64 finalizer: full-avalanche scrambling so sequential encodings
  /// (markings differ in low bits) spread across the table.
  static std::uint64_t mix(std::uint64_t k) {
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return k ^ (k >> 31);
  }

  static std::uint64_t hash(const Key& key) {
    if constexpr (W == 1) {
      return mix(key);
    } else {
      // Chain one finalizer per word; each word fully avalanches before the
      // next is folded in, so sparse bit-vector keys do not cancel.
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (std::uint64_t w : key) h = mix(h ^ w);
      return h;
    }
  }

  void grow() { rehash(slots_.size() * 2); }

  void rehash(std::size_t newCap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(newCap, Slot{});
    mask_ = newCap - 1;
    for (const Slot& s : old) {
      if (s.value == kNoValue) continue;
      std::size_t i = static_cast<std::size_t>(hash(s.key)) & mask_;
      while (slots_[i].value != kNoValue) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// The historical one-word table (explorer visited keys, packed markings of
/// small nets).
using FlatMap64 = FlatMapN<1>;

}  // namespace confail
