// Assertion and error-handling primitives for the confail library.
//
// Two distinct mechanisms, per the C++ Core Guidelines (I.10, E.x):
//   * CONFAIL_ASSERT(cond, msg): internal invariant.  A violation is a bug in
//     the library itself; it aborts the process with a diagnostic.  Never use
//     it to validate caller input.
//   * CONFAIL_CHECK(cond, ExceptionType, msg): recoverable caller error
//     (e.g. calling Monitor::wait without holding the lock).  Throws a typed
//     exception derived from confail::Error.
#pragma once

#include <stdexcept>
#include <string>

namespace confail {

/// Base class for all recoverable errors thrown by the confail library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when wait/notify/unlock is invoked by a thread that does not own
/// the monitor — the C++ analogue of Java's IllegalMonitorStateException.
class IllegalMonitorState : public Error {
 public:
  using Error::Error;
};

/// Thrown when an API is used outside its contract (bad arguments,
/// wrong execution mode, calls after shutdown, ...).
class UsageError : public Error {
 public:
  using Error::Error;
};

/// Thrown inside a logical thread when the virtual scheduler aborts the
/// run (deadlock detected, step limit exceeded, or another thread threw).
/// User code should let it propagate; RAII guards perform cleanup.
class ExecutionAborted : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void assertFail(const char* expr, const char* file, int line,
                             const std::string& msg);
}  // namespace detail

}  // namespace confail

/// Internal invariant check: aborts on violation.
#define CONFAIL_ASSERT(cond, msg)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::confail::detail::assertFail(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                    \
  } while (false)

/// Recoverable precondition check: throws `extype` on violation.
#define CONFAIL_CHECK(cond, extype, msg) \
  do {                                   \
    if (!(cond)) {                       \
      throw extype(msg);                 \
    }                                    \
  } while (false)
