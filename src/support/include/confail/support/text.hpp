// Small text utilities used by reports, trace serialization and benches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace confail {

/// Join the string representations of a range with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Split a string on a single-character separator (no empty-trailing trim).
std::vector<std::string> split(std::string_view s, char sep);

/// Left-pad/truncate a string to exactly `width` columns (for table output).
std::string padTo(std::string_view s, std::size_t width);

/// Word-wrap `s` to lines of at most `width` columns (breaks on spaces).
std::vector<std::string> wrap(std::string_view s, std::size_t width);

/// Render a simple ASCII table: `rows[r][c]`; column widths are fitted and
/// cells word-wrapped to `maxColWidth`. First row is treated as a header.
std::string renderTable(const std::vector<std::vector<std::string>>& rows,
                        std::size_t maxColWidth = 28);

}  // namespace confail
