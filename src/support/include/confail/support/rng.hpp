// Deterministic pseudo-random number generation.
//
// All randomness in confail (schedule choices, wake-policy selection,
// spurious-wakeup injection, workload generation) flows through these
// generators so that every run is reproducible from a single 64-bit seed.
// No component ever consults the wall clock or std::random_device.
#pragma once

#include <cstdint>
#include <vector>

namespace confail {

/// SplitMix64: tiny, fast, passes BigCrush when used for seeding.
/// Used both directly and to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the library's general-purpose generator.
/// Deterministically seeded from a single 64-bit value via SplitMix64.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound) using Lemire's bounded method.
  /// bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Pick a uniformly random element index of a non-empty container size.
  template <typename Container>
  std::size_t pickIndex(const Container& c) noexcept {
    return static_cast<std::size_t>(below(c.size()));
  }

  /// Hash of the generator's current position in its stream.  Two
  /// generators with equal seeds that consumed the same draws hash equal;
  /// used by the explorer's state fingerprints, since policy randomness
  /// (wake selection, spurious wakes) is part of the execution state.
  std::uint64_t stateHash() const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t w : s_) {
      h = (h ^ w) * 0x100000001b3ull;
    }
    return h ^ (h >> 29);
  }

 private:
  std::uint64_t s_[4];
};

/// Fisher–Yates shuffle driven by a Xoshiro256 generator.
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.below(i));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace confail
