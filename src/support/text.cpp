#include "confail/support/text.hpp"

#include <algorithm>
#include <sstream>

namespace confail {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string padTo(std::string_view s, std::size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::vector<std::string> wrap(std::string_view s, std::size_t width) {
  std::vector<std::string> lines;
  std::string cur;
  std::istringstream in{std::string(s)};
  std::string word;
  while (in >> word) {
    if (!cur.empty() && cur.size() + 1 + word.size() > width) {
      lines.push_back(cur);
      cur.clear();
    }
    if (cur.empty()) {
      // A single word longer than the width is hard-broken.
      while (word.size() > width) {
        lines.emplace_back(word.substr(0, width));
        word.erase(0, width);
      }
      cur = word;
    } else {
      cur += ' ';
      cur += word;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  if (lines.empty()) lines.emplace_back("");
  return lines;
}

std::string renderTable(const std::vector<std::vector<std::string>>& rows,
                        std::size_t maxColWidth) {
  if (rows.empty()) return {};
  std::size_t cols = 0;
  for (const auto& r : rows) cols = std::max(cols, r.size());

  // Wrap every cell, then fit column widths to the widest wrapped line.
  std::vector<std::vector<std::vector<std::string>>> wrapped(rows.size());
  std::vector<std::size_t> width(cols, 1);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    wrapped[r].resize(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      std::string_view cell = c < rows[r].size() ? std::string_view(rows[r][c]) : "";
      wrapped[r][c] = wrap(cell, maxColWidth);
      for (const auto& line : wrapped[r][c]) {
        width[c] = std::max(width[c], line.size());
      }
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < cols; ++c) {
      s += std::string(width[c] + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };

  std::string out = hline();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::size_t height = 1;
    for (std::size_t c = 0; c < cols; ++c) {
      height = std::max(height, wrapped[r][c].size());
    }
    for (std::size_t line = 0; line < height; ++line) {
      out += '|';
      for (std::size_t c = 0; c < cols; ++c) {
        std::string_view text =
            line < wrapped[r][c].size() ? std::string_view(wrapped[r][c][line]) : "";
        out += ' ';
        out += padTo(text, width[c]);
        out += " |";
      }
      out += '\n';
    }
    if (r == 0) out += hline();
  }
  out += hline();
  return out;
}

}  // namespace confail
