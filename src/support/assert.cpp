#include "confail/support/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace confail::detail {

void assertFail(const char* expr, const char* file, int line,
                const std::string& msg) {
  std::fprintf(stderr, "confail: internal invariant violated: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace confail::detail
