#include "confail/support/rng.hpp"

namespace confail {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.next();
  }
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Rejection-free for our purposes: modulo bias is negligible for the
  // small bounds used in scheduling, but we use Lemire's method anyway.
  unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace confail
