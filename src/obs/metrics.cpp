#include "confail/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "confail/obs/json.hpp"

namespace confail::obs {

namespace detail {

std::size_t threadStripe() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::size_t Histogram::bucketIndex(std::uint64_t v) noexcept {
  return static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t Histogram::bucketUpperBound(std::size_t i) noexcept {
  if (i == 0) return 0;
  if (i >= 64) return ~0ull;
  return (1ull << i) - 1;
}

void Histogram::observe(std::uint64_t v) noexcept {
  buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  const std::size_t stripe = detail::threadStripe() % detail::kStripes;
  count_[stripe].v.fetch_add(1, std::memory_order_relaxed);
  sum_[stripe].v.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : count_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : sum_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ull ? 0 : v;
}

std::uint64_t Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::bucketCount(std::size_t i) const noexcept {
  return i < kBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
}

std::uint64_t Histogram::quantileUpperBound(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) return bucketUpperBound(i);
  }
  return bucketUpperBound(kBuckets - 1);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramStats hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    hs.mean = hs.count == 0 ? 0.0
                            : static_cast<double>(hs.sum) /
                                  static_cast<double>(hs.count);
    hs.p50 = h->quantileUpperBound(0.50);
    hs.p90 = h->quantileUpperBound(0.90);
    hs.p99 = h->quantileUpperBound(0.99);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucketCount(i);
      if (n != 0) hs.buckets.emplace_back(Histogram::bucketUpperBound(i), n);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

std::string Snapshot::HistogramStats::percentileLine() const {
  return "p50<=" + std::to_string(p50) + " p90<=" + std::to_string(p90) +
         " p99<=" + std::to_string(p99);
}

std::uint64_t Snapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double Snapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

bool Snapshot::has(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return true;
  }
  for (const auto& [n, v] : gauges) {
    if (n == name) return true;
  }
  for (const auto& h : histograms) {
    if (h.name == name) return true;
  }
  return false;
}

void Snapshot::writeJson(JsonWriter& w) const {
  w.beginObject();
  w.key("counters");
  w.beginObject();
  for (const auto& [name, v] : counters) w.field(name, v);
  w.endObject();
  w.key("gauges");
  w.beginObject();
  for (const auto& [name, v] : gauges) w.field(name, v);
  w.endObject();
  w.key("histograms");
  w.beginObject();
  for (const HistogramStats& h : histograms) {
    w.key(h.name);
    w.beginObject();
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("min", h.min);
    w.field("max", h.max);
    w.field("mean", h.mean);
    w.field("p50_le", h.p50);
    w.field("p90_le", h.p90);
    w.field("p99_le", h.p99);
    w.key("buckets");
    w.beginArray();
    for (const auto& [le, n] : h.buckets) {
      w.beginObject();
      w.field("le", le);
      w.field("n", n);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
  w.endObject();
}

std::string Snapshot::toJson() const {
  JsonWriter w;
  writeJson(w);
  return w.str();
}

bool Snapshot::writeFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = toJson();
  std::fputs(doc.c_str(), f);
  std::fputc('\n', f);
  return std::fclose(f) == 0;
}

}  // namespace confail::obs
