// Shared rendering of an exploration result: one struct, two formats.
//
// confail_explore and the bench binaries all report the same quantities
// (runs, outcomes, reductions, the first failing schedule, throughput).
// ExploreSummary keeps those in a plain struct with no sched:: types so
// this module stays below sched in the dependency order; callers copy the
// explorer's Stats in and get the human text and the JSON object out of
// one place instead of hand-rolled printf blocks.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace confail::obs {

class JsonWriter;
struct Snapshot;

struct ExploreSummary {
  std::string scenario;
  std::uint64_t runs = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t stepLimited = 0;
  std::uint64_t exceptions = 0;
  std::uint64_t dedupedStates = 0;
  std::uint64_t prunedBranches = 0;
  std::uint64_t distinctDeadlockStates = 0;
  bool exhausted = false;
  bool stoppedByCallback = false;
  /// Whether any reduction (pruning / sleep sets) was enabled — controls
  /// whether the reductions line appears in the human rendering.
  bool reductionsEnabled = false;
  std::vector<std::uint32_t> firstFailure;
  std::string firstFailureOutcome;
  double elapsedMs = 0.0;
  double runsPerSec = 0.0;
  /// Percentile digests of the run's latency/size histograms, one
  /// (histogram name, "p50<=N p90<=N p99<=N") pair per non-empty
  /// histogram.  Filled from a metrics snapshot when instrumentation was
  /// on; the summary prints these instead of raw bucket dumps.
  std::vector<std::pair<std::string, std::string>> histogramPercentiles;

  /// Append a percentile line for every non-empty histogram in `snap`.
  void addHistogramPercentiles(const Snapshot& snap);

  /// Multi-line human rendering (the confail_explore default output,
  /// without the trailing sentinel line).
  std::string human() const;

  /// Emit as a JSON object into an open writer, so the summary can embed
  /// in a larger document (a metrics snapshot, a bench row).
  void writeJson(JsonWriter& w) const;

  /// Standalone single-document form of writeJson.
  std::string toJson() const;
};

}  // namespace confail::obs
