// confail::obs metrics substrate: counters, gauges and log2-bucket latency
// histograms behind a name-keyed registry.
//
// Design constraints, in order:
//   1. Recording must be cheap and thread-safe — the explorer's workers and
//      real-mode component threads all hit these counters on hot paths.
//      Every increment is a single relaxed fetch_add on a per-thread shard
//      (a cache-line-padded slot selected by a thread-local stripe index),
//      so concurrent writers never contend on a line.  There is no
//      per-record locking anywhere.
//   2. Reading is rare (a snapshot at the end of a run, or a periodic
//      progress heartbeat) and pays the aggregation cost: a snapshot sums
//      the shards.  Totals are exact — increments are never lost, only
//      split across shards.
//   3. Handles are stable: Counter/Gauge/Histogram references returned by
//      the registry live as long as the registry, so instrumentation sites
//      resolve a name once (construction time) and keep the pointer.
//
// Everything here is TSan-clean by construction: shared state is atomic,
// registry lookups are mutex-protected, and no recorded value is read
// non-atomically.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace confail::obs {

class JsonWriter;

namespace detail {

/// Stripe index of the calling thread: assigned round-robin on first use so
/// that concurrent threads land on different shards.
std::size_t threadStripe();

inline constexpr std::size_t kStripes = 16;

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

/// Monotonic event count, sharded per thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::threadStripe() % detail::kStripes].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  /// Sum over all shards (exact; linear in the shard count).
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  detail::PaddedU64 shards_[detail::kStripes];
};

/// Last-write-wins scalar (double so rates and fractions fit).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Latency / size histogram with fixed log2 buckets.
///
/// Bucket i counts observations v with bucketIndex(v) == i, i.e. bucket 0
/// holds v == 0 and bucket i (i >= 1) holds v in [2^(i-1), 2^i).  The
/// bucket count is fixed at 65 (every uint64 value maps somewhere), so
/// merging and serialization never need dynamic reconfiguration.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  /// Index of the log2 bucket that counts `v`.
  static std::size_t bucketIndex(std::uint64_t v) noexcept;

  /// Inclusive upper bound of bucket `i` (the largest value it counts).
  static std::uint64_t bucketUpperBound(std::size_t i) noexcept;

  void observe(std::uint64_t v) noexcept;

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;
  /// Smallest / largest observed value; 0 when empty.
  std::uint64_t min() const noexcept;
  std::uint64_t max() const noexcept;
  std::uint64_t bucketCount(std::size_t i) const noexcept;

  /// Value at or below which `q` (0..1) of the observations fall, estimated
  /// as the upper bound of the bucket containing the q-quantile. 0 if empty.
  std::uint64_t quantileUpperBound(double q) const noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  detail::PaddedU64 count_[detail::kStripes];
  detail::PaddedU64 sum_[detail::kStripes];
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII timer: observes the elapsed wall time in nanoseconds on a histogram
/// when it goes out of scope.  A null histogram disables it (zero cost
/// beyond one branch), so call sites stay unconditional.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h)
      : h_(h),
        t0_(h == nullptr ? std::chrono::steady_clock::time_point{}
                         : std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (h_ == nullptr) return;
    const auto dt = std::chrono::steady_clock::now() - t0_;
    h_->observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

/// Point-in-time aggregation of a registry, decoupled from the live
/// metrics (safe to keep, compare, or serialize while recording continues).
struct Snapshot {
  struct HistogramStats {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;  ///< bucket-upper-bound estimates
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;

    /// One-line human rendering of the percentile trio ("p50≤8 p90≤16
    /// p99≤32"), the summary form ExploreSummary and the ingest summary
    /// print instead of dumping raw buckets.
    std::string percentileLine() const;
    /// Non-empty buckets only: (inclusive upper bound, count).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramStats> histograms;

  /// Value of a counter / gauge by name (0 when absent; see has()).
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  bool has(const std::string& name) const;

  /// Emit as a JSON object ({"counters": {...}, "gauges": {...},
  /// "histograms": {...}}) into an open writer, so callers can embed a
  /// snapshot in a larger document (the bench JSON convention).
  void writeJson(JsonWriter& w) const;

  /// Standalone document form of writeJson.
  std::string toJson() const;

  /// Write toJson() to `path`; returns false on I/O failure.
  bool writeFile(const std::string& path) const;
};

/// Name-keyed metric registry.  Lookup is mutex-guarded (do it once per
/// instrumentation site, not per record); returned references stay valid
/// for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace confail::obs
