// Structured exporters for events::Trace.
//
// Two formats, both consumed by standard tooling instead of confail's own
// renderers:
//
//   * Chrome trace_event JSON — load the file in chrome://tracing or
//     Perfetto.  One track per logical thread (tid = ThreadId, named from
//     the trace's thread table).  Paired operations are exported as
//     complete ("X") duration events so nesting renders as stacked slices:
//       - lock-wait:   LockRequest  -> LockAcquire   ("acquire <monitor>")
//       - lock-held:   LockAcquire  -> LockRelease   ("hold <monitor>")
//       - wait:        WaitBegin    -> Notified      ("wait <monitor>")
//       - method:      MethodEnter  -> MethodExit    ("<method>")
//     One-shot operations (notify calls, spurious wakes, reads/writes,
//     guard evaluations, clock traffic, thread lifecycle) are instant ("i")
//     events.  The logical timeline has no wall clock, so the global event
//     sequence number is used as the microsecond timestamp: one seq == one
//     "microsecond" of logical time.
//
//   * JSONL — one self-contained JSON object per line per event, with all
//     ids resolved to names.  Greppable, streamable, and loadable by any
//     data tooling without a JSON-array parse of the whole file.
#pragma once

#include <string>

#include "confail/events/trace.hpp"

namespace confail::obs {

/// Render `trace` as a Chrome trace_event JSON document (the
/// {"traceEvents": [...]} object form).
std::string toChromeTrace(const events::Trace& trace);

/// Render `trace` as JSON Lines, one event object per line.
std::string toJsonl(const events::Trace& trace);

/// Write either export to a file; returns false on I/O failure.
bool writeChromeTraceFile(const events::Trace& trace, const std::string& path);
bool writeJsonlFile(const events::Trace& trace, const std::string& path);

}  // namespace confail::obs
