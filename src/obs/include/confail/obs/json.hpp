// Minimal JSON support for confail's machine-readable outputs.
//
// Writer: a flat streaming builder (values appended in document order,
// commas/indentation handled by nesting depth).  This is the emitter behind
// every BENCH_*.json, metrics snapshot and Chrome trace file the project
// produces, so all of them share one escaping and formatting convention.
//
// Value/parse: a tiny recursive-descent reader for the same dialect, used
// by the self-checking ctest entries (validate that an emitted file parses
// and contains the required keys) and by tests.  Not a general-purpose
// parser: no \uXXXX escapes, numbers are doubles.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace confail::obs {

class JsonWriter {
 public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(const std::string& k) {
    comma();
    out_ += '"';
    escape(k);
    out_ += "\": ";
    pendingValue_ = true;
  }

  void value(const std::string& v) {
    comma();
    out_ += '"';
    escape(v);
    out_ += '"';
  }
  void value(const char* v) { value(std::string(v)); }
  void value(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }
  void value(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    comma();
    out_ += buf;
  }
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  void value(T v) {
    comma();
    out_ += std::to_string(v);
  }

  template <typename T>
  void field(const std::string& k, T v) {
    key(k);
    value(v);
  }

  const std::string& str() const { return out_; }

  /// Write the document to `path`; returns false on I/O failure.
  bool writeFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs(out_.c_str(), f);
    std::fputc('\n', f);
    return std::fclose(f) == 0;
  }

 private:
  void open(char c) {
    comma();
    out_ += c;
    ++depth_;
    first_ = true;
  }
  void close(char c) {
    --depth_;
    newlineIndent();
    out_ += c;
    first_ = false;
  }
  void comma() {
    if (pendingValue_) {
      pendingValue_ = false;  // value directly follows its key
      return;
    }
    if (!first_ && depth_ > 0) out_ += ',';
    if (depth_ > 0) newlineIndent();
    first_ = false;
  }
  void newlineIndent() {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
  }
  void escape(const std::string& s) {
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default: out_ += c; break;
      }
    }
  }

  std::string out_;
  int depth_ = 0;
  bool first_ = true;
  bool pendingValue_ = false;
};

/// Parsed JSON value (tree form).  Lookup helpers return nullptr / defaults
/// instead of throwing so validation code can accumulate what is missing.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool isObject() const { return kind == Kind::Object; }
  bool isArray() const { return kind == Kind::Array; }
  bool isNumber() const { return kind == Kind::Number; }

  /// Member access; nullptr when absent or not an object.
  const JsonValue* get(const std::string& k) const {
    if (kind != Kind::Object) return nullptr;
    auto it = object.find(k);
    return it == object.end() ? nullptr : &it->second;
  }

  /// Dotted-path access: get("a.b.c").
  const JsonValue* at(const std::string& path) const;
};

/// Parse a JSON document.  Throws confail::UsageError on malformed input.
JsonValue parseJson(const std::string& text);

}  // namespace confail::obs
