#include "confail/obs/trace_export.hpp"

#include <cstdio>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "confail/obs/json.hpp"

namespace confail::obs {

using events::Event;
using events::EventKind;
using events::MonitorId;
using events::ThreadId;

namespace {

// One emitted trace_event slice or instant, buffered so the document can be
// written in one pass after all pairings resolve.
struct ChromeEvent {
  std::string name;
  const char* cat;
  char phase;  // 'X' (complete, uses dur) or 'i' (instant)
  ThreadId tid;
  std::uint64_t ts;
  std::uint64_t dur = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

struct OpenSlice {
  std::string name;
  const char* cat;
  std::uint64_t begin;
};

const char* instantName(EventKind k) {
  switch (k) {
    case EventKind::NotifyCall: return "notify";
    case EventKind::NotifyAllCall: return "notifyAll";
    case EventKind::SpuriousWake: return "spurious-wake";
    case EventKind::Read: return "read";
    case EventKind::Write: return "write";
    case EventKind::ThreadSpawn: return "spawn";
    case EventKind::ThreadStart: return "thread-start";
    case EventKind::ThreadEnd: return "thread-end";
    case EventKind::GuardEval: return "guard";
    case EventKind::ClockAwait: return "clock-await";
    case EventKind::ClockTick: return "clock-tick";
    default: return "event";
  }
}

}  // namespace

std::string toChromeTrace(const events::Trace& trace) {
  const std::vector<Event> events = trace.events();

  std::vector<ChromeEvent> out;
  out.reserve(events.size() * 2);
  std::set<ThreadId> threads;
  // Open slices, keyed per thread: the held-lock region and the wait region
  // are per (thread, monitor); the method stack is per thread.
  std::map<std::pair<ThreadId, MonitorId>, OpenSlice> lockWait;
  std::map<std::pair<ThreadId, MonitorId>, OpenSlice> lockHeld;
  std::map<std::pair<ThreadId, MonitorId>, OpenSlice> waiting;
  std::map<ThreadId, std::vector<OpenSlice>> methodStack;

  std::uint64_t lastTs = 0;
  auto closeInto = [&out](std::map<std::pair<ThreadId, MonitorId>, OpenSlice>& open,
                          ThreadId tid, MonitorId mon, std::uint64_t endTs,
                          const char* renamed = nullptr) {
    auto it = open.find({tid, mon});
    if (it == open.end()) return;
    ChromeEvent ce;
    ce.name = renamed != nullptr ? renamed : it->second.name;
    ce.cat = it->second.cat;
    ce.phase = 'X';
    ce.tid = tid;
    ce.ts = it->second.begin;
    ce.dur = endTs >= it->second.begin ? endTs - it->second.begin : 0;
    out.push_back(std::move(ce));
    open.erase(it);
  };

  for (const Event& e : events) {
    if (e.thread == events::kNoThread) continue;
    threads.insert(e.thread);
    lastTs = e.seq;
    const std::string mon = e.monitor != events::kNoMonitor
                                ? trace.monitorName(e.monitor)
                                : std::string();
    switch (e.kind) {
      case EventKind::LockRequest:
        lockWait[{e.thread, e.monitor}] =
            OpenSlice{"acquire " + mon, "monitor", e.seq};
        break;
      case EventKind::LockAcquire:
        closeInto(lockWait, e.thread, e.monitor, e.seq);
        lockHeld[{e.thread, e.monitor}] =
            OpenSlice{"hold " + mon, "monitor", e.seq};
        break;
      case EventKind::WaitBegin:
        // wait() releases the lock: the held slice ends here and the wait
        // slice begins.
        closeInto(lockHeld, e.thread, e.monitor, e.seq);
        waiting[{e.thread, e.monitor}] =
            OpenSlice{"wait " + mon, "monitor", e.seq};
        break;
      case EventKind::LockRelease:
        closeInto(lockHeld, e.thread, e.monitor, e.seq);
        break;
      case EventKind::Notified:
        closeInto(waiting, e.thread, e.monitor, e.seq);
        break;
      case EventKind::SpuriousWake: {
        // The waiter leaves the wait set without a notify; rename the slice
        // so the anomaly is visible on the timeline.
        closeInto(waiting, e.thread, e.monitor, e.seq, "wait (spurious wake)");
        ChromeEvent ce;
        ce.name = instantName(e.kind);
        ce.cat = "monitor";
        ce.phase = 'i';
        ce.tid = e.thread;
        ce.ts = e.seq;
        if (!mon.empty()) ce.args.emplace_back("monitor", mon);
        out.push_back(std::move(ce));
        break;
      }
      case EventKind::MethodEnter:
        methodStack[e.thread].push_back(OpenSlice{
            trace.methodName(static_cast<events::MethodId>(e.aux)), "method",
            e.seq});
        break;
      case EventKind::MethodExit: {
        auto& stack = methodStack[e.thread];
        if (!stack.empty()) {
          ChromeEvent ce;
          ce.name = stack.back().name;
          ce.cat = "method";
          ce.phase = 'X';
          ce.tid = e.thread;
          ce.ts = stack.back().begin;
          ce.dur = e.seq - stack.back().begin;
          out.push_back(std::move(ce));
          stack.pop_back();
        }
        break;
      }
      default: {
        ChromeEvent ce;
        ce.name = instantName(e.kind);
        ce.cat = "event";
        ce.phase = 'i';
        ce.tid = e.thread;
        ce.ts = e.seq;
        switch (e.kind) {
          case EventKind::Read:
          case EventKind::Write:
            ce.cat = "data";
            ce.args.emplace_back(
                "var", trace.varName(static_cast<events::VarId>(e.aux)));
            break;
          case EventKind::NotifyCall:
          case EventKind::NotifyAllCall:
            ce.cat = "monitor";
            ce.args.emplace_back("monitor", mon);
            ce.args.emplace_back("waiters", std::to_string(e.aux));
            break;
          case EventKind::ThreadSpawn:
            ce.args.emplace_back(
                "child", trace.threadName(static_cast<ThreadId>(e.aux)));
            break;
          case EventKind::GuardEval:
            ce.args.emplace_back(
                "method",
                trace.methodName(static_cast<events::MethodId>(e.aux)));
            ce.args.emplace_back("value", e.flag ? "true" : "false");
            break;
          case EventKind::ClockAwait:
          case EventKind::ClockTick:
            ce.cat = "clock";
            ce.args.emplace_back("t", std::to_string(e.aux));
            break;
          default:
            break;
        }
        out.push_back(std::move(ce));
        break;
      }
    }
  }

  // Close whatever is still open (deadlocked waiters, held locks at a step
  // limit): the slice runs to one past the last timestamp, so stuck threads
  // show a region extending to the end of the timeline.
  const std::uint64_t endTs = lastTs + 1;
  for (auto& [key, slice] : lockWait) {
    out.push_back(ChromeEvent{slice.name + " (never granted)", "monitor", 'X',
                              key.first, slice.begin, endTs - slice.begin, {}});
  }
  for (auto& [key, slice] : lockHeld) {
    out.push_back(ChromeEvent{slice.name + " (never released)", "monitor", 'X',
                              key.first, slice.begin, endTs - slice.begin, {}});
  }
  for (auto& [key, slice] : waiting) {
    out.push_back(ChromeEvent{slice.name + " (never notified)", "monitor", 'X',
                              key.first, slice.begin, endTs - slice.begin, {}});
  }
  for (auto& [tid, stack] : methodStack) {
    for (OpenSlice& slice : stack) {
      out.push_back(ChromeEvent{slice.name + " (unfinished)", "method", 'X',
                                tid, slice.begin, endTs - slice.begin, {}});
    }
  }

  JsonWriter w;
  w.beginObject();
  w.key("traceEvents");
  w.beginArray();
  for (ThreadId t : threads) {
    w.beginObject();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", static_cast<std::uint64_t>(t));
    w.key("args");
    w.beginObject();
    w.field("name", trace.threadName(t));
    w.endObject();
    w.endObject();
  }
  for (const ChromeEvent& ce : out) {
    w.beginObject();
    w.field("name", ce.name);
    w.field("cat", ce.cat);
    w.field("ph", std::string(1, ce.phase));
    w.field("pid", 1);
    w.field("tid", static_cast<std::uint64_t>(ce.tid));
    w.field("ts", ce.ts);
    if (ce.phase == 'X') w.field("dur", ce.dur);
    if (ce.phase == 'i') w.field("s", "t");
    if (!ce.args.empty()) {
      w.key("args");
      w.beginObject();
      for (const auto& [k, v] : ce.args) w.field(k, v);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.field("displayTimeUnit", "ms");
  w.endObject();
  return w.str();
}

std::string toJsonl(const events::Trace& trace) {
  std::string out;
  for (const Event& e : trace.events()) {
    JsonWriter w;
    w.beginObject();
    w.field("seq", e.seq);
    w.field("kind", events::kindName(e.kind));
    if (e.thread != events::kNoThread) {
      w.field("thread", static_cast<std::uint64_t>(e.thread));
      w.field("thread_name", trace.threadName(e.thread));
    }
    if (e.monitor != events::kNoMonitor) {
      w.field("monitor", static_cast<std::uint64_t>(e.monitor));
      w.field("monitor_name", trace.monitorName(e.monitor));
    }
    if (e.method != events::kNoMethod) {
      w.field("method_ctx", static_cast<std::uint64_t>(e.method));
      w.field("method", trace.methodName(e.method));
    }
    switch (e.kind) {
      case EventKind::Read:
      case EventKind::Write:
        w.field("var_id", e.aux);
        w.field("var", trace.varName(static_cast<events::VarId>(e.aux)));
        break;
      case EventKind::NotifyCall:
      case EventKind::NotifyAllCall:
        w.field("waiters", e.aux);
        break;
      case EventKind::ThreadSpawn:
        w.field("child_id", e.aux);
        w.field("child", trace.threadName(static_cast<ThreadId>(e.aux)));
        break;
      case EventKind::GuardEval:
        w.field("guard_method_id", e.aux);
        w.field("guard_method",
                trace.methodName(static_cast<events::MethodId>(e.aux)));
        w.field("value", e.flag);
        break;
      case EventKind::MethodEnter:
      case EventKind::MethodExit:
        w.field("method_id", e.aux);
        break;
      case EventKind::ClockAwait:
      case EventKind::ClockTick:
        w.field("t", e.aux);
        break;
      default:
        if (e.aux != 0) w.field("aux", e.aux);
        break;
    }
    w.endObject();
    // The writer pretty-prints with newlines; flatten to one line per event.
    std::string doc = w.str();
    std::string line;
    line.reserve(doc.size());
    bool lastWasSpace = false;
    for (char c : doc) {
      if (c == '\n') {
        c = ' ';
      }
      const bool isSpace = c == ' ';
      if (isSpace && lastWasSpace) continue;
      lastWasSpace = isSpace;
      line += c;
    }
    out += line;
    out += '\n';
  }
  return out;
}

namespace {
bool writeStringFile(const std::string& doc, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(doc.c_str(), f);
  return std::fclose(f) == 0;
}
}  // namespace

bool writeChromeTraceFile(const events::Trace& trace, const std::string& path) {
  return writeStringFile(toChromeTrace(trace), path);
}

bool writeJsonlFile(const events::Trace& trace, const std::string& path) {
  return writeStringFile(toJsonl(trace), path);
}

}  // namespace confail::obs
