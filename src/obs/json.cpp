#include "confail/obs/json.hpp"

#include <cctype>

#include "confail/support/assert.hpp"

namespace confail::obs {

const JsonValue* JsonValue::at(const std::string& path) const {
  const JsonValue* cur = this;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t dot = path.find('.', start);
    std::string part = path.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    cur = cur->get(part);
    if (cur == nullptr) return nullptr;
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return cur;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue document() {
    JsonValue v = value();
    skipWs();
    CONFAIL_CHECK(pos_ == s_.size(), UsageError,
                  "json: trailing content at offset " + std::to_string(pos_));
    return v;
  }

 private:
  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skipWs();
    CONFAIL_CHECK(pos_ < s_.size(), UsageError, "json: unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    CONFAIL_CHECK(peek() == c, UsageError,
                  std::string("json: expected '") + c + "' at offset " +
                      std::to_string(pos_));
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': return boolean();
      case 'n': {
        literal("null");
        return JsonValue{};
      }
      default: return number();
    }
  }

  void literal(const char* word) {
    skipWs();
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      CONFAIL_CHECK(pos_ < s_.size() && s_[pos_] == *p, UsageError,
                    std::string("json: bad literal, expected ") + word);
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue number() {
    skipWs();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    CONFAIL_CHECK(pos_ > start, UsageError,
                  "json: expected a value at offset " + std::to_string(start));
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      throw UsageError("json: bad number at offset " + std::to_string(start));
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      CONFAIL_CHECK(pos_ < s_.size(), UsageError,
                    "json: unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        CONFAIL_CHECK(pos_ < s_.size(), UsageError,
                      "json: dangling escape at end of input");
        char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default:
            throw UsageError(std::string("json: unsupported escape \\") + esc);
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    if (consume('}')) return v;
    while (true) {
      std::string k = string();
      expect(':');
      v.object.emplace(std::move(k), value());
      if (consume('}')) break;
      expect(',');
    }
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      if (consume(']')) break;
      expect(',');
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(const std::string& text) { return Parser(text).document(); }

}  // namespace confail::obs
