#include "confail/obs/summary.hpp"

#include <cstdarg>
#include <cstdio>

#include "confail/obs/json.hpp"
#include "confail/obs/metrics.hpp"

namespace confail::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

void ExploreSummary::addHistogramPercentiles(const Snapshot& snap) {
  for (const Snapshot::HistogramStats& h : snap.histograms) {
    if (h.count == 0) continue;
    histogramPercentiles.emplace_back(h.name, h.percentileLine());
  }
}

std::string ExploreSummary::human() const {
  std::string out;
  appendf(out, "scenario:       %s\n", scenario.c_str());
  appendf(out, "runs:           %llu (%s)\n",
          static_cast<unsigned long long>(runs),
          exhausted ? "tree exhausted" : "budget or callback bounded");
  appendf(out, "completed:      %llu\n",
          static_cast<unsigned long long>(completed));
  appendf(out, "deadlocks:      %llu (%llu distinct state%s)\n",
          static_cast<unsigned long long>(deadlocks),
          static_cast<unsigned long long>(distinctDeadlockStates),
          distinctDeadlockStates == 1 ? "" : "s");
  if (stepLimited > 0 || exceptions > 0) {
    appendf(out, "step-limited:   %llu   exceptions: %llu\n",
            static_cast<unsigned long long>(stepLimited),
            static_cast<unsigned long long>(exceptions));
  }
  if (reductionsEnabled) {
    appendf(out, "reductions:     %llu states deduped, %llu branches pruned\n",
            static_cast<unsigned long long>(dedupedStates),
            static_cast<unsigned long long>(prunedBranches));
  }
  if (elapsedMs > 0.0) {
    appendf(out, "elapsed:        %.1f ms (%.0f runs/sec)\n", elapsedMs,
            runsPerSec);
  }
  for (const auto& [name, line] : histogramPercentiles) {
    appendf(out, "latency:        %s %s\n", name.c_str(), line.c_str());
  }
  if (!firstFailure.empty()) {
    out += "first failure:  ";
    for (std::size_t i = 0; i < firstFailure.size(); ++i) {
      appendf(out, "%s%u", i ? " " : "", firstFailure[i]);
    }
    out +=
        "\n(replayable: the schedule above reproduces the failure "
        "deterministically)\n";
  }
  return out;
}

void ExploreSummary::writeJson(JsonWriter& w) const {
  w.beginObject();
  w.field("scenario", scenario);
  w.field("runs", runs);
  w.field("completed", completed);
  w.field("deadlocks", deadlocks);
  w.field("distinct_deadlock_states", distinctDeadlockStates);
  w.field("step_limited", stepLimited);
  w.field("exceptions", exceptions);
  w.field("deduped_states", dedupedStates);
  w.field("pruned_branches", prunedBranches);
  w.field("exhausted", exhausted);
  w.field("stopped_by_callback", stoppedByCallback);
  w.field("elapsed_ms", elapsedMs);
  w.field("runs_per_sec", runsPerSec);
  if (!firstFailureOutcome.empty()) {
    w.field("first_failure_outcome", firstFailureOutcome);
  }
  if (!histogramPercentiles.empty()) {
    w.key("histogram_percentiles");
    w.beginObject();
    for (const auto& [name, line] : histogramPercentiles) {
      w.field(name, line);
    }
    w.endObject();
  }
  w.key("first_failure");
  w.beginArray();
  for (std::uint32_t step : firstFailure) w.value(step);
  w.endArray();
  w.endObject();
}

std::string ExploreSummary::toJson() const {
  JsonWriter w;
  writeJson(w);
  return w.str();
}

}  // namespace confail::obs
