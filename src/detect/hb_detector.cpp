#include "confail/detect/hb_detector.hpp"

#include <map>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::ThreadId;
using events::VarId;

VectorClock& HbCore::clockOf(ThreadId t) {
  VectorClock& vc = threadClock_[t];
  if (vc.of(t) == 0) vc.bump(t);  // every thread starts at its own epoch 1
  return vc;
}

HbCore::VarHistory& HbCore::varOf(VarId v) {
  auto it = vars_.find(v);
  if (it == vars_.end()) {
    if (opts_.maxVarHistory != 0 && vars_.size() >= opts_.maxVarHistory) {
      // Evict the least-recently-touched variable to stay bounded.
      auto oldest = touchOrder_.begin();
      vars_.erase(oldest->second);
      touchOrder_.erase(oldest);
      ++evictions_;
    }
    it = vars_.emplace(v, VarHistory{}).first;
  } else {
    touchOrder_.erase(it->second.lastTouch);
  }
  it->second.lastTouch = ++touchCounter_;
  touchOrder_.emplace(it->second.lastTouch, v);
  return it->second;
}

void HbCore::feed(const Event& e, std::vector<Finding>& out) {
  auto report = [&](VarHistory& h, ThreadId other, const char* what) {
    if (h.reported) return;
    h.reported = true;
    Finding f;
    f.kind = FindingKind::DataRace;
    f.message = std::string("unordered ") + what + " (happens-before violation)";
    f.thread = e.thread;
    f.thread2 = other;
    f.var = static_cast<VarId>(e.aux);
    f.seq = e.seq;
    out.push_back(std::move(f));
  };

  switch (e.kind) {
    case EventKind::ThreadSpawn: {
      // Child inherits the parent's history.
      VectorClock& parent = clockOf(e.thread);
      ThreadId child = static_cast<ThreadId>(e.aux);
      threadClock_[child].join(parent);
      threadClock_[child].bump(child);
      parent.bump(e.thread);
      break;
    }
    case EventKind::LockAcquire:
    case EventKind::Notified:
      clockOf(e.thread).join(monitorClock_[e.monitor]);
      break;
    case EventKind::LockRelease:
    case EventKind::WaitBegin: {
      VectorClock& vc = clockOf(e.thread);
      monitorClock_[e.monitor].join(vc);
      vc.bump(e.thread);
      break;
    }
    case EventKind::Read: {
      VectorClock& vc = clockOf(e.thread);
      VarHistory& h = varOf(static_cast<VarId>(e.aux));
      if (h.lastWriter != events::kNoThread && h.lastWriter != e.thread &&
          h.lastWriteClock > vc.of(h.lastWriter)) {
        report(h, h.lastWriter, "write-read pair");
      }
      h.reads[e.thread] = vc.of(e.thread);
      break;
    }
    case EventKind::Write: {
      VectorClock& vc = clockOf(e.thread);
      VarHistory& h = varOf(static_cast<VarId>(e.aux));
      if (h.lastWriter != events::kNoThread && h.lastWriter != e.thread &&
          h.lastWriteClock > vc.of(h.lastWriter)) {
        report(h, h.lastWriter, "write-write pair");
      }
      for (const auto& [reader, clk] : h.reads) {
        if (reader != e.thread && clk > vc.of(reader)) {
          report(h, reader, "read-write pair");
        }
      }
      h.lastWriter = e.thread;
      h.lastWriteClock = vc.of(e.thread);
      h.reads.clear();
      break;
    }
    default:
      break;
  }
}

void HbCore::finish(const NameSource&, std::vector<Finding>&) {}

std::vector<Finding> HbDetector::analyze(const events::Trace& trace) {
  HbCore core;
  return analyzeWithCore(core, trace);
}

}  // namespace confail::detect
