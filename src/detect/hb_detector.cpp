#include "confail/detect/hb_detector.hpp"

#include <map>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::ThreadId;
using events::VarId;

namespace {

struct VarHistory {
  // Last write: the writer's id/clock plus its full clock snapshot.
  ThreadId lastWriter = events::kNoThread;
  std::uint64_t lastWriteClock = 0;
  // Per-thread clock of the last read since the last write.
  std::map<ThreadId, std::uint64_t> reads;
  bool reported = false;
};

}  // namespace

std::vector<Finding> HbDetector::analyze(const events::Trace& trace) {
  std::vector<Finding> findings;
  std::map<ThreadId, VectorClock> threadClock;
  std::map<events::MonitorId, VectorClock> monitorClock;
  std::map<VarId, VarHistory> vars;

  auto clockOf = [&](ThreadId t) -> VectorClock& {
    VectorClock& vc = threadClock[t];
    if (vc.of(t) == 0) vc.bump(t);  // every thread starts at its own epoch 1
    return vc;
  };

  auto report = [&](VarHistory& h, const Event& e, ThreadId other,
                    const char* what) {
    if (h.reported) return;
    h.reported = true;
    Finding f;
    f.kind = FindingKind::DataRace;
    f.message = std::string("unordered ") + what + " (happens-before violation)";
    f.thread = e.thread;
    f.thread2 = other;
    f.var = static_cast<VarId>(e.aux);
    f.seq = e.seq;
    findings.push_back(std::move(f));
  };

  for (const Event& e : trace.events()) {
    switch (e.kind) {
      case EventKind::ThreadSpawn: {
        // Child inherits the parent's history.
        VectorClock& parent = clockOf(e.thread);
        ThreadId child = static_cast<ThreadId>(e.aux);
        threadClock[child].join(parent);
        threadClock[child].bump(child);
        parent.bump(e.thread);
        break;
      }
      case EventKind::LockAcquire:
      case EventKind::Notified:
        clockOf(e.thread).join(monitorClock[e.monitor]);
        break;
      case EventKind::LockRelease:
      case EventKind::WaitBegin: {
        VectorClock& vc = clockOf(e.thread);
        monitorClock[e.monitor].join(vc);
        vc.bump(e.thread);
        break;
      }
      case EventKind::Read: {
        VectorClock& vc = clockOf(e.thread);
        VarHistory& h = vars[static_cast<VarId>(e.aux)];
        if (h.lastWriter != events::kNoThread && h.lastWriter != e.thread &&
            h.lastWriteClock > vc.of(h.lastWriter)) {
          report(h, e, h.lastWriter, "write-read pair");
        }
        h.reads[e.thread] = vc.of(e.thread);
        break;
      }
      case EventKind::Write: {
        VectorClock& vc = clockOf(e.thread);
        VarHistory& h = vars[static_cast<VarId>(e.aux)];
        if (h.lastWriter != events::kNoThread && h.lastWriter != e.thread &&
            h.lastWriteClock > vc.of(h.lastWriter)) {
          report(h, e, h.lastWriter, "write-write pair");
        }
        for (const auto& [reader, clk] : h.reads) {
          if (reader != e.thread && clk > vc.of(reader)) {
            report(h, e, reader, "read-write pair");
          }
        }
        h.lastWriter = e.thread;
        h.lastWriteClock = vc.of(e.thread);
        h.reads.clear();
        break;
      }
      default:
        break;
    }
  }
  return findings;
}

}  // namespace confail::detect
