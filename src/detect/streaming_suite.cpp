#include "confail/detect/streaming_suite.hpp"

#include <string>

#include "confail/detect/hb_detector.hpp"
#include "confail/detect/lock_graph.hpp"
#include "confail/detect/lockset.hpp"
#include "confail/detect/protocol_deviation.hpp"
#include "confail/detect/release_discipline.hpp"
#include "confail/detect/starvation.hpp"
#include "confail/detect/unnecessary_sync.hpp"
#include "confail/detect/wait_notify.hpp"
#include "confail/obs/metrics.hpp"

namespace confail::detect {

StreamingSuite::StreamingSuite(Options opts) {
  auto push = [&](std::unique_ptr<StreamCore> core) {
    slots_.push_back(Slot{std::move(core), {}});
  };
  push(std::make_unique<LocksetCore>());
  HbCore::Options hb;
  hb.maxVarHistory = opts.hbMaxVarHistory;
  auto hbCore = std::make_unique<HbCore>(hb);
  hb_ = hbCore.get();
  push(std::move(hbCore));
  push(std::make_unique<LockOrderCore>());
  push(std::make_unique<WaitNotifyCore>());
  push(std::make_unique<StarvationCore>(opts.starvationGrantThreshold));
  if (opts.includeUnnecessarySync) {
    push(std::make_unique<UnnecessarySyncCore>());
  }
  push(std::make_unique<ReleaseDisciplineCore>());
  ProtocolDeviationCore::Options pd;
  pd.flagBarging = opts.flagBarging;
  push(std::make_unique<ProtocolDeviationCore>(pd));
}

StreamingSuite::~StreamingSuite() = default;

void StreamingSuite::feed(const events::Event& e) {
  ++eventsFed_;
  for (Slot& s : slots_) {
    const std::size_t before = s.findings.size();
    if (metrics_ != nullptr) {
      const std::string prefix = std::string("ingest.") + s.core->name();
      obs::ScopedTimer timer(&metrics_->histogram(prefix + ".feed_ns"));
      s.core->feed(e, s.findings);
    } else {
      s.core->feed(e, s.findings);
    }
    if (s.findings.size() != before) {
      if (metrics_ != nullptr) {
        metrics_->counter(std::string("ingest.") + s.core->name() +
                          ".findings")
            .add(s.findings.size() - before);
      }
      if (onFinding_) {
        for (std::size_t i = before; i < s.findings.size(); ++i) {
          onFinding_(s.core->name(), s.findings[i]);
        }
      }
    }
  }
}

void StreamingSuite::finish(const NameSource& names) {
  if (finished_) return;
  finished_ = true;
  for (Slot& s : slots_) {
    const std::size_t before = s.findings.size();
    s.core->finish(names, s.findings);
    if (s.findings.size() != before) {
      if (metrics_ != nullptr) {
        metrics_->counter(std::string("ingest.") + s.core->name() +
                          ".findings")
            .add(s.findings.size() - before);
      }
      if (onFinding_) {
        for (std::size_t i = before; i < s.findings.size(); ++i) {
          onFinding_(s.core->name(), s.findings[i]);
        }
      }
    }
  }
}

std::vector<Finding> StreamingSuite::findings() const {
  std::vector<Finding> all;
  for (const Slot& s : slots_) {
    all.insert(all.end(), s.findings.begin(), s.findings.end());
  }
  return all;
}

std::vector<StreamingSuite::CoreReport> StreamingSuite::reports() const {
  std::vector<CoreReport> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    out.push_back(CoreReport{s.core->name(), s.findings});
  }
  return out;
}

std::vector<const char*> StreamingSuite::coreNames() const {
  std::vector<const char*> names;
  for (const Slot& s : slots_) names.push_back(s.core->name());
  return names;
}

std::uint64_t StreamingSuite::hbEvictions() const {
  return hb_ != nullptr ? hb_->evictions() : 0;
}

}  // namespace confail::detect
