// LocksetDetector: the Eraser algorithm (Savage et al. 1997, the paper's
// reference [24]) over confail traces.
//
// Detects FF-T1 interference ("race condition or data race" in Table 1):
// a shared variable written by multiple threads with no single lock held
// consistently across all accesses.
//
// The classic state machine per variable:
//   Virgin -> Exclusive(first thread) -> Shared (second thread reads)
//                                     -> SharedModified (second thread writes)
// The candidate lockset C(v) is initialized at the first access by a second
// thread and refined (intersected with the accessor's held locks) on every
// subsequent access.  An empty C(v) in SharedModified state is a race.
//
// LocksetCore is the incremental form: a rolling lock-set per thread plus
// the per-variable state machine, fed one event at a time.  Every finding's
// evidence is complete at the triggering access, so nothing waits for
// finish() and the core runs unchanged over an unbounded event stream.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "confail/detect/finding.hpp"

namespace confail::detect {

class LocksetCore final : public StreamCore {
 public:
  const char* name() const override { return "lockset(Eraser)"; }
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::DataRace};
  }
  void feed(const events::Event& e, std::vector<Finding>& out) override;
  void finish(const NameSource& names, std::vector<Finding>& out) override;

 private:
  using LockSet = std::set<events::MonitorId>;

  enum class VarState : std::uint8_t {
    Virgin,
    Exclusive,
    Shared,
    SharedModified
  };

  struct VarInfo {
    VarState state = VarState::Virgin;
    events::ThreadId owner = events::kNoThread;  // Exclusive state
    LockSet candidates;
    bool candidatesInitialized = false;
    bool reported = false;
    events::ThreadId firstThread = events::kNoThread;
  };

  std::map<events::ThreadId, LockSet> held_;
  std::map<events::VarId, VarInfo> vars_;
};

class LocksetDetector final : public Detector {
 public:
  const char* name() const override { return "lockset(Eraser)"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::DataRace};
  }
};

}  // namespace confail::detect
