// LocksetDetector: the Eraser algorithm (Savage et al. 1997, the paper's
// reference [24]) over confail traces.
//
// Detects FF-T1 interference ("race condition or data race" in Table 1):
// a shared variable written by multiple threads with no single lock held
// consistently across all accesses.
//
// The classic state machine per variable:
//   Virgin -> Exclusive(first thread) -> Shared (second thread reads)
//                                     -> SharedModified (second thread writes)
// The candidate lockset C(v) is initialized at the first access by a second
// thread and refined (intersected with the accessor's held locks) on every
// subsequent access.  An empty C(v) in SharedModified state is a race.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "confail/detect/finding.hpp"

namespace confail::detect {

class LocksetDetector final : public Detector {
 public:
  const char* name() const override { return "lockset(Eraser)"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::DataRace};
  }
};

}  // namespace confail::detect
