// UnnecessarySyncDetector: EF-T1 — "program logic accesses critical section"
// when it does not need to (Table 1: "No more than one thread accesses
// shared resources.  The thread is not required to wait or notify other
// threads.  Consequence: unnecessary synchronization" — an inefficiency,
// not a correctness failure).
//
// A monitor is flagged when, over the whole trace, (a) only one thread ever
// acquired it, (b) it was never waited on or notified, and (c) every shared
// variable accessed under it was only ever touched by that same thread.
//
// UnnecessarySyncCore accumulates per-monitor usage in feed(); the whole-run
// critique is inherently end-of-stream evidence, so all findings emit at
// finish().
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "confail/detect/finding.hpp"

namespace confail::detect {

class UnnecessarySyncCore final : public StreamCore {
 public:
  const char* name() const override { return "unnecessary-sync"; }
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::UnnecessarySync};
  }
  void feed(const events::Event& e, std::vector<Finding>& out) override;
  void finish(const NameSource& names, std::vector<Finding>& out) override;

 private:
  struct MonUse {
    std::set<events::ThreadId> lockers;
    bool waitedOrNotified = false;
    std::uint64_t firstSeq = 0;
    bool seen = false;
    // variables accessed while this lock was held
    std::set<events::VarId> varsUnder;
  };

  std::map<events::MonitorId, MonUse> mons_;
  std::map<events::ThreadId, std::vector<events::MonitorId>> held_;
  std::map<events::VarId, std::set<events::ThreadId>> varThreads_;
};

class UnnecessarySyncDetector final : public Detector {
 public:
  const char* name() const override { return "unnecessary-sync"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::UnnecessarySync};
  }
};

}  // namespace confail::detect
