// UnnecessarySyncDetector: EF-T1 — "program logic accesses critical section"
// when it does not need to (Table 1: "No more than one thread accesses
// shared resources.  The thread is not required to wait or notify other
// threads.  Consequence: unnecessary synchronization" — an inefficiency,
// not a correctness failure).
//
// A monitor is flagged when, over the whole trace, (a) only one thread ever
// acquired it, (b) it was never waited on or notified, and (c) every shared
// variable accessed under it was only ever touched by that same thread.
#pragma once

#include "confail/detect/finding.hpp"

namespace confail::detect {

class UnnecessarySyncDetector final : public Detector {
 public:
  const char* name() const override { return "unnecessary-sync"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::UnnecessarySync};
  }
};

}  // namespace confail::detect
