// StreamingSuite: the full Table 1 detector battery in incremental form.
//
// Owns one StreamCore per detector (same construction options and battery
// order as DetectorSuite) and advances all of them one event at a time.
// Findings are buffered per core and flattened in battery order at
// finish(), so a stream carrying the events of a recorded trace yields a
// finding vector byte-identical to DetectorSuite::analyze on that trace —
// the differential contract the ingest tests pin down.
//
// Live consumers (confail ingest --follow) can register an onFinding
// callback to observe findings the moment a core emits them, without
// waiting for the ordered flatten.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "confail/detect/finding.hpp"

namespace confail::obs {
class Registry;
}

namespace confail::detect {

class HbCore;

class StreamingSuite {
 public:
  struct Options {
    /// Grants-while-pending threshold for the starvation core.
    std::uint64_t starvationGrantThreshold = 50;
    /// Skip the unnecessary-sync core (it flags single-threaded use,
    /// which is expected in some micro-tests).
    bool includeUnnecessarySync = true;
    /// Flag non-FIFO lock grants (protocol-deviation EF-T2 oracle).
    bool flagBarging = false;
    /// Bound on the happens-before core's per-variable history; 0 keeps
    /// every variable (exact, unbounded memory).  See HbCore::Options.
    std::size_t hbMaxVarHistory = 0;
  };

  StreamingSuite() : StreamingSuite(Options()) {}
  explicit StreamingSuite(Options opts);
  ~StreamingSuite();

  StreamingSuite(const StreamingSuite&) = delete;
  StreamingSuite& operator=(const StreamingSuite&) = delete;

  /// Advance every core by one event (events must arrive in seq order).
  void feed(const events::Event& e);

  /// Flush end-of-stream findings.  Call exactly once, after the last
  /// feed(); `names` must resolve every id the stream used.
  void finish(const NameSource& names);

  /// All findings flattened in battery order (valid after finish()).
  /// Byte-identical to DetectorSuite::analyze over the same events.
  std::vector<Finding> findings() const;

  /// Per-core findings, attributed (valid after finish()).
  struct CoreReport {
    const char* core;
    std::vector<Finding> findings;
  };
  std::vector<CoreReport> reports() const;

  std::vector<const char*> coreNames() const;
  std::uint64_t eventsFed() const { return eventsFed_; }

  /// Variables the bounded happens-before core evicted (0 when exact).
  std::uint64_t hbEvictions() const;

  /// Attach a metrics registry: feed() then records per-core feed latency
  /// (ingest.<core>.feed_ns histogram) and finding counts
  /// (ingest.<core>.findings).  Costs two clock reads per core per event —
  /// leave detached on peak-throughput paths.
  void setMetrics(obs::Registry* metrics) { metrics_ = metrics; }

  /// Called for every finding as its core emits it (before ordering).
  void setOnFinding(
      std::function<void(const char* core, const Finding&)> cb) {
    onFinding_ = std::move(cb);
  }

 private:
  struct Slot {
    std::unique_ptr<StreamCore> core;
    std::vector<Finding> findings;
  };
  std::vector<Slot> slots_;
  HbCore* hb_ = nullptr;  // borrowed from slots_
  obs::Registry* metrics_ = nullptr;
  std::function<void(const char*, const Finding&)> onFinding_;
  std::uint64_t eventsFed_ = 0;
  bool finished_ = false;
};

}  // namespace confail::detect
