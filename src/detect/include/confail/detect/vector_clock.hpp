// A dense vector clock over logical thread ids.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace confail::detect {

class VectorClock {
 public:
  VectorClock() = default;

  std::uint64_t of(std::uint32_t tid) const {
    return tid < c_.size() ? c_[tid] : 0;
  }

  void bump(std::uint32_t tid) {
    grow(tid);
    ++c_[tid];
  }

  void join(const VectorClock& other) {
    if (other.c_.size() > c_.size()) c_.resize(other.c_.size(), 0);
    for (std::size_t i = 0; i < other.c_.size(); ++i) {
      c_[i] = std::max(c_[i], other.c_[i]);
    }
  }

  /// True if this clock is <= other pointwise (this happens-before-or-equal).
  bool leq(const VectorClock& other) const {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > other.of(static_cast<std::uint32_t>(i))) return false;
    }
    return true;
  }

  std::string toString() const {
    std::string s = "[";
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (i) s += ',';
      s += std::to_string(c_[i]);
    }
    return s + "]";
  }

 private:
  void grow(std::uint32_t tid) {
    if (tid >= c_.size()) c_.resize(tid + 1, 0);
  }
  std::vector<std::uint64_t> c_;
};

}  // namespace confail::detect
