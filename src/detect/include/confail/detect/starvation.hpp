// StarvationDetector: FF-T2's second failure mode — "one or more threads
// repeatedly acquire the lock being requested by this thread" under an
// unfair scheduler/JVM (Table 1: the JVM "is not required to be fair").
//
// A LockRequest that stays pending while other threads complete at least
// `grantThreshold` acquire/release cycles on the same monitor is reported
// as starvation.  A request still pending at the end of the trace with any
// intervening grants is reported as LockHeldForever/Starvation depending on
// whether the lock holder ever released.
#pragma once

#include "confail/detect/finding.hpp"

namespace confail::detect {

class StarvationDetector final : public Detector {
 public:
  explicit StarvationDetector(std::uint64_t grantThreshold = 50)
      : grantThreshold_(grantThreshold) {}

  const char* name() const override { return "starvation"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::Starvation, FindingKind::LockHeldForever};
  }

 private:
  std::uint64_t grantThreshold_;
};

}  // namespace confail::detect
