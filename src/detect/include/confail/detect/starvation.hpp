// StarvationDetector: FF-T2's second failure mode — "one or more threads
// repeatedly acquire the lock being requested by this thread" under an
// unfair scheduler/JVM (Table 1: the JVM "is not required to be fair").
//
// A LockRequest that stays pending while other threads complete at least
// `grantThreshold` acquire/release cycles on the same monitor is reported
// as starvation.  A request still pending at the end of the trace with any
// intervening grants is reported as LockHeldForever/Starvation depending on
// whether the lock holder ever released.
//
// StarvationCore: threshold crossings are reported inline as they happen
// (complete evidence mid-stream); still-pending requests are reported at
// finish(), since "never granted" needs the end of the stream.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "confail/detect/finding.hpp"

namespace confail::detect {

class StarvationCore final : public StreamCore {
 public:
  explicit StarvationCore(std::uint64_t grantThreshold = 50)
      : grantThreshold_(grantThreshold) {}

  const char* name() const override { return "starvation"; }
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::Starvation, FindingKind::LockHeldForever};
  }
  void feed(const events::Event& e, std::vector<Finding>& out) override;
  void finish(const NameSource& names, std::vector<Finding>& out) override;

 private:
  struct Pending {
    std::uint64_t requestSeq;
    std::uint64_t grantsWhilePending = 0;
    bool reported = false;
  };

  std::uint64_t grantThreshold_;
  std::map<std::pair<events::ThreadId, events::MonitorId>, Pending> pending_;
  // Current holder per monitor and whether it ever released.
  std::map<events::MonitorId, events::ThreadId> holder_;
  std::map<events::MonitorId, std::uint64_t> releases_;
};

class StarvationDetector final : public Detector {
 public:
  explicit StarvationDetector(std::uint64_t grantThreshold = 50)
      : grantThreshold_(grantThreshold) {}

  const char* name() const override { return "starvation"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::Starvation, FindingKind::LockHeldForever};
  }

 private:
  std::uint64_t grantThreshold_;
};

}  // namespace confail::detect
