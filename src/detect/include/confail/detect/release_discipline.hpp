// ReleaseDisciplineDetector: EF-T4 — "thread releases the object lock
// prematurely ... thread exits [the critical section] and subsequent
// statements may access shared resources" (Table 1).
//
// Within each component-method invocation (MethodEnter..MethodExit) that
// used a monitor, any shared-variable access performed after the thread's
// last lock release — while holding no lock at all — is flagged.
#pragma once

#include "confail/detect/finding.hpp"

namespace confail::detect {

class ReleaseDisciplineDetector final : public Detector {
 public:
  const char* name() const override { return "release-discipline"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::EarlyRelease};
  }
};

}  // namespace confail::detect
