// ReleaseDisciplineDetector: EF-T4 — "thread releases the object lock
// prematurely ... thread exits [the critical section] and subsequent
// statements may access shared resources" (Table 1).
//
// Within each component-method invocation (MethodEnter..MethodExit) that
// used a monitor, any shared-variable access performed after the thread's
// last lock release — while holding no lock at all — is flagged.
//
// ReleaseDisciplineCore: evidence is complete at the offending access, so
// all findings emit inline from feed(); finish() has nothing to add.
#pragma once

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "confail/detect/finding.hpp"

namespace confail::detect {

class ReleaseDisciplineCore final : public StreamCore {
 public:
  const char* name() const override { return "release-discipline"; }
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::EarlyRelease};
  }
  void feed(const events::Event& e, std::vector<Finding>& out) override;
  void finish(const NameSource& names, std::vector<Finding>& out) override;

 private:
  struct ThreadState {
    int locksHeld = 0;
    // Per innermost active method invocation: did it ever hold a lock, and
    // has it released since?
    struct Frame {
      events::MethodId method;
      bool usedLock = false;
      bool releasedAll = false;
    };
    std::vector<Frame> frames;
  };

  std::map<events::ThreadId, ThreadState> state_;
  std::set<std::pair<events::ThreadId, events::MethodId>> reported_;
};

class ReleaseDisciplineDetector final : public Detector {
 public:
  const char* name() const override { return "release-discipline"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::EarlyRelease};
  }
};

}  // namespace confail::detect
