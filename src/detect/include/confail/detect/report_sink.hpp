// ReportSink: the single funnel every finding-producing path reports into.
//
// The offline DetectorSuite (trace detect, the injection campaign) and the
// streaming ingest pipeline all append attributed findings here; the sink
// renders them as
//
//   * confail.findings.v1 — the project's own machine-readable JSON
//     (schema key, source label, one object per finding with ids and
//     resolved names), and
//   * SARIF 2.1.0 — the static-analysis interchange format, so findings
//     load into SARIF viewers and code-scanning UIs.  Each FindingKind
//     becomes a reporting rule; threads/monitors/variables are emitted as
//     logicalLocations.
//
// Name resolution is deferred to render time (a NameSource argument):
// during streaming ingest the name table is owned by the producer thread
// and is only safe to read after it joins, and deferring also guarantees
// the offline and online paths render byte-identical documents when fed
// the same findings and names.
//
// The sink can be capped (maxFindings) for long campaigns; adds beyond the
// cap are counted in dropped() instead of growing memory without bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "confail/detect/finding.hpp"

namespace confail::detect {

/// SARIF severity for a finding kind: "error" for the failure classes
/// (FF-*, hangs, races), "warning" for the efficiency classes (EF-*).
const char* sarifLevel(FindingKind k);

class ReportSink {
 public:
  /// `maxFindings` == 0 keeps everything.
  explicit ReportSink(std::size_t maxFindings = 0)
      : maxFindings_(maxFindings) {}

  /// Label recorded in the documents (scenario name, file, "stdin", ...).
  void setSource(std::string source) { source_ = std::move(source); }

  /// Append one finding attributed to `detector`.  Returns false (and
  /// counts the drop) when the cap is reached.
  bool add(const std::string& detector, const Finding& f);

  /// Append every finding of a detector report batch.
  void addAll(const std::string& detector, const std::vector<Finding>& fs);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::uint64_t dropped() const { return dropped_; }

  struct Entry {
    std::string detector;
    Finding finding;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  /// confail.findings.v1 JSON document.
  std::string toJson(const NameSource& names) const;

  /// SARIF 2.1.0 document.
  std::string toSarif(const NameSource& names) const;

  bool writeJsonFile(const NameSource& names, const std::string& path) const;
  bool writeSarifFile(const NameSource& names, const std::string& path) const;

 private:
  std::size_t maxFindings_;
  std::uint64_t dropped_ = 0;
  std::string source_;
  std::vector<Entry> entries_;
};

}  // namespace confail::detect
