// ProtocolDeviationDetector: trace-level checks for deviations of the
// Figure-1 wait/notify protocol itself — the oracles the deviation-
// injection campaign (confail::inject) relies on for the Table 1 classes
// that leave no hang or race behind:
//
//   * MissedWait (FF-T3)      — a thread saw its blocking guard hold twice
//                               in the same method invocation without a
//                               wait() between the evaluations: the
//                               required wait never fired (a guard loop
//                               degenerated to a spin).
//   * SpuriousWakeup (EF-T3)  — a SpuriousWake event occurred.  confail
//                               only produces these when explicitly
//                               injected (Monitor::Options probability or
//                               an injection plan), so their presence in a
//                               trace is the deviation itself.
//   * PhantomNotify (EF-T5)   — a Notified (T5) consumed no notification
//                               permit: every notify() grants one wake and
//                               every notifyAll() as many wakes as there
//                               were waiters, all emitted atomically with
//                               the call; a Notified beyond that budget
//                               was manufactured, not requested.
//   * BargingAcquire (EF-T2)  — optional, off by default: a lock grant
//                               overtook an older entry-queue request.
//                               The JLS allows an arbitrary choice, so
//                               this flags *unfairness*, not a bug — it is
//                               the ground-truth oracle for the simulated
//                               broken-JVM EF-T2 deviation and only sound
//                               against FIFO-policy monitors.
//
// ProtocolDeviationCore: every check is a running state machine whose
// evidence completes at the deviating event, so all findings emit inline
// from feed().
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "confail/detect/finding.hpp"

namespace confail::detect {

class ProtocolDeviationCore final : public StreamCore {
 public:
  struct Options {
    /// Flag non-FIFO grants (EF-T2 oracle).  Leave off for components
    /// configured with Lifo/Random policies — arbitrary selection is
    /// legal, and this check would report every exercise of it.
    bool flagBarging = false;
  };

  ProtocolDeviationCore() : ProtocolDeviationCore(Options()) {}
  explicit ProtocolDeviationCore(Options opts) : opts_(opts) {}

  const char* name() const override { return "protocol-deviation"; }
  std::vector<FindingKind> detectableKinds() const override {
    if (opts_.flagBarging) {
      return {FindingKind::MissedWait, FindingKind::SpuriousWakeup,
              FindingKind::PhantomNotify, FindingKind::BargingAcquire};
    }
    return {FindingKind::MissedWait, FindingKind::SpuriousWakeup,
            FindingKind::PhantomNotify};
  }
  void feed(const events::Event& e, std::vector<Finding>& out) override;
  void finish(const NameSource& names, std::vector<Finding>& out) override;

 private:
  Options opts_;
  // SpuriousWakeup (EF-T3): one finding per woken (thread, monitor).
  std::set<std::pair<events::ThreadId, events::MonitorId>> spuriousReported_;
  // PhantomNotify (EF-T5): permit counting per monitor — notify() grants one
  // wake, notifyAll() one per waiter present; both are emitted atomically
  // with the wakes they cause, so a running balance is exact.
  std::map<events::MonitorId, std::uint64_t> permits_;
  std::set<events::MonitorId> phantomReported_;
  // MissedWait (FF-T3): (method, seq) of a blocking-guard evaluation that
  // came out true; a wait() must follow before the same guard holds again.
  std::map<events::ThreadId, std::pair<events::MethodId, std::uint64_t>>
      pendingTrueGuard_;
  std::set<std::pair<events::ThreadId, events::MethodId>> missedReported_;
  // BargingAcquire (EF-T2, opt-in): arrival order of lock contenders per
  // monitor; a grant to anyone but the oldest arrival is an overtake.
  std::map<events::MonitorId, std::deque<events::ThreadId>> arrivals_;
  std::set<events::MonitorId> bargeReported_;
};

class ProtocolDeviationDetector final : public Detector {
 public:
  using Options = ProtocolDeviationCore::Options;

  ProtocolDeviationDetector() : ProtocolDeviationDetector(Options()) {}
  explicit ProtocolDeviationDetector(Options opts) : opts_(opts) {}

  const char* name() const override { return "protocol-deviation"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return ProtocolDeviationCore(opts_).detectableKinds();
  }

 private:
  Options opts_;
};

}  // namespace confail::detect
