// ProtocolDeviationDetector: trace-level checks for deviations of the
// Figure-1 wait/notify protocol itself — the oracles the deviation-
// injection campaign (confail::inject) relies on for the Table 1 classes
// that leave no hang or race behind:
//
//   * MissedWait (FF-T3)      — a thread saw its blocking guard hold twice
//                               in the same method invocation without a
//                               wait() between the evaluations: the
//                               required wait never fired (a guard loop
//                               degenerated to a spin).
//   * SpuriousWakeup (EF-T3)  — a SpuriousWake event occurred.  confail
//                               only produces these when explicitly
//                               injected (Monitor::Options probability or
//                               an injection plan), so their presence in a
//                               trace is the deviation itself.
//   * PhantomNotify (EF-T5)   — a Notified (T5) consumed no notification
//                               permit: every notify() grants one wake and
//                               every notifyAll() as many wakes as there
//                               were waiters, all emitted atomically with
//                               the call; a Notified beyond that budget
//                               was manufactured, not requested.
//   * BargingAcquire (EF-T2)  — optional, off by default: a lock grant
//                               overtook an older entry-queue request.
//                               The JLS allows an arbitrary choice, so
//                               this flags *unfairness*, not a bug — it is
//                               the ground-truth oracle for the simulated
//                               broken-JVM EF-T2 deviation and only sound
//                               against FIFO-policy monitors.
#pragma once

#include "confail/detect/finding.hpp"

namespace confail::detect {

class ProtocolDeviationDetector final : public Detector {
 public:
  struct Options {
    /// Flag non-FIFO grants (EF-T2 oracle).  Leave off for components
    /// configured with Lifo/Random policies — arbitrary selection is
    /// legal, and this check would report every exercise of it.
    bool flagBarging = false;
  };

  ProtocolDeviationDetector() : ProtocolDeviationDetector(Options()) {}
  explicit ProtocolDeviationDetector(Options opts) : opts_(opts) {}

  const char* name() const override { return "protocol-deviation"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    if (opts_.flagBarging) {
      return {FindingKind::MissedWait, FindingKind::SpuriousWakeup,
              FindingKind::PhantomNotify, FindingKind::BargingAcquire};
    }
    return {FindingKind::MissedWait, FindingKind::SpuriousWakeup,
            FindingKind::PhantomNotify};
  }

 private:
  Options opts_;
};

}  // namespace confail::detect
