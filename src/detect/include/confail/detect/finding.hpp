// Findings: the common output type of all dynamic-analysis detectors.
//
// Each detector implements one of the detection techniques named in the
// "Testing Notes" column of the paper's Table 1; the taxonomy::Classifier
// then maps finding kinds onto the paper's ten failure classes
// (FF-T1 ... EF-T5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "confail/events/event.hpp"
#include "confail/events/trace.hpp"

namespace confail::detect {

enum class FindingKind : std::uint8_t {
  DataRace,                 ///< lockset/HB: conflicting unordered accesses
  UnnecessarySync,          ///< monitor never contended, never waited on
  DeadlockCycle,            ///< lock-order graph contains a cycle
  LockHeldForever,          ///< a lock never released while others request it
  Starvation,               ///< a lock request starved by repeated grants
  WaitingForever,           ///< a wait never followed by a wake
  LostNotify,               ///< notify with no waiters, later wait never woken
  NotifySingleInsufficient, ///< notify() woke one of several waiters; rest hung
  GuardNotRechecked,        ///< woken thread proceeded without re-testing guard
  EarlyRelease,             ///< shared data accessed after the lock was released
  MissedWait,               ///< guard held twice with no wait between (spin)
  SpuriousWakeup,           ///< a waiter woke with no notification at all
  PhantomNotify,            ///< a Notified with no notify call backing it
  BargingAcquire,           ///< a grant overtook an older entry-queue request
};

const char* findingKindName(FindingKind k);

struct Finding {
  FindingKind kind;
  std::string message;
  events::ThreadId thread = events::kNoThread;   ///< principal thread
  events::ThreadId thread2 = events::kNoThread;  ///< other party, if any
  events::MonitorId monitor = events::kNoMonitor;
  events::VarId var = events::kNoVar;
  std::uint64_t seq = 0;  ///< trace position of the decisive event

  std::string describe(const events::Trace& trace) const;
};

/// Uniform detector interface: analyze a completed trace.
class Detector {
 public:
  virtual ~Detector() = default;
  virtual const char* name() const = 0;
  virtual std::vector<Finding> analyze(const events::Trace& trace) = 0;

  /// The finding kinds this detector can produce.  Combined with
  /// taxonomy::Classifier::classesOf, this is the per-detector
  /// expected-class mapping the injection campaign's detection matrix is
  /// checked against (a class a detector *could* indicate but did not).
  virtual std::vector<FindingKind> detectableKinds() const = 0;
};

}  // namespace confail::detect
