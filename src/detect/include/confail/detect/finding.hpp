// Findings: the common output type of all dynamic-analysis detectors.
//
// Each detector implements one of the detection techniques named in the
// "Testing Notes" column of the paper's Table 1; the taxonomy::Classifier
// then maps finding kinds onto the paper's ten failure classes
// (FF-T1 ... EF-T5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "confail/events/event.hpp"
#include "confail/events/trace.hpp"

namespace confail::detect {

enum class FindingKind : std::uint8_t {
  DataRace,                 ///< lockset/HB: conflicting unordered accesses
  UnnecessarySync,          ///< monitor never contended, never waited on
  DeadlockCycle,            ///< lock-order graph contains a cycle
  LockHeldForever,          ///< a lock never released while others request it
  Starvation,               ///< a lock request starved by repeated grants
  WaitingForever,           ///< a wait never followed by a wake
  LostNotify,               ///< notify with no waiters, later wait never woken
  NotifySingleInsufficient, ///< notify() woke one of several waiters; rest hung
  GuardNotRechecked,        ///< woken thread proceeded without re-testing guard
  EarlyRelease,             ///< shared data accessed after the lock was released
  MissedWait,               ///< guard held twice with no wait between (spin)
  SpuriousWakeup,           ///< a waiter woke with no notification at all
  PhantomNotify,            ///< a Notified with no notify call backing it
  BargingAcquire,           ///< a grant overtook an older entry-queue request
};

const char* findingKindName(FindingKind k);

/// Inverse of findingKindName; false when `name` matches no kind.  The
/// campaign shard store round-trips finding kinds by name through this.
bool parseFindingKind(const std::string& name, FindingKind& out);

struct Finding {
  FindingKind kind;
  std::string message;
  events::ThreadId thread = events::kNoThread;   ///< principal thread
  events::ThreadId thread2 = events::kNoThread;  ///< other party, if any
  events::MonitorId monitor = events::kNoMonitor;
  events::VarId var = events::kNoVar;
  std::uint64_t seq = 0;  ///< trace position of the decisive event

  std::string describe(const events::Trace& trace) const;
};

/// Read-only name lookup.  Incremental cores need it at finish time (cycle
/// messages embed monitor names) and report sinks need it to render
/// findings; events::Trace satisfies it via TraceNames, and the streaming
/// ingest pipeline via its own table rebuilt from the event stream.
class NameSource {
 public:
  virtual ~NameSource() = default;
  virtual std::string threadName(events::ThreadId id) const = 0;
  virtual std::string monitorName(events::MonitorId id) const = 0;
  virtual std::string varName(events::VarId id) const = 0;
  virtual std::string methodName(events::MethodId id) const = 0;
};

/// NameSource over a Trace's registered name tables.
class TraceNames final : public NameSource {
 public:
  explicit TraceNames(const events::Trace& t) : t_(t) {}
  std::string threadName(events::ThreadId id) const override {
    return t_.threadName(id);
  }
  std::string monitorName(events::MonitorId id) const override {
    return t_.monitorName(id);
  }
  std::string varName(events::VarId id) const override {
    return t_.varName(id);
  }
  std::string methodName(events::MethodId id) const override {
    return t_.methodName(id);
  }

 private:
  const events::Trace& t_;
};

/// Incremental detector core: the single-pass state machine behind every
/// detector in the battery.  feed() consumes events in global seq order and
/// appends findings whose evidence is already complete; finish() appends
/// the findings only end-of-stream can certify (hung waiters, never-granted
/// requests, whole-run structural critiques) and must be called exactly
/// once, after the last feed().
///
/// The offline Detector::analyze implementations drive these same cores
/// over trace.events(), so an online analysis that feeds a recorded run's
/// event stream through a core produces a byte-identical finding vector —
/// the differential contract the streaming ingest pipeline is tested
/// against.
class StreamCore {
 public:
  virtual ~StreamCore() = default;
  virtual const char* name() const = 0;
  virtual std::vector<FindingKind> detectableKinds() const = 0;
  virtual void feed(const events::Event& e, std::vector<Finding>& out) = 0;
  virtual void finish(const NameSource& names, std::vector<Finding>& out) = 0;
};

/// Uniform detector interface: analyze a completed trace.
class Detector {
 public:
  virtual ~Detector() = default;
  virtual const char* name() const = 0;
  virtual std::vector<Finding> analyze(const events::Trace& trace) = 0;

  /// The finding kinds this detector can produce.  Combined with
  /// taxonomy::Classifier::classesOf, this is the per-detector
  /// expected-class mapping the injection campaign's detection matrix is
  /// checked against (a class a detector *could* indicate but did not).
  virtual std::vector<FindingKind> detectableKinds() const = 0;
};

/// Drive a core over a completed trace: feed every event, then finish.
/// The shared body of every Detector::analyze.
std::vector<Finding> analyzeWithCore(StreamCore& core,
                                     const events::Trace& trace);

}  // namespace confail::detect
