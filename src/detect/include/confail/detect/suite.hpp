// DetectorSuite: the full Table 1 detector battery behind one call.
//
// Owns one instance of every detector in the library and runs them all
// over a trace, concatenating findings in a stable order (the order the
// detectors appear in Table 1's testing-notes techniques).  Individual
// detectors remain available for targeted analyses.
#pragma once

#include <memory>
#include <vector>

#include "confail/detect/finding.hpp"

namespace confail::obs {
class Registry;
}

namespace confail::detect {

class DetectorSuite {
 public:
  struct Options {
    /// Grants-while-pending threshold for the starvation detector.
    std::uint64_t starvationGrantThreshold = 50;
    /// Skip the unnecessary-sync detector (it flags single-threaded use,
    /// which is expected in some micro-tests).
    bool includeUnnecessarySync = true;
    /// Flag non-FIFO lock grants (protocol-deviation EF-T2 oracle).  Off by
    /// default: arbitrary grant order is JLS-legal, so this is only sound
    /// against components whose monitors use the Fifo policies.
    bool flagBarging = false;
  };

  DetectorSuite() : DetectorSuite(Options()) {}
  explicit DetectorSuite(Options opts);
  ~DetectorSuite();

  DetectorSuite(const DetectorSuite&) = delete;
  DetectorSuite& operator=(const DetectorSuite&) = delete;

  /// Run every detector over the trace; findings in battery order.
  std::vector<Finding> analyze(const events::Trace& trace);

  /// Findings from one detector, attributed by name.
  struct DetectorReport {
    const char* detector;
    std::vector<Finding> findings;
  };

  /// Run every detector over the trace, keeping findings attributed to the
  /// detector that produced them (the injection campaign's detection matrix
  /// needs the per-detector view; analyze() flattens it).
  std::vector<DetectorReport> analyzeEach(const events::Trace& trace);

  /// The detectors themselves, in battery order (for detectableKinds()).
  const std::vector<std::unique_ptr<Detector>>& detectors() const {
    return detectors_;
  }

  /// Names of the detectors in the battery, in execution order.
  std::vector<const char*> detectorNames() const;

  /// Attach a metrics registry: analyze() then records events seen
  /// (detect.events), per-detector findings (detect.<name>.findings) and
  /// per-detector analysis latency (detect.<name>.analyze_ns histogram).
  /// Null detaches; the registry must outlive the suite's analyze() calls.
  void setMetrics(obs::Registry* metrics) { metrics_ = metrics; }

 private:
  std::vector<std::unique_ptr<Detector>> detectors_;
  obs::Registry* metrics_ = nullptr;
};

}  // namespace confail::detect
