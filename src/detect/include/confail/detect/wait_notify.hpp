// WaitNotifyAnalyzer: notification-protocol analyses for the T3/T5 rows of
// Table 1.
//
// Findings produced:
//   * WaitingForever       — a WaitBegin never followed by a wake for that
//                            thread/monitor before the trace ends (FF-T5:
//                            "no other thread calls notify whilst this
//                            thread is in the wait state").
//   * LostNotify           — a notify executed with an empty wait set on a
//                            monitor where some thread later waited forever
//                            (the notification preceded the wait and was
//                            lost; monitors have no memory).
//   * NotifySingleInsufficient — a notify() (not notifyAll) woke one of
//                            several waiters and at least one remaining
//                            waiter never woke (Table 1 FF-T5: "a notify is
//                            called rather than a notifyAll").
//   * GuardNotRechecked    — a woken thread proceeded without re-evaluating
//                            its wait-loop guard (an `if` around wait():
//                            vulnerable to premature wake, EF-T5).
//
// WaitNotifyCore fuses the analyzer's two passes into one incremental scan:
// the wait-set bookkeeping and the guard-recheck state machine both advance
// per event in feed().  Everything here is end-of-stream evidence ("never
// woken" is only decidable when the stream ends), so the protocol findings
// are assembled at finish(); guard findings are detected mid-stream but
// buffered so the emitted order matches the offline analyzer exactly
// (LostNotify, NotifySingleInsufficient, WaitingForever, GuardNotRechecked).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "confail/detect/finding.hpp"

namespace confail::detect {

class WaitNotifyCore final : public StreamCore {
 public:
  const char* name() const override { return "wait-notify"; }
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::WaitingForever, FindingKind::LostNotify,
            FindingKind::NotifySingleInsufficient,
            FindingKind::GuardNotRechecked};
  }
  void feed(const events::Event& e, std::vector<Finding>& out) override;
  void finish(const NameSource& names, std::vector<Finding>& out) override;

 private:
  struct OpenWait {
    std::uint64_t seq;
  };
  struct PartialNotify {
    std::uint64_t seq;
    std::uint64_t waitersBefore;
  };

  // pass-1 bookkeeping: open waits and wake coverage per monitor
  std::map<std::pair<events::ThreadId, events::MonitorId>, OpenWait> open_;
  std::map<events::MonitorId, std::vector<std::uint64_t>> emptyNotifies_;
  std::map<events::MonitorId, std::vector<PartialNotify>> partialNotifies_;

  // pass-2 guard-recheck machine
  std::map<events::ThreadId, std::pair<std::uint64_t, events::MethodId>>
      pendingWake_;
  std::set<std::pair<events::ThreadId, events::MethodId>> reportedGuard_;
  std::vector<Finding> guardFindings_;  // buffered to preserve offline order
};

class WaitNotifyAnalyzer final : public Detector {
 public:
  const char* name() const override { return "wait-notify"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::WaitingForever, FindingKind::LostNotify,
            FindingKind::NotifySingleInsufficient,
            FindingKind::GuardNotRechecked};
  }
};

}  // namespace confail::detect
