// WaitNotifyAnalyzer: notification-protocol analyses for the T3/T5 rows of
// Table 1.
//
// Findings produced:
//   * WaitingForever       — a WaitBegin never followed by a wake for that
//                            thread/monitor before the trace ends (FF-T5:
//                            "no other thread calls notify whilst this
//                            thread is in the wait state").
//   * LostNotify           — a notify executed with an empty wait set on a
//                            monitor where some thread later waited forever
//                            (the notification preceded the wait and was
//                            lost; monitors have no memory).
//   * NotifySingleInsufficient — a notify() (not notifyAll) woke one of
//                            several waiters and at least one remaining
//                            waiter never woke (Table 1 FF-T5: "a notify is
//                            called rather than a notifyAll").
//   * GuardNotRechecked    — a woken thread proceeded without re-evaluating
//                            its wait-loop guard (an `if` around wait():
//                            vulnerable to premature wake, EF-T5).
#pragma once

#include "confail/detect/finding.hpp"

namespace confail::detect {

class WaitNotifyAnalyzer final : public Detector {
 public:
  const char* name() const override { return "wait-notify"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::WaitingForever, FindingKind::LostNotify,
            FindingKind::NotifySingleInsufficient,
            FindingKind::GuardNotRechecked};
  }
};

}  // namespace confail::detect
