// LockOrderGraph: the LockTree/GoodLock-style deadlock-potential analysis
// referenced by the paper (JPF's runtime analysis; Table 1 testing notes
// for FF-T2: "static and dynamic analysis").
//
// An edge m1 -> m2 is recorded whenever a thread acquires m2 while holding
// m1.  A cycle among distinct threads' orders means some interleaving can
// deadlock — even if the recorded execution did not.
#pragma once

#include "confail/detect/finding.hpp"

namespace confail::detect {

class LockOrderGraph final : public Detector {
 public:
  const char* name() const override { return "lock-order-graph"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::DeadlockCycle};
  }
};

}  // namespace confail::detect
