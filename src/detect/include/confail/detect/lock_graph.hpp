// LockOrderGraph: the LockTree/GoodLock-style deadlock-potential analysis
// referenced by the paper (JPF's runtime analysis; Table 1 testing notes
// for FF-T2: "static and dynamic analysis").
//
// An edge m1 -> m2 is recorded whenever a thread acquires m2 while holding
// m1.  A cycle among distinct threads' orders means some interleaving can
// deadlock — even if the recorded execution did not.
//
// LockOrderCore accumulates edges incrementally (state is O(monitors^2)
// worst case, independent of stream length); the cycle search runs once at
// finish(), which is also where monitor names are needed for the message.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "confail/detect/finding.hpp"

namespace confail::detect {

class LockOrderCore final : public StreamCore {
 public:
  const char* name() const override { return "lock-order-graph"; }
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::DeadlockCycle};
  }
  void feed(const events::Event& e, std::vector<Finding>& out) override;
  void finish(const NameSource& names, std::vector<Finding>& out) override;

 private:
  std::map<events::ThreadId, std::vector<events::MonitorId>>
      held_;  // acquisition order
  // edge -> (thread, seq) of the first witness
  std::map<std::pair<events::MonitorId, events::MonitorId>,
           std::pair<events::ThreadId, std::uint64_t>>
      edges_;
};

class LockOrderGraph final : public Detector {
 public:
  const char* name() const override { return "lock-order-graph"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::DeadlockCycle};
  }
};

}  // namespace confail::detect
