// HbDetector: a vector-clock happens-before race detector (FastTrack-style,
// simplified to full vector clocks).
//
// Complements the lockset detector for FF-T1: lockset flags *policy*
// violations (no consistent lock) and can false-positive on programs that
// synchronize by other means; happens-before flags only accesses that are
// truly unordered in the recorded execution.
//
// Synchronization edges extracted from the trace:
//   * monitor release (LockRelease, WaitBegin) publishes the thread's clock
//     into the monitor's clock;
//   * monitor acquire (LockAcquire) joins the monitor's clock into the
//     thread's clock — this covers wait/notify ordering too, because a
//     woken waiter re-acquires the lock after the notifier released it;
//   * ThreadSpawn orders the parent's prefix before the child.
#pragma once

#include "confail/detect/finding.hpp"
#include "confail/detect/vector_clock.hpp"

namespace confail::detect {

class HbDetector final : public Detector {
 public:
  const char* name() const override { return "happens-before(vector-clock)"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::DataRace};
  }
};

}  // namespace confail::detect
