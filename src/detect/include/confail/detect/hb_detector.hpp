// HbDetector: a vector-clock happens-before race detector (FastTrack-style,
// simplified to full vector clocks).
//
// Complements the lockset detector for FF-T1: lockset flags *policy*
// violations (no consistent lock) and can false-positive on programs that
// synchronize by other means; happens-before flags only accesses that are
// truly unordered in the recorded execution.
//
// Synchronization edges extracted from the trace:
//   * monitor release (LockRelease, WaitBegin) publishes the thread's clock
//     into the monitor's clock;
//   * monitor acquire (LockAcquire) joins the monitor's clock into the
//     thread's clock — this covers wait/notify ordering too, because a
//     woken waiter re-acquires the lock after the notifier released it;
//   * ThreadSpawn orders the parent's prefix before the child.
//
// HbCore is the incremental form.  For unbounded streams the per-variable
// access history can be capped (Options::maxVarHistory): when the map
// exceeds the cap the least-recently-touched variable is evicted and
// evictions() counts the loss of precision.  The default (0) keeps every
// variable, which is what the offline detector and the streaming-vs-offline
// differential tests use — with zero evictions the two are exact.
#pragma once

#include <cstdint>
#include <map>

#include "confail/detect/finding.hpp"
#include "confail/detect/vector_clock.hpp"

namespace confail::detect {

class HbCore final : public StreamCore {
 public:
  struct Options {
    /// Max distinct variables tracked at once; 0 = unbounded.
    std::size_t maxVarHistory = 0;
  };

  HbCore() = default;
  explicit HbCore(Options opts) : opts_(opts) {}

  const char* name() const override { return "happens-before(vector-clock)"; }
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::DataRace};
  }
  void feed(const events::Event& e, std::vector<Finding>& out) override;
  void finish(const NameSource& names, std::vector<Finding>& out) override;

  /// Variables dropped to stay under maxVarHistory.  Nonzero means the
  /// analysis may have missed races on evicted variables.
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct VarHistory {
    // Last write: the writer's id/clock plus its full clock snapshot.
    events::ThreadId lastWriter = events::kNoThread;
    std::uint64_t lastWriteClock = 0;
    // Per-thread clock of the last read since the last write.
    std::map<events::ThreadId, std::uint64_t> reads;
    bool reported = false;
    std::uint64_t lastTouch = 0;
  };

  VectorClock& clockOf(events::ThreadId t);
  VarHistory& varOf(events::VarId v);

  Options opts_;
  std::map<events::ThreadId, VectorClock> threadClock_;
  std::map<events::MonitorId, VectorClock> monitorClock_;
  std::map<events::VarId, VarHistory> vars_;
  std::map<std::uint64_t, events::VarId> touchOrder_;  // lastTouch -> var
  std::uint64_t touchCounter_ = 0;
  std::uint64_t evictions_ = 0;
};

class HbDetector final : public Detector {
 public:
  const char* name() const override { return "happens-before(vector-clock)"; }
  std::vector<Finding> analyze(const events::Trace& trace) override;
  std::vector<FindingKind> detectableKinds() const override {
    return {FindingKind::DataRace};
  }
};

}  // namespace confail::detect
