#include "confail/detect/wait_notify.hpp"

#include <map>
#include <set>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::MonitorId;
using events::ThreadId;

std::vector<Finding> WaitNotifyAnalyzer::analyze(const events::Trace& trace) {
  std::vector<Finding> findings;
  const std::vector<Event> events = trace.events();

  // --- pass 1: per-(thread, monitor) open waits; wake bookkeeping ----------
  struct OpenWait {
    std::uint64_t seq;
  };
  std::map<std::pair<ThreadId, MonitorId>, OpenWait> open;
  std::vector<Finding> waitingForever;

  // notify-with-empty-waitset calls per monitor (seq positions)
  std::map<MonitorId, std::vector<std::uint64_t>> emptyNotifies;
  // notify() calls that left waiters behind: monitor -> (seq, waitersLeft)
  struct PartialNotify {
    std::uint64_t seq;
    std::uint64_t waitersBefore;
  };
  std::map<MonitorId, std::vector<PartialNotify>> partialNotifies;

  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::WaitBegin:
        open[{e.thread, e.monitor}] = OpenWait{e.seq};
        break;
      case EventKind::Notified:
      case EventKind::SpuriousWake:
        open.erase({e.thread, e.monitor});
        break;
      case EventKind::NotifyCall:
        if (e.aux == 0) {
          emptyNotifies[e.monitor].push_back(e.seq);
        } else if (e.aux > 1) {
          partialNotifies[e.monitor].push_back(PartialNotify{e.seq, e.aux});
        }
        break;
      case EventKind::NotifyAllCall:
        if (e.aux == 0) emptyNotifies[e.monitor].push_back(e.seq);
        break;
      default:
        break;
    }
  }

  std::set<MonitorId> monitorsWithHungWaiters;
  for (const auto& [key, ow] : open) {
    Finding f;
    f.kind = FindingKind::WaitingForever;
    f.message = "wait was never followed by a notification";
    f.thread = key.first;
    f.monitor = key.second;
    f.seq = ow.seq;
    monitorsWithHungWaiters.insert(key.second);
    waitingForever.push_back(std::move(f));
  }

  // LostNotify: an empty-wait-set notify on a monitor that later had a
  // hung waiter whose wait started after that notify.
  for (const auto& [mon, seqs] : emptyNotifies) {
    if (!monitorsWithHungWaiters.count(mon)) continue;
    for (const auto& [key, ow] : open) {
      if (key.second != mon) continue;
      for (std::uint64_t nseq : seqs) {
        if (nseq < ow.seq) {
          Finding f;
          f.kind = FindingKind::LostNotify;
          f.message =
              "notify executed before the wait began (empty wait set): the "
              "notification was lost";
          f.thread = key.first;
          f.monitor = mon;
          f.seq = nseq;
          findings.push_back(std::move(f));
          break;
        }
      }
    }
  }

  // NotifySingleInsufficient: notify() with >1 waiters on a monitor where
  // some waiter hung.
  for (const auto& [mon, calls] : partialNotifies) {
    if (!monitorsWithHungWaiters.count(mon)) continue;
    for (const PartialNotify& pn : calls) {
      Finding f;
      f.kind = FindingKind::NotifySingleInsufficient;
      f.message = "notify() woke one of " + std::to_string(pn.waitersBefore) +
                  " waiters; notifyAll() was needed (a waiter hung)";
      f.monitor = mon;
      f.seq = pn.seq;
      findings.push_back(std::move(f));
      break;  // one finding per monitor suffices
    }
  }

  findings.insert(findings.end(), waitingForever.begin(), waitingForever.end());

  // --- pass 2: guard re-check discipline ------------------------------------
  // After a Notified/SpuriousWake, the next *relevant* event of that thread
  // inside the same method should be a GuardEval (the wait-loop condition).
  // Seeing a different concurrency event or the method exit first means the
  // component proceeded without re-testing its guard.
  std::map<ThreadId, std::pair<std::uint64_t, events::MethodId>> pendingWake;
  std::set<std::pair<ThreadId, events::MethodId>> reportedGuard;
  for (const Event& e : events) {
    auto it = pendingWake.find(e.thread);
    if (it != pendingWake.end()) {
      const auto [wakeSeq, method] = it->second;
      switch (e.kind) {
        case EventKind::GuardEval:
          pendingWake.erase(it);  // disciplined: guard re-evaluated
          break;
        case EventKind::LockAcquire:
        case EventKind::Notified:
        case EventKind::SpuriousWake:
          break;  // part of the wake-up protocol itself
        case EventKind::Read:
          // Evaluating the guard reads the shared state first; reads are
          // not evidence of proceeding past the guard.  (A mutant that
          // skips the re-check still trips on its first Write/wait/exit.)
          break;
        default: {
          if (!reportedGuard.count({e.thread, method})) {
            reportedGuard.insert({e.thread, method});
            Finding f;
            f.kind = FindingKind::GuardNotRechecked;
            f.message =
                "thread proceeded after a wake without re-evaluating its "
                "wait guard (if-around-wait instead of while)";
            f.thread = e.thread;
            f.monitor = e.monitor;
            f.seq = wakeSeq;
            findings.push_back(std::move(f));
          }
          pendingWake.erase(it);
          break;
        }
      }
    }
    if (e.kind == EventKind::Notified || e.kind == EventKind::SpuriousWake) {
      pendingWake[e.thread] = {e.seq, e.method};
    }
  }

  return findings;
}

}  // namespace confail::detect
