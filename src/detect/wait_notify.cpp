#include "confail/detect/wait_notify.hpp"

#include <map>
#include <set>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::MonitorId;
using events::ThreadId;

void WaitNotifyCore::feed(const Event& e, std::vector<Finding>&) {
  // --- wait-set bookkeeping -------------------------------------------------
  switch (e.kind) {
    case EventKind::WaitBegin:
      open_[{e.thread, e.monitor}] = OpenWait{e.seq};
      break;
    case EventKind::Notified:
    case EventKind::SpuriousWake:
      open_.erase({e.thread, e.monitor});
      break;
    case EventKind::NotifyCall:
      if (e.aux == 0) {
        emptyNotifies_[e.monitor].push_back(e.seq);
      } else if (e.aux > 1) {
        partialNotifies_[e.monitor].push_back(PartialNotify{e.seq, e.aux});
      }
      break;
    case EventKind::NotifyAllCall:
      if (e.aux == 0) emptyNotifies_[e.monitor].push_back(e.seq);
      break;
    default:
      break;
  }

  // --- guard re-check discipline --------------------------------------------
  // After a Notified/SpuriousWake, the next *relevant* event of that thread
  // inside the same method should be a GuardEval (the wait-loop condition).
  // Seeing a different concurrency event or the method exit first means the
  // component proceeded without re-testing its guard.
  auto it = pendingWake_.find(e.thread);
  if (it != pendingWake_.end()) {
    const auto [wakeSeq, method] = it->second;
    switch (e.kind) {
      case EventKind::GuardEval:
        pendingWake_.erase(it);  // disciplined: guard re-evaluated
        break;
      case EventKind::LockAcquire:
      case EventKind::Notified:
      case EventKind::SpuriousWake:
        break;  // part of the wake-up protocol itself
      case EventKind::Read:
        // Evaluating the guard reads the shared state first; reads are
        // not evidence of proceeding past the guard.  (A mutant that
        // skips the re-check still trips on its first Write/wait/exit.)
        break;
      default: {
        if (!reportedGuard_.count({e.thread, method})) {
          reportedGuard_.insert({e.thread, method});
          Finding f;
          f.kind = FindingKind::GuardNotRechecked;
          f.message =
              "thread proceeded after a wake without re-evaluating its "
              "wait guard (if-around-wait instead of while)";
          f.thread = e.thread;
          f.monitor = e.monitor;
          f.seq = wakeSeq;
          guardFindings_.push_back(std::move(f));
        }
        pendingWake_.erase(it);
        break;
      }
    }
  }
  if (e.kind == EventKind::Notified || e.kind == EventKind::SpuriousWake) {
    pendingWake_[e.thread] = {e.seq, e.method};
  }
}

void WaitNotifyCore::finish(const NameSource&, std::vector<Finding>& out) {
  std::set<MonitorId> monitorsWithHungWaiters;
  std::vector<Finding> waitingForever;
  for (const auto& [key, ow] : open_) {
    Finding f;
    f.kind = FindingKind::WaitingForever;
    f.message = "wait was never followed by a notification";
    f.thread = key.first;
    f.monitor = key.second;
    f.seq = ow.seq;
    monitorsWithHungWaiters.insert(key.second);
    waitingForever.push_back(std::move(f));
  }

  // LostNotify: an empty-wait-set notify on a monitor that later had a
  // hung waiter whose wait started after that notify.
  for (const auto& [mon, seqs] : emptyNotifies_) {
    if (!monitorsWithHungWaiters.count(mon)) continue;
    for (const auto& [key, ow] : open_) {
      if (key.second != mon) continue;
      for (std::uint64_t nseq : seqs) {
        if (nseq < ow.seq) {
          Finding f;
          f.kind = FindingKind::LostNotify;
          f.message =
              "notify executed before the wait began (empty wait set): the "
              "notification was lost";
          f.thread = key.first;
          f.monitor = mon;
          f.seq = nseq;
          out.push_back(std::move(f));
          break;
        }
      }
    }
  }

  // NotifySingleInsufficient: notify() with >1 waiters on a monitor where
  // some waiter hung.
  for (const auto& [mon, calls] : partialNotifies_) {
    if (!monitorsWithHungWaiters.count(mon)) continue;
    for (const PartialNotify& pn : calls) {
      Finding f;
      f.kind = FindingKind::NotifySingleInsufficient;
      f.message = "notify() woke one of " + std::to_string(pn.waitersBefore) +
                  " waiters; notifyAll() was needed (a waiter hung)";
      f.monitor = mon;
      f.seq = pn.seq;
      out.push_back(std::move(f));
      break;  // one finding per monitor suffices
    }
  }

  out.insert(out.end(), waitingForever.begin(), waitingForever.end());
  out.insert(out.end(), guardFindings_.begin(), guardFindings_.end());
}

std::vector<Finding> WaitNotifyAnalyzer::analyze(const events::Trace& trace) {
  WaitNotifyCore core;
  return analyzeWithCore(core, trace);
}

}  // namespace confail::detect
