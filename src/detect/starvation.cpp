#include "confail/detect/starvation.hpp"

#include <map>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::MonitorId;
using events::ThreadId;

void StarvationCore::feed(const Event& e, std::vector<Finding>& out) {
  switch (e.kind) {
    case EventKind::LockRequest:
      pending_[{e.thread, e.monitor}] = Pending{e.seq};
      break;
    case EventKind::LockAcquire: {
      pending_.erase({e.thread, e.monitor});
      holder_[e.monitor] = e.thread;
      for (auto& [key, p] : pending_) {
        if (key.second != e.monitor || p.reported) continue;
        if (++p.grantsWhilePending >= grantThreshold_) {
          p.reported = true;
          Finding f;
          f.kind = FindingKind::Starvation;
          f.message = "lock request starved: " +
                      std::to_string(p.grantsWhilePending) +
                      " grants to other threads while this request pended";
          f.thread = key.first;
          f.thread2 = e.thread;
          f.monitor = e.monitor;
          f.seq = p.requestSeq;
          out.push_back(std::move(f));
        }
      }
      break;
    }
    case EventKind::LockRelease:
    case EventKind::WaitBegin:
      holder_.erase(e.monitor);
      ++releases_[e.monitor];
      break;
    default:
      break;
  }
}

void StarvationCore::finish(const NameSource&, std::vector<Finding>& out) {
  // Requests still pending at the end of the trace.
  for (const auto& [key, p] : pending_) {
    if (p.reported) continue;
    auto h = holder_.find(key.second);
    if (h != holder_.end()) {
      Finding f;
      f.kind = FindingKind::LockHeldForever;
      f.message = "lock request never granted: holder never released";
      f.thread = key.first;
      f.thread2 = h->second;
      f.monitor = key.second;
      f.seq = p.requestSeq;
      out.push_back(std::move(f));
    } else if (p.grantsWhilePending > 0) {
      Finding f;
      f.kind = FindingKind::Starvation;
      f.message = "lock request pending at end of run after " +
                  std::to_string(p.grantsWhilePending) + " grants to others";
      f.thread = key.first;
      f.monitor = key.second;
      f.seq = p.requestSeq;
      out.push_back(std::move(f));
    }
  }
}

std::vector<Finding> StarvationDetector::analyze(const events::Trace& trace) {
  StarvationCore core(grantThreshold_);
  return analyzeWithCore(core, trace);
}

}  // namespace confail::detect
