#include "confail/detect/starvation.hpp"

#include <map>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::MonitorId;
using events::ThreadId;

std::vector<Finding> StarvationDetector::analyze(const events::Trace& trace) {
  std::vector<Finding> findings;

  struct Pending {
    std::uint64_t requestSeq;
    std::uint64_t grantsWhilePending = 0;
    bool reported = false;
  };
  std::map<std::pair<ThreadId, MonitorId>, Pending> pending;
  // Current holder per monitor and whether it ever released.
  std::map<MonitorId, ThreadId> holder;
  std::map<MonitorId, std::uint64_t> releases;

  for (const Event& e : trace.events()) {
    switch (e.kind) {
      case EventKind::LockRequest:
        pending[{e.thread, e.monitor}] = Pending{e.seq};
        break;
      case EventKind::LockAcquire: {
        pending.erase({e.thread, e.monitor});
        holder[e.monitor] = e.thread;
        for (auto& [key, p] : pending) {
          if (key.second != e.monitor || p.reported) continue;
          if (++p.grantsWhilePending >= grantThreshold_) {
            p.reported = true;
            Finding f;
            f.kind = FindingKind::Starvation;
            f.message = "lock request starved: " +
                        std::to_string(p.grantsWhilePending) +
                        " grants to other threads while this request pended";
            f.thread = key.first;
            f.thread2 = e.thread;
            f.monitor = e.monitor;
            f.seq = p.requestSeq;
            findings.push_back(std::move(f));
          }
        }
        break;
      }
      case EventKind::LockRelease:
      case EventKind::WaitBegin:
        holder.erase(e.monitor);
        ++releases[e.monitor];
        break;
      default:
        break;
    }
  }

  // Requests still pending at the end of the trace.
  for (const auto& [key, p] : pending) {
    if (p.reported) continue;
    auto h = holder.find(key.second);
    if (h != holder.end()) {
      Finding f;
      f.kind = FindingKind::LockHeldForever;
      f.message = "lock request never granted: holder never released";
      f.thread = key.first;
      f.thread2 = h->second;
      f.monitor = key.second;
      f.seq = p.requestSeq;
      findings.push_back(std::move(f));
    } else if (p.grantsWhilePending > 0) {
      Finding f;
      f.kind = FindingKind::Starvation;
      f.message = "lock request pending at end of run after " +
                  std::to_string(p.grantsWhilePending) + " grants to others";
      f.thread = key.first;
      f.monitor = key.second;
      f.seq = p.requestSeq;
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

}  // namespace confail::detect
