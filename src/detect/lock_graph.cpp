#include "confail/detect/lock_graph.hpp"

#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::MonitorId;
using events::ThreadId;

void LockOrderCore::feed(const Event& e, std::vector<Finding>&) {
  switch (e.kind) {
    case EventKind::LockAcquire: {
      auto& stack = held_[e.thread];
      for (MonitorId outer : stack) {
        if (outer != e.monitor) {
          edges_.emplace(std::make_pair(outer, e.monitor),
                         std::make_pair(e.thread, e.seq));
        }
      }
      stack.push_back(e.monitor);
      break;
    }
    case EventKind::LockRelease:
    case EventKind::WaitBegin: {
      auto& stack = held_[e.thread];
      for (std::size_t i = stack.size(); i-- > 0;) {
        if (stack[i] == e.monitor) {
          stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      break;
    }
    default:
      break;
  }
}

void LockOrderCore::finish(const NameSource& names,
                           std::vector<Finding>& out) {
  // Cycle detection over the collected edges (iterative DFS, coloring).
  std::map<MonitorId, std::vector<MonitorId>> adj;
  std::set<MonitorId> nodes;
  for (const auto& [edge, witness] : edges_) {
    adj[edge.first].push_back(edge.second);
    nodes.insert(edge.first);
    nodes.insert(edge.second);
  }

  std::map<MonitorId, int> color;  // 0 white, 1 grey, 2 black
  std::vector<MonitorId> path;
  bool cycleFound = false;
  std::vector<MonitorId> cycle;

  std::function<void(MonitorId)> dfs = [&](MonitorId u) {
    if (cycleFound) return;
    color[u] = 1;
    path.push_back(u);
    for (MonitorId v : adj[u]) {
      if (cycleFound) break;
      if (color[v] == 1) {
        // Extract the cycle from the path.
        cycle.clear();
        bool in = false;
        for (MonitorId p : path) {
          if (p == v) in = true;
          if (in) cycle.push_back(p);
        }
        cycle.push_back(v);
        cycleFound = true;
        break;
      }
      if (color[v] == 0) dfs(v);
    }
    path.pop_back();
    color[u] = 2;
  };

  for (MonitorId n : nodes) {
    if (color[n] == 0 && !cycleFound) dfs(n);
  }

  if (cycleFound) {
    std::ostringstream os;
    os << "inconsistent lock acquisition order: ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i) os << " -> ";
      os << names.monitorName(cycle[i]);
    }
    Finding f;
    f.kind = FindingKind::DeadlockCycle;
    f.message = os.str();
    f.monitor = cycle.front();
    auto w = edges_.find(std::make_pair(cycle[0], cycle[1]));
    if (w != edges_.end()) {
      f.thread = w->second.first;
      f.seq = w->second.second;
    }
    out.push_back(std::move(f));
  }
}

std::vector<Finding> LockOrderGraph::analyze(const events::Trace& trace) {
  LockOrderCore core;
  return analyzeWithCore(core, trace);
}

}  // namespace confail::detect
