#include "confail/detect/release_discipline.hpp"

#include <map>
#include <set>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::ThreadId;

void ReleaseDisciplineCore::feed(const Event& e, std::vector<Finding>& out) {
  ThreadState& ts = state_[e.thread];
  switch (e.kind) {
    case EventKind::MethodEnter:
      ts.frames.push_back(ThreadState::Frame{
          static_cast<events::MethodId>(e.aux), false, false});
      break;
    case EventKind::MethodExit:
      if (!ts.frames.empty()) ts.frames.pop_back();
      break;
    case EventKind::LockAcquire:
      ++ts.locksHeld;
      if (!ts.frames.empty()) {
        ts.frames.back().usedLock = true;
        ts.frames.back().releasedAll = false;
      }
      break;
    case EventKind::LockRelease:
      if (ts.locksHeld > 0) --ts.locksHeld;
      if (!ts.frames.empty() && ts.locksHeld == 0 &&
          ts.frames.back().usedLock) {
        ts.frames.back().releasedAll = true;
      }
      break;
    case EventKind::Read:
    case EventKind::Write: {
      if (ts.frames.empty()) break;
      const auto& f = ts.frames.back();
      if (f.usedLock && f.releasedAll && ts.locksHeld == 0 &&
          !reported_.count({e.thread, f.method})) {
        reported_.insert({e.thread, f.method});
        Finding fd;
        fd.kind = FindingKind::EarlyRelease;
        fd.message =
            "shared variable accessed after the method released its lock "
            "(premature lock release)";
        fd.thread = e.thread;
        fd.var = static_cast<events::VarId>(e.aux);
        fd.seq = e.seq;
        out.push_back(std::move(fd));
      }
      break;
    }
    default:
      break;
  }
}

void ReleaseDisciplineCore::finish(const NameSource&, std::vector<Finding>&) {}

std::vector<Finding> ReleaseDisciplineDetector::analyze(
    const events::Trace& trace) {
  ReleaseDisciplineCore core;
  return analyzeWithCore(core, trace);
}

}  // namespace confail::detect
