#include "confail/detect/release_discipline.hpp"

#include <map>
#include <set>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::ThreadId;

std::vector<Finding> ReleaseDisciplineDetector::analyze(const events::Trace& trace) {
  std::vector<Finding> findings;

  struct ThreadState {
    int locksHeld = 0;
    // Per innermost active method invocation: did it ever hold a lock, and
    // has it released since?
    struct Frame {
      events::MethodId method;
      bool usedLock = false;
      bool releasedAll = false;
    };
    std::vector<Frame> frames;
  };
  std::map<ThreadId, ThreadState> state;
  std::set<std::pair<ThreadId, events::MethodId>> reported;

  for (const Event& e : trace.events()) {
    ThreadState& ts = state[e.thread];
    switch (e.kind) {
      case EventKind::MethodEnter:
        ts.frames.push_back(ThreadState::Frame{
            static_cast<events::MethodId>(e.aux), false, false});
        break;
      case EventKind::MethodExit:
        if (!ts.frames.empty()) ts.frames.pop_back();
        break;
      case EventKind::LockAcquire:
        ++ts.locksHeld;
        if (!ts.frames.empty()) {
          ts.frames.back().usedLock = true;
          ts.frames.back().releasedAll = false;
        }
        break;
      case EventKind::LockRelease:
        if (ts.locksHeld > 0) --ts.locksHeld;
        if (!ts.frames.empty() && ts.locksHeld == 0 &&
            ts.frames.back().usedLock) {
          ts.frames.back().releasedAll = true;
        }
        break;
      case EventKind::Read:
      case EventKind::Write: {
        if (ts.frames.empty()) break;
        const auto& f = ts.frames.back();
        if (f.usedLock && f.releasedAll && ts.locksHeld == 0 &&
            !reported.count({e.thread, f.method})) {
          reported.insert({e.thread, f.method});
          Finding fd;
          fd.kind = FindingKind::EarlyRelease;
          fd.message =
              "shared variable accessed after the method released its lock "
              "(premature lock release)";
          fd.thread = e.thread;
          fd.var = static_cast<events::VarId>(e.aux);
          fd.seq = e.seq;
          findings.push_back(std::move(fd));
        }
        break;
      }
      default:
        break;
    }
  }
  return findings;
}

}  // namespace confail::detect
