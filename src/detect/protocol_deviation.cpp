#include "confail/detect/protocol_deviation.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::MethodId;
using events::MonitorId;
using events::ThreadId;

void ProtocolDeviationCore::feed(const Event& e, std::vector<Finding>& out) {
  auto enqueueArrival = [&](MonitorId m, ThreadId t) {
    std::deque<ThreadId>& q = arrivals_[m];
    if (std::find(q.begin(), q.end(), t) == q.end()) q.push_back(t);
  };

  switch (e.kind) {
    case EventKind::SpuriousWake: {
      if (spuriousReported_.insert({e.thread, e.monitor}).second) {
        Finding f;
        f.kind = FindingKind::SpuriousWakeup;
        f.message = "waiter woke spuriously (no notification was executed)";
        f.thread = e.thread;
        f.monitor = e.monitor;
        f.seq = e.seq;
        out.push_back(std::move(f));
      }
      if (opts_.flagBarging) enqueueArrival(e.monitor, e.thread);
      break;
    }
    case EventKind::NotifyCall:
      if (e.aux > 0) permits_[e.monitor] += 1;
      break;
    case EventKind::NotifyAllCall:
      permits_[e.monitor] += e.aux;
      break;
    case EventKind::Notified: {
      std::uint64_t& p = permits_[e.monitor];
      if (p == 0) {
        if (phantomReported_.insert(e.monitor).second) {
          Finding f;
          f.kind = FindingKind::PhantomNotify;
          f.message =
              "waiter observed a notification no notify()/notifyAll() "
              "call granted";
          f.thread = e.thread;
          f.monitor = e.monitor;
          f.seq = e.seq;
          out.push_back(std::move(f));
        }
      } else {
        --p;
      }
      if (opts_.flagBarging) enqueueArrival(e.monitor, e.thread);
      break;
    }
    case EventKind::GuardEval: {
      const MethodId method = static_cast<MethodId>(e.aux);
      auto it = pendingTrueGuard_.find(e.thread);
      if (e.flag) {
        if (it != pendingTrueGuard_.end() && it->second.first == method) {
          if (missedReported_.insert({e.thread, method}).second) {
            Finding f;
            f.kind = FindingKind::MissedWait;
            f.message =
                "blocking guard held twice with no wait() between the "
                "evaluations (the wait was skipped; the guard loop spins)";
            f.thread = e.thread;
            f.seq = it->second.second;
            out.push_back(std::move(f));
          }
        } else {
          pendingTrueGuard_[e.thread] = {method, e.seq};
        }
      } else if (it != pendingTrueGuard_.end() && it->second.first == method) {
        pendingTrueGuard_.erase(it);
      }
      break;
    }
    case EventKind::WaitBegin:
      pendingTrueGuard_.erase(e.thread);
      break;
    case EventKind::LockRequest:
      if (opts_.flagBarging) enqueueArrival(e.monitor, e.thread);
      break;
    case EventKind::LockAcquire: {
      if (!opts_.flagBarging) break;
      auto qit = arrivals_.find(e.monitor);
      if (qit == arrivals_.end()) break;
      std::deque<ThreadId>& q = qit->second;
      auto pos = std::find(q.begin(), q.end(), e.thread);
      if (pos == q.end()) break;  // re-entrant or untracked: ignore
      if (pos != q.begin() && bargeReported_.insert(e.monitor).second) {
        Finding f;
        f.kind = FindingKind::BargingAcquire;
        f.message = "lock grant overtook an older entry-queue request "
                    "(non-FIFO grant)";
        f.thread = e.thread;
        f.thread2 = q.front();
        f.monitor = e.monitor;
        f.seq = e.seq;
        out.push_back(std::move(f));
      }
      q.erase(pos);
      break;
    }
    default:
      break;
  }
}

void ProtocolDeviationCore::finish(const NameSource&, std::vector<Finding>&) {}

std::vector<Finding> ProtocolDeviationDetector::analyze(
    const events::Trace& trace) {
  ProtocolDeviationCore core(opts_);
  return analyzeWithCore(core, trace);
}

}  // namespace confail::detect
