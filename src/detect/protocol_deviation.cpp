#include "confail/detect/protocol_deviation.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::MethodId;
using events::MonitorId;
using events::ThreadId;

std::vector<Finding> ProtocolDeviationDetector::analyze(
    const events::Trace& trace) {
  std::vector<Finding> findings;
  const std::vector<Event> events = trace.events();

  // --- SpuriousWakeup (EF-T3): one finding per woken (thread, monitor) ------
  std::set<std::pair<ThreadId, MonitorId>> spuriousReported;
  // --- PhantomNotify (EF-T5): permit counting per monitor -------------------
  // notify() grants one wake, notifyAll() one per waiter present; both are
  // emitted atomically with the wakes they cause, so a running balance is
  // exact: a Notified that drives the balance negative had no call behind it.
  std::map<MonitorId, std::uint64_t> permits;
  std::set<MonitorId> phantomReported;
  // --- MissedWait (FF-T3): guard held twice with no wait between ------------
  // pendingTrueGuard[t] = (method, seq) of a blocking-guard evaluation that
  // came out true; a wait() must follow before the same guard holds again.
  std::map<ThreadId, std::pair<MethodId, std::uint64_t>> pendingTrueGuard;
  std::set<std::pair<ThreadId, MethodId>> missedReported;
  // --- BargingAcquire (EF-T2, opt-in): FIFO overtake tracking ---------------
  // Arrival order of lock contenders per monitor; a grant to anyone but the
  // oldest arrival is an overtake.
  std::map<MonitorId, std::deque<ThreadId>> arrivals;
  std::set<MonitorId> bargeReported;

  auto enqueueArrival = [&](MonitorId m, ThreadId t) {
    std::deque<ThreadId>& q = arrivals[m];
    if (std::find(q.begin(), q.end(), t) == q.end()) q.push_back(t);
  };

  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::SpuriousWake: {
        if (spuriousReported.insert({e.thread, e.monitor}).second) {
          Finding f;
          f.kind = FindingKind::SpuriousWakeup;
          f.message = "waiter woke spuriously (no notification was executed)";
          f.thread = e.thread;
          f.monitor = e.monitor;
          f.seq = e.seq;
          findings.push_back(std::move(f));
        }
        if (opts_.flagBarging) enqueueArrival(e.monitor, e.thread);
        break;
      }
      case EventKind::NotifyCall:
        if (e.aux > 0) permits[e.monitor] += 1;
        break;
      case EventKind::NotifyAllCall:
        permits[e.monitor] += e.aux;
        break;
      case EventKind::Notified: {
        std::uint64_t& p = permits[e.monitor];
        if (p == 0) {
          if (phantomReported.insert(e.monitor).second) {
            Finding f;
            f.kind = FindingKind::PhantomNotify;
            f.message =
                "waiter observed a notification no notify()/notifyAll() "
                "call granted";
            f.thread = e.thread;
            f.monitor = e.monitor;
            f.seq = e.seq;
            findings.push_back(std::move(f));
          }
        } else {
          --p;
        }
        if (opts_.flagBarging) enqueueArrival(e.monitor, e.thread);
        break;
      }
      case EventKind::GuardEval: {
        const MethodId method = static_cast<MethodId>(e.aux);
        auto it = pendingTrueGuard.find(e.thread);
        if (e.flag) {
          if (it != pendingTrueGuard.end() && it->second.first == method) {
            if (missedReported.insert({e.thread, method}).second) {
              Finding f;
              f.kind = FindingKind::MissedWait;
              f.message =
                  "blocking guard held twice with no wait() between the "
                  "evaluations (the wait was skipped; the guard loop spins)";
              f.thread = e.thread;
              f.seq = it->second.second;
              findings.push_back(std::move(f));
            }
          } else {
            pendingTrueGuard[e.thread] = {method, e.seq};
          }
        } else if (it != pendingTrueGuard.end() && it->second.first == method) {
          pendingTrueGuard.erase(it);
        }
        break;
      }
      case EventKind::WaitBegin:
        pendingTrueGuard.erase(e.thread);
        break;
      case EventKind::LockRequest:
        if (opts_.flagBarging) enqueueArrival(e.monitor, e.thread);
        break;
      case EventKind::LockAcquire: {
        if (!opts_.flagBarging) break;
        auto qit = arrivals.find(e.monitor);
        if (qit == arrivals.end()) break;
        std::deque<ThreadId>& q = qit->second;
        auto pos = std::find(q.begin(), q.end(), e.thread);
        if (pos == q.end()) break;  // re-entrant or untracked: ignore
        if (pos != q.begin() && bargeReported.insert(e.monitor).second) {
          Finding f;
          f.kind = FindingKind::BargingAcquire;
          f.message = "lock grant overtook an older entry-queue request "
                      "(non-FIFO grant)";
          f.thread = e.thread;
          f.thread2 = q.front();
          f.monitor = e.monitor;
          f.seq = e.seq;
          findings.push_back(std::move(f));
        }
        q.erase(pos);
        break;
      }
      default:
        break;
    }
  }

  return findings;
}

}  // namespace confail::detect
