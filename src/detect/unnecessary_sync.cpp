#include "confail/detect/unnecessary_sync.hpp"

#include <map>
#include <set>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::MonitorId;
using events::ThreadId;
using events::VarId;

std::vector<Finding> UnnecessarySyncDetector::analyze(const events::Trace& trace) {
  std::vector<Finding> findings;

  struct MonUse {
    std::set<ThreadId> lockers;
    bool waitedOrNotified = false;
    std::uint64_t firstSeq = 0;
    bool seen = false;
    std::set<VarId> varsUnder;  // variables accessed while this lock was held
  };
  std::map<MonitorId, MonUse> mons;
  std::map<ThreadId, std::vector<MonitorId>> held;
  std::map<VarId, std::set<ThreadId>> varThreads;

  for (const Event& e : trace.events()) {
    switch (e.kind) {
      case EventKind::LockAcquire: {
        MonUse& mu = mons[e.monitor];
        mu.lockers.insert(e.thread);
        if (!mu.seen) {
          mu.seen = true;
          mu.firstSeq = e.seq;
        }
        held[e.thread].push_back(e.monitor);
        break;
      }
      case EventKind::LockRelease: {
        auto& stack = held[e.thread];
        for (std::size_t i = stack.size(); i-- > 0;) {
          if (stack[i] == e.monitor) {
            stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
        break;
      }
      case EventKind::WaitBegin:
      case EventKind::Notified:
      case EventKind::NotifyCall:
      case EventKind::NotifyAllCall:
        mons[e.monitor].waitedOrNotified = true;
        break;
      case EventKind::Read:
      case EventKind::Write: {
        const VarId v = static_cast<VarId>(e.aux);
        varThreads[v].insert(e.thread);
        for (MonitorId m : held[e.thread]) mons[m].varsUnder.insert(v);
        break;
      }
      default:
        break;
    }
  }

  for (const auto& [mon, mu] : mons) {
    if (!mu.seen || mu.lockers.size() != 1 || mu.waitedOrNotified) continue;
    bool varsSingleThreaded = true;
    for (VarId v : mu.varsUnder) {
      varsSingleThreaded = varsSingleThreaded && varThreads[v].size() <= 1;
    }
    if (!varsSingleThreaded) continue;
    Finding f;
    f.kind = FindingKind::UnnecessarySync;
    f.message =
        "monitor acquired by a single thread only, never waited on or "
        "notified, guarding no multi-thread data: synchronization is "
        "unnecessary overhead";
    f.thread = *mu.lockers.begin();
    f.monitor = mon;
    f.seq = mu.firstSeq;
    findings.push_back(std::move(f));
  }
  return findings;
}

}  // namespace confail::detect
