#include "confail/detect/unnecessary_sync.hpp"

#include <map>
#include <set>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::MonitorId;
using events::ThreadId;
using events::VarId;

void UnnecessarySyncCore::feed(const Event& e, std::vector<Finding>&) {
  switch (e.kind) {
    case EventKind::LockAcquire: {
      MonUse& mu = mons_[e.monitor];
      mu.lockers.insert(e.thread);
      if (!mu.seen) {
        mu.seen = true;
        mu.firstSeq = e.seq;
      }
      held_[e.thread].push_back(e.monitor);
      break;
    }
    case EventKind::LockRelease: {
      auto& stack = held_[e.thread];
      for (std::size_t i = stack.size(); i-- > 0;) {
        if (stack[i] == e.monitor) {
          stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      break;
    }
    case EventKind::WaitBegin:
    case EventKind::Notified:
    case EventKind::NotifyCall:
    case EventKind::NotifyAllCall:
      mons_[e.monitor].waitedOrNotified = true;
      break;
    case EventKind::Read:
    case EventKind::Write: {
      const VarId v = static_cast<VarId>(e.aux);
      varThreads_[v].insert(e.thread);
      for (MonitorId m : held_[e.thread]) mons_[m].varsUnder.insert(v);
      break;
    }
    default:
      break;
  }
}

void UnnecessarySyncCore::finish(const NameSource&, std::vector<Finding>& out) {
  for (const auto& [mon, mu] : mons_) {
    if (!mu.seen || mu.lockers.size() != 1 || mu.waitedOrNotified) continue;
    bool varsSingleThreaded = true;
    for (VarId v : mu.varsUnder) {
      varsSingleThreaded = varsSingleThreaded && varThreads_[v].size() <= 1;
    }
    if (!varsSingleThreaded) continue;
    Finding f;
    f.kind = FindingKind::UnnecessarySync;
    f.message =
        "monitor acquired by a single thread only, never waited on or "
        "notified, guarding no multi-thread data: synchronization is "
        "unnecessary overhead";
    f.thread = *mu.lockers.begin();
    f.monitor = mon;
    f.seq = mu.firstSeq;
    out.push_back(std::move(f));
  }
}

std::vector<Finding> UnnecessarySyncDetector::analyze(
    const events::Trace& trace) {
  UnnecessarySyncCore core;
  return analyzeWithCore(core, trace);
}

}  // namespace confail::detect
