#include "confail/detect/report_sink.hpp"

#include <cstdio>
#include <set>

#include "confail/obs/json.hpp"

namespace confail::detect {

const char* sarifLevel(FindingKind k) {
  switch (k) {
    // Functional failures: wrong results or hangs (the paper's FF rows).
    case FindingKind::DataRace:
    case FindingKind::DeadlockCycle:
    case FindingKind::LockHeldForever:
    case FindingKind::Starvation:
    case FindingKind::WaitingForever:
    case FindingKind::LostNotify:
    case FindingKind::NotifySingleInsufficient:
    case FindingKind::MissedWait:
      return "error";
    // Efficiency failures and protocol oddities that are legal but costly
    // or fragile (EF rows).
    case FindingKind::UnnecessarySync:
    case FindingKind::GuardNotRechecked:
    case FindingKind::EarlyRelease:
    case FindingKind::SpuriousWakeup:
    case FindingKind::PhantomNotify:
    case FindingKind::BargingAcquire:
      return "warning";
  }
  return "note";
}

bool ReportSink::add(const std::string& detector, const Finding& f) {
  if (maxFindings_ != 0 && entries_.size() >= maxFindings_) {
    ++dropped_;
    return false;
  }
  entries_.push_back(Entry{detector, f});
  return true;
}

void ReportSink::addAll(const std::string& detector,
                        const std::vector<Finding>& fs) {
  for (const Finding& f : fs) add(detector, f);
}

std::string ReportSink::toJson(const NameSource& names) const {
  obs::JsonWriter w;
  w.beginObject();
  w.field("schema", "confail.findings.v1");
  if (!source_.empty()) w.field("source", source_);
  w.field("count", static_cast<std::uint64_t>(entries_.size()));
  w.field("dropped", dropped_);
  w.key("findings");
  w.beginArray();
  for (const Entry& e : entries_) {
    const Finding& f = e.finding;
    w.beginObject();
    w.field("detector", e.detector);
    w.field("kind", findingKindName(f.kind));
    w.field("message", f.message);
    if (f.thread != events::kNoThread) {
      w.field("thread_id", static_cast<std::uint64_t>(f.thread));
      w.field("thread", names.threadName(f.thread));
    }
    if (f.thread2 != events::kNoThread) {
      w.field("thread2_id", static_cast<std::uint64_t>(f.thread2));
      w.field("thread2", names.threadName(f.thread2));
    }
    if (f.monitor != events::kNoMonitor) {
      w.field("monitor_id", static_cast<std::uint64_t>(f.monitor));
      w.field("monitor", names.monitorName(f.monitor));
    }
    if (f.var != events::kNoVar) {
      w.field("var_id", static_cast<std::uint64_t>(f.var));
      w.field("var", names.varName(f.var));
    }
    w.field("seq", f.seq);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

std::string ReportSink::toSarif(const NameSource& names) const {
  obs::JsonWriter w;
  w.beginObject();
  w.field("$schema",
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
          "Schemata/sarif-schema-2.1.0.json");
  w.field("version", "2.1.0");
  w.key("runs");
  w.beginArray();
  w.beginObject();
  w.key("tool");
  w.beginObject();
  w.key("driver");
  w.beginObject();
  w.field("name", "confail");
  w.field("informationUri", "https://example.invalid/confail");
  w.field("version", "1.0.0");
  w.key("rules");
  w.beginArray();
  // One reporting rule per finding kind actually present, first-use order.
  std::set<FindingKind> seen;
  std::vector<FindingKind> ruleOrder;
  for (const Entry& e : entries_) {
    if (seen.insert(e.finding.kind).second) ruleOrder.push_back(e.finding.kind);
  }
  for (FindingKind k : ruleOrder) {
    w.beginObject();
    w.field("id", findingKindName(k));
    w.key("shortDescription");
    w.beginObject();
    w.field("text", findingKindName(k));
    w.endObject();
    w.key("defaultConfiguration");
    w.beginObject();
    w.field("level", sarifLevel(k));
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.endObject();  // driver
  w.endObject();  // tool
  if (!source_.empty()) {
    w.key("properties");
    w.beginObject();
    w.field("source", source_);
    w.field("droppedFindings", dropped_);
    w.endObject();
  }
  w.key("results");
  w.beginArray();
  for (const Entry& e : entries_) {
    const Finding& f = e.finding;
    w.beginObject();
    w.field("ruleId", findingKindName(f.kind));
    w.field("level", sarifLevel(f.kind));
    w.key("message");
    w.beginObject();
    w.field("text", f.message);
    w.endObject();
    w.key("locations");
    w.beginArray();
    w.beginObject();
    w.key("logicalLocations");
    w.beginArray();
    if (f.thread != events::kNoThread) {
      w.beginObject();
      w.field("name", names.threadName(f.thread));
      w.field("kind", "thread");
      w.endObject();
    }
    if (f.thread2 != events::kNoThread) {
      w.beginObject();
      w.field("name", names.threadName(f.thread2));
      w.field("kind", "thread");
      w.endObject();
    }
    if (f.monitor != events::kNoMonitor) {
      w.beginObject();
      w.field("name", names.monitorName(f.monitor));
      w.field("kind", "resource");
      w.endObject();
    }
    if (f.var != events::kNoVar) {
      w.beginObject();
      w.field("name", names.varName(f.var));
      w.field("kind", "variable");
      w.endObject();
    }
    w.endArray();
    w.endObject();
    w.endArray();
    w.key("properties");
    w.beginObject();
    w.field("detector", e.detector);
    w.field("seq", f.seq);
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.endObject();  // run
  w.endArray();
  w.endObject();
  return w.str();
}

namespace {
bool writeDoc(const std::string& doc, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(doc.c_str(), f);
  std::fputc('\n', f);
  return std::fclose(f) == 0;
}
}  // namespace

bool ReportSink::writeJsonFile(const NameSource& names,
                               const std::string& path) const {
  return writeDoc(toJson(names), path);
}

bool ReportSink::writeSarifFile(const NameSource& names,
                                const std::string& path) const {
  return writeDoc(toSarif(names), path);
}

}  // namespace confail::detect
