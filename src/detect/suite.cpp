#include "confail/detect/suite.hpp"

#include "confail/detect/hb_detector.hpp"
#include "confail/detect/lock_graph.hpp"
#include "confail/detect/lockset.hpp"
#include "confail/detect/release_discipline.hpp"
#include "confail/detect/starvation.hpp"
#include "confail/detect/unnecessary_sync.hpp"
#include "confail/detect/wait_notify.hpp"

namespace confail::detect {

DetectorSuite::DetectorSuite(Options opts) {
  detectors_.push_back(std::make_unique<LocksetDetector>());
  detectors_.push_back(std::make_unique<HbDetector>());
  detectors_.push_back(std::make_unique<LockOrderGraph>());
  detectors_.push_back(std::make_unique<WaitNotifyAnalyzer>());
  detectors_.push_back(
      std::make_unique<StarvationDetector>(opts.starvationGrantThreshold));
  if (opts.includeUnnecessarySync) {
    detectors_.push_back(std::make_unique<UnnecessarySyncDetector>());
  }
  detectors_.push_back(std::make_unique<ReleaseDisciplineDetector>());
}

DetectorSuite::~DetectorSuite() = default;

std::vector<Finding> DetectorSuite::analyze(const events::Trace& trace) {
  std::vector<Finding> all;
  for (auto& d : detectors_) {
    auto fs = d->analyze(trace);
    all.insert(all.end(), fs.begin(), fs.end());
  }
  return all;
}

std::vector<const char*> DetectorSuite::detectorNames() const {
  std::vector<const char*> names;
  for (const auto& d : detectors_) names.push_back(d->name());
  return names;
}

}  // namespace confail::detect
