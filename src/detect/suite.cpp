#include "confail/detect/suite.hpp"

#include <string>

#include "confail/detect/hb_detector.hpp"
#include "confail/detect/lock_graph.hpp"
#include "confail/detect/lockset.hpp"
#include "confail/detect/protocol_deviation.hpp"
#include "confail/detect/release_discipline.hpp"
#include "confail/detect/starvation.hpp"
#include "confail/detect/unnecessary_sync.hpp"
#include "confail/detect/wait_notify.hpp"
#include "confail/obs/metrics.hpp"

namespace confail::detect {

DetectorSuite::DetectorSuite(Options opts) {
  detectors_.push_back(std::make_unique<LocksetDetector>());
  detectors_.push_back(std::make_unique<HbDetector>());
  detectors_.push_back(std::make_unique<LockOrderGraph>());
  detectors_.push_back(std::make_unique<WaitNotifyAnalyzer>());
  detectors_.push_back(
      std::make_unique<StarvationDetector>(opts.starvationGrantThreshold));
  if (opts.includeUnnecessarySync) {
    detectors_.push_back(std::make_unique<UnnecessarySyncDetector>());
  }
  detectors_.push_back(std::make_unique<ReleaseDisciplineDetector>());
  ProtocolDeviationDetector::Options pd;
  pd.flagBarging = opts.flagBarging;
  detectors_.push_back(std::make_unique<ProtocolDeviationDetector>(pd));
}

DetectorSuite::~DetectorSuite() = default;

std::vector<Finding> DetectorSuite::analyze(const events::Trace& trace) {
  if (metrics_ != nullptr) metrics_->counter("detect.events").add(trace.size());
  std::vector<Finding> all;
  for (auto& d : detectors_) {
    std::vector<Finding> fs;
    if (metrics_ != nullptr) {
      const std::string prefix = std::string("detect.") + d->name();
      obs::ScopedTimer timer(&metrics_->histogram(prefix + ".analyze_ns"));
      fs = d->analyze(trace);
      metrics_->counter(prefix + ".findings").add(fs.size());
    } else {
      fs = d->analyze(trace);
    }
    all.insert(all.end(), fs.begin(), fs.end());
  }
  return all;
}

std::vector<DetectorSuite::DetectorReport> DetectorSuite::analyzeEach(
    const events::Trace& trace) {
  std::vector<DetectorReport> reports;
  reports.reserve(detectors_.size());
  for (auto& d : detectors_) {
    reports.push_back(DetectorReport{d->name(), d->analyze(trace)});
  }
  return reports;
}

std::vector<const char*> DetectorSuite::detectorNames() const {
  std::vector<const char*> names;
  for (const auto& d : detectors_) names.push_back(d->name());
  return names;
}

}  // namespace confail::detect
