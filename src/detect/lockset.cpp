#include "confail/detect/lockset.hpp"

#include <algorithm>
#include <vector>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::ThreadId;
using events::VarId;

void LocksetCore::feed(const Event& e, std::vector<Finding>& out) {
  switch (e.kind) {
    case EventKind::LockAcquire:
      held_[e.thread].insert(e.monitor);
      break;
    case EventKind::LockRelease:
    case EventKind::WaitBegin:  // wait releases the object lock
      held_[e.thread].erase(e.monitor);
      break;
    case EventKind::Read:
    case EventKind::Write: {
      const bool isWrite = e.kind == EventKind::Write;
      const VarId v = static_cast<VarId>(e.aux);
      VarInfo& info = vars_[v];
      const LockSet& locks = held_[e.thread];

      switch (info.state) {
        case VarState::Virgin:
          info.state = VarState::Exclusive;
          info.owner = e.thread;
          info.firstThread = e.thread;
          break;
        case VarState::Exclusive:
          if (e.thread == info.owner) break;  // still single-threaded
          info.state = isWrite ? VarState::SharedModified : VarState::Shared;
          info.candidates = locks;
          info.candidatesInitialized = true;
          break;
        case VarState::Shared: {
          LockSet refined;
          std::set_intersection(info.candidates.begin(), info.candidates.end(),
                                locks.begin(), locks.end(),
                                std::inserter(refined, refined.begin()));
          info.candidates = std::move(refined);
          if (isWrite) info.state = VarState::SharedModified;
          break;
        }
        case VarState::SharedModified: {
          LockSet refined;
          std::set_intersection(info.candidates.begin(), info.candidates.end(),
                                locks.begin(), locks.end(),
                                std::inserter(refined, refined.begin()));
          info.candidates = std::move(refined);
          break;
        }
      }

      if (info.state == VarState::SharedModified &&
          info.candidatesInitialized && info.candidates.empty() &&
          !info.reported) {
        info.reported = true;
        Finding f;
        f.kind = FindingKind::DataRace;
        f.message =
            "no lock protects all accesses (candidate lockset empty at a " +
            std::string(isWrite ? "write" : "read") + ")";
        f.thread = e.thread;
        f.thread2 = info.firstThread;
        f.var = v;
        f.seq = e.seq;
        out.push_back(std::move(f));
      }
      break;
    }
    default:
      break;
  }
}

void LocksetCore::finish(const NameSource&, std::vector<Finding>&) {}

std::vector<Finding> LocksetDetector::analyze(const events::Trace& trace) {
  LocksetCore core;
  return analyzeWithCore(core, trace);
}

}  // namespace confail::detect
