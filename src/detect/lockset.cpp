#include "confail/detect/lockset.hpp"

#include <algorithm>
#include <vector>

namespace confail::detect {

using events::Event;
using events::EventKind;
using events::MonitorId;
using events::ThreadId;
using events::VarId;

namespace {

using LockSet = std::set<MonitorId>;

enum class VarState : std::uint8_t { Virgin, Exclusive, Shared, SharedModified };

struct VarInfo {
  VarState state = VarState::Virgin;
  ThreadId owner = events::kNoThread;  // Exclusive state
  LockSet candidates;
  bool candidatesInitialized = false;
  bool reported = false;
  ThreadId firstThread = events::kNoThread;
};

LockSet intersect(const LockSet& a, const LockSet& b) {
  LockSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

}  // namespace

std::vector<Finding> LocksetDetector::analyze(const events::Trace& trace) {
  std::vector<Finding> findings;
  std::map<ThreadId, LockSet> held;
  std::map<VarId, VarInfo> vars;

  for (const Event& e : trace.events()) {
    switch (e.kind) {
      case EventKind::LockAcquire:
        held[e.thread].insert(e.monitor);
        break;
      case EventKind::LockRelease:
      case EventKind::WaitBegin:  // wait releases the object lock
        held[e.thread].erase(e.monitor);
        break;
      case EventKind::Read:
      case EventKind::Write: {
        const bool isWrite = e.kind == EventKind::Write;
        const VarId v = static_cast<VarId>(e.aux);
        VarInfo& info = vars[v];
        const LockSet& locks = held[e.thread];

        switch (info.state) {
          case VarState::Virgin:
            info.state = VarState::Exclusive;
            info.owner = e.thread;
            info.firstThread = e.thread;
            break;
          case VarState::Exclusive:
            if (e.thread == info.owner) break;  // still single-threaded
            info.state = isWrite ? VarState::SharedModified : VarState::Shared;
            info.candidates = locks;
            info.candidatesInitialized = true;
            break;
          case VarState::Shared:
            info.candidates = intersect(info.candidates, locks);
            if (isWrite) info.state = VarState::SharedModified;
            break;
          case VarState::SharedModified:
            info.candidates = intersect(info.candidates, locks);
            break;
        }

        if (info.state == VarState::SharedModified &&
            info.candidatesInitialized && info.candidates.empty() &&
            !info.reported) {
          info.reported = true;
          Finding f;
          f.kind = FindingKind::DataRace;
          f.message =
              "no lock protects all accesses (candidate lockset empty at a " +
              std::string(isWrite ? "write" : "read") + ")";
          f.thread = e.thread;
          f.thread2 = info.firstThread;
          f.var = v;
          f.seq = e.seq;
          findings.push_back(std::move(f));
        }
        break;
      }
      default:
        break;
    }
  }
  return findings;
}

}  // namespace confail::detect
