#include "confail/detect/finding.hpp"

#include <sstream>

namespace confail::detect {

const char* findingKindName(FindingKind k) {
  switch (k) {
    case FindingKind::DataRace: return "data-race";
    case FindingKind::UnnecessarySync: return "unnecessary-sync";
    case FindingKind::DeadlockCycle: return "deadlock-cycle";
    case FindingKind::LockHeldForever: return "lock-held-forever";
    case FindingKind::Starvation: return "starvation";
    case FindingKind::WaitingForever: return "waiting-forever";
    case FindingKind::LostNotify: return "lost-notify";
    case FindingKind::NotifySingleInsufficient: return "notify-single-insufficient";
    case FindingKind::GuardNotRechecked: return "guard-not-rechecked";
    case FindingKind::EarlyRelease: return "early-release";
    case FindingKind::MissedWait: return "missed-wait";
    case FindingKind::SpuriousWakeup: return "spurious-wakeup";
    case FindingKind::PhantomNotify: return "phantom-notify";
    case FindingKind::BargingAcquire: return "barging-acquire";
  }
  return "?";
}

bool parseFindingKind(const std::string& name, FindingKind& out) {
  for (int k = 0; k <= static_cast<int>(FindingKind::BargingAcquire); ++k) {
    const auto kind = static_cast<FindingKind>(k);
    if (name == findingKindName(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

std::vector<Finding> analyzeWithCore(StreamCore& core,
                                     const events::Trace& trace) {
  std::vector<Finding> out;
  for (const events::Event& e : trace.events()) core.feed(e, out);
  core.finish(TraceNames(trace), out);
  return out;
}

std::string Finding::describe(const events::Trace& trace) const {
  std::ostringstream os;
  os << findingKindName(kind) << ": " << message;
  bool first = true;
  auto sep = [&] {
    os << (first ? "  [" : ", ");
    first = false;
  };
  if (thread != events::kNoThread) {
    sep();
    os << "thread " << trace.threadName(thread);
  }
  if (thread2 != events::kNoThread) {
    sep();
    os << "thread " << trace.threadName(thread2);
  }
  if (monitor != events::kNoMonitor) {
    sep();
    os << "monitor " << trace.monitorName(monitor);
  }
  if (var != events::kNoVar) {
    sep();
    os << "var " << trace.varName(var);
  }
  if (!first) os << "]";
  return os.str();
}

}  // namespace confail::detect
