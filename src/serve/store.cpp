#include "confail/serve/store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "confail/obs/json.hpp"

namespace confail::serve {

namespace fs = std::filesystem;

using inject::JobSpec;
using inject::ShardFinding;
using inject::ShardResult;

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string shardFileName(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%04zu.json", index);
  return buf;
}

bool ensureDir(const fs::path& p) {
  std::error_code ec;
  fs::create_directories(p, ec);
  return !ec && fs::is_directory(p, ec);
}

std::vector<std::string> sortedEntries(const fs::path& dir, bool dirsOnly,
                                       const char* stripSuffix) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (dirsOnly != e.is_directory()) continue;
    std::string name = e.path().filename().string();
    if (stripSuffix != nullptr) {
      const std::string suffix = stripSuffix;
      if (name.size() <= suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
              0) {
        continue;
      }
      name.erase(name.size() - suffix.size());
    }
    out.push_back(std::move(name));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t countOf(const obs::JsonValue& doc, const std::string& key) {
  const obs::JsonValue* v = doc.get(key);
  return (v != nullptr && v->isNumber() && v->number >= 0)
             ? static_cast<std::uint64_t>(v->number)
             : 0;
}

std::string stringOf(const obs::JsonValue& doc, const std::string& key) {
  const obs::JsonValue* v = doc.get(key);
  return v != nullptr ? v->string : std::string();
}

bool boolOf(const obs::JsonValue& doc, const std::string& key) {
  const obs::JsonValue* v = doc.get(key);
  return v != nullptr && v->boolean;
}

}  // namespace

// -- JobState ---------------------------------------------------------------

std::string JobState::toJson() const {
  obs::JsonWriter w;
  w.beginObject();
  w.field("schema", "confail.jobstate.v1");
  w.field("id", id);
  w.field("name", name);
  w.field("status", status);
  w.field("shards_total", shardsTotal);
  w.field("shards_done", shardsDone);
  w.field("shards_failed", shardsFailed);
  w.field("findings", findings);
  w.endObject();
  return w.str();
}

bool JobState::parse(const std::string& json, JobState& out,
                     std::string& error) {
  obs::JsonValue doc;
  try {
    doc = obs::parseJson(json);
  } catch (const Error& e) {
    error = e.what();
    return false;
  }
  if (stringOf(doc, "schema") != "confail.jobstate.v1") {
    error = "missing or unsupported schema (want confail.jobstate.v1)";
    return false;
  }
  out.id = stringOf(doc, "id");
  out.name = stringOf(doc, "name");
  out.status = stringOf(doc, "status");
  out.shardsTotal = countOf(doc, "shards_total");
  out.shardsDone = countOf(doc, "shards_done");
  out.shardsFailed = countOf(doc, "shards_failed");
  out.findings = countOf(doc, "findings");
  error.clear();
  return true;
}

// -- CampaignStore ----------------------------------------------------------

CampaignStore::CampaignStore(std::string root) : root_(std::move(root)) {}

bool CampaignStore::init() const {
  return ensureDir(fs::path(root_) / "queue") &&
         ensureDir(fs::path(root_) / "jobs") &&
         ensureDir(fs::path(root_) / "ctl");
}

std::string CampaignStore::jobIdFor(const JobSpec& spec) {
  std::string label;
  for (char c : spec.name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    label += ok ? c : '-';
  }
  if (label.empty()) label = "job";
  return label + "-" + hex16(fnv1a(spec.toJson()));
}

std::string CampaignStore::submit(const JobSpec& spec) const {
  if (!init()) return "";
  const std::string id = jobIdFor(spec);
  // Already adopted: the daemon owns it (or finished it); nothing to queue.
  std::error_code ec;
  if (fs::exists(fs::path(jobDir(id)) / "job.json", ec)) return id;
  const std::string path =
      (fs::path(root_) / "queue" / (id + ".json")).string();
  if (!writeFileAtomic(path, spec.toJson() + "\n")) return "";
  return id;
}

bool CampaignStore::requestDrain() const {
  if (!init()) return false;
  return writeFileAtomic((fs::path(root_) / "ctl" / "drain").string(),
                         "drain\n");
}

bool CampaignStore::drainRequested() const {
  std::error_code ec;
  return fs::exists(fs::path(root_) / "ctl" / "drain", ec);
}

void CampaignStore::clearDrain() const {
  std::error_code ec;
  fs::remove(fs::path(root_) / "ctl" / "drain", ec);
}

std::vector<std::string> CampaignStore::scanQueue() const {
  return sortedEntries(fs::path(root_) / "queue", false, ".json");
}

std::vector<std::string> CampaignStore::listJobs() const {
  return sortedEntries(fs::path(root_) / "jobs", true, nullptr);
}

bool CampaignStore::adoptJob(const std::string& id, JobSpec& out,
                             std::string& error) const {
  const fs::path queued = fs::path(root_) / "queue" / (id + ".json");
  std::string text;
  if (!readFile(queued.string(), text)) {
    error = "no queued spec for job '" + id + "'";
    return false;
  }
  if (!JobSpec::parse(text, out, error)) return false;
  const std::string problem = out.validate();
  if (!problem.empty()) {
    error = problem;
    return false;
  }
  if (!ensureDir(fs::path(jobDir(id)) / "shards")) {
    error = "cannot create job directory for '" + id + "'";
    return false;
  }
  if (!writeFileAtomic((fs::path(jobDir(id)) / "job.json").string(),
                       out.toJson() + "\n")) {
    error = "cannot persist job spec for '" + id + "'";
    return false;
  }
  std::error_code ec;
  fs::remove(queued, ec);  // consumed; a leftover is re-adopted harmlessly
  return true;
}

bool CampaignStore::loadJob(const std::string& id, JobSpec& out,
                            std::string& error) const {
  std::string text;
  if (!readFile((fs::path(jobDir(id)) / "job.json").string(), text)) {
    error = "job '" + id + "' has no job.json";
    return false;
  }
  return JobSpec::parse(text, out, error);
}

void CampaignStore::removeQueued(const std::string& id) const {
  std::error_code ec;
  fs::remove(fs::path(root_) / "queue" / (id + ".json"), ec);
}

std::string CampaignStore::jobDir(const std::string& id) const {
  return (fs::path(root_) / "jobs" / id).string();
}

std::string CampaignStore::shardPath(const std::string& id,
                                     std::size_t index) const {
  return (fs::path(jobDir(id)) / "shards" / shardFileName(index)).string();
}

std::string CampaignStore::statePath(const std::string& id) const {
  return (fs::path(jobDir(id)) / "state.json").string();
}

std::string CampaignStore::journalPath(const std::string& id) const {
  return (fs::path(jobDir(id)) / "journal.jsonl").string();
}

std::string CampaignStore::eventsPath(const std::string& id) const {
  return (fs::path(jobDir(id)) / "events.jsonl").string();
}

std::string CampaignStore::findingsPath(const std::string& id) const {
  return (fs::path(jobDir(id)) / "findings.json").string();
}

std::string CampaignStore::sarifPath(const std::string& id) const {
  return (fs::path(jobDir(id)) / "findings.sarif").string();
}

std::string CampaignStore::matrixPath(const std::string& id) const {
  return (fs::path(jobDir(id)) / "matrix.json").string();
}

// -- shard serialization ----------------------------------------------------

std::string CampaignStore::shardToJson(const ShardResult& r) {
  obs::JsonWriter w;
  w.beginObject();
  w.field("schema", "confail.shard.v1");
  w.field("index", static_cast<std::uint64_t>(r.spec.index));
  w.field("control", r.spec.control);
  w.field("scenario", r.spec.scenario);
  if (!r.spec.control) {
    w.field("class", taxonomy::failureClassName(r.spec.cls));
  }
  w.field("reduction", inject::reductionName(r.spec.reduction));
  if (r.spec.control) {
    w.key("control_cell");
    w.beginObject();
    w.field("runs", r.control.runs);
    w.field("findings", r.control.findings);
    w.field("failing_runs", r.control.failingRuns);
    w.field("wall_ms", r.control.wallMs);
    w.field("host_concurrency",
            static_cast<std::uint64_t>(r.control.hostConcurrency));
    w.endObject();
  } else {
    w.key("cell");
    w.beginObject();
    w.field("runs", r.cell.runs);
    w.field("deviated_runs", r.cell.deviatedRuns);
    w.field("failing_runs", r.cell.failingRuns);
    w.field("caught", r.cell.caught);
    w.field("classifier_agrees", r.cell.classifierAgrees);
    w.field("wall_ms", r.cell.wallMs);
    w.field("host_concurrency",
            static_cast<std::uint64_t>(r.cell.hostConcurrency));
    w.key("detectors");
    w.beginArray();
    for (const inject::DetectorCell& d : r.cell.detectors) {
      w.beginObject();
      w.field("detector", d.detector);
      w.field("findings", d.findings);
      w.field("hits", d.hits);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.key("findings");
  w.beginArray();
  for (const ShardFinding& f : r.findings) {
    w.beginObject();
    w.field("detector", f.detector);
    w.field("kind", detect::findingKindName(f.finding.kind));
    w.field("message", f.finding.message);
    w.field("thread_id", static_cast<std::uint64_t>(f.finding.thread));
    w.field("thread2_id", static_cast<std::uint64_t>(f.finding.thread2));
    w.field("monitor_id", static_cast<std::uint64_t>(f.finding.monitor));
    w.field("var_id", static_cast<std::uint64_t>(f.finding.var));
    w.field("seq", f.finding.seq);
    w.field("thread", f.thread);
    w.field("thread2", f.thread2);
    w.field("monitor", f.monitor);
    w.field("var", f.var);
    w.endObject();
  }
  w.endArray();
  w.field("events_jsonl", r.eventsJsonl);
  w.endObject();
  return w.str();
}

bool CampaignStore::shardFromJson(const std::string& json, ShardResult& out,
                                  std::string& error) {
  obs::JsonValue doc;
  try {
    doc = obs::parseJson(json);
  } catch (const Error& e) {
    error = e.what();
    return false;
  }
  if (stringOf(doc, "schema") != "confail.shard.v1") {
    error = "missing or unsupported schema (want confail.shard.v1)";
    return false;
  }
  ShardResult r;
  r.spec.index = static_cast<std::size_t>(countOf(doc, "index"));
  r.spec.control = boolOf(doc, "control");
  r.spec.scenario = stringOf(doc, "scenario");
  if (!taxonomy::parseFailureClass(stringOf(doc, "class"), r.spec.cls) &&
      !r.spec.control) {
    error = "shard has no parseable class";
    return false;
  }
  if (!inject::parseReduction(stringOf(doc, "reduction"), r.spec.reduction)) {
    error = "shard has no parseable reduction";
    return false;
  }
  if (r.spec.control) {
    const obs::JsonValue* c = doc.get("control_cell");
    if (c == nullptr || !c->isObject()) {
      error = "control shard lacks control_cell";
      return false;
    }
    r.control.scenario = r.spec.scenario;
    r.control.reduction = r.spec.reduction;
    r.control.runs = countOf(*c, "runs");
    r.control.findings = countOf(*c, "findings");
    r.control.failingRuns = countOf(*c, "failing_runs");
    const obs::JsonValue* wall = c->get("wall_ms");
    r.control.wallMs = (wall != nullptr && wall->isNumber()) ? wall->number
                                                             : 0.0;
    r.control.hostConcurrency =
        static_cast<std::uint32_t>(countOf(*c, "host_concurrency"));
  } else {
    const obs::JsonValue* c = doc.get("cell");
    if (c == nullptr || !c->isObject()) {
      error = "injection shard lacks cell";
      return false;
    }
    r.cell.scenario = r.spec.scenario;
    r.cell.cls = r.spec.cls;
    r.cell.reduction = r.spec.reduction;
    r.cell.runs = countOf(*c, "runs");
    r.cell.deviatedRuns = countOf(*c, "deviated_runs");
    r.cell.failingRuns = countOf(*c, "failing_runs");
    r.cell.caught = boolOf(*c, "caught");
    r.cell.classifierAgrees = boolOf(*c, "classifier_agrees");
    const obs::JsonValue* wall = c->get("wall_ms");
    r.cell.wallMs = (wall != nullptr && wall->isNumber()) ? wall->number
                                                          : 0.0;
    r.cell.hostConcurrency =
        static_cast<std::uint32_t>(countOf(*c, "host_concurrency"));
    if (const obs::JsonValue* ds = c->get("detectors")) {
      for (const obs::JsonValue& d : ds->array) {
        inject::DetectorCell dc;
        dc.detector = stringOf(d, "detector");
        dc.findings = countOf(d, "findings");
        dc.hits = countOf(d, "hits");
        r.cell.detectors.push_back(std::move(dc));
      }
    }
    // The plan is not serialized: it is a pure function of (class,
    // scenario), so reconstruct it when the scenario is still known.
    const auto* sc = components::scenarios::find(r.spec.scenario);
    if (sc != nullptr) r.cell.plan = inject::defaultPlanFor(r.spec.cls, *sc);
  }
  if (const obs::JsonValue* fs_ = doc.get("findings")) {
    if (!fs_->isArray()) {
      error = "findings must be an array";
      return false;
    }
    for (const obs::JsonValue& f : fs_->array) {
      ShardFinding sf;
      sf.detector = stringOf(f, "detector");
      if (!detect::parseFindingKind(stringOf(f, "kind"), sf.finding.kind)) {
        error = "finding has no parseable kind";
        return false;
      }
      sf.finding.message = stringOf(f, "message");
      sf.finding.thread =
          static_cast<events::ThreadId>(countOf(f, "thread_id"));
      sf.finding.thread2 =
          static_cast<events::ThreadId>(countOf(f, "thread2_id"));
      sf.finding.monitor =
          static_cast<events::MonitorId>(countOf(f, "monitor_id"));
      sf.finding.var = static_cast<events::VarId>(countOf(f, "var_id"));
      sf.finding.seq = countOf(f, "seq");
      sf.thread = stringOf(f, "thread");
      sf.thread2 = stringOf(f, "thread2");
      sf.monitor = stringOf(f, "monitor");
      sf.var = stringOf(f, "var");
      r.findings.push_back(std::move(sf));
    }
  }
  r.eventsJsonl = stringOf(doc, "events_jsonl");
  out = std::move(r);
  error.clear();
  return true;
}

bool CampaignStore::writeShard(const std::string& id,
                               const ShardResult& r) const {
  return writeFileAtomic(shardPath(id, r.spec.index), shardToJson(r) + "\n");
}

bool CampaignStore::readShard(const std::string& id, std::size_t index,
                              ShardResult& out) const {
  std::string text;
  if (!readFile(shardPath(id, index), text)) return false;
  std::string error;
  return shardFromJson(text, out, error);
}

std::vector<bool> CampaignStore::completedShards(const std::string& id,
                                                 std::size_t count) const {
  std::vector<bool> done(count, false);
  for (std::size_t i = 0; i < count; ++i) {
    ShardResult unused;
    done[i] = readShard(id, i, unused);
  }
  return done;
}

bool CampaignStore::writeState(const std::string& id,
                               const JobState& st) const {
  return writeFileAtomic(statePath(id), st.toJson() + "\n");
}

bool CampaignStore::readState(const std::string& id, JobState& out) const {
  std::string text;
  if (!readFile(statePath(id), text)) return false;
  std::string error;
  return JobState::parse(text, out, error);
}

bool CampaignStore::journalShard(const std::string& id,
                                 std::size_t index) const {
  obs::JsonWriter w;
  w.beginObject();
  w.field("shard", static_cast<std::uint64_t>(index));
  w.endObject();
  std::string line = w.str();
  // JsonWriter pretty-prints; a journal line must be exactly one line.
  std::string flat;
  for (char c : line) {
    if (c == '\n') continue;
    flat += c;
  }
  return appendFile(journalPath(id), flat + "\n");
}

bool CampaignStore::appendEvents(const std::string& id,
                                 const std::string& jsonl) const {
  if (jsonl.empty()) return true;
  std::string chunk = jsonl;
  if (chunk.back() != '\n') chunk += '\n';
  return appendFile(eventsPath(id), chunk);
}

// -- primitives -------------------------------------------------------------

bool CampaignStore::writeFileAtomic(const std::string& path,
                                    const std::string& content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      content.empty() ||
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !flushed || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool CampaignStore::readFile(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool CampaignStore::appendFile(const std::string& path,
                               const std::string& chunk) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(chunk.data(), 1, chunk.size(), f) == chunk.size();
  const bool flushed = std::fflush(f) == 0;
  return (std::fclose(f) == 0) && wrote && flushed;
}

}  // namespace confail::serve
