#include "confail/serve/server.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "confail/obs/metrics.hpp"
#include "confail/serve/merge.hpp"
#include "confail/support/assert.hpp"

namespace confail::serve {

using inject::JobSpec;
using inject::ShardResult;
using inject::ShardSpec;

namespace {

constexpr int kMaxAttempts = 2;  ///< one retry per shard before giving up

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions o)
      : opts(std::move(o)), store(opts.root) {
    if (opts.poolSize == 0) opts.poolSize = 1;
    if (opts.metrics != nullptr) {
      reg = opts.metrics;
    } else {
      ownReg = std::make_unique<obs::Registry>();
      reg = ownReg.get();
    }
    jobsAdopted = &reg->counter("serve.jobs_adopted");
    jobsCompleted = &reg->counter("serve.jobs_completed");
    jobsFailed = &reg->counter("serve.jobs_failed");
    shardsCompleted = &reg->counter("serve.shards_completed");
    shardsFailed = &reg->counter("serve.shards_failed");
    heartbeats = &reg->counter("serve.heartbeats");
    jobsActive = &reg->gauge("serve.jobs_active");
    workersBusy = &reg->gauge("serve.workers_busy");
  }

  struct JobRun {
    JobSpec spec;
    std::vector<ShardSpec> shards;
    std::vector<bool> done;
    std::vector<int> attempts;
    std::deque<std::size_t> pending;
    std::size_t inFlight = 0;
    std::uint64_t failed = 0;
  };

  struct Worker {
    std::string jobId;
    std::size_t shardIndex = 0;
    pid_t pid = -1;  ///< subprocess mode
    std::thread thread;
    std::shared_ptr<std::atomic<int>> state;  ///< 0 running, 1 ok, 2 failed
  };

  ServerOptions opts;
  CampaignStore store;
  std::unique_ptr<obs::Registry> ownReg;
  obs::Registry* reg = nullptr;
  obs::Counter* jobsAdopted = nullptr;
  obs::Counter* jobsCompleted = nullptr;
  obs::Counter* jobsFailed = nullptr;
  obs::Counter* shardsCompleted = nullptr;
  obs::Counter* shardsFailed = nullptr;
  obs::Counter* heartbeats = nullptr;
  obs::Gauge* jobsActive = nullptr;
  obs::Gauge* workersBusy = nullptr;

  std::map<std::string, JobRun> jobs;  ///< in-flight jobs by id
  std::vector<Worker> workers;
  std::uint64_t mergedJobs = 0;
  bool anyFailed = false;

  // -- job lifecycle -------------------------------------------------------

  void failJob(const std::string& id, const JobSpec* spec) {
    JobState st;
    st.id = id;
    st.name = spec != nullptr ? spec->name : "";
    st.status = "failed";
    // A malformed submission fails before adoption ever creates its job
    // directory, so make sure the state file has somewhere to land.
    std::error_code ec;
    std::filesystem::create_directories(store.jobDir(id), ec);
    (void)store.writeState(id, st);
    jobsFailed->inc();
    anyFailed = true;
  }

  void openJob(const std::string& id, JobSpec spec) {
    JobRun jr;
    jr.spec = std::move(spec);
    try {
      jr.shards = inject::expandShards(jr.spec);
    } catch (const Error&) {
      failJob(id, &jr.spec);
      return;
    }
    // Resume criterion: a shard whose result file exists and parses was
    // completed by an earlier daemon run and is never re-executed (nor
    // re-journaled).
    jr.done = store.completedShards(id, jr.shards.size());
    jr.attempts.assign(jr.shards.size(), 0);
    for (std::size_t i = 0; i < jr.shards.size(); ++i) {
      if (!jr.done[i]) jr.pending.push_back(i);
    }
    publishState(id, jr, "running");
    jobsAdopted->inc();
    jobs.emplace(id, std::move(jr));
  }

  void publishState(const std::string& id, const JobRun& jr,
                    const std::string& status,
                    std::uint64_t findings = 0) const {
    JobState st;
    st.id = id;
    st.name = jr.spec.name;
    st.status = status;
    st.shardsTotal = jr.shards.size();
    std::uint64_t done = 0;
    for (bool d : jr.done) done += d ? 1 : 0;
    st.shardsDone = done;
    st.shardsFailed = jr.failed;
    st.findings = findings;
    (void)store.writeState(id, st);
  }

  void adoptQueued() {
    for (const std::string& id : store.scanQueue()) {
      if (jobs.count(id) != 0) {
        store.removeQueued(id);  // duplicate submit of a running job
        continue;
      }
      JobSpec spec;
      std::string error;
      if (!store.adoptJob(id, spec, error)) {
        store.removeQueued(id);
        failJob(id, nullptr);
        continue;
      }
      openJob(id, std::move(spec));
    }
  }

  void resumeAdopted() {
    for (const std::string& id : store.listJobs()) {
      JobState st;
      if (store.readState(id, st) &&
          (st.status == "completed" || st.status == "failed")) {
        continue;
      }
      JobSpec spec;
      std::string error;
      if (!store.loadJob(id, spec, error)) {
        failJob(id, nullptr);
        continue;
      }
      openJob(id, std::move(spec));
    }
  }

  // -- worker pool ---------------------------------------------------------

  bool spawn(const std::string& id, JobRun& jr, std::size_t shardIndex) {
    Worker w;
    w.jobId = id;
    w.shardIndex = shardIndex;
    ++jr.attempts[shardIndex];
    if (opts.subprocess) {
      const std::string bin =
          opts.workerBinary.empty() ? "/proc/self/exe" : opts.workerBinary;
      std::vector<std::string> args = {
          bin,     "worker",                   "--job",
          store.jobDir(id) + "/job.json",      "--shard",
          std::to_string(shardIndex),          "--out",
          store.shardPath(id, shardIndex)};
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      const pid_t pid = ::fork();
      if (pid < 0) return false;
      if (pid == 0) {
        ::execv(bin.c_str(), argv.data());
        ::_exit(127);  // exec failed; the parent records a shard failure
      }
      w.pid = pid;
    } else {
      w.state = std::make_shared<std::atomic<int>>(0);
      // Copies keep the thread self-contained; CampaignStore is a plain
      // path wrapper, safe to use concurrently.
      w.thread = std::thread(
          [state = w.state, st = store, spec = jr.spec,
           shard = jr.shards[shardIndex], id]() {
            try {
              inject::RunShardOptions ro;
              ro.captureEvents = true;
              const ShardResult r = inject::runShard(spec, shard, ro);
              state->store(st.writeShard(id, r) ? 1 : 2);
            } catch (...) {
              state->store(2);
            }
          });
    }
    ++jr.inFlight;
    workers.push_back(std::move(w));
    return true;
  }

  void dispatch() {
    if (workers.size() >= opts.poolSize) return;
    for (auto& [id, jr] : jobs) {
      while (workers.size() < opts.poolSize && !jr.pending.empty()) {
        const std::size_t shardIndex = jr.pending.front();
        jr.pending.pop_front();
        if (!spawn(id, jr, shardIndex)) {
          jr.pending.push_front(shardIndex);
          return;  // fork pressure; retry next iteration
        }
      }
      if (workers.size() >= opts.poolSize) return;
    }
  }

  /// Returns -1 still running, 0 succeeded, 1 failed.
  int pollWorker(Worker& w) {
    if (w.pid >= 0) {
      int status = 0;
      const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
      if (got == 0) return -1;
      if (got != w.pid) return 1;
      return (WIFEXITED(status) && WEXITSTATUS(status) == 0) ? 0 : 1;
    }
    const int s = w.state->load();
    if (s == 0) return -1;
    if (w.thread.joinable()) w.thread.join();
    return s == 1 ? 0 : 1;
  }

  void onShardDone(const std::string& id, JobRun& jr, std::size_t index,
                   bool workerOk) {
    --jr.inFlight;
    ShardResult r;
    const bool landed = workerOk && store.readShard(id, index, r);
    if (landed) {
      jr.done[index] = true;
      (void)store.journalShard(id, index);
      (void)store.appendEvents(id, r.eventsJsonl);
      shardsCompleted->inc();
      publishState(id, jr, "running");
      return;
    }
    if (jr.attempts[index] < kMaxAttempts) {
      jr.pending.push_back(index);  // crash isolation: retry once
      return;
    }
    ++jr.failed;
    shardsFailed->inc();
    publishState(id, jr, "running");
  }

  void reap() {
    for (std::size_t i = 0; i < workers.size();) {
      const int result = pollWorker(workers[i]);
      if (result < 0) {
        ++i;
        continue;
      }
      Worker w = std::move(workers[i]);
      workers.erase(workers.begin() +
                    static_cast<std::ptrdiff_t>(i));
      auto it = jobs.find(w.jobId);
      if (it != jobs.end()) {
        onShardDone(w.jobId, it->second, w.shardIndex, result == 0);
      }
    }
  }

  // -- merge ---------------------------------------------------------------

  void mergeFinished() {
    for (auto it = jobs.begin(); it != jobs.end();) {
      JobRun& jr = it->second;
      const bool allDone = jr.pending.empty() && jr.inFlight == 0;
      if (!allDone) {
        ++it;
        continue;
      }
      const std::string id = it->first;
      if (jr.failed > 0) {
        publishState(id, jr, "failed");
        jobsFailed->inc();
        anyFailed = true;
      } else {
        std::vector<ShardResult> results;
        results.reserve(jr.shards.size());
        bool readable = true;
        for (std::size_t i = 0; i < jr.shards.size(); ++i) {
          ShardResult r;
          if (!store.readShard(id, i, r)) {
            readable = false;
            break;
          }
          results.push_back(std::move(r));
        }
        if (!readable) {
          publishState(id, jr, "failed");
          jobsFailed->inc();
          anyFailed = true;
        } else {
          const MergedReports merged =
              mergeShards(jr.spec, id, std::move(results));
          (void)CampaignStore::writeFileAtomic(store.findingsPath(id),
                                               merged.findingsJson + "\n");
          (void)CampaignStore::writeFileAtomic(store.sarifPath(id),
                                               merged.sarif + "\n");
          (void)CampaignStore::writeFileAtomic(store.matrixPath(id),
                                               merged.matrixJson + "\n");
          publishState(id, jr, "completed", merged.uniqueFindings);
          jobsCompleted->inc();
          ++mergedJobs;
        }
      }
      it = jobs.erase(it);
    }
  }

  // -- heartbeat -----------------------------------------------------------

  void heartbeat() {
    heartbeats->inc();
    jobsActive->set(static_cast<double>(jobs.size()));
    workersBusy->set(static_cast<double>(workers.size()));
    if (!opts.metricsOut.empty()) {
      (void)CampaignStore::writeFileAtomic(opts.metricsOut,
                                           reg->snapshot().toJson() + "\n");
    }
  }

  int run() {
    if (opts.root.empty() || !store.init()) return 3;
    resumeAdopted();
    bool draining = false;
    for (;;) {
      if (!draining) adoptQueued();
      if (store.drainRequested()) draining = true;
      dispatch();
      reap();
      mergeFinished();
      heartbeat();
      if (opts.maxJobs != 0 && mergedJobs >= opts.maxJobs && jobs.empty()) {
        break;
      }
      if (draining && jobs.empty()) break;
      if (opts.exitWhenIdle && jobs.empty() && store.scanQueue().empty()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(opts.pollMs));
    }
    // A drain marker is a one-shot request: consume it so the next daemon
    // started on this root serves normally instead of exiting immediately.
    if (draining) store.clearDrain();
    heartbeat();
    return anyFailed ? 1 : 0;
  }
};

Server::Server(ServerOptions opts) : impl_(new Impl(std::move(opts))) {}

Server::~Server() {
  // Join any in-process stragglers so the pool never outlives the store.
  for (auto& w : impl_->workers) {
    if (w.thread.joinable()) w.thread.join();
    if (w.pid >= 0) {
      int status = 0;
      (void)::waitpid(w.pid, &status, 0);
    }
  }
  delete impl_;
}

int Server::run() { return impl_->run(); }

const CampaignStore& Server::store() const { return impl_->store; }

}  // namespace confail::serve
