// Merge: fold a job's ordered shard results into the final campaign
// documents.
//
// Shards execute in isolation, so their findings carry ids that are only
// meaningful within one scenario's deterministic wiring.  The merge
// re-interns every finding's resolved names through one ingest::NameTable
// (fresh dense ids, shared across shards) and renders through the shared
// detect::ReportSink, so the campaign service emits the same
// confail.findings.v1 / SARIF 2.1.0 documents as every other finding
// producer in the project.
//
// Dedup: two findings are the same when their fingerprint — detector, kind,
// message, scenario and the four resolved names — matches.  First
// occurrence (in shard-index order) wins; later duplicates are counted.
// Because shard execution is deterministic and the merge is ordered, the
// merged documents are a pure function of the shard set: a daemon resumed
// after SIGKILL reproduces them byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "confail/inject/job_spec.hpp"

namespace confail::serve {

struct MergedReports {
  std::string findingsJson;  ///< confail.findings.v1
  std::string sarif;         ///< SARIF 2.1.0
  std::string matrixJson;    ///< confail.injection.v1 detection matrix
  std::uint64_t uniqueFindings = 0;
  std::uint64_t duplicates = 0;  ///< findings dropped by the fingerprint dedup
  bool matrixOk = false;         ///< CampaignResult::ok() of the merged matrix
};

/// Fingerprint of one shard finding for dedup (FNV-1a over the identity
/// fields).  Exposed for the tests.
std::uint64_t findingFingerprint(const std::string& scenario,
                                 const inject::ShardFinding& f);

/// Merge shard results (any order; sorted by shard index internally).
MergedReports mergeShards(const inject::JobSpec& spec,
                          const std::string& jobId,
                          std::vector<inject::ShardResult> shards);

}  // namespace confail::serve
