// Server: the `confail serve` daemon loop.
//
// One instance owns a CampaignStore root and runs jobs to completion:
//
//   scan queue/ -> adopt job -> expand shards -> dispatch to worker pool
//     -> reap results -> journal + state -> merge when all shards landed
//
// Shards run in worker subprocesses by default (`<self> worker --job ...
// --shard N --out ...`), so a shard that crashes or is killed takes down
// only its own process: the daemon reaps the failure, retries once and
// otherwise records the shard as failed without losing the job.  An
// in-process pool (threads calling inject::runShard directly) backs tests
// and sanitizer builds where fork+exec is unavailable or unsafe.
//
// Resume is structural, not transactional: a shard is complete iff its
// result file exists and parses (the store writes it atomically), so a
// daemon restarted over an existing root — including after SIGKILL —
// re-expands each unfinished job and dispatches only the missing shards.
// Completed shard files are never rewritten and never re-journaled.
//
// Observability: progress counters live in an obs::Registry
// (serve.jobs_adopted, serve.shards_completed, serve.shards_failed,
// serve.heartbeats, gauges serve.jobs_active / serve.workers_busy); each
// loop iteration snapshots them to `metricsOut` and each completed shard's
// captured run is appended to the job's events.jsonl heartbeat feed.
#pragma once

#include <cstdint>
#include <string>

#include "confail/serve/store.hpp"

namespace confail::obs {
class Registry;
}

namespace confail::serve {

struct ServerOptions {
  std::string root;          ///< spool directory (required)
  std::size_t poolSize = 2;  ///< concurrent shard workers
  /// Run shards as worker subprocesses (crash isolation).  false = run
  /// them on in-process threads.
  bool subprocess = true;
  /// Worker binary; empty = /proc/self/exe (the running confail binary).
  std::string workerBinary;
  std::uint64_t pollMs = 25;  ///< idle loop sleep
  /// Exit once the queue is empty and no job is in flight (one-shot batch
  /// mode; the tests run the daemon this way).  A drain request always
  /// ends the loop the same way.
  bool exitWhenIdle = false;
  /// Stop after this many merged jobs (0 = unlimited).
  std::uint64_t maxJobs = 0;
  /// Snapshot the metrics registry here every loop iteration ("" = off).
  std::string metricsOut;
  obs::Registry* metrics = nullptr;  ///< optional external registry
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Run the daemon loop until drained / idle-exit / maxJobs.  Returns 0
  /// when every completed job merged cleanly, 1 when any job failed, 3 on
  /// an unusable root.
  int run();

  const CampaignStore& store() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace confail::serve
