// Client: what `confail submit|status|results|drain` call.
//
// Clients share the daemon's CampaignStore — submitting is an atomic file
// drop into queue/, status is a read of state.json, results are reads of
// the merged documents.  No daemon needs to be running for submit/drain
// (the spool holds the work); status and results simply report what the
// store contains so far.
#pragma once

#include <string>
#include <vector>

#include "confail/serve/store.hpp"

namespace confail::serve {

/// Enqueue a spec; returns the job id ("" on I/O failure).  Idempotent.
std::string submitJob(const std::string& root, const inject::JobSpec& spec);

/// State of one job.  False when the job is unknown to the store (never
/// submitted, or submitted but not yet adopted — then `queued` is
/// reported when the spec is still in queue/).
bool jobStatus(const std::string& root, const std::string& id, JobState& out);

/// States of every job the store knows about, queued ones included.
std::vector<JobState> allJobStatus(const std::string& root);

/// Render a states list as a confail.jobstates.v1 document.
std::string statusToJson(const std::vector<JobState>& states);

struct JobResults {
  bool complete = false;     ///< merged documents are present
  std::string findingsJson;  ///< confail.findings.v1
  std::string sarif;
  std::string matrixJson;
};

/// Fetch a completed job's merged documents.  False when the job is
/// unknown; a known-but-unfinished job returns true with complete=false.
bool jobResults(const std::string& root, const std::string& id,
                JobResults& out);

/// Ask the daemon to finish in-flight jobs and exit.
bool requestDrain(const std::string& root);

}  // namespace confail::serve
