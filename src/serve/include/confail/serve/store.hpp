// CampaignStore: the persistent spool directory behind `confail serve`.
//
// The store is the entire control surface of the campaign service — clients
// and daemon never talk over a socket, they exchange files under one root:
//
//   root/
//     queue/<job-id>.json        submitted confail.job.v1 specs (submit)
//     ctl/drain                  marker file: finish running jobs, then exit
//     jobs/<job-id>/
//       job.json                 the adopted canonical spec
//       state.json               confail.jobstate.v1 progress summary
//       shards/shard-NNNN.json   one confail.shard.v1 result per done shard
//       journal.jsonl            append-only completion log (one line per
//                                shard the daemon observed finishing; a
//                                resumed daemon never re-journals a shard
//                                whose file already exists — the crash-
//                                resume tests key off this)
//       events.jsonl             heartbeat feed: each shard's captured run
//                                as obs::toJsonl lines (`confail ingest`
//                                consumes this directly)
//       findings.json            merged confail.findings.v1 (on completion)
//       findings.sarif           merged SARIF 2.1.0
//       matrix.json              merged confail.injection.v1 matrix
//
// Every file the store writes lands via write-to-temp + rename in the same
// directory, so readers (including a daemon resuming after SIGKILL) only
// ever see absent or complete documents — a half-written shard is
// impossible, which is what makes "shard file exists and parses" the
// resume criterion.
//
// Job ids are content-derived (`<name>-<hash of the canonical spec JSON>`),
// so re-submitting the same spec is idempotent: same id, same queue file,
// and a daemon that already ran it serves the stored results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "confail/inject/job_spec.hpp"

namespace confail::serve {

/// Progress summary of one job (the state.json document).
struct JobState {
  std::string id;
  std::string name;
  std::string status;  ///< "queued" | "running" | "completed" | "failed"
  std::uint64_t shardsTotal = 0;
  std::uint64_t shardsDone = 0;
  std::uint64_t shardsFailed = 0;
  std::uint64_t findings = 0;  ///< unique findings after the merge

  std::string toJson() const;  ///< confail.jobstate.v1
  static bool parse(const std::string& json, JobState& out,
                    std::string& error);
};

class CampaignStore {
 public:
  explicit CampaignStore(std::string root);

  const std::string& root() const { return root_; }

  /// Create queue/, jobs/ and ctl/.  Returns false on I/O failure.
  bool init() const;

  /// Content-derived job id: sanitized spec name + FNV-1a of the canonical
  /// spec rendering.  Equal specs always map to the same id.
  static std::string jobIdFor(const inject::JobSpec& spec);

  // -- client side ---------------------------------------------------------

  /// Enqueue a spec (atomic write into queue/).  Idempotent: an already
  /// queued or already adopted identical spec keeps its id.  Returns the
  /// job id, or "" on I/O failure.
  std::string submit(const inject::JobSpec& spec) const;

  /// Ask the daemon to finish in-flight jobs and exit (touch ctl/drain).
  bool requestDrain() const;
  bool drainRequested() const;
  void clearDrain() const;

  // -- daemon side ---------------------------------------------------------

  /// Job ids with a spec waiting in queue/ (sorted).
  std::vector<std::string> scanQueue() const;

  /// Ids of every job under jobs/ (sorted).
  std::vector<std::string> listJobs() const;

  /// Move a queued spec into jobs/<id>/job.json and remove the queue file.
  /// Safe to call for a job directory that already exists (resubmit).
  bool adoptJob(const std::string& id, inject::JobSpec& out,
                std::string& error) const;

  /// Load jobs/<id>/job.json (a job adopted by a previous daemon run).
  bool loadJob(const std::string& id, inject::JobSpec& out,
               std::string& error) const;

  /// Drop a queued spec without adopting it (malformed submissions would
  /// otherwise be re-scanned forever).
  void removeQueued(const std::string& id) const;

  // -- paths ---------------------------------------------------------------

  std::string jobDir(const std::string& id) const;
  std::string shardPath(const std::string& id, std::size_t index) const;
  std::string statePath(const std::string& id) const;
  std::string journalPath(const std::string& id) const;
  std::string eventsPath(const std::string& id) const;
  std::string findingsPath(const std::string& id) const;
  std::string sarifPath(const std::string& id) const;
  std::string matrixPath(const std::string& id) const;

  // -- shard persistence ---------------------------------------------------

  /// Serialize / parse one shard result (schema confail.shard.v1).  The
  /// injection plan is not on the wire: parse reconstructs it with
  /// defaultPlanFor, which is deterministic in (class, scenario).
  static std::string shardToJson(const inject::ShardResult& r);
  static bool shardFromJson(const std::string& json, inject::ShardResult& out,
                            std::string& error);

  /// Atomically persist one shard result file.
  bool writeShard(const std::string& id, const inject::ShardResult& r) const;

  /// True (and parses into `out`) when shard `index` completed earlier.
  bool readShard(const std::string& id, std::size_t index,
                 inject::ShardResult& out) const;

  /// completed[i] == true iff shard i's file exists and parses.
  std::vector<bool> completedShards(const std::string& id,
                                    std::size_t count) const;

  // -- job metadata --------------------------------------------------------

  bool writeState(const std::string& id, const JobState& st) const;
  bool readState(const std::string& id, JobState& out) const;

  /// Append one completion line to journal.jsonl ({"shard": N}).
  bool journalShard(const std::string& id, std::size_t index) const;

  /// Append a shard's captured JSONL events to the job's heartbeat feed.
  bool appendEvents(const std::string& id, const std::string& jsonl) const;

  // -- primitives ----------------------------------------------------------

  /// Write-to-temp + same-directory rename; false on any I/O failure.
  static bool writeFileAtomic(const std::string& path,
                              const std::string& content);
  static bool readFile(const std::string& path, std::string& out);
  static bool appendFile(const std::string& path, const std::string& chunk);

 private:
  std::string root_;
};

}  // namespace confail::serve
