#include "confail/serve/client.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "confail/obs/json.hpp"

namespace confail::serve {

namespace fs = std::filesystem;

std::string submitJob(const std::string& root, const inject::JobSpec& spec) {
  return CampaignStore(root).submit(spec);
}

bool jobStatus(const std::string& root, const std::string& id,
               JobState& out) {
  const CampaignStore store(root);
  if (store.readState(id, out)) return true;
  // Adopted but never stated, or still queued.
  std::error_code ec;
  const bool queued =
      fs::exists(fs::path(root) / "queue" / (id + ".json"), ec);
  const bool adopted = fs::exists(fs::path(store.jobDir(id)), ec);
  if (!queued && !adopted) return false;
  out = JobState{};
  out.id = id;
  out.status = "queued";
  return true;
}

std::vector<JobState> allJobStatus(const std::string& root) {
  const CampaignStore store(root);
  std::vector<std::string> ids = store.scanQueue();
  for (const std::string& id : store.listJobs()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::vector<JobState> out;
  for (const std::string& id : ids) {
    JobState st;
    if (jobStatus(root, id, st)) out.push_back(std::move(st));
  }
  return out;
}

std::string statusToJson(const std::vector<JobState>& states) {
  obs::JsonWriter w;
  w.beginObject();
  w.field("schema", "confail.jobstates.v1");
  w.key("jobs");
  w.beginArray();
  for (const JobState& st : states) {
    w.beginObject();
    w.field("id", st.id);
    w.field("name", st.name);
    w.field("status", st.status);
    w.field("shards_total", st.shardsTotal);
    w.field("shards_done", st.shardsDone);
    w.field("shards_failed", st.shardsFailed);
    w.field("findings", st.findings);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

bool jobResults(const std::string& root, const std::string& id,
                JobResults& out) {
  const CampaignStore store(root);
  JobState st;
  if (!jobStatus(root, id, st)) return false;
  out = JobResults{};
  out.complete =
      CampaignStore::readFile(store.findingsPath(id), out.findingsJson) &&
      CampaignStore::readFile(store.sarifPath(id), out.sarif) &&
      CampaignStore::readFile(store.matrixPath(id), out.matrixJson);
  return true;
}

bool requestDrain(const std::string& root) {
  return CampaignStore(root).requestDrain();
}

}  // namespace confail::serve
