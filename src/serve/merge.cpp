#include "confail/serve/merge.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "confail/detect/report_sink.hpp"
#include "confail/ingest/decode.hpp"

namespace confail::serve {

using inject::ShardFinding;
using inject::ShardResult;

namespace {

std::uint64_t fnv1aMix(std::uint64_t h, const std::string& s) {
  h ^= 0x9e3779b97f4a7c15ull;  // field separator
  h *= 1099511628211ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint64_t findingFingerprint(const std::string& scenario,
                                 const ShardFinding& f) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1aMix(h, scenario);
  h = fnv1aMix(h, f.detector);
  h = fnv1aMix(h, detect::findingKindName(f.finding.kind));
  h = fnv1aMix(h, f.finding.message);
  h = fnv1aMix(h, f.thread);
  h = fnv1aMix(h, f.thread2);
  h = fnv1aMix(h, f.monitor);
  h = fnv1aMix(h, f.var);
  return h;
}

MergedReports mergeShards(const inject::JobSpec& spec,
                          const std::string& jobId,
                          std::vector<ShardResult> shards) {
  std::sort(shards.begin(), shards.end(),
            [](const ShardResult& a, const ShardResult& b) {
              return a.spec.index < b.spec.index;
            });

  MergedReports out;
  detect::ReportSink sink;
  sink.setSource(jobId);
  ingest::NameTable names;
  std::unordered_set<std::uint64_t> seen;
  for (const ShardResult& s : shards) {
    for (const ShardFinding& f : s.findings) {
      const std::uint64_t fp = findingFingerprint(s.spec.scenario, f);
      if (!seen.insert(fp).second) {
        ++out.duplicates;
        continue;
      }
      detect::Finding merged = f.finding;
      merged.thread = f.thread.empty() ? events::kNoThread
                                       : names.internThread(f.thread);
      merged.thread2 = f.thread2.empty() ? events::kNoThread
                                         : names.internThread(f.thread2);
      merged.monitor = f.monitor.empty() ? events::kNoMonitor
                                         : names.internMonitor(f.monitor);
      merged.var = f.var.empty() ? events::kNoVar : names.internVar(f.var);
      sink.add(f.detector, merged);
    }
  }
  out.uniqueFindings = sink.size();
  out.findingsJson = sink.toJson(names);
  out.sarif = sink.toSarif(names);
  const inject::CampaignResult matrix =
      inject::campaignFromShards(spec, shards);
  out.matrixJson = matrix.toJson();
  out.matrixOk = matrix.ok();
  return out;
}

}  // namespace confail::serve
