// Trace capture: an append-only, thread-safe log of Events plus the name
// tables needed to render it (thread, monitor, variable and method names).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "confail/events/event.hpp"

namespace confail::events {

/// Sink interface: online consumers (detectors running while the program
/// executes) implement this and are registered on the Trace.
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Called for every recorded event, in global seq order.  Called with the
  /// trace lock held in real mode; implementations must not re-enter Trace.
  virtual void onEvent(const Event& e) = 0;
};

/// Append-only event log with registration of human-readable names.
///
/// In virtual execution mode, at most one logical thread runs at a time, so
/// contention is nil; in real mode a mutex serializes appends and assigns
/// the global sequence numbers.
class Trace {
 public:
  Trace() = default;

  // Not copyable (sinks hold references).  Movable so factory functions
  // like deserialize() can return by value; must not be moved while other
  // threads are recording.
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;
  Trace(Trace&& other) noexcept;
  Trace& operator=(Trace&&) = delete;

  /// Record an event.  Assigns e.seq and forwards to registered sinks.
  /// Returns the assigned sequence number.
  std::uint64_t record(Event e);

  /// Register an online sink.  Not thread-safe with concurrent record();
  /// register sinks before starting threads.
  void addSink(EventSink* sink);

  /// Name registration.  Ids are expected to be small and dense.
  void nameThread(ThreadId id, std::string name);
  void nameMonitor(MonitorId id, std::string name);
  void nameVar(VarId id, std::string name);
  void nameMethod(MethodId id, std::string name);

  std::string threadName(ThreadId id) const;
  std::string monitorName(MonitorId id) const;
  std::string varName(VarId id) const;
  std::string methodName(MethodId id) const;

  /// Reverse lookups by registered name.  Return the k-No* sentinel when no
  /// id was registered under `name` (first match wins on duplicates).
  MethodId findMethod(const std::string& name) const;
  MonitorId findMonitor(const std::string& name) const;

  /// Snapshot of all events recorded so far (copy; safe to inspect while
  /// execution continues, though normally read after the run completes).
  std::vector<Event> events() const;

  /// Number of events recorded.
  std::size_t size() const;

  /// Drop all recorded events (name tables are kept).
  void clear();

  /// Keep only the first `n` events, rewinding the sequence counter so the
  /// next record() continues from seq n.  Used by incremental exploration
  /// to roll the trace back to a checkpoint; requires the append-only
  /// invariant (seq == index) that record() maintains.
  void truncate(std::size_t n);

  /// Replace the event log with a checkpointed image, rewinding the
  /// sequence counter to continue after it.  Unlike truncate(), this is
  /// valid when runs restore checkpoints in arbitrary (non-stack) order:
  /// after a sibling run rewound shallower and appended its own events,
  /// the first n slots no longer hold the checkpoint's prefix, so the
  /// content itself must be restored.  Sinks are not replayed (they are a
  /// real-mode facility; virtual-mode analyses read the finished trace).
  void restore(const std::vector<Event>& events);

  /// Serialize to the line format of Event::toString, one event per line,
  /// preceded by name-table lines.  Round-trips through deserialize().
  std::string serialize() const;

  /// Parse the output of serialize() into a fresh trace.
  static Trace deserialize(const std::string& text);

  /// Events of a single thread, in order.
  std::vector<Event> threadProjection(ThreadId id) const;

  /// Events touching a single monitor, in order.
  std::vector<Event> monitorProjection(MonitorId id) const;

  /// Pretty-print events (using names) through `emit`, one line at a time.
  void render(const std::function<void(const std::string&)>& emit) const;

 private:
  static std::string lookup(const std::vector<std::string>& table,
                            std::uint32_t id, const char* prefix);
  static void store(std::vector<std::string>& table, std::uint32_t id,
                    std::string name);

  mutable std::mutex mu_;
  std::uint64_t nextSeq_ = 0;
  std::vector<Event> events_;
  std::vector<EventSink*> sinks_;
  std::vector<std::string> threadNames_;
  std::vector<std::string> monitorNames_;
  std::vector<std::string> varNames_;
  std::vector<std::string> methodNames_;
};

}  // namespace confail::events
