// Event records: the common currency of the library.
//
// Every instrumented operation (monitor transitions T1–T5, notify calls,
// shared-variable accesses, method boundaries, clock operations) emits one
// Event into a Trace.  The same trace is consumed by
//   * the failure detectors (confail::detect),
//   * the Petri-net replay validator (confail::petri), and
//   * Concurrency-Flow-Graph coverage tracking (confail::cofg),
// which is exactly the three views the IPPS'03 paper connects: the model,
// the failure classification, and the coverage criterion.
#pragma once

#include <cstdint>
#include <string>

namespace confail::events {

/// Logical thread identifier.  Assigned densely from 0 by the Runtime.
using ThreadId = std::uint32_t;
inline constexpr ThreadId kNoThread = 0xffffffffu;

/// Identifier of an instrumented Monitor instance.
using MonitorId = std::uint32_t;
inline constexpr MonitorId kNoMonitor = 0xffffffffu;

/// Identifier of an instrumented shared variable.
using VarId = std::uint32_t;
inline constexpr VarId kNoVar = 0xffffffffu;

/// Identifier of a component method (for CoFG coverage mapping).
using MethodId = std::uint32_t;
inline constexpr MethodId kNoMethod = 0xffffffffu;

/// The kind of an event.  The first five correspond one-to-one with the
/// transitions of the paper's Figure 1 Petri-net model.
enum class EventKind : std::uint8_t {
  // --- Figure 1 transitions ------------------------------------------------
  LockRequest,   ///< T1: thread requests the object lock (enters place B).
  LockAcquire,   ///< T2: thread is granted the lock (enters place C).
  WaitBegin,     ///< T3: thread calls wait(); releases lock, enters place D.
  LockRelease,   ///< T4: thread leaves the synchronized block (back to A).
  Notified,      ///< T5: a *waiting* thread is woken (moves D -> B).
  // --- Notification calls (the dashed arc feeding T5) ----------------------
  NotifyCall,    ///< notify() executed; aux = number of waiters at the time.
  NotifyAllCall, ///< notifyAll() executed; aux = number of waiters.
  SpuriousWake,  ///< injected spurious wakeup of a waiter (no notify).
  // --- Shared data accesses (for race detection, FF-T1) --------------------
  Read,          ///< read of SharedVar; aux = VarId.
  Write,         ///< write of SharedVar; aux = VarId.
  // --- Thread lifecycle -----------------------------------------------------
  ThreadSpawn,   ///< thread creates another; aux = child ThreadId.
  ThreadStart,   ///< first event of a logical thread.
  ThreadEnd,     ///< last event of a logical thread.
  // --- Method boundaries (CoFG coverage) ------------------------------------
  MethodEnter,   ///< component method entered; aux = MethodId.
  MethodExit,    ///< component method exited; aux = MethodId.
  GuardEval,     ///< wait-loop guard evaluated; aux = MethodId, value in flag.
  // --- Abstract clock --------------------------------------------------------
  ClockAwait,    ///< thread blocks until logical time aux.
  ClockTick,     ///< clock advanced to logical time aux.
};

/// Human-readable name of an event kind (stable; used in serialization).
const char* kindName(EventKind k);

/// Parse a kind name produced by kindName().  Throws UsageError on unknown.
EventKind kindFromName(const std::string& name);

/// True if this kind corresponds to a Figure-1 Petri-net transition.
bool isModelTransition(EventKind k);

/// One instrumented operation.
struct Event {
  std::uint64_t seq = 0;              ///< global logical timestamp (total order).
  ThreadId thread = kNoThread;        ///< logical thread that performed it.
  EventKind kind = EventKind::ThreadStart;
  MonitorId monitor = kNoMonitor;     ///< monitor involved, if any.
  std::uint64_t aux = 0;              ///< kind-specific payload (see EventKind).
  MethodId method = kNoMethod;        ///< innermost component method, if any.
  bool flag = false;                  ///< kind-specific boolean (GuardEval value).

  /// Compact single-line rendering, parseable by Event::parse.
  std::string toString() const;

  /// Parse a line produced by toString().  Throws UsageError on bad input.
  static Event parse(const std::string& line);

  bool operator==(const Event&) const = default;
};

}  // namespace confail::events
