#include "confail/events/trace.hpp"

#include <sstream>

#include "confail/support/assert.hpp"

namespace confail::events {

Trace::Trace(Trace&& other) noexcept
    : nextSeq_(other.nextSeq_),
      events_(std::move(other.events_)),
      sinks_(std::move(other.sinks_)),
      threadNames_(std::move(other.threadNames_)),
      monitorNames_(std::move(other.monitorNames_)),
      varNames_(std::move(other.varNames_)),
      methodNames_(std::move(other.methodNames_)) {}

std::uint64_t Trace::record(Event e) {
  std::lock_guard<std::mutex> g(mu_);
  e.seq = nextSeq_++;
  events_.push_back(e);
  for (EventSink* s : sinks_) {
    s->onEvent(e);
  }
  return e.seq;
}

void Trace::addSink(EventSink* sink) {
  CONFAIL_ASSERT(sink != nullptr, "null sink");
  std::lock_guard<std::mutex> g(mu_);
  sinks_.push_back(sink);
}

void Trace::store(std::vector<std::string>& table, std::uint32_t id,
                  std::string name) {
  if (table.size() <= id) table.resize(id + 1);
  table[id] = std::move(name);
}

std::string Trace::lookup(const std::vector<std::string>& table,
                          std::uint32_t id, const char* prefix) {
  if (id < table.size() && !table[id].empty()) return table[id];
  return std::string(prefix) + std::to_string(id);
}

void Trace::nameThread(ThreadId id, std::string name) {
  std::lock_guard<std::mutex> g(mu_);
  store(threadNames_, id, std::move(name));
}
void Trace::nameMonitor(MonitorId id, std::string name) {
  std::lock_guard<std::mutex> g(mu_);
  store(monitorNames_, id, std::move(name));
}
void Trace::nameVar(VarId id, std::string name) {
  std::lock_guard<std::mutex> g(mu_);
  store(varNames_, id, std::move(name));
}
void Trace::nameMethod(MethodId id, std::string name) {
  std::lock_guard<std::mutex> g(mu_);
  store(methodNames_, id, std::move(name));
}

std::string Trace::threadName(ThreadId id) const {
  std::lock_guard<std::mutex> g(mu_);
  return lookup(threadNames_, id, "thread-");
}
std::string Trace::monitorName(MonitorId id) const {
  std::lock_guard<std::mutex> g(mu_);
  return lookup(monitorNames_, id, "monitor-");
}
std::string Trace::varName(VarId id) const {
  std::lock_guard<std::mutex> g(mu_);
  return lookup(varNames_, id, "var-");
}
std::string Trace::methodName(MethodId id) const {
  std::lock_guard<std::mutex> g(mu_);
  return lookup(methodNames_, id, "method-");
}

MethodId Trace::findMethod(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  for (std::size_t i = 0; i < methodNames_.size(); ++i) {
    if (methodNames_[i] == name) return static_cast<MethodId>(i);
  }
  return kNoMethod;
}

MonitorId Trace::findMonitor(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  for (std::size_t i = 0; i < monitorNames_.size(); ++i) {
    if (monitorNames_[i] == name) return static_cast<MonitorId>(i);
  }
  return kNoMonitor;
}

std::vector<Event> Trace::events() const {
  std::lock_guard<std::mutex> g(mu_);
  return events_;
}

std::size_t Trace::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return events_.size();
}

void Trace::clear() {
  std::lock_guard<std::mutex> g(mu_);
  events_.clear();
  nextSeq_ = 0;
}

void Trace::truncate(std::size_t n) {
  std::lock_guard<std::mutex> g(mu_);
  if (events_.size() > n) events_.resize(n);
  nextSeq_ = events_.size();
}

void Trace::restore(const std::vector<Event>& events) {
  std::lock_guard<std::mutex> g(mu_);
  events_ = events;
  nextSeq_ = events_.size();
}

std::string Trace::serialize() const {
  std::lock_guard<std::mutex> g(mu_);
  std::ostringstream os;
  auto dumpTable = [&os](const char* tag, const std::vector<std::string>& t) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!t[i].empty()) os << '#' << tag << ' ' << i << ' ' << t[i] << '\n';
    }
  };
  dumpTable("thread", threadNames_);
  dumpTable("monitor", monitorNames_);
  dumpTable("var", varNames_);
  dumpTable("method", methodNames_);
  for (const Event& e : events_) {
    os << e.toString() << '\n';
  }
  return os.str();
}

Trace Trace::deserialize(const std::string& text) {
  Trace t;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line.substr(1));
      std::string tag, name;
      std::uint32_t id = 0;
      ls >> tag >> id;
      std::getline(ls, name);
      if (!name.empty() && name[0] == ' ') name.erase(0, 1);
      if (tag == "thread") t.nameThread(id, name);
      else if (tag == "monitor") t.nameMonitor(id, name);
      else if (tag == "var") t.nameVar(id, name);
      else if (tag == "method") t.nameMethod(id, name);
      else throw UsageError("unknown trace table tag: " + tag);
      continue;
    }
    Event e = Event::parse(line);
    t.events_.push_back(e);
    t.nextSeq_ = e.seq + 1;
  }
  return t;
}

std::vector<Event> Trace::threadProjection(ThreadId id) const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.thread == id) out.push_back(e);
  }
  return out;
}

std::vector<Event> Trace::monitorProjection(MonitorId id) const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.monitor == id) out.push_back(e);
  }
  return out;
}

void Trace::render(const std::function<void(const std::string&)>& emit) const {
  std::vector<Event> snapshot = events();
  for (const Event& e : snapshot) {
    std::ostringstream os;
    os << e.seq << "  " << threadName(e.thread) << "  " << kindName(e.kind);
    if (e.monitor != kNoMonitor) os << "  on " << monitorName(e.monitor);
    switch (e.kind) {
      case EventKind::Read:
      case EventKind::Write:
        os << "  var " << varName(static_cast<VarId>(e.aux));
        break;
      case EventKind::MethodEnter:
      case EventKind::MethodExit:
        os << "  " << methodName(static_cast<MethodId>(e.aux));
        break;
      case EventKind::GuardEval:
        os << "  " << methodName(static_cast<MethodId>(e.aux))
           << (e.flag ? "  guard=true" : "  guard=false");
        break;
      case EventKind::ThreadSpawn:
        os << "  child " << threadName(static_cast<ThreadId>(e.aux));
        break;
      case EventKind::NotifyCall:
      case EventKind::NotifyAllCall:
        os << "  waiters=" << e.aux;
        break;
      case EventKind::ClockAwait:
      case EventKind::ClockTick:
        os << "  t=" << e.aux;
        break;
      default:
        break;
    }
    emit(os.str());
  }
}

}  // namespace confail::events
