#include "confail/events/event.hpp"

#include <array>
#include <sstream>

#include "confail/support/assert.hpp"
#include "confail/support/text.hpp"

namespace confail::events {

namespace {
constexpr std::array<const char*, 19> kKindNames = {
    "LockRequest",  "LockAcquire", "WaitBegin",  "LockRelease", "Notified",
    "NotifyCall",   "NotifyAllCall", "SpuriousWake",
    "Read",         "Write",
    "ThreadSpawn",  "ThreadStart", "ThreadEnd",
    "MethodEnter",  "MethodExit",  "GuardEval",
    "ClockAwait",   "ClockTick",
    nullptr,
};
}  // namespace

const char* kindName(EventKind k) {
  auto idx = static_cast<std::size_t>(k);
  CONFAIL_ASSERT(idx < kKindNames.size() && kKindNames[idx] != nullptr,
                 "unknown EventKind");
  return kKindNames[idx];
}

EventKind kindFromName(const std::string& name) {
  for (std::size_t i = 0; i < kKindNames.size() && kKindNames[i] != nullptr; ++i) {
    if (name == kKindNames[i]) return static_cast<EventKind>(i);
  }
  throw UsageError("unknown event kind name: " + name);
}

bool isModelTransition(EventKind k) {
  switch (k) {
    case EventKind::LockRequest:
    case EventKind::LockAcquire:
    case EventKind::WaitBegin:
    case EventKind::LockRelease:
    case EventKind::Notified:
      return true;
    default:
      return false;
  }
}

std::string Event::toString() const {
  std::ostringstream os;
  os << seq << ' ' << thread << ' ' << kindName(kind) << ' '
     << static_cast<std::int64_t>(monitor == kNoMonitor ? -1 : static_cast<std::int64_t>(monitor))
     << ' ' << aux << ' '
     << static_cast<std::int64_t>(method == kNoMethod ? -1 : static_cast<std::int64_t>(method))
     << ' ' << (flag ? 1 : 0);
  return os.str();
}

Event Event::parse(const std::string& line) {
  std::istringstream is(line);
  Event e;
  std::string kind;
  std::int64_t mon = -1;
  std::int64_t method = -1;
  int flag = 0;
  if (!(is >> e.seq >> e.thread >> kind >> mon >> e.aux >> method >> flag)) {
    throw UsageError("malformed event line: " + line);
  }
  e.kind = kindFromName(kind);
  e.monitor = mon < 0 ? kNoMonitor : static_cast<MonitorId>(mon);
  e.method = method < 0 ? kNoMethod : static_cast<MethodId>(method);
  e.flag = flag != 0;
  return e;
}

}  // namespace confail::events
