// The ConAn abstract clock (Long, Hoffman, Strooper 2001), the paper's
// deterministic-execution substrate for "check call completion time".
//
// Three operations, quoted from the paper:
//   * await(t)  — "delays the calling thread until the clock reaches time t"
//   * tick()    — "advances the time by one unit, waking up any processes
//                  that are awaiting that time"
//   * time()    — "returns the number of units of time passed since the
//                  clock started"
//
// In virtual mode the clock registers itself as a scheduler IdleHandler:
// when no logical thread is runnable but some are awaiting, the clock
// auto-advances to the earliest awaited time (discrete-event semantics).
// This removes the need for an explicit ticker thread and makes completion
// ticks exact.  Manual tick() is also supported for ConAn-style scripts.
//
// In real mode the clock is a mutex/condition-variable structure and a
// driver thread must call tick() (see conan::TestDriver).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace confail::clock {

using monitor::Runtime;

class AbstractClock : public sched::IdleHandler {
 public:
  /// Creates the clock at time 0.  In virtual mode, registers as an idle
  /// handler on the runtime's scheduler (auto-advance enabled by default).
  explicit AbstractClock(Runtime& rt);

  AbstractClock(const AbstractClock&) = delete;
  AbstractClock& operator=(const AbstractClock&) = delete;

  /// Units of logical time passed since the clock started.
  std::uint64_t time() const;

  /// Delay the calling thread until the clock reaches time t.
  /// Returns immediately if time() >= t already.
  void await(std::uint64_t t);

  /// Advance time by one unit and wake any thread awaiting a time <= the
  /// new time.  Callable from any thread (or, in virtual mode, a logical
  /// thread only).
  void tick();

  /// Virtual mode: enable/disable auto-advance when the system is idle.
  /// (Enabled by default; disable to script ticks manually.)
  void setAutoAdvance(bool enabled) { autoAdvance_ = enabled; }

  /// IdleHandler: advance to the earliest awaited time, if any.
  bool onIdle() override;

 private:
  void wakeReady();  // virtual mode, time_ already advanced

  Runtime& rt_;
  bool autoAdvance_ = true;

  // Virtual mode state (single active context; no locking needed).
  struct Awaiter {
    events::ThreadId tid;
    std::uint64_t target;
  };
  std::vector<Awaiter> awaiters_;

  // Shared / real mode state.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t time_ = 0;
};

}  // namespace confail::clock
