#include "confail/clock/abstract_clock.hpp"

#include <algorithm>

#include "confail/support/assert.hpp"

namespace confail::clock {

using events::EventKind;
using events::kNoMonitor;

AbstractClock::AbstractClock(Runtime& rt) : rt_(rt) {
  if (rt_.isVirtual()) {
    rt_.scheduler().addIdleHandler(this);
  }
}

std::uint64_t AbstractClock::time() const {
  if (rt_.isVirtual()) return time_;  // single active context
  std::lock_guard<std::mutex> g(mu_);
  return time_;
}

void AbstractClock::await(std::uint64_t t) {
  if (rt_.isVirtual()) {
    events::ThreadId self = rt_.scheduler().currentThread();
    CONFAIL_CHECK(self != events::kNoThread, UsageError,
                  "await() called from outside a logical thread");
    // Always emitted (even when already due) so trace consumers can bracket
    // the caller's activity between consecutive awaits.
    rt_.emit(EventKind::ClockAwait, kNoMonitor, t);
    if (time_ >= t) return;
    awaiters_.push_back(Awaiter{self, t});
    rt_.scheduler().block(sched::BlockKind::ClockAwait, t);
    return;
  }
  rt_.emit(EventKind::ClockAwait, kNoMonitor, t);
  std::unique_lock<std::mutex> g(mu_);
  cv_.wait(g, [&] { return time_ >= t; });
}

void AbstractClock::wakeReady() {
  for (std::size_t i = awaiters_.size(); i-- > 0;) {
    if (awaiters_[i].target <= time_) {
      rt_.scheduler().unblock(awaiters_[i].tid);
      awaiters_.erase(awaiters_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

void AbstractClock::tick() {
  if (rt_.isVirtual()) {
    ++time_;
    rt_.emit(EventKind::ClockTick, kNoMonitor, time_);
    wakeReady();
    return;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    ++time_;
  }
  rt_.emit(EventKind::ClockTick, kNoMonitor, time_);
  cv_.notify_all();
}

bool AbstractClock::onIdle() {
  if (!autoAdvance_ || awaiters_.empty()) return false;
  std::uint64_t earliest = awaiters_[0].target;
  for (const Awaiter& a : awaiters_) earliest = std::min(earliest, a.target);
  CONFAIL_ASSERT(earliest > time_, "awaiter already due but still blocked");
  time_ = earliest;
  rt_.emitFor(events::kNoThread, EventKind::ClockTick, kNoMonitor, time_);
  wakeReady();
  return true;
}

}  // namespace confail::clock
