// SpscRing: the bounded-cost transport between the ingest producer (the
// thread decoding an event stream) and the consumer (the thread driving the
// incremental detector suite).
//
// Contract:
//   * single producer, single consumer — exactly one thread may call the
//     producer-side operations and one the consumer-side, concurrently;
//   * fixed capacity, chosen at construction (rounded up to a power of
//     two), with all storage allocated up front;
//   * the steady-state paths perform no heap allocation whatsoever — a
//     build-time audit (cmake/alloc_audit.cmake) greps this translation
//     unit for allocating constructs, so keep new/malloc/container growth
//     out of this file;
//   * overflow never blocks and never allocates: pushOrDrop() refuses the
//     element and counts it in drops(), so a slow consumer costs events,
//     not memory (tryPush() is the non-counting variant for callers that
//     retry).
//
// The implementation is the classic cached-index SPSC ring: head_ (consume
// position) and tail_ (produce position) are monotonically increasing
// 64-bit counters; each side keeps a plain (non-atomic) cache of the other
// side's index and only re-reads the shared atomic when the cached value
// says the ring looks full/empty.  Indices are masked on access, and both
// shared atomics live on their own cache line so the two sides never
// false-share.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace confail::ingest {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity)
      : mask_(roundUpPow2(capacity) - 1),
        slots_(std::make_unique<T[]>(mask_ + 1)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side.  False when full; the element is not stored.
  bool tryPush(const T& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cachedHead_ > mask_) {
      cachedHead_ = head_.load(std::memory_order_acquire);
      if (tail - cachedHead_ > mask_) return false;
    }
    slots_[tail & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side.  tryPush, but overflow is recorded in drops().
  bool pushOrDrop(const T& v) {
    if (tryPush(v)) return true;
    drops_.store(drops_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    return false;
  }

  /// Consumer side.  False when empty.
  bool tryPop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cachedTail_) {
      cachedTail_ = tail_.load(std::memory_order_acquire);
      if (head == cachedTail_) return false;
    }
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Elements dropped by pushOrDrop() because the ring was full.
  std::uint64_t drops() const {
    return drops_.load(std::memory_order_relaxed);
  }

  /// Approximate occupancy (racy snapshot; exact when either side is idle).
  std::size_t approxSize() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  static std::size_t roundUpPow2(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t mask_;
  std::unique_ptr<T[]> slots_;

  alignas(64) std::atomic<std::uint64_t> head_{0};  // next slot to pop
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next slot to fill
  alignas(64) std::uint64_t cachedHead_ = 0;        // producer's view of head_
  alignas(64) std::uint64_t cachedTail_ = 0;        // consumer's view of tail_
  alignas(64) std::atomic<std::uint64_t> drops_{0};
};

}  // namespace confail::ingest
