// Stream decoders: turn serialized event streams back into events::Event
// records plus the name tables needed to render findings.
//
// Two wire formats are accepted:
//
//   * JSONL (obs::toJsonl) — one self-contained object per line.  Since the
//     v2 export each line carries both resolved names and the raw numeric
//     ids (var_id, child_id, guard_method_id, method_id, method_ctx), so
//     decoding is lossless: the reconstructed Event equals the recorded one
//     field for field.  v1 lines (names only) still decode, with ids
//     re-interned first-seen — sufficient for analysis, not bit-exact.
//
//   * Chrome trace_event JSON (obs::toChromeTrace) — best-effort: paired
//     slices are unfolded back into their begin/end events and instants map
//     one-to-one, but information the exporter never wrote (numeric
//     monitor/var ids, the method context of data accesses) is re-interned
//     from names.  Good enough to run the detector battery over a trace
//     someone only kept in Chrome form; the differential guarantees apply
//     to JSONL.
//
// The JSONL decoder is incremental and hardened for tailing a file that a
// writer is still appending to: bytes are buffered until a newline lands,
// so truncated final lines and interleaved partial writes never produce a
// phantom event — an unterminated tail stays pending (flush() decides
// whether it parses) and a malformed complete line is counted and skipped
// rather than aborting the stream.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "confail/detect/finding.hpp"
#include "confail/events/event.hpp"

namespace confail::ingest {

/// Name tables rebuilt from a decoded stream.  Implements the NameSource
/// the detector cores and the ReportSink render findings through, with the
/// same "<kind>-<id>" fallback convention as events::Trace so reports are
/// byte-identical to the offline path.
class NameTable final : public detect::NameSource {
 public:
  void thread(events::ThreadId id, const std::string& name) {
    store(threads_, id, name);
  }
  void monitor(events::MonitorId id, const std::string& name) {
    store(monitors_, id, name);
  }
  void var(events::VarId id, const std::string& name) {
    store(vars_, id, name);
  }
  void method(events::MethodId id, const std::string& name) {
    store(methods_, id, name);
  }

  /// Id registered under `name`, interning a fresh dense id when unseen
  /// (the v1-JSONL / Chrome fallback where only names are on the wire).
  events::ThreadId internThread(const std::string& name) {
    return intern(threads_, name);
  }
  events::MonitorId internMonitor(const std::string& name) {
    return intern(monitors_, name);
  }
  events::VarId internVar(const std::string& name) {
    return intern(vars_, name);
  }
  events::MethodId internMethod(const std::string& name) {
    return intern(methods_, name);
  }

  std::string threadName(events::ThreadId id) const override {
    return lookup(threads_, id, "thread-");
  }
  std::string monitorName(events::MonitorId id) const override {
    return lookup(monitors_, id, "monitor-");
  }
  std::string varName(events::VarId id) const override {
    return lookup(vars_, id, "var-");
  }
  std::string methodName(events::MethodId id) const override {
    return lookup(methods_, id, "method-");
  }

 private:
  static void store(std::vector<std::string>& table, std::uint32_t id,
                    const std::string& name);
  static std::uint32_t intern(std::vector<std::string>& table,
                              const std::string& name);
  static std::string lookup(const std::vector<std::string>& table,
                            std::uint32_t id, const char* prefix);

  std::vector<std::string> threads_;
  std::vector<std::string> monitors_;
  std::vector<std::string> vars_;
  std::vector<std::string> methods_;
};

/// Incremental JSONL reader.
class JsonlDecoder {
 public:
  struct Stats {
    std::uint64_t bytes = 0;      ///< bytes consumed
    std::uint64_t lines = 0;      ///< complete lines seen
    std::uint64_t events = 0;     ///< events successfully decoded
    std::uint64_t malformed = 0;  ///< complete lines that failed to decode
    std::uint64_t truncated = 0;  ///< unterminated tail dropped at flush
  };

  using Emit = std::function<void(const events::Event&)>;

  /// Consume a chunk (any framing: whole file, pipe read, single byte).
  /// Every newline-terminated line is decoded and emitted; a trailing
  /// fragment is buffered for the next chunk.
  void feed(std::string_view chunk, const Emit& emit);

  /// End of stream: decide the fate of an unterminated tail.  A tail that
  /// parses as a complete object is emitted (the writer just omitted the
  /// final newline); anything else counts as truncated and is dropped.
  void flush(const Emit& emit);

  /// True when a partial line is buffered (the stream ended mid-write).
  bool hasPartialLine() const { return !pending_.empty(); }

  NameTable& names() { return names_; }
  const NameTable& names() const { return names_; }
  const Stats& stats() const { return stats_; }

 private:
  bool decodeLine(const std::string& line, events::Event& out);

  std::string pending_;
  NameTable names_;
  Stats stats_;
};

/// Decode a complete Chrome trace_event document (the {"traceEvents": [...]}
/// form emitted by obs::toChromeTrace) into seq-ordered events.  Returns
/// the number of trace_event entries that could not be mapped.
std::uint64_t decodeChromeTrace(const std::string& text, NameTable& names,
                                std::vector<events::Event>& out);

}  // namespace confail::ingest
