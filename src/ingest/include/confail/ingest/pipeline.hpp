// IngestPipeline: the online trace-analysis path.
//
//   reader thread                            caller thread
//   ─────────────                            ─────────────
//   read(chunk) ─ decode ─ push ─▶ SpscRing ─▶ pop ─ StreamingSuite::feed
//                                                      │
//                                            finish ─▶ ReportSink
//
// The producer side reads the stream (file, pipe, or a file still being
// appended to when `follow` is set), decodes it into events::Event records
// and pushes them through a fixed-capacity lock-free ring; the consumer —
// the thread that called run() — pops events and drives the incremental
// detector battery.  Memory is bounded by the ring plus detector state;
// the stream itself is never buffered.
//
// Overflow policy: by default a full ring applies backpressure (the
// producer yields until the consumer catches up — no events lost, so the
// streaming findings match the offline battery exactly).  With `lossy`
// set, overflow drops the event and counts it in ringDrops — bounded cost
// for live monitoring where falling behind must not stall the writer.
//
// Name tables are owned by the producer-side decoder and only read after
// the producer joins (StreamingSuite::finish and report rendering), so no
// synchronization is needed on them.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "confail/detect/report_sink.hpp"
#include "confail/detect/streaming_suite.hpp"
#include "confail/ingest/decode.hpp"

namespace confail::obs {
class Registry;
}

namespace confail::ingest {

enum class StreamFormat : std::uint8_t {
  Jsonl,   ///< obs::toJsonl lines (lossless since v2)
  Chrome,  ///< obs::toChromeTrace document (best-effort reconstruction)
};

struct IngestOptions {
  StreamFormat format = StreamFormat::Jsonl;
  /// Ring capacity in events (rounded up to a power of two).
  std::size_t ringCapacity = 1 << 16;
  /// Drop events on ring overflow instead of backpressuring the reader.
  bool lossy = false;
  /// Keep reading past EOF (tail a growing file / slow pipe).
  bool follow = false;
  /// In follow mode, stop after this long with no new bytes (0 = only a
  /// requestStop() ends the run).
  std::uint32_t followIdleStopMs = 1000;
  /// Detector battery configuration (thresholds, barging, HB bound).
  detect::StreamingSuite::Options suite;
  /// Optional metrics registry (events/sec, ring occupancy, drops,
  /// per-core feed latency).  Adds per-event instrumentation cost.
  obs::Registry* metrics = nullptr;
};

struct IngestStats {
  std::uint64_t bytes = 0;
  std::uint64_t lines = 0;
  std::uint64_t eventsDecoded = 0;
  std::uint64_t eventsAnalyzed = 0;
  std::uint64_t ringDrops = 0;
  std::uint64_t malformed = 0;
  std::uint64_t truncated = 0;
  std::uint64_t chromeUnmapped = 0;
  std::uint64_t findings = 0;
  std::uint64_t hbEvictions = 0;
  double elapsedSec = 0.0;
  double eventsPerSec = 0.0;
};

class IngestPipeline {
 public:
  explicit IngestPipeline(IngestOptions opts);
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Consume `in` to completion (or until requestStop() in follow mode),
  /// run the streaming battery, and route every finding into `sink`
  /// (attributed per core, battery order).  Call once per pipeline.
  IngestStats run(std::istream& in, detect::ReportSink& sink);

  /// Async stop for follow mode; safe from any thread.
  void requestStop() { stop_.store(true, std::memory_order_relaxed); }

  /// Valid after run(): the rebuilt name tables and the finished suite.
  const NameTable& names() const { return decoder_.names(); }
  const detect::StreamingSuite& suite() const { return suite_; }

 private:
  IngestOptions opts_;
  JsonlDecoder decoder_;
  detect::StreamingSuite suite_;
  std::atomic<bool> stop_{false};
};

}  // namespace confail::ingest
