#include "confail/ingest/pipeline.hpp"

#include <chrono>
#include <istream>
#include <sstream>
#include <thread>

#include "confail/ingest/ring.hpp"
#include "confail/obs/metrics.hpp"

namespace confail::ingest {

namespace {
constexpr std::size_t kChunkBytes = 64 * 1024;
constexpr std::size_t kOccupancySampleEvery = 1024;
}  // namespace

IngestPipeline::IngestPipeline(IngestOptions opts)
    : opts_(opts), suite_(opts.suite) {
  suite_.setMetrics(opts_.metrics);
}

IngestPipeline::~IngestPipeline() = default;

IngestStats IngestPipeline::run(std::istream& in, detect::ReportSink& sink) {
  IngestStats stats;
  SpscRing<events::Event> ring(opts_.ringCapacity);
  std::atomic<bool> producerDone{false};

  const auto t0 = std::chrono::steady_clock::now();

  auto push = [&](const events::Event& e) {
    if (opts_.lossy) {
      ring.pushOrDrop(e);
      return;
    }
    // Backpressure: spin-yield until the consumer frees a slot.  A stop
    // request drains the remaining events as drops so the reader can exit.
    while (!ring.tryPush(e)) {
      if (stop_.load(std::memory_order_relaxed)) {
        ring.pushOrDrop(e);
        return;
      }
      std::this_thread::yield();
    }
  };

  std::thread producer([&] {
    if (opts_.format == StreamFormat::Chrome) {
      // Chrome documents are one JSON object, not a line stream: slurp,
      // decode, replay through the ring.
      std::ostringstream buf;
      buf << in.rdbuf();
      std::vector<events::Event> evs;
      stats.chromeUnmapped =
          decodeChromeTrace(buf.str(), decoder_.names(), evs);
      stats.bytes = buf.str().size();
      stats.eventsDecoded = evs.size();
      for (const events::Event& e : evs) {
        if (stop_.load(std::memory_order_relaxed)) break;
        push(e);
      }
      producerDone.store(true, std::memory_order_release);
      return;
    }
    char chunk[kChunkBytes];
    auto emit = [&](const events::Event& e) { push(e); };
    using clock = std::chrono::steady_clock;
    clock::time_point lastData = clock::now();
    while (!stop_.load(std::memory_order_relaxed)) {
      in.read(chunk, static_cast<std::streamsize>(sizeof chunk));
      const std::streamsize got = in.gcount();
      if (got > 0) {
        decoder_.feed(std::string_view(chunk, static_cast<std::size_t>(got)),
                      emit);
        lastData = clock::now();
      }
      if (in.eof()) {
        if (!opts_.follow) break;
        if (opts_.followIdleStopMs != 0 &&
            clock::now() - lastData >=
                std::chrono::milliseconds(opts_.followIdleStopMs)) {
          break;
        }
        // Tail: clear the EOF condition and poll for appended bytes.
        in.clear();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      } else if (in.fail()) {
        break;  // unrecoverable stream error
      }
    }
    decoder_.flush(emit);
    producerDone.store(true, std::memory_order_release);
  });

  // Consumer: this thread drives the incremental battery.
  obs::Counter* eventsCtr =
      opts_.metrics != nullptr ? &opts_.metrics->counter("ingest.events")
                               : nullptr;
  obs::Gauge* occupancy =
      opts_.metrics != nullptr
          ? &opts_.metrics->gauge("ingest.ring_occupancy")
          : nullptr;
  events::Event e;
  std::uint64_t analyzed = 0;
  for (;;) {
    if (ring.tryPop(e)) {
      suite_.feed(e);
      ++analyzed;
      if (eventsCtr != nullptr) {
        eventsCtr->inc();
        if (occupancy != nullptr && analyzed % kOccupancySampleEvery == 0) {
          occupancy->set(static_cast<double>(ring.approxSize()));
        }
      }
      continue;
    }
    if (producerDone.load(std::memory_order_acquire)) {
      // Drain whatever landed between the last pop and the flag.
      if (ring.tryPop(e)) {
        suite_.feed(e);
        ++analyzed;
        continue;
      }
      break;
    }
    std::this_thread::yield();
  }
  producer.join();

  suite_.finish(decoder_.names());
  for (const detect::StreamingSuite::CoreReport& r : suite_.reports()) {
    sink.addAll(r.core, r.findings);
  }

  const auto t1 = std::chrono::steady_clock::now();
  const JsonlDecoder::Stats& ds = decoder_.stats();
  if (opts_.format == StreamFormat::Jsonl) {
    stats.bytes = ds.bytes;
    stats.eventsDecoded = ds.events;
  }
  stats.lines = ds.lines;
  stats.malformed = ds.malformed;
  stats.truncated = ds.truncated;
  stats.eventsAnalyzed = analyzed;
  stats.ringDrops = ring.drops();
  stats.findings = sink.size() + sink.dropped();
  stats.hbEvictions = suite_.hbEvictions();
  stats.elapsedSec =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  stats.eventsPerSec = stats.elapsedSec > 0.0
                           ? static_cast<double>(analyzed) / stats.elapsedSec
                           : 0.0;
  if (opts_.metrics != nullptr) {
    opts_.metrics->counter("ingest.ring_drops").add(stats.ringDrops);
    opts_.metrics->counter("ingest.malformed_lines").add(stats.malformed);
    opts_.metrics->counter("ingest.truncated_tails").add(stats.truncated);
    opts_.metrics->gauge("ingest.events_per_sec").set(stats.eventsPerSec);
  }
  return stats;
}

}  // namespace confail::ingest
