#include "confail/ingest/decode.hpp"

#include <algorithm>
#include <cstdlib>

#include "confail/obs/json.hpp"
#include "confail/support/assert.hpp"

namespace confail::ingest {

using events::Event;
using events::EventKind;

// ---------------------------------------------------------------------------
// NameTable

void NameTable::store(std::vector<std::string>& table, std::uint32_t id,
                      const std::string& name) {
  if (id == 0xffffffffu) return;  // sentinel ids are never named
  if (table.size() <= id) table.resize(id + 1);
  if (table[id].empty()) table[id] = name;
}

std::uint32_t NameTable::intern(std::vector<std::string>& table,
                                const std::string& name) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i] == name) return static_cast<std::uint32_t>(i);
  }
  table.push_back(name);
  return static_cast<std::uint32_t>(table.size() - 1);
}

std::string NameTable::lookup(const std::vector<std::string>& table,
                              std::uint32_t id, const char* prefix) {
  if (id < table.size() && !table[id].empty()) return table[id];
  return std::string(prefix) + std::to_string(id);
}

// ---------------------------------------------------------------------------
// JSONL

namespace {

std::uint64_t asU64(const obs::JsonValue* v) {
  return v != nullptr && v->isNumber() ? static_cast<std::uint64_t>(v->number)
                                       : 0;
}

const std::string* asString(const obs::JsonValue* v) {
  return v != nullptr && v->kind == obs::JsonValue::Kind::String ? &v->string
                                                                 : nullptr;
}

}  // namespace

bool JsonlDecoder::decodeLine(const std::string& line, events::Event& out) {
  obs::JsonValue v;
  try {
    v = obs::parseJson(line);
  } catch (const confail::UsageError&) {
    return false;
  }
  if (!v.isObject()) return false;
  const obs::JsonValue* kindV = v.get("kind");
  const obs::JsonValue* seqV = v.get("seq");
  const std::string* kindName = asString(kindV);
  if (kindName == nullptr || seqV == nullptr || !seqV->isNumber()) {
    return false;
  }
  EventKind kind;
  try {
    kind = events::kindFromName(*kindName);
  } catch (const confail::UsageError&) {
    return false;
  }

  Event e;
  e.kind = kind;
  e.seq = asU64(seqV);
  if (const obs::JsonValue* t = v.get("thread"); t != nullptr && t->isNumber()) {
    e.thread = static_cast<events::ThreadId>(t->number);
    if (const std::string* n = asString(v.get("thread_name"))) {
      names_.thread(e.thread, *n);
    }
  }
  if (const obs::JsonValue* m = v.get("monitor");
      m != nullptr && m->isNumber()) {
    e.monitor = static_cast<events::MonitorId>(m->number);
    if (const std::string* n = asString(v.get("monitor_name"))) {
      names_.monitor(e.monitor, *n);
    }
  }
  // Method context: v2 writes the numeric id next to the name; v1 wrote the
  // name only, so fall back to first-seen interning.
  if (const obs::JsonValue* mc = v.get("method_ctx");
      mc != nullptr && mc->isNumber()) {
    e.method = static_cast<events::MethodId>(mc->number);
    if (const std::string* n = asString(v.get("method"))) {
      names_.method(e.method, *n);
    }
  } else if (const std::string* n = asString(v.get("method"));
             n != nullptr && kind != EventKind::MethodEnter &&
             kind != EventKind::MethodExit) {
    e.method = names_.internMethod(*n);
  }

  switch (kind) {
    case EventKind::Read:
    case EventKind::Write: {
      const obs::JsonValue* id = v.get("var_id");
      const std::string* name = asString(v.get("var"));
      if (id != nullptr && id->isNumber()) {
        e.aux = asU64(id);
        if (name != nullptr) {
          names_.var(static_cast<events::VarId>(e.aux), *name);
        }
      } else if (name != nullptr) {
        e.aux = names_.internVar(*name);
      }
      break;
    }
    case EventKind::NotifyCall:
    case EventKind::NotifyAllCall:
      e.aux = asU64(v.get("waiters"));
      break;
    case EventKind::ThreadSpawn: {
      const obs::JsonValue* id = v.get("child_id");
      const std::string* name = asString(v.get("child"));
      if (id != nullptr && id->isNumber()) {
        e.aux = asU64(id);
        if (name != nullptr) {
          names_.thread(static_cast<events::ThreadId>(e.aux), *name);
        }
      } else if (name != nullptr) {
        e.aux = names_.internThread(*name);
      }
      break;
    }
    case EventKind::GuardEval: {
      const obs::JsonValue* id = v.get("guard_method_id");
      const std::string* name = asString(v.get("guard_method"));
      if (id != nullptr && id->isNumber()) {
        e.aux = asU64(id);
        if (name != nullptr) {
          names_.method(static_cast<events::MethodId>(e.aux), *name);
        }
      } else if (name != nullptr) {
        e.aux = names_.internMethod(*name);
      }
      if (const obs::JsonValue* fl = v.get("value");
          fl != nullptr && fl->kind == obs::JsonValue::Kind::Bool) {
        e.flag = fl->boolean;
      }
      break;
    }
    case EventKind::MethodEnter:
    case EventKind::MethodExit: {
      const obs::JsonValue* id = v.get("method_id");
      if (id != nullptr && id->isNumber()) {
        e.aux = asU64(id);
      } else {
        e.aux = asU64(v.get("aux"));  // v1 wrote the raw aux when nonzero
      }
      if (const std::string* n = asString(v.get("method"))) {
        names_.method(static_cast<events::MethodId>(e.aux), *n);
      }
      break;
    }
    case EventKind::ClockAwait:
    case EventKind::ClockTick:
      e.aux = asU64(v.get("t"));
      break;
    default:
      e.aux = asU64(v.get("aux"));
      break;
  }
  out = e;
  return true;
}

void JsonlDecoder::feed(std::string_view chunk, const Emit& emit) {
  stats_.bytes += chunk.size();
  std::size_t start = 0;
  while (start < chunk.size()) {
    const std::size_t nl = chunk.find('\n', start);
    if (nl == std::string_view::npos) {
      pending_.append(chunk.substr(start));
      return;
    }
    pending_.append(chunk.substr(start, nl - start));
    start = nl + 1;
    if (!pending_.empty()) {
      ++stats_.lines;
      events::Event e;
      if (decodeLine(pending_, e)) {
        ++stats_.events;
        emit(e);
      } else {
        ++stats_.malformed;
      }
    }
    pending_.clear();
  }
}

void JsonlDecoder::flush(const Emit& emit) {
  if (pending_.empty()) return;
  events::Event e;
  if (decodeLine(pending_, e)) {
    // Complete object, just missing its newline: accept it.
    ++stats_.lines;
    ++stats_.events;
    emit(e);
  } else {
    // A write was cut mid-line; drop the fragment rather than invent data.
    ++stats_.truncated;
  }
  pending_.clear();
}

// ---------------------------------------------------------------------------
// Chrome trace_event

namespace {

struct Rebuilt {
  std::uint64_t ts;
  std::uint64_t order;  // stable tiebreak: emission index
  Event e;
};

std::uint64_t argU64(const obs::JsonValue& entry, const char* key) {
  const obs::JsonValue* args = entry.get("args");
  if (args == nullptr) return 0;
  const obs::JsonValue* v = args->get(key);
  if (v == nullptr) return 0;
  if (v->isNumber()) return static_cast<std::uint64_t>(v->number);
  if (v->kind == obs::JsonValue::Kind::String) {
    return static_cast<std::uint64_t>(
        std::strtoull(v->string.c_str(), nullptr, 10));
  }
  return 0;
}

const std::string* argStr(const obs::JsonValue& entry, const char* key) {
  const obs::JsonValue* args = entry.get("args");
  if (args == nullptr) return nullptr;
  const obs::JsonValue* v = args->get(key);
  return v != nullptr && v->kind == obs::JsonValue::Kind::String ? &v->string
                                                                 : nullptr;
}

/// "acquire buf (never granted)" -> op "acquire", operand "buf".
void splitSliceName(const std::string& name, std::string& op,
                    std::string& operand) {
  std::string s = name;
  const std::size_t paren = s.find(" (");
  if (paren != std::string::npos) s.resize(paren);
  const std::size_t space = s.find(' ');
  if (space == std::string::npos) {
    op = s;
    operand.clear();
  } else {
    op = s.substr(0, space);
    operand = s.substr(space + 1);
  }
}

}  // namespace

std::uint64_t decodeChromeTrace(const std::string& text, NameTable& names,
                                std::vector<events::Event>& out) {
  obs::JsonValue doc;
  try {
    doc = obs::parseJson(text);
  } catch (const confail::UsageError&) {
    return 1;  // the whole document is unmappable
  }
  const obs::JsonValue* evs = doc.get("traceEvents");
  if (evs == nullptr || !evs->isArray()) return 1;

  std::uint64_t unmapped = 0;
  std::vector<Rebuilt> rebuilt;
  std::uint64_t order = 0;
  auto emit = [&](std::uint64_t ts, Event e) {
    e.seq = ts;
    rebuilt.push_back(Rebuilt{ts, order++, e});
  };

  for (const obs::JsonValue& entry : evs->array) {
    const std::string* ph = asString(entry.get("ph"));
    if (ph == nullptr) {
      ++unmapped;
      continue;
    }
    const events::ThreadId tid =
        static_cast<events::ThreadId>(asU64(entry.get("tid")));
    if (*ph == "M") {
      if (const std::string* n = argStr(entry, "name")) {
        names.thread(tid, *n);
      }
      continue;
    }
    const std::uint64_t ts = asU64(entry.get("ts"));
    const std::string* name = asString(entry.get("name"));
    if (name == nullptr) {
      ++unmapped;
      continue;
    }
    Event base;
    base.thread = tid;
    if (*ph == "X") {
      const std::uint64_t dur = asU64(entry.get("dur"));
      const std::string* cat = asString(entry.get("cat"));
      const bool open = name->find(" (never") != std::string::npos ||
                        name->find(" (unfinished)") != std::string::npos;
      if (cat != nullptr && *cat == "method") {
        std::string mname = *name;
        const std::size_t paren = mname.find(" (");
        if (paren != std::string::npos) mname.resize(paren);
        Event e = base;
        e.kind = EventKind::MethodEnter;
        e.aux = names.internMethod(mname);
        e.method = static_cast<events::MethodId>(e.aux);
        emit(ts, e);
        if (!open) {
          e.kind = EventKind::MethodExit;
          emit(ts + dur, e);
        }
        continue;
      }
      std::string op;
      std::string mon;
      splitSliceName(*name, op, mon);
      const events::MonitorId monitor =
          mon.empty() ? events::kNoMonitor : names.internMonitor(mon);
      if (op == "acquire") {
        Event e = base;
        e.kind = EventKind::LockRequest;
        e.monitor = monitor;
        emit(ts, e);
      } else if (op == "hold") {
        Event e = base;
        e.kind = EventKind::LockAcquire;
        e.monitor = monitor;
        emit(ts, e);
        if (!open) {
          e.kind = EventKind::LockRelease;
          emit(ts + dur, e);
        }
      } else if (op == "wait") {
        Event e = base;
        e.kind = EventKind::WaitBegin;
        e.monitor = monitor;
        emit(ts, e);
        // A spurious wake ends the slice but emits its own instant; a
        // never-notified slice has no end event at all.
        if (!open && name->find("(spurious wake)") == std::string::npos) {
          e.kind = EventKind::Notified;
          emit(ts + dur, e);
        }
      } else {
        ++unmapped;
      }
      continue;
    }
    if (*ph != "i") {
      ++unmapped;
      continue;
    }
    Event e = base;
    if (*name == "notify" || *name == "notifyAll") {
      e.kind = *name == "notify" ? EventKind::NotifyCall
                                 : EventKind::NotifyAllCall;
      if (const std::string* m = argStr(entry, "monitor")) {
        e.monitor = names.internMonitor(*m);
      }
      e.aux = argU64(entry, "waiters");
    } else if (*name == "spurious-wake") {
      e.kind = EventKind::SpuriousWake;
      if (const std::string* m = argStr(entry, "monitor")) {
        e.monitor = names.internMonitor(*m);
      }
    } else if (*name == "read" || *name == "write") {
      e.kind = *name == "read" ? EventKind::Read : EventKind::Write;
      if (const std::string* v = argStr(entry, "var")) {
        e.aux = names.internVar(*v);
      }
    } else if (*name == "spawn") {
      e.kind = EventKind::ThreadSpawn;
      if (const std::string* c = argStr(entry, "child")) {
        e.aux = names.internThread(*c);
      }
    } else if (*name == "thread-start") {
      e.kind = EventKind::ThreadStart;
    } else if (*name == "thread-end") {
      e.kind = EventKind::ThreadEnd;
    } else if (*name == "guard") {
      e.kind = EventKind::GuardEval;
      if (const std::string* m = argStr(entry, "method")) {
        e.aux = names.internMethod(*m);
      }
      const std::string* val = argStr(entry, "value");
      e.flag = val != nullptr && *val == "true";
    } else if (*name == "clock-await" || *name == "clock-tick") {
      e.kind = *name == "clock-await" ? EventKind::ClockAwait
                                      : EventKind::ClockTick;
      e.aux = argU64(entry, "t");
    } else {
      ++unmapped;
      continue;
    }
    emit(ts, e);
  }

  std::stable_sort(rebuilt.begin(), rebuilt.end(),
                   [](const Rebuilt& a, const Rebuilt& b) {
                     return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
                   });
  out.reserve(out.size() + rebuilt.size());
  for (const Rebuilt& r : rebuilt) out.push_back(r.e);
  return unmapped;
}

}  // namespace confail::ingest
