#include "confail/inject/injector.hpp"

#include "confail/support/assert.hpp"

namespace confail::inject {

using taxonomy::FailureClass;

Injector::Injector(monitor::Runtime& rt, const InjectionPlan& plan)
    : rt_(rt), plan_(plan) {
  if (!isInjectable(plan_.cls)) {
    throw confail::UsageError(std::string("Injector: class ") +
                              taxonomy::failureClassName(plan_.cls) +
                              " has no deviation operator");
  }
  if (!rt_.isVirtual()) {
    throw confail::UsageError(
        "Injector: deviation injection requires a virtual-mode Runtime");
  }
  rt_.setInjection(this);
  rt_.scheduler().addFingerprintSource(this);
  rt_.scheduler().addSnapshotSource(this);
}

Injector::~Injector() {
  rt_.scheduler().removeSnapshotSource(this);
  rt_.scheduler().removeFingerprintSource(this);
  rt_.setInjection(nullptr);
}

namespace {
struct InjectorSnap {
  std::uint64_t occasions;
  std::uint64_t applied;
  std::map<std::pair<events::MonitorId, events::ThreadId>, std::uint32_t>
      pendingUnlocks;
};
}  // namespace

std::shared_ptr<const void> Injector::saveState() const {
  return std::make_shared<InjectorSnap>(
      InjectorSnap{occasions_, applied_, pendingUnlocks_});
}

void Injector::restoreState(const std::shared_ptr<const void>& payload) {
  const InjectorSnap& snap = *static_cast<const InjectorSnap*>(payload.get());
  occasions_ = snap.occasions;
  applied_ = snap.applied;
  pendingUnlocks_ = snap.pendingUnlocks;
}

std::size_t Injector::snapshotBytes() const {
  return sizeof(InjectorSnap) +
         pendingUnlocks_.size() *
             (sizeof(std::pair<const std::pair<events::MonitorId,
                                               events::ThreadId>,
                               std::uint32_t>) +
              4 * sizeof(void*));  // rb-tree node overhead estimate
}

std::uint64_t Injector::stateFingerprint() const {
  std::uint64_t h = sched::kFpSeed;
  h = sched::fpMix(h, occasions_);
  h = sched::fpMix(h, applied_);
  for (const auto& [key, n] : pendingUnlocks_) {
    h = sched::fpMix(h, (static_cast<std::uint64_t>(key.first) << 32) ^
                            static_cast<std::uint64_t>(key.second));
    h = sched::fpMix(h, n);
  }
  return h;
}

bool Injector::siteMatches(events::MonitorId m) const {
  return plan_.monitor.empty() || rt_.trace().monitorName(m) == plan_.monitor;
}

bool Injector::victimMatches(events::ThreadId t) const {
  return plan_.victim.empty() || rt_.scheduler().threadName(t) == plan_.victim;
}

void Injector::noteMutation() {
  // Every mutation of injector state (fire()'s counters, the pending-unlock
  // ledger) calls this within the same scheduler step as the mutation, so
  // one version bump here keeps snapshot payloads coherent.
  snapshotBump();
  rt_.scheduler().noteAccess(sched::fpTag('j', 0), /*isWrite=*/true);
}

bool Injector::fire(events::MonitorId m, events::ThreadId t,
                    bool checkVictim) {
  if (!siteMatches(m)) return false;
  if (checkVictim && !victimMatches(t)) return false;
  const std::uint64_t n = occasions_++;
  noteMutation();
  if (n < plan_.after || n - plan_.after >= plan_.count) return false;
  ++applied_;
  return true;
}

Injector::LockAction Injector::onLock(events::MonitorId m,
                                      events::ThreadId t) {
  switch (plan_.cls) {
    case FailureClass::FF_T1:
      if (fire(m, t, true)) {
        ++pendingUnlocks_[{m, t}];
        return LockAction::Elide;
      }
      return LockAction::Proceed;
    case FailureClass::FF_T2:
      return fire(m, t, true) ? LockAction::Starve : LockAction::Proceed;
    default:
      return LockAction::Proceed;
  }
}

bool Injector::onElidedUnlock(events::MonitorId m, events::ThreadId t) {
  auto it = pendingUnlocks_.find({m, t});
  if (it == pendingUnlocks_.end() || it->second == 0) return false;
  if (--it->second == 0) pendingUnlocks_.erase(it);
  noteMutation();
  return true;
}

bool Injector::leakUnlock(events::MonitorId m, events::ThreadId t) {
  return plan_.cls == FailureClass::FF_T4 && fire(m, t, true);
}

bool Injector::releaseEarly(events::MonitorId m, events::ThreadId t) {
  if (plan_.cls != FailureClass::EF_T4 || !fire(m, t, true)) return false;
  ++pendingUnlocks_[{m, t}];
  return true;
}

bool Injector::suppressWait(events::MonitorId m, events::ThreadId t) {
  return plan_.cls == FailureClass::FF_T3 && fire(m, t, true);
}

bool Injector::suppressNotify(events::MonitorId m, events::ThreadId t,
                              bool /*all*/) {
  return plan_.cls == FailureClass::FF_T5 && fire(m, t, true);
}

bool Injector::overrideGrant(events::MonitorId m, std::size_t queueSize,
                             std::size_t& pick) {
  if (plan_.cls != FailureClass::EF_T2 || queueSize < 2) return false;
  if (!fire(m, events::kNoThread, false)) return false;
  pick = queueSize - 1;  // newest arrival: overtakes everyone queued earlier
  return true;
}

Injector::WakeInjection Injector::injectWake(events::MonitorId m,
                                             std::size_t /*waitSetSize*/) {
  if (plan_.cls == FailureClass::EF_T3 && fire(m, events::kNoThread, false)) {
    return WakeInjection::Spurious;
  }
  if (plan_.cls == FailureClass::EF_T5 && fire(m, events::kNoThread, false)) {
    return WakeInjection::Phantom;
  }
  return WakeInjection::None;
}

}  // namespace confail::inject
