#include "confail/inject/plan.hpp"

#include <sstream>

namespace confail::inject {

using taxonomy::FailureClass;

bool isInjectable(FailureClass cls) {
  switch (cls) {
    case FailureClass::FF_T1:
    case FailureClass::FF_T2:
    case FailureClass::FF_T3:
    case FailureClass::FF_T4:
    case FailureClass::FF_T5:
    case FailureClass::EF_T2:
    case FailureClass::EF_T3:
    case FailureClass::EF_T4:
    case FailureClass::EF_T5:
      return true;
    case FailureClass::EF_T1:
      return false;
  }
  return false;
}

const std::vector<FailureClass>& injectableClasses() {
  static const std::vector<FailureClass> kClasses = [] {
    std::vector<FailureClass> out;
    for (FailureClass c : taxonomy::allFailureClasses()) {
      if (isInjectable(c)) out.push_back(c);
    }
    return out;
  }();
  return kClasses;
}

const char* operatorName(FailureClass cls) {
  switch (cls) {
    case FailureClass::FF_T1: return "elide-acquire";
    case FailureClass::FF_T2: return "starve-acquire";
    case FailureClass::FF_T3: return "suppress-wait";
    case FailureClass::FF_T4: return "leak-lock";
    case FailureClass::FF_T5: return "suppress-notify";
    case FailureClass::EF_T2: return "barging-grant";
    case FailureClass::EF_T3: return "spurious-wake";
    case FailureClass::EF_T4: return "premature-release";
    case FailureClass::EF_T5: return "phantom-notify";
    case FailureClass::EF_T1: return "not-injectable";
  }
  return "?";
}

std::string InjectionPlan::describe() const {
  std::ostringstream os;
  os << taxonomy::failureClassName(cls) << ' ' << operatorName(cls);
  if (!monitor.empty()) os << " on monitor '" << monitor << "'";
  if (!victim.empty()) os << " against thread '" << victim << "'";
  if (after > 0) os << " after " << after << " occasion(s)";
  if (count != ~0ull) os << " x" << count;
  return os.str();
}

}  // namespace confail::inject
