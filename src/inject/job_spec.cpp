#include "confail/inject/job_spec.hpp"

#include <utility>

#include "confail/detect/report_sink.hpp"
#include "confail/inject/explore_config.hpp"
#include "confail/obs/json.hpp"
#include "confail/obs/metrics.hpp"
#include "confail/obs/trace_export.hpp"
#include "confail/support/assert.hpp"
#include "confail/taxonomy/taxonomy.hpp"

namespace confail::inject {

using components::scenarios::NamedScenario;
using sched::ExhaustiveExplorer;
using taxonomy::FailureClass;

const char* reductionName(ExhaustiveExplorer::Reduction r) {
  switch (r) {
    case ExhaustiveExplorer::Reduction::None: return "none";
    case ExhaustiveExplorer::Reduction::Sleep: return "sleep";
    case ExhaustiveExplorer::Reduction::Dpor: return "dpor";
  }
  return "?";
}

bool parseReduction(const std::string& name,
                    ExhaustiveExplorer::Reduction& out) {
  if (name == "none") {
    out = ExhaustiveExplorer::Reduction::None;
  } else if (name == "sleep") {
    out = ExhaustiveExplorer::Reduction::Sleep;
  } else if (name == "dpor") {
    out = ExhaustiveExplorer::Reduction::Dpor;
  } else {
    return false;
  }
  return true;
}

CampaignOptions JobSpec::campaignOptions(
    ExhaustiveExplorer::Reduction r) const {
  CampaignOptions co;
  co.maxRuns = maxRuns;
  co.maxSteps = maxSteps;
  co.maxBranchDepth = maxBranchDepth;
  co.workers = workers;
  co.reduction = r;
  co.negativeControls = negativeControls;
  return co;
}

std::string JobSpec::validate() const {
  if (name.empty()) return "job name must not be empty";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) {
      return "job name '" + name + "' has characters outside [A-Za-z0-9._-]";
    }
  }
  for (const std::string& sc : scenarios) {
    if (components::scenarios::find(sc) == nullptr) {
      return "unknown scenario '" + sc + "'";
    }
  }
  for (FailureClass cls : classes) {
    if (!isInjectable(cls)) {
      return std::string("class ") + taxonomy::failureClassName(cls) +
             " is not injectable";
    }
  }
  if (reductions.empty()) return "reductions must not be empty";
  if (maxRuns == 0) return "max_runs must be positive";
  if (maxSteps == 0) return "max_steps must be positive";
  if (maxBranchDepth == 0) return "max_branch_depth must be positive";
  if (workers == 0) return "workers must be positive";
  return "";
}

std::string JobSpec::toJson() const {
  obs::JsonWriter w;
  w.beginObject();
  w.field("schema", "confail.job.v1");
  w.field("name", name);
  w.key("scenarios");
  w.beginArray();
  for (const std::string& sc : scenarios) w.value(sc);
  w.endArray();
  w.key("classes");
  w.beginArray();
  for (FailureClass cls : classes) w.value(taxonomy::failureClassName(cls));
  w.endArray();
  w.key("reductions");
  w.beginArray();
  for (auto r : reductions) w.value(reductionName(r));
  w.endArray();
  w.field("max_runs", maxRuns);
  w.field("max_steps", maxSteps);
  w.field("max_branch_depth", static_cast<std::uint64_t>(maxBranchDepth));
  w.field("workers", static_cast<std::uint64_t>(workers));
  w.field("negative_controls", negativeControls);
  w.endObject();
  return w.str();
}

namespace {

/// Read an optional non-negative integer field; false + diagnostic on a
/// type mismatch (absent fields keep the spec's default).
bool readCount(const obs::JsonValue& doc, const std::string& key,
               std::uint64_t& out, std::string& error) {
  const obs::JsonValue* v = doc.get(key);
  if (v == nullptr) return true;
  if (!v->isNumber() || v->number < 0) {
    error = key + " must be a non-negative number";
    return false;
  }
  out = static_cast<std::uint64_t>(v->number);
  return true;
}

}  // namespace

bool JobSpec::parse(const std::string& json, JobSpec& out,
                    std::string& error) {
  obs::JsonValue doc;
  try {
    doc = obs::parseJson(json);
  } catch (const Error& e) {
    error = e.what();
    return false;
  }
  if (!doc.isObject()) {
    error = "job document must be a JSON object";
    return false;
  }
  const obs::JsonValue* schema = doc.get("schema");
  if (schema == nullptr || schema->string != "confail.job.v1") {
    error = "missing or unsupported schema (want confail.job.v1)";
    return false;
  }
  JobSpec spec;
  if (const obs::JsonValue* v = doc.get("name")) {
    if (v->kind != obs::JsonValue::Kind::String) {
      error = "name must be a string";
      return false;
    }
    spec.name = v->string;
  }
  if (const obs::JsonValue* v = doc.get("scenarios")) {
    if (!v->isArray()) {
      error = "scenarios must be an array of strings";
      return false;
    }
    for (const obs::JsonValue& e : v->array) {
      if (e.kind != obs::JsonValue::Kind::String) {
        error = "scenarios must be an array of strings";
        return false;
      }
      spec.scenarios.push_back(e.string);
    }
  }
  if (const obs::JsonValue* v = doc.get("classes")) {
    if (!v->isArray()) {
      error = "classes must be an array of Table 1 class names";
      return false;
    }
    for (const obs::JsonValue& e : v->array) {
      FailureClass cls;
      if (e.kind != obs::JsonValue::Kind::String ||
          !taxonomy::parseFailureClass(e.string, cls)) {
        error = "unknown failure class '" + e.string + "'";
        return false;
      }
      spec.classes.push_back(cls);
    }
  }
  if (const obs::JsonValue* v = doc.get("reductions")) {
    if (!v->isArray()) {
      error = "reductions must be an array of none|sleep|dpor";
      return false;
    }
    spec.reductions.clear();
    for (const obs::JsonValue& e : v->array) {
      ExhaustiveExplorer::Reduction r;
      if (e.kind != obs::JsonValue::Kind::String ||
          !parseReduction(e.string, r)) {
        error = "unknown reduction '" + e.string + "' (want none|sleep|dpor)";
        return false;
      }
      spec.reductions.push_back(r);
    }
  }
  if (!readCount(doc, "max_runs", spec.maxRuns, error)) return false;
  if (!readCount(doc, "max_steps", spec.maxSteps, error)) return false;
  std::uint64_t depth = spec.maxBranchDepth;
  std::uint64_t workerCount = spec.workers;
  if (!readCount(doc, "max_branch_depth", depth, error)) return false;
  if (!readCount(doc, "workers", workerCount, error)) return false;
  spec.maxBranchDepth = static_cast<std::size_t>(depth);
  spec.workers = static_cast<std::size_t>(workerCount);
  if (const obs::JsonValue* v = doc.get("negative_controls")) {
    if (v->kind != obs::JsonValue::Kind::Bool) {
      error = "negative_controls must be a boolean";
      return false;
    }
    spec.negativeControls = v->boolean;
  }
  out = std::move(spec);
  error.clear();
  return true;
}

std::string ShardSpec::describe() const {
  std::string s = scenario;
  if (control) {
    s += " control";
  } else {
    s += " x ";
    s += taxonomy::failureClassName(cls);
  }
  s += " [";
  s += reductionName(reduction);
  s += "]";
  return s;
}

std::vector<ShardSpec> expandShards(const JobSpec& spec) {
  const std::string problem = spec.validate();
  CONFAIL_CHECK(problem.empty(), UsageError, "invalid job spec: " + problem);

  std::vector<const NamedScenario*> scs;
  if (spec.scenarios.empty()) {
    for (const NamedScenario& sc : components::scenarios::registry()) {
      scs.push_back(&sc);
    }
  } else {
    for (const std::string& name : spec.scenarios) {
      scs.push_back(components::scenarios::find(name));  // validated above
    }
  }
  std::vector<FailureClass> classes = spec.classes;
  if (classes.empty()) classes = injectableClasses();

  std::vector<ShardSpec> shards;
  auto push = [&shards](ShardSpec s) {
    s.index = shards.size();
    shards.push_back(std::move(s));
  };
  for (const NamedScenario* sc : scs) {
    for (auto r : spec.reductions) {
      for (FailureClass cls : classes) {
        if (!planApplies(cls, *sc)) continue;
        ShardSpec s;
        s.scenario = sc->name;
        s.cls = cls;
        s.reduction = r;
        push(std::move(s));
      }
    }
  }
  if (spec.negativeControls) {
    for (const NamedScenario* sc : scs) {
      if (sc->faultSeeded) continue;  // seeded scenarios are not clean
      for (auto r : spec.reductions) {
        ShardSpec s;
        s.control = true;
        s.scenario = sc->name;
        s.reduction = r;
        push(std::move(s));
      }
    }
  }
  return shards;
}

ShardResult runShard(const JobSpec& spec, const ShardSpec& shard,
                     const RunShardOptions& opts) {
  ShardResult r;
  r.spec = shard;
  const NamedScenario* sc = components::scenarios::find(shard.scenario);
  CONFAIL_CHECK(sc != nullptr, UsageError,
                "shard names unknown scenario '" + shard.scenario + "'");

  CampaignOptions co = spec.campaignOptions(shard.reduction);
  detect::ReportSink sink;
  co.sink = &sink;
  InjectionPlan plan;
  if (shard.control) {
    r.control = runControl(*sc, co);
  } else {
    plan = defaultPlanFor(shard.cls, *sc);
    r.cell = runCell(*sc, plan, co);
  }

  r.findings.reserve(sink.size());
  for (const detect::ReportSink::Entry& e : sink.entries()) {
    ShardFinding f;
    f.detector = e.detector;
    f.finding = e.finding;
    r.findings.push_back(std::move(f));
  }

  const bool needNames = opts.resolveNames && !r.findings.empty();
  if (needNames || opts.captureEvents) {
    // One deterministic captured run: the scenario's wiring assigns ids in
    // construction order, so this trace's name tables cover the ids the
    // exploration's findings carry.
    events::Trace captured;
    obs::Registry reg;
    ExploreConfig cfg;
    cfg.scenario(*sc);
    if (!shard.control) cfg.plan(plan);
    cfg.capture(captured, reg);
    if (needNames) {
      const detect::TraceNames names(captured);
      for (ShardFinding& f : r.findings) {
        if (f.finding.thread != events::kNoThread) {
          f.thread = names.threadName(f.finding.thread);
        }
        if (f.finding.thread2 != events::kNoThread) {
          f.thread2 = names.threadName(f.finding.thread2);
        }
        if (f.finding.monitor != events::kNoMonitor) {
          f.monitor = names.monitorName(f.finding.monitor);
        }
        if (f.finding.var != events::kNoVar) {
          f.var = names.varName(f.finding.var);
        }
      }
    }
    if (opts.captureEvents) r.eventsJsonl = obs::toJsonl(captured);
  }
  return r;
}

CampaignResult campaignFromShards(const JobSpec& spec,
                                  const std::vector<ShardResult>& shards) {
  CampaignResult result;
  result.options = spec.campaignOptions(spec.reductions.front());
  for (const ShardResult& s : shards) {
    if (s.spec.control) {
      result.controls.push_back(s.control);
    } else {
      result.cells.push_back(s.cell);
    }
  }
  return result;
}

JobSpec jobSpecFrom(const CampaignOptions& opts) {
  JobSpec spec;
  spec.reductions = {opts.reduction};
  spec.maxRuns = opts.maxRuns;
  spec.maxSteps = opts.maxSteps;
  spec.maxBranchDepth = opts.maxBranchDepth;
  spec.workers = opts.workers;
  spec.negativeControls = opts.negativeControls;
  return spec;
}

}  // namespace confail::inject
