// Injection campaign: the detection matrix experiment.
//
// For every scenario in the registry and every injectable Table 1 class
// that applies to it (lock classes need a monitor, wait/notify classes need
// a wait/notify protocol), the campaign explores the scenario with a fresh
// per-run Injector executing the class's default plan and runs the full
// DetectorSuite over every deviated run's trace.  The product is a
// machine-readable matrix
//
//     deviation class x scenario x detector  ->  caught / missed
//
// plus the taxonomy classifier's agreement (did the classifier's combined
// findings+run-outcome report contain the injected class?), and negative
// controls: the clean scenarios explored UNinjected must yield zero
// findings from every detector.
//
// This closes the paper's loop experimentally: Table 1 postulates the
// failure classes by HAZOP deviation of the Figure 1 transitions, and the
// campaign demonstrates each injectable deviation is (a) realizable in the
// virtual monitor and (b) caught by the battery the Testing Notes column
// prescribes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "confail/components/scenario_registry.hpp"
#include "confail/inject/plan.hpp"
#include "confail/sched/explorer.hpp"

namespace confail::detect {
class ReportSink;
}

namespace confail::inject {

struct CampaignOptions {
  std::uint64_t maxRuns = 4000;      ///< per-cell exploration budget
  std::uint64_t maxSteps = 2000;     ///< per-run step bound (spin classes!)
  std::size_t maxBranchDepth = 4;    ///< keeps each cell's tree small
  std::size_t workers = 1;           ///< 1 = deterministic cell traversal
  /// Schedule-tree reduction each cell is explored under (a campaign grid
  /// axis: the same plan can be run under none/sleep/dpor side by side).
  sched::ExhaustiveExplorer::Reduction reduction =
      sched::ExhaustiveExplorer::Reduction::None;
  bool negativeControls = true;
  /// Optional finding funnel: every detector finding from every analyzed
  /// run (deviated cells and negative controls alike) is appended here,
  /// attributed per detector — the same ReportSink the streaming ingest
  /// pipeline reports into, so campaign evidence renders as
  /// confail.findings.v1 / SARIF too.  Construct it with a cap for long
  /// campaigns; overflow is counted, not stored.  Note the sink's render
  /// methods take one NameSource, so rendering is only meaningful for
  /// single-scenario runs (ids are per-run; names are only stable within
  /// one scenario's deterministic wiring).
  detect::ReportSink* sink = nullptr;
};

/// One detector column of a matrix cell.
struct DetectorCell {
  std::string detector;
  std::uint64_t findings = 0;  ///< findings of any kind over deviated runs
  std::uint64_t hits = 0;      ///< findings classified to the injected class
};

/// One (scenario, injected class, reduction) cell.  `wallMs` and
/// `hostConcurrency` are execution provenance: when cells of one campaign
/// are computed as shards on different hosts (the `confail serve` path),
/// the merged matrix must not lose where and how fast each cell ran.
struct MatrixCell {
  std::string scenario;
  taxonomy::FailureClass cls = taxonomy::FailureClass::FF_T1;
  sched::ExhaustiveExplorer::Reduction reduction =
      sched::ExhaustiveExplorer::Reduction::None;
  InjectionPlan plan;
  std::uint64_t runs = 0;          ///< runs explored in this cell
  std::uint64_t deviatedRuns = 0;  ///< runs where the plan actually fired
  std::uint64_t failingRuns = 0;   ///< non-Completed outcomes
  bool caught = false;             ///< >=1 detector hit on the injected class
  bool classifierAgrees = false;   ///< classifier report contained the class
  double wallMs = 0.0;             ///< wall-clock of this cell's exploration
  std::uint32_t hostConcurrency = 0;  ///< hardware_concurrency of the host
  std::vector<DetectorCell> detectors;

  std::vector<std::string> caughtBy() const;
};

/// One negative-control row: a clean scenario explored uninjected.
struct ControlCell {
  std::string scenario;
  sched::ExhaustiveExplorer::Reduction reduction =
      sched::ExhaustiveExplorer::Reduction::None;
  std::uint64_t runs = 0;
  std::uint64_t findings = 0;     ///< total suite findings (must be 0)
  std::uint64_t failingRuns = 0;  ///< non-Completed outcomes (must be 0)
  double wallMs = 0.0;
  std::uint32_t hostConcurrency = 0;
};

struct CampaignResult {
  CampaignOptions options;
  std::vector<MatrixCell> cells;
  std::vector<ControlCell> controls;

  /// The acceptance predicate: every injectable class was caught (with
  /// classifier agreement) on fig2, and every negative control is silent.
  bool ok() const;

  /// Machine-readable document (schema confail.injection.v1).
  std::string toJson() const;

  /// Table 1 with a detection column (fig2 results), the per-cell matrix,
  /// the controls, and a final "INJECTION MATRIX OK|FAIL" verdict line.
  std::string human() const;
};

/// The default plan the campaign uses for `cls` on `sc` (victim threads,
/// occasion counts) — exposed so the CLI's single-plan mode and the tests
/// share it.
InjectionPlan defaultPlanFor(taxonomy::FailureClass cls,
                             const components::scenarios::NamedScenario& sc);

/// Whether the class's deviation point exists in the scenario at all.
bool planApplies(taxonomy::FailureClass cls,
                 const components::scenarios::NamedScenario& sc);

/// Run one cell (exposed for tests and the CLI's single-plan mode).
MatrixCell runCell(const components::scenarios::NamedScenario& sc,
                   const InjectionPlan& plan, const CampaignOptions& opts);

/// Run one negative control: explore `sc` uninjected and count findings.
ControlCell runControl(const components::scenarios::NamedScenario& sc,
                       const CampaignOptions& opts);

/// Run the full campaign.
CampaignResult runCampaign(const CampaignOptions& opts = CampaignOptions());

}  // namespace confail::inject
