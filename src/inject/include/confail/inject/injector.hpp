// Injector: the production InjectionHooks implementation — executes one
// InjectionPlan against one Runtime.
//
// Lifetime: construct one fresh Injector per run, after the Runtime exists
// and before any thread runs (ExploreConfig does this through the scenario
// Instruments::decorate hook).  The constructor attaches itself to the
// Runtime and registers as a fingerprint source with the scheduler; the
// destructor reverses both, and must therefore run before the Runtime dies.
//
// Determinism: the only mutable state is the occasion counter and the
// pending-unbalanced-unlock ledger.  Both are advanced exclusively at
// schedule-point-adjacent monitor operations, are hashed into the state
// fingerprint, and every mutation is reported to the scheduler as a write
// access — so fingerprint pruning and sleep-set reduction stay sound and
// the same plan deviates the same operation on every replay of a prefix.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "confail/inject/plan.hpp"
#include "confail/monitor/injection_hooks.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/fingerprint.hpp"
#include "confail/sched/snapshot.hpp"

namespace confail::inject {

class Injector final : public monitor::InjectionHooks,
                       public sched::FingerprintSource,
                       public sched::SnapshotSource {
 public:
  /// Attaches to `rt` (virtual mode only) and registers with its scheduler.
  /// Throws UsageError if the plan's class is not injectable or the runtime
  /// is in real mode.
  Injector(monitor::Runtime& rt, const InjectionPlan& plan);
  ~Injector() override;

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  const InjectionPlan& plan() const { return plan_; }

  /// Number of occasions actually deviated so far in this run.
  std::uint64_t deviationsApplied() const { return applied_; }

  std::uint64_t stateFingerprint() const override;

  /// Snapshot payload size: counters plus the pending-unlock ledger.
  std::size_t snapshotBytes() const override;

  // ---- InjectionHooks ------------------------------------------------------
  LockAction onLock(events::MonitorId m, events::ThreadId t) override;
  bool onElidedUnlock(events::MonitorId m, events::ThreadId t) override;
  bool leakUnlock(events::MonitorId m, events::ThreadId t) override;
  bool releaseEarly(events::MonitorId m, events::ThreadId t) override;
  bool suppressWait(events::MonitorId m, events::ThreadId t) override;
  bool suppressNotify(events::MonitorId m, events::ThreadId t,
                      bool all) override;
  bool overrideGrant(events::MonitorId m, std::size_t queueSize,
                     std::size_t& pick) override;
  WakeInjection injectWake(events::MonitorId m,
                           std::size_t waitSetSize) override;

 private:
  // Snapshot protocol: occasion/applied counters and the pending-unlock
  // ledger — exactly the state hashed by stateFingerprint().
  std::shared_ptr<const void> saveState() const override;
  void restoreState(const std::shared_ptr<const void>& payload) override;

  bool siteMatches(events::MonitorId m) const;
  bool victimMatches(events::ThreadId t) const;
  /// Count one applicable occasion and decide whether it deviates.
  bool fire(events::MonitorId m, events::ThreadId t, bool checkVictim);
  /// Report a state mutation to the scheduler (sleep-set soundness).
  void noteMutation();

  monitor::Runtime& rt_;
  InjectionPlan plan_;
  std::uint64_t occasions_ = 0;
  std::uint64_t applied_ = 0;
  /// (monitor, thread) pairs whose next unowned unlock() must be swallowed:
  /// incremented by an elided acquire (FF-T1) or a premature release
  /// (EF-T4), consumed by onElidedUnlock.
  std::map<std::pair<events::MonitorId, events::ThreadId>, std::uint32_t>
      pendingUnlocks_;
};

}  // namespace confail::inject
