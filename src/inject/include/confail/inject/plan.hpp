// InjectionPlan: one deviation experiment, declaratively.
//
// A plan names the Table 1 failure class to realize, where to apply it
// (optionally restricted to one monitor and/or one victim thread) and when
// (skip the first `after` applicable occasions, then deviate `count` of
// them).  The Injector turns the plan into InjectionHooks behavior; because
// occasions are counted along the deterministic virtual schedule, the same
// plan + the same schedule prefix always deviates the same operation — no
// seeds, fully replayable.
//
// Injectable classes and their operators:
//   FF-T1  elide acquire      lock() skipped; thread runs unsynchronized
//   FF-T2  starve acquire     T1 emitted, grant withheld forever
//   FF-T3  suppress wait      wait() returns immediately, no T3
//   FF-T4  leak lock          outermost unlock() keeps ownership, no T4
//   FF-T5  suppress notify    notify()/notifyAll() lost, no call, no wake
//   EF-T2  barging grant      grant overtakes the entry queue (broken JVM)
//   EF-T3  spurious wake      a waiter wakes with SpuriousWake, no notify
//   EF-T4  premature release  T4 fired right after the grant; code continues
//   EF-T5  phantom notify     a waiter wakes with Notified, no call behind it
//
// Not injectable: EF-T1 (unnecessary synchronization is structure, not a
// run-time transition the hooks can force) and the paper marks EF-T2 "not
// applicable" under a correct JVM — injecting it simulates a broken one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "confail/taxonomy/taxonomy.hpp"

namespace confail::inject {

struct InjectionPlan {
  /// The Table 1 class this plan realizes.  Must be injectable (see
  /// isInjectable); the Injector constructor enforces it.
  taxonomy::FailureClass cls = taxonomy::FailureClass::FF_T5;

  /// Monitor name the deviation is confined to; empty = any monitor.
  std::string monitor;

  /// Thread name (scheduler spawn name) the deviation targets; empty = any
  /// thread.  Meaningless for the classes whose deviation point has no
  /// single acting thread (EF-T2 grant choice, EF-T3/EF-T5 injected wakes).
  std::string victim;

  /// Skip the first `after` applicable occasions before deviating.
  std::uint64_t after = 0;

  /// Deviate this many occasions, then fall back to normal semantics.
  std::uint64_t count = ~0ull;

  /// One-line human rendering ("EF-T4 premature release on monitor 'buf'").
  std::string describe() const;
};

/// True if the class has a deviation operator (all of Table 1 except EF-T1).
bool isInjectable(taxonomy::FailureClass cls);

/// The injectable classes, in Table 1 row order.
const std::vector<taxonomy::FailureClass>& injectableClasses();

/// Short operator name for an injectable class ("elide-acquire", ...).
const char* operatorName(taxonomy::FailureClass cls);

}  // namespace confail::inject
