// ExploreConfig: one builder that owns the wiring of an exploration run —
// scenario selection, explorer options, metrics registry, stderr progress
// heartbeat, optional deviation injection, per-run trace capture, and the
// summary/coverage assembly that used to be hand-rolled inside
// confail_explore.
//
// This is the front door for everything that explores a scenario: the
// `confail explore` and `confail inject` CLI verbs, the injection campaign
// driver and the tests all build on it, so the wiring exists exactly once.
// The previously public plumbing it replaces — wiring a Runtime's metrics
// registry and coverage gauges by hand, or hand-assembling
// scenarios::Instruments — still works but is deprecated; see
// docs/injection.md ("Migration").
//
// Determinism contract: with no metrics, no progress and no observer, an
// exploration through ExploreConfig is byte-identical to the legacy
// confail_explore pipeline (same program construction, same stats, same
// summary rendering), including the workers-1-vs-N identical-stats
// guarantee the explorer provides.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "confail/components/scenario_registry.hpp"
#include "confail/inject/plan.hpp"
#include "confail/obs/summary.hpp"
#include "confail/sched/explorer.hpp"

namespace confail::obs {
class Registry;
}

namespace confail::inject {

/// One explored run as seen by a RunObserver.  `trace` is non-null only
/// when per-run capture is on (an injection plan or captureRuns(true));
/// it points at the run's private trace and is valid for the duration of
/// the observer call.
struct RunView {
  const std::vector<sched::ThreadId>& schedule;
  const sched::RunResult& result;
  const events::Trace* trace = nullptr;
  std::uint64_t deviationsApplied = 0;
};

class ExploreConfig {
 public:
  /// Observer invoked after every run, serialized across workers (same
  /// contract as ExhaustiveExplorer::RunCallback).  Return false to stop.
  using RunObserver = std::function<bool(const RunView&)>;

  ExploreConfig();

  /// Select the scenario (required before explore()/capture()).
  ExploreConfig& scenario(const components::scenarios::NamedScenario& sc);
  /// Select by registry name; throws UsageError when unknown.
  ExploreConfig& scenario(const std::string& name);

  /// Explorer options (workers, bounds, reductions).  The metrics field is
  /// overwritten by metrics() below.
  ExploreConfig& explorer(const sched::ExhaustiveExplorer::Options& eo);

  /// Attach a metrics registry to the explorer, the schedulers and every
  /// monitor the scenario builds.  Null detaches.
  ExploreConfig& metrics(obs::Registry* reg);

  /// Emit the standard heartbeat lines on stderr during exploration.
  ExploreConfig& stderrProgress();

  /// Activate deviation injection: every run gets a fresh Injector
  /// executing this plan.  Implies per-run trace capture.
  ExploreConfig& plan(const InjectionPlan& p);

  /// Capture a per-run trace even without an injection plan, so a
  /// RunObserver can feed detectors.
  ExploreConfig& captureRuns(bool on = true);

  const components::scenarios::NamedScenario* scenarioInfo() const {
    return sc_;
  }
  const sched::ExhaustiveExplorer::Options& explorerOptions() const {
    return eo_;
  }

  struct Outcome {
    const components::scenarios::NamedScenario* scenario = nullptr;
    sched::ExhaustiveExplorer::Stats stats;
    std::size_t distinctDeadlockStates = 0;
    double elapsedMs = 0.0;
    bool instrumented = false;
    bool reductionsEnabled = false;

    /// The standard report (confail_explore's output body).  Wall-clock
    /// fields are filled only when instrumented, preserving the
    /// byte-identical default-output contract.
    obs::ExploreSummary summary() const;
  };

  /// Run the exploration.  Throws UsageError if no scenario was selected.
  Outcome explore(const RunObserver& onRun = nullptr) const;

  /// Execute one round-robin run of the scenario with an external trace
  /// (for the Chrome export) and a metrics registry, honoring the injection
  /// plan if one is set, then publish CoFG arc coverage of the captured
  /// events when the scenario has the buffer.
  void capture(events::Trace& trace, obs::Registry& metricsReg) const;

  /// Hash of the blocked-thread multiset of a deadlocked run — two
  /// deadlocks with equal signatures stuck in the same final state.
  static std::uint64_t deadlockSignature(const sched::RunResult& r);

 private:
  const components::scenarios::NamedScenario* sc_ = nullptr;
  sched::ExhaustiveExplorer::Options eo_;
  obs::Registry* metrics_ = nullptr;
  bool progress_ = false;
  bool hasPlan_ = false;
  InjectionPlan plan_;
  bool captureRuns_ = false;
};

}  // namespace confail::inject
