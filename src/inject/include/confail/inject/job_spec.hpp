// JobSpec: one campaign described declaratively — the single grid spec
// shared by `confail inject --campaign`, the `confail serve` daemon and the
// `confail submit` client, replacing the per-verb ad-hoc flag plumbing.
//
// A job names a (scenario x reduction x injection-plan) grid plus the
// per-cell exploration budgets; it parses from and renders to the
// machine-readable `confail.job.v1` JSON document.  expandShards() turns a
// spec into its deterministic shard list: one shard per applicable
// (scenario, reduction, class) cell followed by one per negative control.
// Shard order is part of the contract — the campaign driver, the daemon's
// checkpointed shard files and the merged reports all index shards the same
// way, which is what makes a resumed campaign byte-identical to an
// uninterrupted one.
//
// runShard() executes one shard in isolation (this is what the `confail
// worker` subprocess runs) and campaignFromShards() folds ordered shard
// results back into the CampaignResult the one-shot CLI has always
// produced; runCampaign() is now exactly expandShards + runShard +
// campaignFromShards in one process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "confail/detect/finding.hpp"
#include "confail/inject/campaign.hpp"

namespace confail::inject {

/// "none" / "sleep" / "dpor" — the grid axis spelling of the explorer's
/// reduction modes (shared by the CLI flags and the job JSON).
const char* reductionName(sched::ExhaustiveExplorer::Reduction r);
bool parseReduction(const std::string& name,
                    sched::ExhaustiveExplorer::Reduction& out);

struct JobSpec {
  /// Campaign label; becomes part of the job id and the report source.
  /// Restricted to [A-Za-z0-9._-] so it embeds into file names.
  std::string name = "campaign";

  /// Scenario grid axis; empty = every registry scenario.
  std::vector<std::string> scenarios;

  /// Injected-class grid axis; empty = every injectable Table 1 class.
  std::vector<taxonomy::FailureClass> classes;

  /// Reduction grid axis; never empty (defaults to {None}).
  std::vector<sched::ExhaustiveExplorer::Reduction> reductions = {
      sched::ExhaustiveExplorer::Reduction::None};

  // Per-cell exploration budgets (the CampaignOptions fields).
  std::uint64_t maxRuns = 4000;
  std::uint64_t maxSteps = 2000;
  std::size_t maxBranchDepth = 4;
  std::size_t workers = 1;
  bool negativeControls = true;

  /// The per-cell options for one reduction of the grid.
  CampaignOptions campaignOptions(
      sched::ExhaustiveExplorer::Reduction r) const;

  /// Semantic validation: unknown scenarios, non-injectable classes, zero
  /// budgets, bad name charset.  Returns "" when the spec is runnable.
  std::string validate() const;

  /// Render as a confail.job.v1 document (canonical field order, so equal
  /// specs render byte-identically — job ids hash this rendering).
  std::string toJson() const;

  /// Parse a confail.job.v1 document.  Returns false with a diagnostic in
  /// `error` on malformed JSON, a wrong schema tag or a type mismatch;
  /// semantic checks are validate()'s job.
  static bool parse(const std::string& json, JobSpec& out,
                    std::string& error);
};

/// One unit of campaign work: a single matrix cell or negative control.
struct ShardSpec {
  std::size_t index = 0;  ///< position in the job's shard list
  bool control = false;   ///< negative control (uninjected) shard
  std::string scenario;
  taxonomy::FailureClass cls = taxonomy::FailureClass::FF_T5;  ///< !control
  sched::ExhaustiveExplorer::Reduction reduction =
      sched::ExhaustiveExplorer::Reduction::None;

  /// "fig2 x FF-T5 [none]" / "fig2 control [dpor]".
  std::string describe() const;
};

/// The deterministic shard list of a spec: injection cells first (scenario
///-major, then reduction, then class, skipping classes whose deviation
/// point the scenario lacks), then negative controls over the clean
/// scenarios.  Throws UsageError on a spec that fails validate().
std::vector<ShardSpec> expandShards(const JobSpec& spec);

/// One finding of a shard with its names resolved (ids are only meaningful
/// within one scenario's deterministic wiring, so shards resolve them
/// before results leave the worker — this is what lets a multi-host merge
/// re-intern ids without losing identity).
struct ShardFinding {
  std::string detector;
  detect::Finding finding;
  std::string thread;
  std::string thread2;
  std::string monitor;
  std::string var;
};

struct ShardResult {
  ShardSpec spec;
  MatrixCell cell;      ///< filled for injection shards
  ControlCell control;  ///< filled for control shards
  std::vector<ShardFinding> findings;
  /// One captured run of the shard's configuration as JSONL events
  /// (obs::toJsonl) — the daemon's per-shard heartbeat feed, consumable by
  /// `confail ingest`.  Filled only when requested.
  std::string eventsJsonl;
};

struct RunShardOptions {
  /// Resolve finding names (needs one extra captured run when the shard
  /// produced findings).  The in-process campaign driver turns this off.
  bool resolveNames = true;
  /// Also capture the shard's run as JSONL events (see eventsJsonl).
  bool captureEvents = false;
};

/// Execute one shard.  Deterministic: the same spec + shard always produce
/// the same counters and the same finding sequence.
ShardResult runShard(const JobSpec& spec, const ShardSpec& shard,
                     const RunShardOptions& opts = {});

/// Fold ordered shard results into the classic campaign result.  `shards`
/// must be in expandShards order (the caller sorts by ShardSpec::index).
CampaignResult campaignFromShards(const JobSpec& spec,
                                  const std::vector<ShardResult>& shards);

/// The legacy whole-registry grid for a CampaignOptions (what runCampaign
/// has always explored): all scenarios, all injectable classes, the
/// options' single reduction.
JobSpec jobSpecFrom(const CampaignOptions& opts);

}  // namespace confail::inject
