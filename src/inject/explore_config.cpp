#include "confail/inject/explore_config.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <set>

#include "confail/cofg/cofg.hpp"
#include "confail/cofg/coverage.hpp"
#include "confail/components/bounded_buffer.hpp"
#include "confail/inject/injector.hpp"
#include "confail/obs/metrics.hpp"
#include "confail/support/assert.hpp"

namespace confail::inject {

namespace scenarios = confail::components::scenarios;
using confail::components::BoundedBuffer;

namespace {

/// Per-run bridge between the program closure (which builds the run's
/// private trace and Injector) and the explorer's run callback.  Both
/// execute on the same worker thread, so a thread_local slot carries the
/// capsule across.  The capsule itself holds only passive data (the trace
/// and the copied-out deviation count), so deferring its destruction to the
/// next run on the worker is harmless; the Injector is owned separately by
/// the scenario state and dies with it, while the Runtime is still alive.
struct Capsule {
  events::Trace trace;
  Injector* injector = nullptr;  ///< borrowed; nulled when the owner dies
  std::uint64_t applied = 0;     ///< deviation count, saved at detach
};

thread_local std::shared_ptr<Capsule> tlsCapsule;

/// Owned by the scenario State (via Instruments::decorate's return value):
/// destroys the Injector while the Runtime is still alive and copies its
/// deviation count into the longer-lived capsule.
struct Decoration {
  std::shared_ptr<Capsule> capsule;
  std::unique_ptr<Injector> injector;
  ~Decoration() {
    if (injector != nullptr) capsule->applied = injector->deviationsApplied();
    capsule->injector = nullptr;
  }
};

}  // namespace

ExploreConfig::ExploreConfig() {
  // The legacy confail_explore defaults (its Options tightened maxSteps).
  eo_.maxRuns = 10000;
  eo_.maxSteps = 20000;
}

ExploreConfig& ExploreConfig::scenario(
    const components::scenarios::NamedScenario& sc) {
  sc_ = &sc;
  return *this;
}

ExploreConfig& ExploreConfig::scenario(const std::string& name) {
  const components::scenarios::NamedScenario* sc =
      components::scenarios::find(name);
  CONFAIL_CHECK(sc != nullptr, UsageError,
                "ExploreConfig: unknown scenario '" + name + "'");
  sc_ = sc;
  return *this;
}

ExploreConfig& ExploreConfig::explorer(
    const sched::ExhaustiveExplorer::Options& eo) {
  eo_ = eo;
  return *this;
}

ExploreConfig& ExploreConfig::metrics(obs::Registry* reg) {
  metrics_ = reg;
  return *this;
}

ExploreConfig& ExploreConfig::stderrProgress() {
  progress_ = true;
  return *this;
}

ExploreConfig& ExploreConfig::plan(const InjectionPlan& p) {
  hasPlan_ = true;
  plan_ = p;
  return *this;
}

ExploreConfig& ExploreConfig::captureRuns(bool on) {
  captureRuns_ = on;
  return *this;
}

std::uint64_t ExploreConfig::deadlockSignature(const sched::RunResult& r) {
  std::uint64_t h = sched::kFpSeed;
  for (const sched::BlockedThreadInfo& b : r.blocked) {
    h = sched::fpMix(h, (static_cast<std::uint64_t>(b.id) << 32) ^
                            static_cast<std::uint64_t>(b.kind));
    h = sched::fpMix(h, b.resource);
  }
  return h;
}

obs::ExploreSummary ExploreConfig::Outcome::summary() const {
  obs::ExploreSummary s;
  s.scenario = scenario != nullptr ? scenario->name : "";
  s.runs = stats.runs;
  s.completed = stats.completed;
  s.deadlocks = stats.deadlocks;
  s.stepLimited = stats.stepLimited;
  s.exceptions = stats.exceptions;
  s.dedupedStates = stats.dedupedStates;
  s.prunedBranches = stats.prunedBranches;
  s.distinctDeadlockStates = distinctDeadlockStates;
  s.exhausted = stats.exhausted;
  s.stoppedByCallback = stats.stoppedByCallback;
  s.reductionsEnabled = reductionsEnabled;
  s.firstFailure = stats.firstFailure;
  if (!stats.firstFailure.empty()) {
    s.firstFailureOutcome = sched::outcomeName(stats.firstFailureOutcome);
  }
  // Wall time is the one nondeterministic output; report it only when
  // observability was asked for, so the default (and --json) output keeps
  // the byte-identical workers-1-vs-N contract the tests diff on.
  if (instrumented) {
    s.elapsedMs = elapsedMs;
    s.runsPerSec = elapsedMs > 0.0
                       ? static_cast<double>(stats.runs) * 1000.0 / elapsedMs
                       : 0.0;
  }
  return s;
}

ExploreConfig::Outcome ExploreConfig::explore(const RunObserver& onRun) const {
  CONFAIL_CHECK(sc_ != nullptr, UsageError,
                "ExploreConfig: no scenario selected");
  const components::scenarios::NamedScenario& sc = *sc_;

  sched::ExhaustiveExplorer::Options eo = eo_;
  eo.metrics = metrics_;
  if (progress_) {
    eo.progressIntervalRuns = eo.maxRuns >= 100 ? eo.maxRuns / 20 : 10;
    eo.onProgress = [](const sched::ExhaustiveExplorer::Progress& p) {
      std::fprintf(stderr,
                   "[progress] runs=%llu queue=%lld steals=%llu "
                   "elapsed=%.1fs (%.0f runs/sec)\n",
                   static_cast<unsigned long long>(p.runs),
                   static_cast<long long>(p.queueDepth),
                   static_cast<unsigned long long>(p.steals), p.elapsedSec,
                   p.runsPerSec);
    };
  }

  const bool capsules = hasPlan_ || captureRuns_;

  // The program.  Three shapes, from cheapest to fullest:
  //   plain            — the raw scenario function (the legacy default);
  //   instrumented     — shared metrics registry only (atomic counters are
  //                      safe under parallel workers, a shared trace is not);
  //   capsule          — a per-run private trace (and Injector, when a plan
  //                      is set), bridged to the run callback via TLS.
  sched::ExhaustiveExplorer::Program program;
  if (capsules) {
    const InjectionPlan* planPtr = hasPlan_ ? &plan_ : nullptr;
    obs::Registry* reg = metrics_;
    program = [&sc, planPtr, reg](sched::VirtualScheduler& s) {
      auto capsule = std::make_shared<Capsule>();
      scenarios::Instruments ins;
      ins.trace = &capsule->trace;
      ins.metrics = reg;
      ins.decorate =
          [capsule, planPtr](monitor::Runtime& rt) -> std::shared_ptr<void> {
        auto deco = std::make_shared<Decoration>();
        deco->capsule = capsule;
        if (planPtr != nullptr) {
          deco->injector = std::make_unique<Injector>(rt, *planPtr);
          capsule->injector = deco->injector.get();
        }
        return deco;
      };
      tlsCapsule = capsule;
      sc.ifn(s, ins);
    };
  } else if (metrics_ != nullptr) {
    scenarios::Instruments ins;
    ins.metrics = metrics_;
    program = [&sc, ins](sched::VirtualScheduler& s) { sc.ifn(s, ins); };
  } else {
    program = sc.fn;
  }

  std::set<std::uint64_t> deadlockSigs;
  sched::ExhaustiveExplorer explorer(eo);
  Outcome out;
  out.scenario = sc_;
  out.instrumented = metrics_ != nullptr || progress_;
  out.reductionsEnabled =
      eo.fingerprintPruning ||
      eo.reduction != sched::ExhaustiveExplorer::Reduction::None;
  const auto t0 = std::chrono::steady_clock::now();
  out.stats = explorer.explore(
      program, [&deadlockSigs, &onRun, capsules](
                   const std::vector<sched::ThreadId>& schedule,
                   const sched::RunResult& r) {
        if (r.outcome == sched::Outcome::Deadlock) {
          deadlockSigs.insert(deadlockSignature(r));
        }
        if (!onRun) return true;
        RunView view{schedule, r};
        if (capsules && tlsCapsule != nullptr) {
          // Same worker thread as the program that filled the slot; the
          // run's scheduler (and thus the scenario state and Injector) is
          // still alive while the callback runs.
          view.trace = &tlsCapsule->trace;
          view.deviationsApplied = tlsCapsule->injector != nullptr
                                       ? tlsCapsule->injector->deviationsApplied()
                                       : tlsCapsule->applied;
        }
        return onRun(view);
      });
  out.elapsedMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  out.distinctDeadlockStates = deadlockSigs.size();
  return out;
}

void ExploreConfig::capture(events::Trace& trace,
                            obs::Registry& metricsReg) const {
  CONFAIL_CHECK(sc_ != nullptr, UsageError,
                "ExploreConfig: no scenario selected");
  const components::scenarios::NamedScenario& sc = *sc_;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler::Options so;
  so.maxSteps = eo_.maxSteps;
  sched::VirtualScheduler s(strategy, so);
  scenarios::Instruments ins;
  ins.trace = &trace;
  ins.metrics = &metricsReg;
  if (hasPlan_) {
    const InjectionPlan plan = plan_;
    ins.decorate = [plan](monitor::Runtime& rt) -> std::shared_ptr<void> {
      return std::make_shared<Injector>(rt, plan);
    };
  }
  sc.ifn(s, ins);
  (void)s.run();  // deadlock / step limit is fine; the trace is the product

  if (!sc.hasBuffer) return;
  const std::vector<events::Event> evs = trace.events();
  const cofg::Cofg putGraph = cofg::Cofg::build(BoundedBuffer<int>::putModel());
  const cofg::Cofg takeGraph =
      cofg::Cofg::build(BoundedBuffer<int>::takeModel());
  cofg::CoverageTracker put(putGraph, trace.findMethod("buf.put"));
  cofg::CoverageTracker take(takeGraph, trace.findMethod("buf.take"));
  put.process(evs);
  take.process(evs);
  put.publishTo(metricsReg, "cofg.put");
  take.publishTo(metricsReg, "cofg.take");
  const double covered =
      static_cast<double>(put.coveredArcs() + take.coveredArcs());
  const double total = static_cast<double>(put.totalArcs() + take.totalArcs());
  metricsReg.gauge("cofg.arcs_covered").set(covered);
  metricsReg.gauge("cofg.arcs_total").set(total);
  metricsReg.gauge("cofg.coverage").set(total > 0.0 ? covered / total : 1.0);
}

}  // namespace confail::inject
