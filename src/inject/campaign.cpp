#include "confail/inject/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <thread>

#include "confail/detect/report_sink.hpp"
#include "confail/detect/suite.hpp"
#include "confail/inject/explore_config.hpp"
#include "confail/inject/job_spec.hpp"
#include "confail/obs/json.hpp"
#include "confail/taxonomy/classifier.hpp"
#include "confail/taxonomy/table1.hpp"

namespace confail::inject {

using components::scenarios::NamedScenario;
using taxonomy::FailureClass;

bool planApplies(FailureClass cls, const NamedScenario& sc) {
  if (!isInjectable(cls)) return false;
  switch (cls) {
    case FailureClass::FF_T1:
    case FailureClass::FF_T2:
    case FailureClass::FF_T4:
    case FailureClass::EF_T2:
    case FailureClass::EF_T4:
      return sc.usesMonitor;
    case FailureClass::FF_T3:
    case FailureClass::FF_T5:
    case FailureClass::EF_T3:
    case FailureClass::EF_T5:
      return sc.usesWaitNotify;
    default:
      return false;
  }
}

InjectionPlan defaultPlanFor(FailureClass cls, const NamedScenario& sc) {
  InjectionPlan p;
  p.cls = cls;
  switch (cls) {
    case FailureClass::FF_T1:
      p.count = 1;  // one elided acquire: the race exists from then on
      break;
    case FailureClass::FF_T2:
      p.victim = sc.starveVictim;  // starve one named thread forever
      break;
    case FailureClass::FF_T3:
      break;  // suppress every wait: the guard loop degenerates to a spin
    case FailureClass::FF_T4:
      break;  // leak every outermost unlock
    case FailureClass::FF_T5:
      break;  // lose every notification
    case FailureClass::EF_T2:
      break;  // barge on every multi-entry grant
    case FailureClass::EF_T3:
      p.count = 1;  // one spurious wakeup
      break;
    case FailureClass::EF_T4:
      p.count = 1;  // one premature release
      break;
    case FailureClass::EF_T5:
      p.count = 1;  // one phantom notification
      break;
    default:
      break;
  }
  return p;
}

std::vector<std::string> MatrixCell::caughtBy() const {
  std::vector<std::string> out;
  for (const DetectorCell& d : detectors) {
    if (d.hits > 0) out.push_back(d.detector);
  }
  return out;
}

namespace {

sched::ExhaustiveExplorer::Options explorerOptions(
    const CampaignOptions& opts) {
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = opts.maxRuns;
  eo.maxSteps = opts.maxSteps;
  eo.maxBranchDepth = opts.maxBranchDepth;
  eo.workers = opts.workers;
  eo.reduction = opts.reduction;
  return eo;
}

double elapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

detect::DetectorSuite::Options suiteOptions() {
  detect::DetectorSuite::Options so;
  // Every registry scenario's monitors use the default Fifo policies, so
  // the barging oracle (EF-T2) is sound here; lower the starvation
  // threshold so a starved acquire is also caught in-trace within the
  // campaign's small step budget.
  so.flagBarging = true;
  so.starvationGrantThreshold = 20;
  return so;
}

}  // namespace

MatrixCell runCell(const NamedScenario& sc, const InjectionPlan& plan,
                   const CampaignOptions& opts) {
  MatrixCell cell;
  cell.scenario = sc.name;
  cell.cls = plan.cls;
  cell.reduction = opts.reduction;
  cell.plan = plan;
  cell.hostConcurrency = std::thread::hardware_concurrency();
  const auto started = std::chrono::steady_clock::now();

  detect::DetectorSuite suite(suiteOptions());
  for (const auto& d : suite.detectors()) {
    cell.detectors.push_back(DetectorCell{d->name()});
  }

  ExploreConfig cfg;
  cfg.scenario(sc).plan(plan).explorer(explorerOptions(opts));
  (void)cfg.explore([&](const RunView& view) {
    ++cell.runs;
    if (view.result.outcome != sched::Outcome::Completed) ++cell.failingRuns;
    if (view.deviationsApplied == 0 || view.trace == nullptr) return true;
    ++cell.deviatedRuns;

    const auto reports = suite.analyzeEach(*view.trace);
    std::vector<detect::Finding> all;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      cell.detectors[i].findings += reports[i].findings.size();
      if (opts.sink != nullptr) {
        opts.sink->addAll(reports[i].detector, reports[i].findings);
      }
      for (const detect::Finding& f : reports[i].findings) {
        const auto classes = taxonomy::Classifier::classesOf(f.kind);
        if (std::find(classes.begin(), classes.end(), plan.cls) !=
            classes.end()) {
          ++cell.detectors[i].hits;
          cell.caught = true;
        }
      }
      all.insert(all.end(), reports[i].findings.begin(),
                 reports[i].findings.end());
    }
    if (!cell.classifierAgrees) {
      taxonomy::FailureReport report;
      taxonomy::Classifier::addFindings(report, all, *view.trace);
      taxonomy::Classifier::addRunOutcome(report, view.result, *view.trace);
      if (report.has(plan.cls)) cell.classifierAgrees = true;
    }
    // The cell's question is answered once the class is both caught by a
    // detector and confirmed by the classifier; stop spending runs on it.
    return !(cell.caught && cell.classifierAgrees);
  });
  cell.wallMs = elapsedMs(started);
  return cell;
}

ControlCell runControl(const NamedScenario& sc, const CampaignOptions& opts) {
  ControlCell cell;
  cell.scenario = sc.name;
  cell.reduction = opts.reduction;
  cell.hostConcurrency = std::thread::hardware_concurrency();
  const auto started = std::chrono::steady_clock::now();
  detect::DetectorSuite suite(suiteOptions());
  ExploreConfig cfg;
  cfg.scenario(sc).captureRuns().explorer(explorerOptions(opts));
  (void)cfg.explore([&](const RunView& view) {
    ++cell.runs;
    if (view.result.outcome != sched::Outcome::Completed) ++cell.failingRuns;
    if (view.trace != nullptr) {
      for (const auto& report : suite.analyzeEach(*view.trace)) {
        cell.findings += report.findings.size();
        if (opts.sink != nullptr) {
          opts.sink->addAll(report.detector, report.findings);
        }
      }
    }
    return true;
  });
  cell.wallMs = elapsedMs(started);
  return cell;
}

CampaignResult runCampaign(const CampaignOptions& opts) {
  // The one-shot campaign is the serve path run serially: expand the legacy
  // whole-registry grid into shards and fold the results back together.
  // Findings funnel into opts.sink in shard order, exactly as the old
  // nested-loop driver appended them.
  const JobSpec spec = jobSpecFrom(opts);
  RunShardOptions shardOpts;
  shardOpts.resolveNames = false;  // names are unused on this path
  std::vector<ShardResult> results;
  for (const ShardSpec& shard : expandShards(spec)) {
    results.push_back(runShard(spec, shard, shardOpts));
    if (opts.sink != nullptr) {
      for (const ShardFinding& f : results.back().findings) {
        opts.sink->add(f.detector, f.finding);
      }
    }
  }
  return campaignFromShards(spec, results);
}

bool CampaignResult::ok() const {
  // Every injectable class must be caught (with classifier agreement) on
  // the reference scenario.
  for (FailureClass cls : injectableClasses()) {
    bool found = false;
    for (const MatrixCell& c : cells) {
      if (c.scenario == "fig2" && c.cls == cls) {
        if (!c.caught || !c.classifierAgrees) return false;
        found = true;
      }
    }
    if (!found) return false;
  }
  for (const ControlCell& c : controls) {
    if (c.findings != 0 || c.failingRuns != 0) return false;
  }
  return true;
}

std::string CampaignResult::toJson() const {
  obs::JsonWriter w;
  w.beginObject();
  w.field("schema", "confail.injection.v1");
  w.key("options");
  w.beginObject();
  w.field("max_runs", options.maxRuns);
  w.field("max_steps", options.maxSteps);
  w.field("max_branch_depth",
          static_cast<std::uint64_t>(options.maxBranchDepth));
  w.field("workers", static_cast<std::uint64_t>(options.workers));
  w.field("reduction", reductionName(options.reduction));
  w.endObject();
  w.key("matrix");
  w.beginArray();
  for (const MatrixCell& c : cells) {
    w.beginObject();
    w.field("scenario", c.scenario);
    w.field("class", taxonomy::failureClassName(c.cls));
    w.field("operator", operatorName(c.cls));
    w.field("reduction", reductionName(c.reduction));
    w.field("plan", c.plan.describe());
    w.field("runs", c.runs);
    w.field("deviated_runs", c.deviatedRuns);
    w.field("failing_runs", c.failingRuns);
    w.field("caught", c.caught);
    w.field("classifier_agrees", c.classifierAgrees);
    w.field("wall_ms", c.wallMs);
    w.field("host_concurrency", static_cast<std::uint64_t>(c.hostConcurrency));
    w.key("caught_by");
    w.beginArray();
    for (const std::string& name : c.caughtBy()) w.value(name);
    w.endArray();
    w.key("detectors");
    w.beginObject();
    for (const DetectorCell& d : c.detectors) {
      w.key(d.detector);
      w.beginObject();
      w.field("findings", d.findings);
      w.field("hits", d.hits);
      w.endObject();
    }
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.key("controls");
  w.beginArray();
  for (const ControlCell& c : controls) {
    w.beginObject();
    w.field("scenario", c.scenario);
    w.field("reduction", reductionName(c.reduction));
    w.field("runs", c.runs);
    w.field("findings", c.findings);
    w.field("failing_runs", c.failingRuns);
    w.field("wall_ms", c.wallMs);
    w.field("host_concurrency", static_cast<std::uint64_t>(c.hostConcurrency));
    w.endObject();
  }
  w.endArray();
  w.field("ok", ok());
  w.endObject();
  return w.str();
}

std::string CampaignResult::human() const {
  std::ostringstream os;

  // Table 1 with the fig2 detection column.
  std::map<FailureClass, std::string> column;
  for (FailureClass cls : taxonomy::allFailureClasses()) {
    if (!isInjectable(cls)) {
      column[cls] = "not injectable (structural)";
      continue;
    }
    std::string entry = "MISSED";
    for (const MatrixCell& c : cells) {
      if (c.scenario != "fig2" || c.cls != cls) continue;
      const auto names = c.caughtBy();
      if (!names.empty()) {
        entry.clear();
        for (std::size_t i = 0; i < names.size(); ++i) {
          if (i > 0) entry += ", ";
          entry += names[i];
        }
        if (c.classifierAgrees) entry += " (+classifier)";
      }
    }
    column[cls] = entry;
  }
  os << taxonomy::renderTable1With("Detected by (fig2 injection)", column);

  os << "\ninjection matrix (" << cells.size() << " cells):\n";
  for (const MatrixCell& c : cells) {
    os << "  " << c.scenario << " x " << taxonomy::failureClassName(c.cls)
       << " [" << operatorName(c.cls) << "]: runs " << c.runs << ", deviated "
       << c.deviatedRuns << ", failing " << c.failingRuns << " -> "
       << (c.caught ? "caught" : "MISSED");
    const auto names = c.caughtBy();
    if (!names.empty()) {
      os << " by ";
      for (std::size_t i = 0; i < names.size(); ++i) {
        if (i > 0) os << ", ";
        os << names[i];
      }
    }
    os << (c.classifierAgrees ? "; classifier agrees" : "; classifier silent")
       << '\n';
  }

  if (!controls.empty()) {
    os << "negative controls (uninjected, must be silent):\n";
    for (const ControlCell& c : controls) {
      os << "  " << c.scenario << ": runs " << c.runs << ", findings "
         << c.findings << ", failing " << c.failingRuns
         << (c.findings == 0 && c.failingRuns == 0 ? " -> clean"
                                                   : " -> NOT CLEAN")
         << '\n';
    }
  }

  os << (ok() ? "INJECTION MATRIX OK" : "INJECTION MATRIX FAIL") << '\n';
  return os.str();
}

}  // namespace confail::inject
