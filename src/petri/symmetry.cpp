#include "confail/petri/symmetry.hpp"

#include <algorithm>
#include <numeric>

#include "confail/support/assert.hpp"
#include "level_bfs.hpp"

namespace confail::petri {

namespace {

// 20! is the last factorial below 2^64.
constexpr unsigned kMaxThreads = 20;
constexpr unsigned kMaxFullMonitors = 5;

std::uint64_t factorial(unsigned n) {
  std::uint64_t f = 1;
  for (unsigned i = 2; i <= n; ++i) f *= i;
  return f;
}

// A marking of a thread/lock net, reduced to its content: one local-state
// code per thread (thread_lock_net.hpp localState).  The E places carry no
// independent information on invariant-respecting markings — E_m is free
// iff no code says "in C_m" — so codes are the whole state, and orbit
// operations are permutations of (Threads) or relabelings within (Full)
// this vector.
std::vector<unsigned> extractCodes(const ThreadLockNet& tl, const Marking& m) {
  std::vector<unsigned> codes(tl.threads);
  for (unsigned i = 0; i < tl.threads; ++i) codes[i] = tl.localState(m, i);
  return codes;
}

Marking rebuildFromCodes(const ThreadLockNet& tl,
                         const std::vector<unsigned>& codes) {
  Marking m(tl.net.placeCount(), 0);
  std::vector<bool> held(tl.monitors, false);
  for (unsigned i = 0; i < tl.threads; ++i) {
    const unsigned c = codes[i];
    if (c == 0) {
      m[tl.A[i]] = 1;
      continue;
    }
    const unsigned mon = (c - 1) / 3;
    switch ((c - 1) % 3) {
      case 0: m[tl.B[i][mon]] = 1; break;
      case 1: m[tl.C[i][mon]] = 1; held[mon] = true; break;
      case 2: m[tl.D[i][mon]] = 1; break;
    }
  }
  for (unsigned mon = 0; mon < tl.monitors; ++mon) {
    if (!held[mon]) m[tl.E[mon]] = 1;
  }
  return m;
}

// Relabel monitors in a code: code 0 (outside) is fixed; 1+3m+k maps to
// 1+3*perm[m]+k.
unsigned mapCode(unsigned c, const std::vector<unsigned>& perm) {
  if (c == 0) return 0;
  return 1 + 3 * perm[(c - 1) / 3] + (c - 1) % 3;
}

std::vector<std::vector<unsigned>> monitorPerms(unsigned monitors) {
  std::vector<unsigned> p(monitors);
  std::iota(p.begin(), p.end(), 0u);
  std::vector<std::vector<unsigned>> all;
  do {
    all.push_back(p);
  } while (std::next_permutation(p.begin(), p.end()));
  return all;
}

// The least sorted code vector over the allowed relabelings.  For Threads
// symmetry the only move is sorting; for Full symmetry each monitor
// permutation is applied first and the least result wins.
std::vector<unsigned> canonicalCodes(
    std::vector<unsigned> codes,
    const std::vector<std::vector<unsigned>>& perms) {
  if (perms.empty()) {
    std::sort(codes.begin(), codes.end());
    return codes;
  }
  std::vector<unsigned> best;
  std::vector<unsigned> cand(codes.size());
  for (const auto& perm : perms) {
    for (std::size_t i = 0; i < codes.size(); ++i) {
      cand[i] = mapCode(codes[i], perm);
    }
    std::sort(cand.begin(), cand.end());
    if (best.empty() || cand < best) best = cand;
  }
  return best;
}

// |orbit| = |G| / |stabilizer|.  For G = S_N acting on code sequences the
// stabilizer of a sequence is the product of the multiplicity factorials.
// For G = S_N x S_M, a pair (sigma, tau) fixes the marking iff tau maps
// the code *multiset* to itself (then prod(mult!) choices of sigma exist),
// so |Stab| = prod(mult!) * #{tau : multiset(tau . codes) == multiset}.
std::uint64_t orbitOfCodes(const std::vector<unsigned>& sortedCodes,
                           unsigned threads, unsigned monitors,
                           const std::vector<std::vector<unsigned>>& perms) {
  std::uint64_t stab = 1;
  std::size_t i = 0;
  while (i < sortedCodes.size()) {
    std::size_t j = i;
    while (j < sortedCodes.size() && sortedCodes[j] == sortedCodes[i]) ++j;
    stab *= factorial(static_cast<unsigned>(j - i));
    i = j;
  }
  if (perms.empty()) return factorial(threads) / stab;
  std::uint64_t fixing = 0;
  std::vector<unsigned> cand(sortedCodes.size());
  for (const auto& perm : perms) {
    for (std::size_t k = 0; k < sortedCodes.size(); ++k) {
      cand[k] = mapCode(sortedCodes[k], perm);
    }
    std::sort(cand.begin(), cand.end());
    if (cand == sortedCodes) ++fixing;
  }
  CONFAIL_ASSERT(fixing > 0, "identity must fix the multiset");
  return factorial(threads) * factorial(monitors) / (stab * fixing);
}

struct SymCanon {
  const ThreadLockNet* tl;
  std::vector<std::vector<unsigned>> perms;  ///< empty for Threads-only

  static constexpr bool kOrbits = true;

  bool canonicalize(Marking& m) const {
    const std::vector<unsigned> canon =
        canonicalCodes(extractCodes(*tl, m), perms);
    Marking rebuilt = rebuildFromCodes(*tl, canon);
    if (rebuilt == m) return false;
    m = std::move(rebuilt);
    return true;
  }

  std::uint64_t orbit(const Marking& m) const {
    // Codes of a canonical marking are already sorted.
    return orbitOfCodes(extractCodes(*tl, m), tl->threads, tl->monitors,
                        perms);
  }
};

}  // namespace

const char* symmetryName(Symmetry s) {
  switch (s) {
    case Symmetry::None: return "none";
    case Symmetry::Threads: return "threads";
    case Symmetry::Full: return "full";
  }
  return "?";
}

ReachabilityResult reachableSymmetric(const ThreadLockNet& tl,
                                      const SymReachOptions& opt) {
  ReachOptions ro;
  ro.maxStates = opt.maxStates;
  ro.workers = opt.workers;
  ro.metrics = opt.metrics;
  if (opt.symmetry == Symmetry::None) {
    return reachable(tl.net, tl.initial, ro);
  }
  CONFAIL_CHECK(tl.threads <= kMaxThreads, UsageError,
                "orbit sizes overflow uint64 beyond 20 threads");
  CONFAIL_CHECK(opt.symmetry != Symmetry::Full || tl.monitors <= kMaxFullMonitors,
                UsageError, "full symmetry enumerates M! monitor relabelings");
  SymCanon canon{&tl, opt.symmetry == Symmetry::Full
                          ? monitorPerms(tl.monitors)
                          : std::vector<std::vector<unsigned>>{}};
  const std::size_t places = tl.net.placeCount();
  ReachabilityResult r;
  bool ok = false;
  if (places <= 64) {
    ok = detail::packedLevelBfs<1>(tl.net, tl.initial, ro, canon, r);
  } else if (places <= 256) {
    ok = detail::packedLevelBfs<4>(tl.net, tl.initial, ro, canon, r);
  }
  // Thread/lock nets are structurally 1-bounded, so within the 256-place
  // ceiling (e.g. 20 threads x 2 monitors, or 15 x 5) the packed engine
  // cannot refuse; beyond it symmetric enumeration is simply unsupported.
  CONFAIL_CHECK(ok, UsageError, "net too large for symmetric enumeration");
  detail::publishReachMetrics(opt.metrics, r);
  return r;
}

Marking canonicalMarking(const ThreadLockNet& tl, const Marking& m,
                         Symmetry symmetry) {
  CONFAIL_CHECK(m.size() == tl.net.placeCount(), UsageError,
                "marking size mismatch");
  if (symmetry == Symmetry::None) return m;
  SymCanon canon{&tl, symmetry == Symmetry::Full
                          ? monitorPerms(tl.monitors)
                          : std::vector<std::vector<unsigned>>{}};
  Marking out = m;
  canon.canonicalize(out);
  return out;
}

std::uint64_t orbitSize(const ThreadLockNet& tl, const Marking& m,
                        Symmetry symmetry) {
  if (symmetry == Symmetry::None) return 1;
  SymCanon canon{&tl, symmetry == Symmetry::Full
                          ? monitorPerms(tl.monitors)
                          : std::vector<std::vector<unsigned>>{}};
  Marking c = m;
  canon.canonicalize(c);
  return canon.orbit(c);
}

}  // namespace confail::petri
