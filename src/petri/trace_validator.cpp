#include "confail/petri/trace_validator.hpp"

#include <sstream>
#include <unordered_map>

#include "confail/support/assert.hpp"

namespace confail::petri {

using events::Event;
using events::EventKind;

namespace {

bool isReplayEvent(EventKind k) {
  return events::isModelTransition(k) || k == EventKind::SpuriousWake;
}

}  // namespace

ValidationResult validateTraceAgainstModel(const events::Trace& trace,
                                           events::MonitorId mon,
                                           unsigned maxThreads) {
  ValidationResult result;
  std::vector<Event> events = trace.monitorProjection(mon);

  // Map trace thread ids to dense net thread indices by first appearance.
  std::unordered_map<events::ThreadId, unsigned> threadIndex;
  for (const Event& e : events) {
    if (!isReplayEvent(e.kind)) continue;
    if (threadIndex.find(e.thread) == threadIndex.end()) {
      if (threadIndex.size() >= maxThreads) {
        result.ok = false;
        result.message = "more threads than maxThreads";
        return result;
      }
      unsigned idx = static_cast<unsigned>(threadIndex.size());
      threadIndex.emplace(e.thread, idx);
    }
  }
  if (threadIndex.empty()) return result;  // nothing to check

  ThreadLockNet tl =
      buildThreadLockNet(static_cast<unsigned>(threadIndex.size()),
                         NotifyModel::Free);
  Marking m = tl.initial;

  std::size_t filteredIdx = 0;
  for (const Event& e : events) {
    TransitionId t;
    switch (e.kind) {
      case EventKind::LockRequest: t = tl.T1[threadIndex[e.thread]][0]; break;
      case EventKind::LockAcquire: t = tl.T2[threadIndex[e.thread]][0]; break;
      case EventKind::WaitBegin: t = tl.T3[threadIndex[e.thread]][0]; break;
      case EventKind::LockRelease: t = tl.T4[threadIndex[e.thread]][0]; break;
      case EventKind::Notified:
      case EventKind::SpuriousWake:
        t = tl.T5free[threadIndex[e.thread]][0];
        break;
      default: continue;  // notify calls, accesses etc. are not transitions
    }
    if (!tl.net.enabled(t, m)) {
      std::ostringstream os;
      os << "event seq=" << e.seq << " (" << events::kindName(e.kind)
         << " by thread " << e.thread << ") fires "
         << tl.net.transitionName(t) << " which is not enabled in "
         << tl.net.renderMarking(m);
      result.ok = false;
      result.firstBadIndex = filteredIdx;
      result.message = os.str();
      return result;
    }
    m = tl.net.fire(t, m);
    ++filteredIdx;
    ++result.eventsChecked;
  }
  return result;
}

TraceShape traceShape(const events::Trace& trace) {
  TraceShape shape;
  std::unordered_map<events::ThreadId, unsigned> threads;
  std::unordered_map<events::MonitorId, unsigned> monitors;
  for (const Event& e : trace.events()) {
    if (!isReplayEvent(e.kind)) continue;
    threads.emplace(e.thread, static_cast<unsigned>(threads.size()));
    monitors.emplace(e.monitor, static_cast<unsigned>(monitors.size()));
  }
  shape.threads = static_cast<unsigned>(threads.size());
  shape.monitors = static_cast<unsigned>(monitors.size());
  return shape;
}

ModelReplay replayTraceOnModel(const events::Trace& trace,
                               const ThreadLockNet& tl) {
  ModelReplay rep;
  std::unordered_map<events::ThreadId, unsigned> threadIndex;
  std::unordered_map<events::MonitorId, unsigned> monitorIndex;
  Marking m = tl.initial;
  rep.markings.push_back(m);

  const auto fail = [&](const Event& e, const std::string& why) {
    std::ostringstream os;
    os << "event seq=" << e.seq << " (" << events::kindName(e.kind)
       << " by thread " << e.thread << " on monitor " << e.monitor << ") "
       << why;
    rep.ok = false;
    rep.message = os.str();
  };

  for (const Event& e : trace.events()) {
    if (!isReplayEvent(e.kind)) continue;
    auto ti = threadIndex.emplace(e.thread,
                                  static_cast<unsigned>(threadIndex.size()));
    auto mi = monitorIndex.emplace(e.monitor,
                                   static_cast<unsigned>(monitorIndex.size()));
    const unsigned i = ti.first->second;
    const unsigned mon = mi.first->second;
    if (i >= tl.threads || mon >= tl.monitors) {
      rep.inScope = false;
      rep.message = "trace uses more threads/monitors than the net";
      return rep;
    }
    if (e.kind == EventKind::SpuriousWake) rep.sawSpuriousWake = true;

    TransitionId t = 0;
    switch (e.kind) {
      case EventKind::LockRequest:
        // A request while the thread is not in A means it already engages
        // another monitor — nested synchronized blocks, which the Figure-1
        // protocol does not model (that is the lock-order-deadlock world).
        if (m[tl.A[i]] == 0) {
          rep.inScope = false;
          std::ostringstream os;
          os << "thread " << e.thread << " requests monitor " << e.monitor
             << " while engaging another monitor (nested synchronization is"
                " outside the Figure-1 protocol)";
          rep.message = os.str();
          return rep;
        }
        t = tl.T1[i][mon];
        break;
      case EventKind::LockAcquire: t = tl.T2[i][mon]; break;
      case EventKind::WaitBegin: t = tl.T3[i][mon]; break;
      case EventKind::LockRelease: t = tl.T4[i][mon]; break;
      case EventKind::Notified:
      case EventKind::SpuriousWake: {
        if (tl.model == NotifyModel::Free) {
          t = tl.T5free[i][mon];
          break;
        }
        // Gated: the waker is whichever thread holds the monitor right
        // now; the lock invariant makes it unique.
        unsigned j = tl.threads;
        for (unsigned k = 0; k < tl.threads; ++k) {
          if (k != i && m[tl.C[k][mon]] != 0) {
            j = k;
            break;
          }
        }
        if (j == tl.threads) {
          fail(e, "wakes with no other thread inside the monitor (gated T5"
                  " has no enabled instance)");
          return rep;
        }
        t = tl.T5gated[mon][i][j];
        break;
      }
      default: continue;
    }
    if (!tl.net.enabled(t, m)) {
      fail(e, "fires " + tl.net.transitionName(t) +
                  " which is not enabled in " + tl.net.renderMarking(m));
      return rep;
    }
    m = tl.net.fire(t, m);
    rep.markings.push_back(m);
    ++rep.eventsChecked;
  }
  return rep;
}

}  // namespace confail::petri
