#include "confail/petri/trace_validator.hpp"

#include <sstream>
#include <unordered_map>

namespace confail::petri {

using events::Event;
using events::EventKind;

ValidationResult validateTraceAgainstModel(const events::Trace& trace,
                                           events::MonitorId mon,
                                           unsigned maxThreads) {
  ValidationResult result;
  std::vector<Event> events = trace.monitorProjection(mon);

  // Map trace thread ids to dense net thread indices by first appearance.
  std::unordered_map<events::ThreadId, unsigned> threadIndex;
  for (const Event& e : events) {
    if (!events::isModelTransition(e.kind) && e.kind != EventKind::SpuriousWake) {
      continue;
    }
    if (threadIndex.find(e.thread) == threadIndex.end()) {
      if (threadIndex.size() >= maxThreads) {
        result.ok = false;
        result.message = "more threads than maxThreads";
        return result;
      }
      unsigned idx = static_cast<unsigned>(threadIndex.size());
      threadIndex.emplace(e.thread, idx);
    }
  }
  if (threadIndex.empty()) return result;  // nothing to check

  ThreadLockNet tl =
      buildThreadLockNet(static_cast<unsigned>(threadIndex.size()),
                         NotifyModel::Free);
  Marking m = tl.initial;

  std::size_t filteredIdx = 0;
  for (const Event& e : events) {
    TransitionId t;
    switch (e.kind) {
      case EventKind::LockRequest: t = tl.T1[threadIndex[e.thread]]; break;
      case EventKind::LockAcquire: t = tl.T2[threadIndex[e.thread]]; break;
      case EventKind::WaitBegin: t = tl.T3[threadIndex[e.thread]]; break;
      case EventKind::LockRelease: t = tl.T4[threadIndex[e.thread]]; break;
      case EventKind::Notified:
      case EventKind::SpuriousWake: t = tl.T5free[threadIndex[e.thread]]; break;
      default: continue;  // notify calls, accesses etc. are not transitions
    }
    if (!tl.net.enabled(t, m)) {
      std::ostringstream os;
      os << "event seq=" << e.seq << " (" << events::kindName(e.kind)
         << " by thread " << e.thread << ") fires "
         << tl.net.transitionName(t) << " which is not enabled in "
         << tl.net.renderMarking(m);
      result.ok = false;
      result.firstBadIndex = filteredIdx;
      result.message = os.str();
      return result;
    }
    m = tl.net.fire(t, m);
    ++filteredIdx;
    ++result.eventsChecked;
  }
  return result;
}

}  // namespace confail::petri
