#include "confail/petri/net.hpp"

#include <sstream>

#include "confail/support/assert.hpp"

namespace confail::petri {

PlaceId Net::addPlace(std::string name) {
  placeNames_.push_back(std::move(name));
  return static_cast<PlaceId>(placeNames_.size() - 1);
}

TransitionId Net::addTransition(std::string name, std::vector<Arc> inputs,
                                std::vector<Arc> outputs) {
  for (const Arc& a : inputs) {
    CONFAIL_CHECK(a.place < placeCount(), UsageError, "arc to unknown place");
    CONFAIL_CHECK(a.weight > 0, UsageError, "zero-weight arc");
  }
  for (const Arc& a : outputs) {
    CONFAIL_CHECK(a.place < placeCount(), UsageError, "arc to unknown place");
    CONFAIL_CHECK(a.weight > 0, UsageError, "zero-weight arc");
  }
  transitions_.push_back(Transition{std::move(name), std::move(inputs),
                                    std::move(outputs)});
  return static_cast<TransitionId>(transitions_.size() - 1);
}

const std::string& Net::placeName(PlaceId p) const {
  CONFAIL_ASSERT(p < placeCount(), "bad place id");
  return placeNames_[p];
}

const std::string& Net::transitionName(TransitionId t) const {
  CONFAIL_ASSERT(t < transitionCount(), "bad transition id");
  return transitions_[t].name;
}

const std::vector<Arc>& Net::inputsOf(TransitionId t) const {
  CONFAIL_ASSERT(t < transitionCount(), "bad transition id");
  return transitions_[t].inputs;
}

const std::vector<Arc>& Net::outputsOf(TransitionId t) const {
  CONFAIL_ASSERT(t < transitionCount(), "bad transition id");
  return transitions_[t].outputs;
}

bool Net::enabled(TransitionId t, const Marking& m) const {
  CONFAIL_CHECK(m.size() == placeCount(), UsageError, "marking size mismatch");
  CONFAIL_ASSERT(t < transitionCount(), "bad transition id");
  for (const Arc& a : transitions_[t].inputs) {
    if (m[a.place] < a.weight) return false;
  }
  return true;
}

std::vector<TransitionId> Net::enabledSet(const Marking& m) const {
  std::vector<TransitionId> out;
  for (TransitionId t = 0; t < transitionCount(); ++t) {
    if (enabled(t, m)) out.push_back(t);
  }
  return out;
}

Marking Net::fire(TransitionId t, const Marking& m) const {
  CONFAIL_CHECK(enabled(t, m), UsageError,
                "firing disabled transition " + transitionName(t) + " in " +
                    renderMarking(m));
  Marking next = m;
  for (const Arc& a : transitions_[t].inputs) next[a.place] -= a.weight;
  for (const Arc& a : transitions_[t].outputs) next[a.place] += a.weight;
  return next;
}

std::string Net::renderMarking(const Marking& m) const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (PlaceId p = 0; p < m.size() && p < placeCount(); ++p) {
    if (m[p] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << placeNames_[p];
    if (m[p] != 1) os << ':' << m[p];
  }
  os << '}';
  return os.str();
}

std::string Net::describe() const {
  std::ostringstream os;
  os << "places (" << placeCount() << "):";
  for (const auto& p : placeNames_) os << ' ' << p;
  os << "\ntransitions (" << transitionCount() << "):\n";
  for (const auto& t : transitions_) {
    os << "  " << t.name << ":";
    for (const Arc& a : t.inputs) {
      os << ' ' << placeNames_[a.place];
      if (a.weight != 1) os << 'x' << a.weight;
    }
    os << " ->";
    for (const Arc& a : t.outputs) {
      os << ' ' << placeNames_[a.place];
      if (a.weight != 1) os << 'x' << a.weight;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace confail::petri
