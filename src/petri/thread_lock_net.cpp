#include "confail/petri/thread_lock_net.hpp"

#include <string>

#include "confail/support/assert.hpp"

namespace confail::petri {

namespace {

// Single-monitor nets keep the historical Figure-1 names ("B0", "E",
// "T1_0", "T5_0by1"); multi-monitor nets suffix the monitor ("B0_m1",
// "E_m1", "T1_0_m1").
std::string named(const char* base, unsigned thread, unsigned monitor,
                  unsigned monitors) {
  std::string s = base + std::to_string(thread);
  if (monitors > 1) s += "_m" + std::to_string(monitor);
  return s;
}

}  // namespace

std::vector<int> ThreadLockNet::threadConservationWeights(unsigned i) const {
  CONFAIL_CHECK(i < threads, UsageError, "bad thread index");
  std::vector<int> w(net.placeCount(), 0);
  w[A[i]] = 1;
  for (unsigned m = 0; m < monitors; ++m) {
    w[B[i][m]] = w[C[i][m]] = w[D[i][m]] = 1;
  }
  return w;
}

std::vector<int> ThreadLockNet::lockInvariantWeights(unsigned m) const {
  CONFAIL_CHECK(m < monitors, UsageError, "bad monitor index");
  std::vector<int> w(net.placeCount(), 0);
  w[E[m]] = 1;
  for (unsigned i = 0; i < threads; ++i) w[C[i][m]] = 1;
  return w;
}

bool ThreadLockNet::allWaiting(const Marking& mk) const {
  for (unsigned i = 0; i < threads; ++i) {
    bool waiting = false;
    for (unsigned m = 0; m < monitors && !waiting; ++m) {
      waiting = mk[D[i][m]] != 0;
    }
    if (!waiting) return false;
  }
  return true;
}

unsigned ThreadLockNet::localState(const Marking& mk, unsigned i) const {
  CONFAIL_CHECK(i < threads, UsageError, "bad thread index");
  if (mk[A[i]] != 0) return 0;
  for (unsigned m = 0; m < monitors; ++m) {
    if (mk[B[i][m]] != 0) return 1 + 3 * m;
    if (mk[C[i][m]] != 0) return 2 + 3 * m;
    if (mk[D[i][m]] != 0) return 3 + 3 * m;
  }
  CONFAIL_CHECK(false, UsageError,
                "marking violates the thread conservation invariant");
  return 0;
}

ThreadLockNet buildThreadLockNet(unsigned threads, unsigned monitors,
                                 NotifyModel model) {
  CONFAIL_CHECK(threads >= 1, UsageError, "need at least one thread");
  CONFAIL_CHECK(monitors >= 1, UsageError, "need at least one monitor");
  ThreadLockNet n;
  n.threads = threads;
  n.monitors = monitors;
  n.model = model;

  // Thread-major place blocks: A_i, then (B_im, C_im, D_im) per monitor.
  n.B.resize(threads);
  n.C.resize(threads);
  n.D.resize(threads);
  for (unsigned i = 0; i < threads; ++i) {
    n.A.push_back(n.net.addPlace("A" + std::to_string(i)));
    for (unsigned m = 0; m < monitors; ++m) {
      n.B[i].push_back(n.net.addPlace(named("B", i, m, monitors)));
      n.C[i].push_back(n.net.addPlace(named("C", i, m, monitors)));
      n.D[i].push_back(n.net.addPlace(named("D", i, m, monitors)));
    }
  }
  for (unsigned m = 0; m < monitors; ++m) {
    n.E.push_back(
        n.net.addPlace(monitors > 1 ? "E_m" + std::to_string(m) : "E"));
  }

  n.T1.resize(threads);
  n.T2.resize(threads);
  n.T3.resize(threads);
  n.T4.resize(threads);
  for (unsigned i = 0; i < threads; ++i) {
    for (unsigned m = 0; m < monitors; ++m) {
      n.T1[i].push_back(n.net.addTransition(named("T1_", i, m, monitors),
                                            {{n.A[i], 1}}, {{n.B[i][m], 1}}));
      n.T2[i].push_back(n.net.addTransition(named("T2_", i, m, monitors),
                                            {{n.B[i][m], 1}, {n.E[m], 1}},
                                            {{n.C[i][m], 1}}));
      n.T3[i].push_back(n.net.addTransition(named("T3_", i, m, monitors),
                                            {{n.C[i][m], 1}},
                                            {{n.D[i][m], 1}, {n.E[m], 1}}));
      n.T4[i].push_back(n.net.addTransition(named("T4_", i, m, monitors),
                                            {{n.C[i][m], 1}},
                                            {{n.A[i], 1}, {n.E[m], 1}}));
    }
  }

  if (model == NotifyModel::Free) {
    n.T5free.resize(threads);
    for (unsigned i = 0; i < threads; ++i) {
      for (unsigned m = 0; m < monitors; ++m) {
        n.T5free[i].push_back(n.net.addTransition(
            named("T5_", i, m, monitors), {{n.D[i][m], 1}},
            {{n.B[i][m], 1}}));
      }
    }
  } else {
    n.T5gated.assign(
        monitors, std::vector<std::vector<TransitionId>>(
                      threads, std::vector<TransitionId>(threads, 0)));
    for (unsigned m = 0; m < monitors; ++m) {
      for (unsigned i = 0; i < threads; ++i) {
        for (unsigned j = 0; j < threads; ++j) {
          if (i == j) continue;
          // Waiter i on monitor m is woken by notifier j, which must be
          // inside the same monitor.
          std::string name =
              "T5_" + std::to_string(i) + "by" + std::to_string(j);
          if (monitors > 1) name += "_m" + std::to_string(m);
          n.T5gated[m][i][j] = n.net.addTransition(
              name, {{n.D[i][m], 1}, {n.C[j][m], 1}},
              {{n.B[i][m], 1}, {n.C[j][m], 1}});
        }
      }
    }
  }

  n.initial = n.net.emptyMarking();
  for (unsigned i = 0; i < threads; ++i) n.initial[n.A[i]] = 1;
  for (unsigned m = 0; m < monitors; ++m) n.initial[n.E[m]] = 1;
  return n;
}

}  // namespace confail::petri
