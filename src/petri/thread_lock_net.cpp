#include "confail/petri/thread_lock_net.hpp"

#include <string>

#include "confail/support/assert.hpp"

namespace confail::petri {

std::vector<int> ThreadLockNet::threadConservationWeights(unsigned i) const {
  CONFAIL_CHECK(i < threads, UsageError, "bad thread index");
  std::vector<int> w(net.placeCount(), 0);
  w[A[i]] = w[B[i]] = w[C[i]] = w[D[i]] = 1;
  return w;
}

std::vector<int> ThreadLockNet::lockInvariantWeights() const {
  std::vector<int> w(net.placeCount(), 0);
  w[E] = 1;
  for (unsigned i = 0; i < threads; ++i) w[C[i]] = 1;
  return w;
}

bool ThreadLockNet::allWaiting(const Marking& m) const {
  for (unsigned i = 0; i < threads; ++i) {
    if (m[D[i]] == 0) return false;
  }
  return true;
}

ThreadLockNet buildThreadLockNet(unsigned threads, NotifyModel model) {
  CONFAIL_CHECK(threads >= 1, UsageError, "need at least one thread");
  ThreadLockNet n;
  n.threads = threads;
  n.model = model;

  for (unsigned i = 0; i < threads; ++i) {
    const std::string s = std::to_string(i);
    n.A.push_back(n.net.addPlace("A" + s));
    n.B.push_back(n.net.addPlace("B" + s));
    n.C.push_back(n.net.addPlace("C" + s));
    n.D.push_back(n.net.addPlace("D" + s));
  }
  n.E = n.net.addPlace("E");

  for (unsigned i = 0; i < threads; ++i) {
    const std::string s = std::to_string(i);
    n.T1.push_back(n.net.addTransition("T1_" + s, {{n.A[i], 1}}, {{n.B[i], 1}}));
    n.T2.push_back(n.net.addTransition("T2_" + s, {{n.B[i], 1}, {n.E, 1}},
                                       {{n.C[i], 1}}));
    n.T3.push_back(n.net.addTransition("T3_" + s, {{n.C[i], 1}},
                                       {{n.D[i], 1}, {n.E, 1}}));
    n.T4.push_back(n.net.addTransition("T4_" + s, {{n.C[i], 1}},
                                       {{n.A[i], 1}, {n.E, 1}}));
  }

  if (model == NotifyModel::Free) {
    for (unsigned i = 0; i < threads; ++i) {
      n.T5free.push_back(n.net.addTransition(
          "T5_" + std::to_string(i), {{n.D[i], 1}}, {{n.B[i], 1}}));
    }
  } else {
    n.T5gated.assign(threads, std::vector<TransitionId>(threads, 0));
    for (unsigned i = 0; i < threads; ++i) {
      for (unsigned j = 0; j < threads; ++j) {
        if (i == j) continue;
        // Waiter i is woken by notifier j, which must be inside the monitor.
        n.T5gated[i][j] = n.net.addTransition(
            "T5_" + std::to_string(i) + "by" + std::to_string(j),
            {{n.D[i], 1}, {n.C[j], 1}}, {{n.B[i], 1}, {n.C[j], 1}});
      }
    }
  }

  n.initial = n.net.emptyMarking();
  for (unsigned i = 0; i < threads; ++i) n.initial[n.A[i]] = 1;
  n.initial[n.E] = 1;
  return n;
}

}  // namespace confail::petri
