#include "confail/petri/invariants.hpp"

#include <numeric>

#include "confail/support/assert.hpp"

namespace confail::petri {

namespace {

using Row = std::vector<long long>;

long long gcdAll(const Row& v) {
  long long g = 0;
  for (long long x : v) g = std::gcd(g, x < 0 ? -x : x);
  return g;
}

void normalize(Row& v) {
  long long g = gcdAll(v);
  if (g > 1) {
    for (long long& x : v) x /= g;
  }
  for (long long x : v) {
    if (x != 0) {
      if (x < 0) {
        for (long long& y : v) y = -y;
      }
      break;
    }
  }
}

/// Integer basis of { x : A x = 0 } via fraction-free Gauss-Jordan
/// elimination.  A has `rows` rows and `cols` columns.
std::vector<Row> nullspaceBasis(std::vector<Row> a, std::size_t cols) {
  const std::size_t rows = a.size();
  std::vector<std::size_t> pivotCol;
  std::size_t row = 0;
  for (std::size_t col = 0; col < cols && row < rows; ++col) {
    std::size_t pivot = row;
    while (pivot < rows && a[pivot][col] == 0) ++pivot;
    if (pivot == rows) continue;
    std::swap(a[row], a[pivot]);
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == row || a[r][col] == 0) continue;
      const long long f1 = a[row][col];
      const long long f2 = a[r][col];
      const long long g = std::gcd(f1 < 0 ? -f1 : f1, f2 < 0 ? -f2 : f2);
      const long long m1 = f1 / g;
      const long long m2 = f2 / g;
      for (std::size_t c = 0; c < cols; ++c) {
        a[r][c] = a[r][c] * m1 - a[row][c] * m2;
      }
      normalize(a[r]);
    }
    normalize(a[row]);
    pivotCol.push_back(col);
    ++row;
  }

  std::vector<bool> isPivot(cols, false);
  for (std::size_t c : pivotCol) isPivot[c] = true;

  std::vector<Row> basis;
  for (std::size_t f = 0; f < cols; ++f) {
    if (isPivot[f]) continue;
    Row y(cols, 0);
    y[f] = 1;
    for (std::size_t r = pivotCol.size(); r-- > 0;) {
      const std::size_t pc = pivotCol[r];
      // Row r is Gauss-Jordan reduced: zero in every other pivot column,
      // so  a[r][pc]*y[pc] + sum_{free c} a[r][c]*y[c] = 0.
      long long rhs = 0;
      for (std::size_t c = 0; c < cols; ++c) {
        if (c != pc) rhs += a[r][c] * y[c];
      }
      if (rhs == 0) {
        y[pc] = 0;
        continue;
      }
      const long long piv = a[r][pc];
      if (rhs % piv == 0) {
        y[pc] = -rhs / piv;
      } else {
        // Scale the whole vector so the division is exact (homogeneous
        // system: a scaled solution is still a solution).
        const long long g = std::gcd(rhs < 0 ? -rhs : rhs, piv < 0 ? -piv : piv);
        const long long scale = (piv < 0 ? -piv : piv) / g;
        for (long long& v : y) v *= scale;
        rhs *= scale;
        CONFAIL_ASSERT(rhs % piv == 0, "scaling failed");
        y[pc] = -rhs / piv;
      }
    }
    normalize(y);
    basis.push_back(std::move(y));
  }
  return basis;
}

/// The system rows for P-invariants: A[t][p] = C[p][t].
std::vector<Row> transitionRows(const Net& net) {
  std::vector<Row> a(net.transitionCount(), Row(net.placeCount(), 0));
  for (TransitionId t = 0; t < net.transitionCount(); ++t) {
    for (const Arc& arc : net.inputsOf(t)) {
      a[t][arc.place] -= static_cast<long long>(arc.weight);
    }
    for (const Arc& arc : net.outputsOf(t)) {
      a[t][arc.place] += static_cast<long long>(arc.weight);
    }
  }
  return a;
}

/// The system rows for T-invariants: A[p][t] = C[p][t].
std::vector<Row> placeRows(const Net& net) {
  std::vector<Row> a(net.placeCount(), Row(net.transitionCount(), 0));
  for (TransitionId t = 0; t < net.transitionCount(); ++t) {
    for (const Arc& arc : net.inputsOf(t)) {
      a[arc.place][t] -= static_cast<long long>(arc.weight);
    }
    for (const Arc& arc : net.outputsOf(t)) {
      a[arc.place][t] += static_cast<long long>(arc.weight);
    }
  }
  return a;
}

}  // namespace

bool isPInvariant(const Net& net, const std::vector<long long>& weights) {
  CONFAIL_CHECK(weights.size() == net.placeCount(), UsageError,
                "weight vector size mismatch");
  for (TransitionId t = 0; t < net.transitionCount(); ++t) {
    long long sum = 0;
    for (const Arc& a : net.inputsOf(t)) {
      sum -= weights[a.place] * static_cast<long long>(a.weight);
    }
    for (const Arc& a : net.outputsOf(t)) {
      sum += weights[a.place] * static_cast<long long>(a.weight);
    }
    if (sum != 0) return false;
  }
  return true;
}

bool isTInvariant(const Net& net, const std::vector<long long>& counts) {
  CONFAIL_CHECK(counts.size() == net.transitionCount(), UsageError,
                "count vector size mismatch");
  for (PlaceId p = 0; p < net.placeCount(); ++p) {
    long long sum = 0;
    for (TransitionId t = 0; t < net.transitionCount(); ++t) {
      for (const Arc& a : net.inputsOf(t)) {
        if (a.place == p) sum -= counts[t] * static_cast<long long>(a.weight);
      }
      for (const Arc& a : net.outputsOf(t)) {
        if (a.place == p) sum += counts[t] * static_cast<long long>(a.weight);
      }
    }
    if (sum != 0) return false;
  }
  return true;
}

std::vector<std::vector<long long>> computePInvariants(const Net& net) {
  auto basis = nullspaceBasis(transitionRows(net), net.placeCount());
  for (const Row& y : basis) {
    CONFAIL_ASSERT(isPInvariant(net, y), "computed non-P-invariant");
  }
  return basis;
}

std::vector<std::vector<long long>> computeTInvariants(const Net& net) {
  auto basis = nullspaceBasis(placeRows(net), net.transitionCount());
  for (const Row& x : basis) {
    CONFAIL_ASSERT(isTInvariant(net, x), "computed non-T-invariant");
  }
  return basis;
}

}  // namespace confail::petri
