// Private engine behind reachable() and reachableSymmetric(): a
// level-synchronous BFS over packed markings with a parallel expansion
// phase and a serial, deterministic commit phase.
//
// Each BFS level runs two barrier-separated phases:
//
//   Phase 1 (parallel) — every frontier state is expanded: enabled set,
//   fire, canonicalize (under symmetry), pack.  Workers pull chunks of the
//   frontier from a sched::WorkStealQueue and write successor records only
//   into their own chunk's slots; the state vector and the key->id table
//   are frozen, so the table's lock-free *reads* resolve hits on
//   previously-committed states inline with no synchronization.
//
//   Phase 2 (serial) — records are walked in (state, transition) order and
//   unknown keys get the next id.  Discovery order is therefore a pure
//   function of the net, independent of worker count or chunk scheduling:
//   state numbering, edges, parent links and dead-marking lists are
//   byte-identical from 1 worker to 64.
//
// The explorer's sharded VisitedSet (sched/visited_set.hpp) was the other
// candidate for the visited structure, but its insert attribution is racy
// ("new" can be reported twice under contention) which is fine for dedup
// and fatal for deterministic numbering; the frozen-table probe gets the
// same lock-free read path without the race (docs/petri.md).
//
// Because the packed key is the whole marking (packed_marking.hpp), a
// frontier record is (transition, key, probe result) — a few machine words
// — and new states are reconstructed from their keys, so peak frontier
// memory is measured in words per edge rather than a Marking per state.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "confail/petri/packed_marking.hpp"
#include "confail/petri/reachability.hpp"
#include "confail/sched/work_queue.hpp"
#include "confail/support/assert.hpp"
#include "confail/support/flat_table.hpp"

namespace confail::petri::detail {

/// Canon policy for the plain (no-symmetry) engine.
struct IdentityCanon {
  static constexpr bool kOrbits = false;
  bool canonicalize(Marking&) const { return false; }
  std::uint64_t orbit(const Marking&) const { return 1; }
};

/// Frontier sizes below this run the expansion inline: spawning workers
/// for a handful of states costs more than it saves.
inline constexpr std::size_t kParallelMinFrontier = 256;

/// Enumerate into `r`.  Returns false if some marking failed to pack
/// (place with 2+ tokens, or more than 64*W places) — the caller discards
/// `r` and falls back to the generic engine.  `canon.canonicalize` must be
/// const and thread-safe.
template <std::size_t W, typename Canon>
bool packedLevelBfs(const Net& net, const Marking& initial,
                    const ReachOptions& opt, const Canon& canon,
                    ReachabilityResult& r) {
  using Packed = PackedMarking<W>;
  using Table = FlatMapN<W>;
  const std::size_t places = net.placeCount();
  if (packedWords(places) > W) return false;
  CONFAIL_CHECK(opt.maxStates < Table::kNoValue, UsageError,
                "state cap must fit 32-bit ids");

  const auto toKey = [](const Packed& p) -> typename Table::Key {
    if constexpr (W == 1) {
      return p.words[0];
    } else {
      return p.words;
    }
  };

  Marking init = initial;
  canon.canonicalize(init);
  const auto initKey = Packed::encode(init);
  if (!initKey) return false;

  Table index(std::min<std::size_t>(opt.maxStates, std::size_t{1} << 16));
  r.states.reserve(4096);
  r.edges.reserve(4096);
  r.parents.reserve(4096);
  r.states.push_back(std::move(init));
  r.edges.emplace_back();
  r.parents.emplace_back();
  if constexpr (Canon::kOrbits) {
    r.orbitSizes.push_back(canon.orbit(r.states[0]));
  }
  index.findOrInsert(toKey(*initKey), 0);

  // One record per fired transition; `known` caches the frozen-table probe
  // from phase 1 (kNoValue when the key was not committed before this
  // level — phase 2 re-probes those, since an earlier phase-2 step of the
  // same level may have committed them).
  struct Succ {
    TransitionId t;
    Packed key;
    std::uint32_t known;
    bool canonChanged;
  };
  struct Slot {
    std::vector<Succ> succs;
    bool dead = false;
  };

  std::atomic<bool> packFailed{false};
  std::size_t lo = 0;
  while (lo < r.states.size()) {
    const std::size_t hi = r.states.size();
    std::vector<Slot> level(hi - lo);

    const auto expand = [&](std::size_t s) {
      Slot& slot = level[s - lo];
      const Marking& m = r.states[s];
      const std::vector<TransitionId> en = net.enabledSet(m);
      slot.dead = en.empty();
      slot.succs.reserve(en.size());
      for (TransitionId t : en) {
        Marking next = net.fire(t, m);
        const bool changed = canon.canonicalize(next);
        const auto key = Packed::encode(next);
        if (!key) {
          packFailed.store(true, std::memory_order_relaxed);
          return;
        }
        slot.succs.push_back(Succ{t, *key, index.find(toKey(*key)), changed});
      }
    };

    const std::size_t n = hi - lo;
    const std::size_t workers =
        std::min<std::size_t>(std::max<std::size_t>(opt.workers, 1), n);
    if (workers <= 1 || n < kParallelMinFrontier) {
      for (std::size_t s = lo;
           s < hi && !packFailed.load(std::memory_order_relaxed); ++s) {
        expand(s);
      }
    } else {
      struct Chunk {
        std::size_t begin, end;
      };
      const std::size_t chunk =
          std::max<std::size_t>(64, n / (workers * 8) + 1);
      sched::WorkStealQueue<Chunk> queue(workers);
      for (std::size_t b = lo, c = 0; b < hi; b += chunk, ++c) {
        queue.push(c % workers, Chunk{b, std::min(b + chunk, hi)});
      }
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
          while (auto c = queue.next(w)) {
            for (std::size_t s = c->begin;
                 s < c->end && !packFailed.load(std::memory_order_relaxed);
                 ++s) {
              expand(s);
            }
            queue.done();
          }
        });
      }
      for (std::thread& t : pool) t.join();
    }
    if (packFailed.load(std::memory_order_relaxed)) return false;

    std::size_t levelBytes = level.size() * sizeof(Slot);
    for (const Slot& slot : level) {
      levelBytes += slot.succs.capacity() * sizeof(Succ);
    }
    r.peakFrontierBytes = std::max(r.peakFrontierBytes, levelBytes);

    // Phase 2: deterministic serial commit in (state, transition) order.
    for (std::size_t s = lo; s < hi; ++s) {
      const Slot& slot = level[s - lo];
      if (slot.dead) r.deadStates.push_back(s);
      for (const Succ& e : slot.succs) {
        r.symmetryHits += e.canonChanged ? 1 : 0;
        std::uint32_t id = e.known;
        if (id == Table::kNoValue) id = index.find(toKey(e.key));
        if (id == Table::kNoValue) {
          if (r.states.size() >= opt.maxStates) {
            r.complete = false;  // cap: drop the new state, record no edge
            continue;
          }
          id = static_cast<std::uint32_t>(r.states.size());
          index.findOrInsert(toKey(e.key), id);
          r.states.push_back(e.key.decode(places));
          r.edges.emplace_back();
          r.parents.push_back(ParentLink{s, e.t});
          if constexpr (Canon::kOrbits) {
            r.orbitSizes.push_back(canon.orbit(r.states.back()));
          }
        }
        r.edges[s].push_back(ReachEdge{e.t, id});
      }
    }
    lo = hi;
  }
  return true;
}

/// Publish the petri.* metric rows for a finished enumeration.
void publishReachMetrics(obs::Registry* metrics, const ReachabilityResult& r);

}  // namespace confail::petri::detail
