#include "confail/petri/properties.hpp"

#include <deque>

#include "confail/support/assert.hpp"

namespace confail::petri {

namespace {

// All T5 transition ids of the net, free or gated.
std::vector<bool> t5Mask(const ThreadLockNet& tl) {
  std::vector<bool> isT5(tl.net.transitionCount(), false);
  for (const auto& perThread : tl.T5free) {
    for (TransitionId t : perThread) isT5[t] = true;
  }
  for (const auto& perMonitor : tl.T5gated) {
    for (unsigned i = 0; i < perMonitor.size(); ++i) {
      for (unsigned j = 0; j < perMonitor[i].size(); ++j) {
        if (i != j) isT5[perMonitor[i][j]] = true;
      }
    }
  }
  return isT5;
}

bool hasWaiter(const ThreadLockNet& tl, const Marking& m) {
  for (unsigned i = 0; i < tl.threads; ++i) {
    for (unsigned mon = 0; mon < tl.monitors; ++mon) {
      if (m[tl.D[i][mon]] != 0) return true;
    }
  }
  return false;
}

// CTL's EF(T5 fires): backward BFS over the recorded edges from every
// state with an outgoing T5 edge.  t5Live then demands that every state
// with a waiting thread is in that set.
bool t5Liveness(const ThreadLockNet& tl, const ReachabilityResult& r) {
  const std::vector<bool> isT5 = t5Mask(tl);
  std::vector<std::vector<std::size_t>> rev(r.states.size());
  std::vector<bool> canWake(r.states.size(), false);
  std::deque<std::size_t> queue;
  for (std::size_t s = 0; s < r.states.size(); ++s) {
    for (const ReachEdge& e : r.edges[s]) {
      rev[e.target].push_back(s);
      if (isT5[e.transition] && !canWake[s]) {
        canWake[s] = true;
        queue.push_back(s);
      }
    }
  }
  while (!queue.empty()) {
    const std::size_t s = queue.front();
    queue.pop_front();
    for (std::size_t p : rev[s]) {
      if (canWake[p]) continue;
      canWake[p] = true;
      queue.push_back(p);
    }
  }
  for (std::size_t s = 0; s < r.states.size(); ++s) {
    if (hasWaiter(tl, r.states[s]) && !canWake[s]) return false;
  }
  return true;
}

}  // namespace

bool ModelVerdicts::consistentWith(const ThreadLockNet& tl) const {
  const bool safety = mutualExclusion && conservation && oneBounded;
  if (tl.model == NotifyModel::Free) {
    return safety && deadlockFree && (!t5LiveChecked || t5Live);
  }
  return safety && allWaitingDeadReachable && (!t5LiveChecked || !t5Live);
}

ModelVerdicts verifyModel(const ThreadLockNet& tl,
                          const ReachabilityResult& r) {
  CONFAIL_CHECK(!r.states.empty(), UsageError, "empty reachability result");
  ModelVerdicts v;
  v.mutualExclusion = true;
  for (unsigned m = 0; m < tl.monitors; ++m) {
    v.mutualExclusion =
        v.mutualExclusion && holdsPInvariant(r, tl.lockInvariantWeights(m));
  }
  v.conservation = true;
  for (unsigned i = 0; i < tl.threads; ++i) {
    v.conservation =
        v.conservation && holdsPInvariant(r, tl.threadConservationWeights(i));
  }
  v.oneBounded = maxTokensPerPlace(r) <= 1;
  v.deadlockFree = r.deadStates.empty();
  for (std::size_t s : r.deadStates) {
    if (tl.allWaiting(r.states[s])) {
      v.allWaitingDeadReachable = true;
      v.allWaitingDeadState = s;
      v.ffT5Witness = shortestPathTo(tl.net, r, s);
      break;
    }
  }
  if (r.complete) {
    v.t5LiveChecked = true;
    v.t5Live = t5Liveness(tl, r);
  }
  return v;
}

}  // namespace confail::petri
