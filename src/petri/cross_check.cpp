#include "confail/petri/cross_check.hpp"

#include <sstream>

#include "confail/petri/packed_marking.hpp"
#include "confail/petri/trace_validator.hpp"
#include "confail/support/assert.hpp"
#include "confail/support/flat_table.hpp"

namespace confail::petri {

namespace {

// 4 packed words = 256 places, comfortably above the 8x2 default scope cap
// (8 threads x 2 monitors = 58 places).
using Index = FlatMapN<4>;

Index buildIndex(const ReachabilityResult& r) {
  Index index(r.states.size());
  for (std::size_t s = 0; s < r.states.size(); ++s) {
    const auto key = PackedMarking<4>::encode(r.states[s]);
    CONFAIL_ASSERT(key.has_value(), "thread/lock marking failed to pack");
    index.findOrInsert(key->words, static_cast<std::uint32_t>(s));
  }
  return index;
}

}  // namespace

struct ModelCrossChecker::NetCache {
  ThreadLockNet freeNet;
  ReachabilityResult freeReach;
  Index freeIndex{0};

  // Gated side built lazily: only spurious-free traces are checked there.
  bool gatedBuilt = false;
  ThreadLockNet gatedNet;
  ReachabilityResult gatedReach;
  Index gatedIndex{0};

  bool member(const Index& index, const ThreadLockNet& tl, const Marking& m,
              Symmetry symmetry) const {
    const Marking canon = canonicalMarking(tl, m, symmetry);
    const auto key = PackedMarking<4>::encode(canon);
    CONFAIL_ASSERT(key.has_value(), "thread/lock marking failed to pack");
    return index.find(key->words) != Index::kNoValue;
  }
};

ModelCrossChecker::ModelCrossChecker(CrossCheckOptions opt) : opt_(opt) {
  CONFAIL_CHECK(
      packedWords(opt_.maxThreads * (1 + 3 * opt_.maxMonitors) +
                  opt_.maxMonitors) <= 4,
      UsageError, "cross-check scope exceeds the 256-place packed ceiling");
}

ModelCrossChecker::~ModelCrossChecker() = default;

ModelCrossChecker::NetCache& ModelCrossChecker::netFor(unsigned threads,
                                                       unsigned monitors) {
  const auto shape = std::make_pair(threads, monitors);
  auto it = nets_.find(shape);
  if (it != nets_.end()) return *it->second;
  auto cache = std::make_unique<NetCache>();
  cache->freeNet = buildThreadLockNet(threads, monitors, NotifyModel::Free);
  SymReachOptions ro;
  ro.maxStates = opt_.maxStates;
  ro.workers = opt_.workers;
  ro.symmetry = opt_.symmetry;
  cache->freeReach = reachableSymmetric(cache->freeNet, ro);
  cache->freeIndex = buildIndex(cache->freeReach);
  ++report_.netsBuilt;
  return *nets_.emplace(shape, std::move(cache)).first->second;
}

void ModelCrossChecker::violation(const std::string& detail) {
  ++report_.violations;
  report_.ok = false;
  if (report_.firstViolation.empty()) report_.firstViolation = detail;
}

void ModelCrossChecker::addRun(const events::Trace& trace, bool failed) {
  ++report_.runs;
  const TraceShape shape = traceShape(trace);
  if (shape.threads == 0) {
    ++report_.emptyRuns;
    return;
  }
  if (shape.threads > opt_.maxThreads || shape.monitors > opt_.maxMonitors) {
    ++report_.outOfScopeRuns;
    return;
  }
  NetCache& nc = netFor(shape.threads, std::max(1u, shape.monitors));
  const ModelReplay rep = replayTraceOnModel(trace, nc.freeNet);
  if (!rep.inScope) {
    ++report_.outOfScopeRuns;
    return;
  }
  if (!rep.ok) {
    violation("trace is not a legal firing sequence: " + rep.message);
    return;
  }
  ++report_.inScopeRuns;

  if (!nc.freeReach.complete) {
    ++report_.incompleteSkips;
    return;
  }
  for (const Marking& m : rep.markings) {
    ++report_.markingsChecked;
    if (!nc.member(nc.freeIndex, nc.freeNet, m, opt_.symmetry)) {
      violation("substrate marking " + nc.freeNet.net.renderMarking(m) +
                " is not net-reachable");
      return;
    }
  }

  // Spurious-free traces are gated firing sequences too (every Notified
  // fires while its notifier is in C), so check the tighter state space.
  if (!rep.sawSpuriousWake) {
    if (!nc.gatedBuilt) {
      nc.gatedBuilt = true;
      nc.gatedNet = buildThreadLockNet(nc.freeNet.threads,
                                       nc.freeNet.monitors, NotifyModel::Gated);
      SymReachOptions ro;
      ro.maxStates = opt_.maxStates;
      ro.workers = opt_.workers;
      ro.symmetry = opt_.symmetry;
      nc.gatedReach = reachableSymmetric(nc.gatedNet, ro);
      nc.gatedIndex = buildIndex(nc.gatedReach);
      ++report_.netsBuilt;
    }
    if (nc.gatedReach.complete) {
      for (const Marking& m : rep.markings) {
        ++report_.gatedMarkingsChecked;
        if (!nc.member(nc.gatedIndex, nc.gatedNet, m, opt_.symmetry)) {
          violation("spurious-free substrate marking " +
                    nc.gatedNet.net.renderMarking(m) +
                    " is not gated-net-reachable");
          return;
        }
      }
    }
  }

  if (failed) {
    ++report_.failureStatesChecked;
    const Marking& last = rep.markings.back();
    if (nc.freeNet.allWaiting(last)) {
      // FF-T5: the all-waiting failure state must be dead under the gated
      // model (no notifier left means no enabled wake).  Net construction
      // is cheap, so no need to have enumerated the gated side for this.
      const ThreadLockNet gated = buildThreadLockNet(
          nc.freeNet.threads, nc.freeNet.monitors, NotifyModel::Gated);
      if (!gated.net.enabledSet(last).empty()) {
        violation("all-waiting failure state " +
                  gated.net.renderMarking(last) +
                  " is not dead in the gated net");
      }
    }
  }
}

}  // namespace confail::petri
