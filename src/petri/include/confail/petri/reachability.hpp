// Reachability analysis: BFS enumeration of the marking graph, dead-marking
// (no transition enabled) detection, boundedness and invariant checking.
//
// This is what makes the paper's Figure-1 model *checkable*: for the
// N-thread/one-lock net we enumerate every reachable state and verify the
// mutual-exclusion invariant, and for the notify-gated variant we find the
// dead markings that correspond exactly to the FF-T5 "all threads waiting,
// nobody left to notify" failure.
//
// The visited-set is specialized by net size: markings of nets with <= 8
// places (every Figure-1 instance) pack into a single 64-bit word (8 bits
// per place) keyed into a flat open-addressing table (support/flat_table),
// falling back to an unordered_map over full markings for larger nets or
// token counts >= 256.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "confail/petri/net.hpp"

namespace confail::petri {

struct MarkingHash {
  std::size_t operator()(const Marking& m) const noexcept {
    std::size_t h = 0xcbf29ce484222325ull;
    for (std::uint32_t v : m) {
      h ^= v;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

/// One edge of the reachability graph.
struct ReachEdge {
  TransitionId transition;
  std::size_t target;  ///< state index
};

struct ReachabilityResult {
  std::vector<Marking> states;                 ///< index = state id; [0] = initial
  std::vector<std::vector<ReachEdge>> edges;   ///< per state
  std::vector<std::size_t> deadStates;         ///< states with no enabled transition
  bool complete = true;  ///< false if the state cap stopped enumeration

  std::size_t stateCount() const { return states.size(); }
  std::size_t edgeCount() const;
};

/// Enumerate markings reachable from `initial` (BFS), up to `maxStates`.
ReachabilityResult reachable(const Net& net, const Marking& initial,
                             std::size_t maxStates = 1u << 20);

/// Check a P-invariant: the weighted token sum `sum_i weights[i]*m[i]` is
/// identical in every enumerated state.  Returns true if it holds.
bool holdsPInvariant(const ReachabilityResult& r, const std::vector<int>& weights);

/// The maximum token count any single place attains across all states
/// (a k-bounded net never exceeds k).
std::uint32_t maxTokensPerPlace(const ReachabilityResult& r);

/// Shortest firing sequence (transition ids) from the initial state to the
/// given state index, via BFS parent tracking re-derivation.
std::vector<TransitionId> shortestPathTo(const Net& net,
                                         const ReachabilityResult& r,
                                         std::size_t target);

}  // namespace confail::petri
