// Reachability analysis: BFS enumeration of the marking graph, dead-marking
// (no transition enabled) detection, boundedness and invariant checking.
//
// This is what makes the paper's Figure-1 model *checkable*: for the
// N-thread/M-monitor nets we enumerate every reachable state and verify the
// mutual-exclusion invariants, and for the notify-gated variant we find the
// dead markings that correspond exactly to the FF-T5 "all threads waiting,
// nobody left to notify" failure.
//
// Engine selection by net shape: markings of 1-bounded nets up to 256
// places pack into 1–4 64-bit words (one bit per place, see
// packed_marking.hpp) keyed into a flat open-addressing table
// (support/flat_table) — this covers every N x M thread/lock instance the
// state cap admits.  The packed engine runs a level-synchronous BFS whose
// expansion phase can fan out across worker threads while keeping state
// numbering deterministic (docs/petri.md); unsafe or over-wide nets fall
// back to a serial unordered_map enumeration over full markings.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "confail/petri/net.hpp"

namespace confail::obs {
class Registry;
}

namespace confail::petri {

/// Hash for full markings (the generic engine's unordered_map key).
/// SplitMix64-finalized per word: markings are sparse 0/1 vectors, where a
/// plain FNV-per-uint32 leaves the low output bits a near-linear function
/// of the input and collides across token moves; the finalizer avalanches
/// every word before the next is folded in.
struct MarkingHash {
  std::size_t operator()(const Marking& m) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull + m.size();
    for (std::uint32_t v : m) {
      std::uint64_t k = h ^ v;
      k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
      k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
      h = k ^ (k >> 31);
    }
    return static_cast<std::size_t>(h);
  }
};

/// One edge of the reachability graph.
struct ReachEdge {
  TransitionId transition;
  std::size_t target;  ///< state index

  bool operator==(const ReachEdge& o) const {
    return transition == o.transition && target == o.target;
  }
};

/// How a state was first discovered: its BFS-tree parent and the
/// transition that fired.  Recorded once during enumeration so witness
/// extraction is O(path length) instead of a fresh BFS per query.
struct ParentLink {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t parent = kNone;  ///< kNone for the initial state
  TransitionId transition = 0;
};

struct ReachabilityResult {
  std::vector<Marking> states;                 ///< index = state id; [0] = initial
  std::vector<std::vector<ReachEdge>> edges;   ///< per state
  std::vector<ParentLink> parents;             ///< BFS tree, per state
  std::vector<std::size_t> deadStates;         ///< states with no enabled transition
  bool complete = true;  ///< false if the state cap stopped enumeration

  /// Orbit size per state under the symmetry group — empty unless produced
  /// by reachableSymmetric with a non-trivial symmetry, in which case
  /// `states` holds one canonical representative per orbit.
  std::vector<std::uint64_t> orbitSizes;
  /// Successor markings whose canonical form differed from the fired-to
  /// marking (0 without symmetry reduction).
  std::uint64_t symmetryHits = 0;
  /// High-water memory of the per-level successor records (bytes).
  std::size_t peakFrontierBytes = 0;

  std::size_t stateCount() const { return states.size(); }
  std::size_t edgeCount() const;
  /// Full-space state count: sum of orbit sizes, or stateCount() when no
  /// symmetry reduction was applied.
  std::uint64_t fullStateCount() const;
  /// Full-space dead-marking count (orbit-expanded like fullStateCount).
  std::uint64_t fullDeadStateCount() const;
};

struct ReachOptions {
  std::size_t maxStates = std::size_t{1} << 20;
  /// Expansion-phase worker threads (<= 1 means serial).  The result is
  /// byte-identical for any worker count.
  std::size_t workers = 1;
  /// When set, publishes petri.* counters/gauges after enumeration
  /// (docs/observability.md).
  obs::Registry* metrics = nullptr;
};

/// Enumerate markings reachable from `initial` (BFS), up to opt.maxStates.
ReachabilityResult reachable(const Net& net, const Marking& initial,
                             const ReachOptions& opt);

/// Historical convenience overload.
ReachabilityResult reachable(const Net& net, const Marking& initial,
                             std::size_t maxStates = std::size_t{1} << 20);

/// Check a P-invariant: the weighted token sum `sum_i weights[i]*m[i]` is
/// identical in every enumerated state.  Returns true if it holds.
bool holdsPInvariant(const ReachabilityResult& r, const std::vector<int>& weights);

/// The maximum token count any single place attains across all states
/// (a k-bounded net never exceeds k).
std::uint32_t maxTokensPerPlace(const ReachabilityResult& r);

/// Shortest firing sequence (transition ids) from the initial state to the
/// given state index, read off the recorded BFS parent links (the BFS tree
/// path is a shortest path; O(path length)).
std::vector<TransitionId> shortestPathTo(const Net& net,
                                         const ReachabilityResult& r,
                                         std::size_t target);

}  // namespace confail::petri
