// The explorer ⊆ net cross-check oracle.
//
// Contract (docs/petri.md): every marking visited by a real substrate
// execution — in particular every *failure* state the explorer reaches —
// must be a reachable marking of the thread/lock net of the same shape.
// The checker replays each captured trace through the free-notify net and
// looks the visited markings up in the net's (symmetry-reduced)
// enumerated state space; a miss means either the substrate escaped the
// paper's model or the new packed/symmetric/parallel reachability engine
// lost states — both are bugs worth a loud failure, which is what makes
// this a genuine second oracle for the whole system.
//
// Two refinements:
//   * Traces without spurious wakes are legal firing sequences of the
//     *gated* net too (a Notified event fires while its notifier holds the
//     monitor), so their markings are additionally checked against the
//     gated state space — a strictly smaller set.
//   * A failed run whose final marking has every thread waiting is the
//     FF-T5 pattern: that marking must be dead in the gated net.
//
// Traces that use nested monitors are out of the Figure-1 protocol's scope
// and are counted, not failed (trace_validator.hpp).  Nets are cached per
// (threads, monitors) shape, so a whole exploration costs a handful of
// enumerations plus O(events) per run.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "confail/events/trace.hpp"
#include "confail/petri/symmetry.hpp"
#include "confail/petri/thread_lock_net.hpp"

namespace confail::petri {

struct CrossCheckOptions {
  unsigned maxThreads = 8;   ///< larger traces are out of scope
  unsigned maxMonitors = 2;  ///< ditto
  std::size_t maxStates = std::size_t{1} << 20;
  std::size_t workers = 1;
  Symmetry symmetry = Symmetry::Threads;
};

struct CrossCheckReport {
  bool ok = true;
  std::size_t runs = 0;             ///< traces fed in
  std::size_t inScopeRuns = 0;      ///< fully replayed and checked
  std::size_t outOfScopeRuns = 0;   ///< nested monitors / too large
  std::size_t emptyRuns = 0;        ///< no monitor activity at all
  std::size_t markingsChecked = 0;  ///< free-net membership lookups
  std::size_t gatedMarkingsChecked = 0;  ///< gated-net membership lookups
  std::size_t failureStatesChecked = 0;  ///< final markings of failed runs
  std::size_t incompleteSkips = 0;  ///< runs not checked: enumeration capped
  std::size_t netsBuilt = 0;        ///< distinct (threads, monitors) shapes
  std::size_t violations = 0;
  std::string firstViolation;
};

class ModelCrossChecker {
 public:
  explicit ModelCrossChecker(CrossCheckOptions opt = {});
  ~ModelCrossChecker();

  /// Feed one run's trace.  `failed` marks runs that ended abnormally
  /// (deadlock, starvation) — their final marking gets the FF-T5 checks.
  /// Not thread-safe; serialize calls.
  void addRun(const events::Trace& trace, bool failed);

  const CrossCheckReport& report() const { return report_; }

 private:
  struct NetCache;
  NetCache& netFor(unsigned threads, unsigned monitors);
  void violation(const std::string& detail);

  CrossCheckOptions opt_;
  CrossCheckReport report_;
  std::map<std::pair<unsigned, unsigned>, std::unique_ptr<NetCache>> nets_;
};

}  // namespace confail::petri
