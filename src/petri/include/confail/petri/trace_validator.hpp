// Trace-against-model validation.
//
// Every monitor operation in confail emits the Figure-1 transition it
// fires, so a recorded execution trace *is* a candidate firing sequence of
// the thread/lock net.  The validators replay the trace through the net and
// check that each event was enabled — a machine-checked proof that the
// monitor substrate implements the paper's model (and a property test that
// runs over every component in the test suite).
//
// Two entry points:
//   * validateTraceAgainstModel — the historical single-monitor check:
//     project the trace onto one monitor, replay on a free-notify net.
//   * replayTraceOnModel — the N x M replay behind the cross-check oracle:
//     the whole trace against a ThreadLockNet, all monitors at once,
//     collecting every visited marking.  Traces that use nested monitors
//     (a thread engaging a second monitor while inside one) are *out of
//     scope* of the Figure-1 protocol, not violations — the replay
//     classifies them via ModelReplay::inScope.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "confail/events/trace.hpp"
#include "confail/petri/thread_lock_net.hpp"

namespace confail::petri {

struct ValidationResult {
  bool ok = true;
  std::size_t eventsChecked = 0;
  std::size_t firstBadIndex = 0;  ///< index into the filtered event list
  std::string message;
};

/// Validate the projection of `trace` onto monitor `mon` against the
/// free-notify thread/lock net.  Threads are mapped densely in order of
/// first appearance; `maxThreads` caps the net size.
///
/// SpuriousWake events are treated as T5 firings (a wake without a notify
/// is still the D->B move of the model).  Reentrant lock operations emit no
/// events, so the trace is already in single-token form.
ValidationResult validateTraceAgainstModel(const events::Trace& trace,
                                           events::MonitorId mon,
                                           unsigned maxThreads = 16);

/// Dense thread/monitor footprint of a trace's model events (first-
/// appearance order, the same order replayTraceOnModel maps by).
struct TraceShape {
  unsigned threads = 0;
  unsigned monitors = 0;
};

TraceShape traceShape(const events::Trace& trace);

struct ModelReplay {
  bool ok = true;       ///< the trace is a legal firing sequence of `tl`
  bool inScope = true;  ///< false: the trace left the Figure-1 protocol
  std::size_t eventsChecked = 0;
  std::string message;  ///< violation / out-of-scope explanation
  bool sawSpuriousWake = false;
  /// Every visited marking, tl.initial first; one entry per fired
  /// transition after that.  Valid up to the point ok/inScope went false.
  std::vector<Marking> markings;
};

/// Replay all model events of `trace` (every monitor, interleaved in
/// sequence order) against `tl`, which must be at least traceShape-sized.
/// Works for both notify models: on a gated net a Notified/SpuriousWake
/// event fires T5_{i<-j} for the unique thread j inside that monitor
/// (mutual exclusion makes j unique), and is a violation if no such j
/// exists.
ModelReplay replayTraceOnModel(const events::Trace& trace,
                               const ThreadLockNet& tl);

}  // namespace confail::petri
