// Trace-against-model validation.
//
// Every monitor operation in confail emits the Figure-1 transition it
// fires, so a recorded execution trace *is* a candidate firing sequence of
// the thread/lock net.  The validator replays the trace through the net and
// checks that each event was enabled — a machine-checked proof that the
// monitor substrate implements the paper's model (and a property test that
// runs over every component in the test suite).
#pragma once

#include <string>
#include <vector>

#include "confail/events/trace.hpp"
#include "confail/petri/thread_lock_net.hpp"

namespace confail::petri {

struct ValidationResult {
  bool ok = true;
  std::size_t eventsChecked = 0;
  std::size_t firstBadIndex = 0;  ///< index into the filtered event list
  std::string message;
};

/// Validate the projection of `trace` onto monitor `mon` against the
/// free-notify thread/lock net.  Threads are mapped densely in order of
/// first appearance; `maxThreads` caps the net size.
///
/// SpuriousWake events are treated as T5 firings (a wake without a notify
/// is still the D->B move of the model).  Reentrant lock operations emit no
/// events, so the trace is already in single-token form.
ValidationResult validateTraceAgainstModel(const events::Trace& trace,
                                           events::MonitorId mon,
                                           unsigned maxThreads = 16);

}  // namespace confail::petri
