// Automatic P-invariant computation.
//
// A P-invariant is an integer place-weighting y such that every transition
// firing conserves the weighted token sum: y^T C = 0, where C is the
// incidence matrix C[p][t] = outputs(t,p) - inputs(t,p).  The invariants of
// the Figure 1 thread/lock net — mutual exclusion (E + sum C_i) and the
// per-thread state conservation (A_i+B_i+C_i+D_i) — fall out of this
// computation instead of being asserted by hand; the property tests verify
// the computed basis against exhaustive reachability.
#pragma once

#include <cstdint>
#include <vector>

#include "confail/petri/net.hpp"

namespace confail::petri {

/// An integer basis of the P-invariant space (each vector sized to
/// net.placeCount(), content-normalized: gcd 1, first nonzero positive).
/// Computed by fraction-free Gaussian elimination over the rationals.
std::vector<std::vector<long long>> computePInvariants(const Net& net);

/// True if `weights` is a P-invariant of the net (y^T C == 0) — a purely
/// structural check, no reachability needed.
bool isPInvariant(const Net& net, const std::vector<long long>& weights);

/// T-invariants: integer transition-count vectors x with C x = 0 — firing
/// every transition t exactly x[t] times (in some order) reproduces the
/// starting marking.  For the Figure 1 net these are the cyclic thread
/// behaviours: the plain critical section (T1,T2,T4) and the waiting pass
/// (T1,T2,T3,T5,T2,T4 — note T2 twice: acquire and re-acquire).
std::vector<std::vector<long long>> computeTInvariants(const Net& net);

/// True if `counts` (sized transitionCount) is a T-invariant (C x == 0).
bool isTInvariant(const Net& net, const std::vector<long long>& counts);

}  // namespace confail::petri
