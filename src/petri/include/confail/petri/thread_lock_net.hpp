// The paper's Figure 1 as a generated Petri net, for N threads sharing M
// object locks (M = 1 is Figure 1 as printed, for any N).
//
// Per thread i and monitor m the net has places
//   A_i    (executing outside any monitor; one per thread),
//   B_im   (requesting monitor m),
//   C_im   (in m's critical section),
//   D_im   (waiting on m),
// plus one lock place E_m per monitor (m available), and transitions
//   T1_im: A_i -> B_im              (request m)
//   T2_im: B_im + E_m -> C_im      (acquire)
//   T3_im: C_im -> D_im + E_m      (wait: releases the lock)
//   T4_im: C_im -> A_i + E_m       (leave the synchronized block)
//   T5_im: D_im -> B_im            (woken)
//
// The single A_i per thread encodes the model's scope: a thread engages
// one monitor at a time (no nested synchronized blocks — that regime is
// the lock-order-deadlock world, outside the Figure-1 protocol; the trace
// validator classifies such traces out of scope rather than as
// violations).
//
// The paper draws T5's cause — another thread's notify — as a dashed arc
// from outside the net.  Two variants make that precise:
//   * free    — T5_im fires spontaneously (the dashed arc abstracted away;
//               exactly Figure 1 as printed);
//   * gated   — T5_{i<-j,m}: C_jm + D_im -> C_jm + B_im for j != i, i.e. a
//               waiter on m wakes only while some *other* thread is inside
//               monitor m to notify it.  In this variant a marking with
//               every thread in some D is dead — precisely the FF-T5
//               "everybody waits, nobody notifies" failure of Table 1, now
//               discoverable by reachability analysis.
//
// Place layout (relied on by the packed encoding and symmetry reduction):
// thread-major blocks of width 1+3M — thread i occupies places
// [i*(1+3M), (i+1)*(1+3M)) as A_i, then B_im, C_im, D_im per monitor —
// followed by the M lock places E_m.  Thread blocks are structurally
// identical under any relabeling of threads, which is what makes sorting
// blocks a sound canonical form (docs/petri.md).
#pragma once

#include <vector>

#include "confail/petri/net.hpp"

namespace confail::petri {

enum class NotifyModel { Free, Gated };

struct ThreadLockNet {
  Net net;
  Marking initial;  ///< all threads in A, one token in each E_m
  unsigned threads = 0;
  unsigned monitors = 1;
  NotifyModel model = NotifyModel::Free;

  // Place ids: A per thread; B/C/D per [thread][monitor]; E per monitor.
  std::vector<PlaceId> A;
  std::vector<std::vector<PlaceId>> B, C, D;
  std::vector<PlaceId> E;

  // Transition ids per [thread][monitor].
  std::vector<std::vector<TransitionId>> T1, T2, T3, T4;
  std::vector<std::vector<TransitionId>> T5free;  ///< Free: [thread][monitor]
  /// Gated: [monitor][waiter][notifier]; diagonal entries unused (0).
  std::vector<std::vector<std::vector<TransitionId>>> T5gated;

  /// Weights of the per-thread conservation invariant
  /// A_i + sum_m (B_im + C_im + D_im) == 1 for thread i.
  std::vector<int> threadConservationWeights(unsigned i) const;

  /// Weights of monitor m's lock invariant  E_m + sum_i C_im == 1
  /// (each lock is either free or held by exactly one thread — the
  /// mutual-exclusion property of the model).
  std::vector<int> lockInvariantWeights(unsigned m = 0) const;

  /// True if marking `mk` has every thread in a wait place D
  /// (the lost-notification deadlock pattern).
  bool allWaiting(const Marking& mk) const;

  /// Thread i's local-state code in `mk`: 0 = A_i, 1+3m = B_im,
  /// 2+3m = C_im, 3+3m = D_im.  Well-defined for any marking respecting
  /// the conservation invariant (every reachable marking does).
  unsigned localState(const Marking& mk, unsigned i) const;

  /// Number of distinct local-state codes (1 + 3*monitors).
  unsigned localStateCount() const { return 1 + 3 * monitors; }
};

/// Build the net for `threads` >= 1 threads and `monitors` >= 1 monitors.
ThreadLockNet buildThreadLockNet(unsigned threads, unsigned monitors,
                                 NotifyModel model);

/// Single-monitor convenience (the historical Figure-1 entry point).
inline ThreadLockNet buildThreadLockNet(unsigned threads, NotifyModel model) {
  return buildThreadLockNet(threads, 1, model);
}

}  // namespace confail::petri
