// The paper's Figure 1 as a generated Petri net, for N threads sharing one
// object lock.
//
// Per thread i the net has places
//   A_i (executing outside),  B_i (requesting the lock),
//   C_i (in the critical section),  D_i (waiting),
// plus a single shared place E (lock available), and transitions
//   T1_i: A_i -> B_i            (request)
//   T2_i: B_i + E -> C_i        (acquire)
//   T3_i: C_i -> D_i + E        (wait: releases the lock)
//   T4_i: C_i -> A_i + E        (leave the synchronized block)
//   T5  : D_i -> B_i            (woken)
//
// The paper draws T5's cause — another thread's notify — as a dashed arc
// from outside the net.  Two variants make that precise:
//   * free    — T5_i fires spontaneously (the dashed arc abstracted away;
//               exactly Figure 1 as printed);
//   * gated   — T5_{i,j}: C_j + D_i -> C_j + B_i for j != i, i.e. a waiter
//               wakes only while some *other* thread is inside the monitor
//               to notify it.  In this variant a marking with every thread
//               in D is dead — precisely the FF-T5 "everybody waits, nobody
//               notifies" failure of Table 1, now discoverable by
//               reachability analysis.
#pragma once

#include <vector>

#include "confail/petri/net.hpp"

namespace confail::petri {

enum class NotifyModel { Free, Gated };

struct ThreadLockNet {
  Net net;
  Marking initial;  ///< all threads in A, one token in E
  unsigned threads = 0;
  NotifyModel model = NotifyModel::Free;

  // Place ids per thread, plus the shared lock place.
  std::vector<PlaceId> A, B, C, D;
  PlaceId E = 0;

  // Transition ids per thread.
  std::vector<TransitionId> T1, T2, T3, T4;
  std::vector<TransitionId> T5free;                  ///< Free model: one per thread
  std::vector<std::vector<TransitionId>> T5gated;    ///< Gated: [waiter][notifier]

  /// Weights of the per-thread conservation invariant
  /// A_i + B_i + C_i + D_i == 1 for thread i.
  std::vector<int> threadConservationWeights(unsigned i) const;

  /// Weights of the lock invariant  E + sum_i C_i == 1
  /// (the lock is either free or held by exactly one thread — the
  /// mutual-exclusion property of the model).
  std::vector<int> lockInvariantWeights() const;

  /// True if marking `m` has every thread in the wait place D
  /// (the lost-notification deadlock pattern).
  bool allWaiting(const Marking& m) const;
};

/// Build the net for `threads` >= 1 threads.
ThreadLockNet buildThreadLockNet(unsigned threads, NotifyModel model);

}  // namespace confail::petri
