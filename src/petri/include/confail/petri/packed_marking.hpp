// Packed bit-vector encoding for 1-bounded (safe) markings.
//
// The thread/lock nets are structurally 1-bounded — every place sits under
// a P-invariant with weight 1 and token sum 1 — so a marking carries one
// bit of information per place.  PackedMarking<W> stores exactly that: bit
// p%64 of word p/64 is set iff place p holds a token.  One word covers
// nets up to 64 places (N x M instances up to about N=9, M=2); four words
// cover 256 places, far beyond anything the reachability cap admits.
//
// The encoding is *lossless*, which is the point: the packed words double
// as the FlatMapN hash key *and* the stored state, so the reachability
// frontier keeps (parent, transition, key) records of a few machine words
// instead of vector<uint32_t> markings, and a newly discovered state is
// reconstructed from its key with decode().  encode() detects dynamic
// unsafety (a place with 2+ tokens) and returns nullopt, at which point
// the caller falls back to the generic engine — packedness is an observed
// property, never an assumption.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "confail/petri/net.hpp"

namespace confail::petri {

/// Words needed to pack a marking of `places` places, one bit each.
constexpr std::size_t packedWords(std::size_t places) {
  return (places + 63) / 64;
}

template <std::size_t W>
struct PackedMarking {
  std::array<std::uint64_t, W> words{};

  /// Pack `m`; nullopt if any place holds more than one token or the
  /// marking needs more than W words.
  static std::optional<PackedMarking> encode(const Marking& m) {
    if (packedWords(m.size()) > W) return std::nullopt;
    PackedMarking p;
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i] > 1) return std::nullopt;
      p.words[i >> 6] |= static_cast<std::uint64_t>(m[i]) << (i & 63);
    }
    return p;
  }

  /// Reconstruct the marking (the encoding is lossless for safe markings).
  Marking decode(std::size_t places) const {
    Marking m(places, 0);
    for (std::size_t i = 0; i < places; ++i) {
      m[i] = static_cast<std::uint32_t>((words[i >> 6] >> (i & 63)) & 1);
    }
    return m;
  }

  bool operator==(const PackedMarking& o) const { return words == o.words; }
  bool operator!=(const PackedMarking& o) const { return words != o.words; }
  /// Arbitrary-but-stable total order (word 0 first); used by the symmetry
  /// reduction to pick the least element of an orbit as its canonical form.
  bool operator<(const PackedMarking& o) const { return words < o.words; }
};

}  // namespace confail::petri
