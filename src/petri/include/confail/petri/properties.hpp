// Table-1 deviation classes as temporal properties of the thread/lock net,
// checked directly on an enumerated (possibly symmetry-reduced)
// reachability graph:
//
//   * mutual exclusion  — every monitor's lock invariant E_m + sum_i C_im
//     holds in all states (a violation would be the paper's "no lock"
//     world);
//   * dead markings     — under the gated model, the reachable all-waiting
//     dead marking *is* FF-T5 ("everybody waits, nobody notifies"), and a
//     shortest firing sequence to it is the failure witness;
//   * T5 liveness       — from every state with a waiting thread some T5
//     firing is still reachable.  Free model: holds (wakes are
//     spontaneous).  Gated model: fails exactly because the net can run
//     out of notifiers.
//
// Every property is orbit-invariant (permutation of thread/monitor
// identities preserves enabledness, token sums and deadness), so checking
// the canonical representatives of a symmetric enumeration decides the
// full space — the soundness argument of docs/petri.md.
#pragma once

#include <vector>

#include "confail/petri/reachability.hpp"
#include "confail/petri/thread_lock_net.hpp"

namespace confail::petri {

struct ModelVerdicts {
  bool mutualExclusion = false;   ///< all lock invariants hold
  bool conservation = false;      ///< all thread-conservation invariants hold
  bool oneBounded = false;        ///< no place ever holds 2+ tokens
  bool deadlockFree = false;      ///< no dead marking reachable
  bool allWaitingDeadReachable = false;  ///< a dead all-waiting (FF-T5) state
  std::size_t allWaitingDeadState = ParentLink::kNone;  ///< its state index
  std::vector<TransitionId> ffT5Witness;  ///< shortest path to it

  bool t5LiveChecked = false;  ///< liveness only decided on complete graphs
  bool t5Live = false;  ///< every waiter state can still reach a T5 firing

  /// The expected profile for a well-formed net of the given model:
  /// safety invariants always; Free additionally deadlock-free and T5-live,
  /// Gated additionally *reaches* the FF-T5 dead marking and is not T5-live
  /// (that asymmetry is the point of the two variants).
  bool consistentWith(const ThreadLockNet& tl) const;
};

/// Evaluate all verdicts on an enumeration of `tl` (plain or symmetric).
/// Liveness and deadlock verdicts are only meaningful when r.complete.
ModelVerdicts verifyModel(const ThreadLockNet& tl, const ReachabilityResult& r);

}  // namespace confail::petri
