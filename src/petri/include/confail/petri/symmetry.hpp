// Canonical-form symmetry reduction for thread/lock nets.
//
// All N thread blocks of a ThreadLockNet are structurally identical
// (thread_lock_net.hpp), so any permutation of thread identities is a net
// automorphism: it maps reachable markings to reachable markings, preserves
// enabledness, deadness and every per-thread/per-monitor invariant.  Under
// the gated model monitors are interchangeable too (every thread relates to
// every monitor by the same transition pattern), giving the full group
// S_threads x S_monitors.
//
// reachableSymmetric() explores the quotient graph: each marking is
// replaced by the least element of its orbit (sort the thread local-state
// codes; under Full symmetry, minimize over all monitor relabelings first),
// so one canonical representative stands for up to N!*M! concrete states.
// The orbit size of each representative is recorded, which keeps the
// *full-space* state and dead-marking counts exactly reportable
// (fullStateCount/fullDeadStateCount) — the reduction loses nothing the
// checks care about: an orbit is dead iff its representative is dead, and
// invariant sums are permutation-invariant.  Soundness argument and the
// witness-path caveat (paths are firing sequences of the quotient graph,
// not necessarily of the concrete graph) in docs/petri.md.
#pragma once

#include <cstdint>

#include "confail/petri/reachability.hpp"
#include "confail/petri/thread_lock_net.hpp"

namespace confail::petri {

enum class Symmetry {
  None,     ///< plain enumeration (still packed/parallel)
  Threads,  ///< quotient by thread permutations
  Full,     ///< quotient by thread x monitor permutations
};

const char* symmetryName(Symmetry s);

struct SymReachOptions {
  std::size_t maxStates = std::size_t{1} << 20;
  std::size_t workers = 1;
  Symmetry symmetry = Symmetry::Threads;
  obs::Registry* metrics = nullptr;
};

/// Enumerate the (quotient) reachability graph of `tl`.  With
/// Symmetry::None this is exactly reachable(tl.net, tl.initial).
/// Thread count is capped at 20 (orbit sizes must fit uint64) and Full
/// symmetry at 5 monitors (canonicalization enumerates the M!
/// relabelings).
ReachabilityResult reachableSymmetric(const ThreadLockNet& tl,
                                      const SymReachOptions& opt = {});

/// The canonical (lexicographically least) element of `m`'s orbit.
/// Precondition: `m` respects the conservation and lock invariants (every
/// marking reachable from tl.initial does).
Marking canonicalMarking(const ThreadLockNet& tl, const Marking& m,
                         Symmetry symmetry);

/// Number of concrete markings in the orbit of (canonical) marking `m`.
std::uint64_t orbitSize(const ThreadLockNet& tl, const Marking& m,
                        Symmetry symmetry);

}  // namespace confail::petri
