// A general place/transition Petri net, as used in Section 4 of the paper
// ("Petri nets", Peterson 1977): places hold non-negative token counts,
// a transition is enabled when every input place holds at least the arc
// weight, and firing moves tokens from input places to output places.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace confail::petri {

using PlaceId = std::uint32_t;
using TransitionId = std::uint32_t;

/// Token counts per place; index = PlaceId.
using Marking = std::vector<std::uint32_t>;

/// A weighted arc between a place and a transition.
struct Arc {
  PlaceId place;
  std::uint32_t weight = 1;
};

class Net {
 public:
  PlaceId addPlace(std::string name);

  /// Adds a transition consuming `inputs` and producing `outputs`.
  TransitionId addTransition(std::string name, std::vector<Arc> inputs,
                             std::vector<Arc> outputs);

  std::size_t placeCount() const { return placeNames_.size(); }
  std::size_t transitionCount() const { return transitions_.size(); }
  const std::string& placeName(PlaceId p) const;
  const std::string& transitionName(TransitionId t) const;
  const std::vector<Arc>& inputsOf(TransitionId t) const;
  const std::vector<Arc>& outputsOf(TransitionId t) const;

  /// A marking sized to the net with all places empty.
  Marking emptyMarking() const { return Marking(placeCount(), 0); }

  /// True if `t` may fire in `m`.
  bool enabled(TransitionId t, const Marking& m) const;

  /// All transitions enabled in `m`, in id order.
  std::vector<TransitionId> enabledSet(const Marking& m) const;

  /// Fire `t` in `m` and return the successor marking.
  /// Throws UsageError if `t` is not enabled.
  Marking fire(TransitionId t, const Marking& m) const;

  /// Render a marking as "{place:count, ...}" (non-empty places only).
  std::string renderMarking(const Marking& m) const;

  /// Textual description of the whole net (places, transitions, arcs).
  std::string describe() const;

 private:
  struct Transition {
    std::string name;
    std::vector<Arc> inputs;
    std::vector<Arc> outputs;
  };
  std::vector<std::string> placeNames_;
  std::vector<Transition> transitions_;
};

}  // namespace confail::petri
