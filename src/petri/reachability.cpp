#include "confail/petri/reachability.hpp"

#include <algorithm>
#include <deque>

#include "confail/obs/metrics.hpp"
#include "confail/support/assert.hpp"
#include "level_bfs.hpp"

namespace confail::petri {

std::size_t ReachabilityResult::edgeCount() const {
  std::size_t n = 0;
  for (const auto& e : edges) n += e.size();
  return n;
}

std::uint64_t ReachabilityResult::fullStateCount() const {
  if (orbitSizes.empty()) return states.size();
  std::uint64_t n = 0;
  for (std::uint64_t o : orbitSizes) n += o;
  return n;
}

std::uint64_t ReachabilityResult::fullDeadStateCount() const {
  if (orbitSizes.empty()) return deadStates.size();
  std::uint64_t n = 0;
  for (std::size_t s : deadStates) n += orbitSizes[s];
  return n;
}

namespace detail {

void publishReachMetrics(obs::Registry* metrics, const ReachabilityResult& r) {
  if (!metrics) return;
  metrics->counter("petri.states").add(r.states.size());
  metrics->counter("petri.edges").add(r.edgeCount());
  metrics->counter("petri.dead_markings").add(r.deadStates.size());
  metrics->counter("petri.symmetry_hits").add(r.symmetryHits);
  metrics->gauge("petri.frontier_peak_bytes")
      .set(static_cast<double>(r.peakFrontierBytes));
}

}  // namespace detail

namespace {

// Fallback for nets the packed engine cannot hold: unsafe markings (2+
// tokens on a place) or more than 256 places.  Serial; still records
// parent links so witness extraction works uniformly.
void reachableGeneric(const Net& net, const Marking& initial,
                      std::size_t maxStates, ReachabilityResult& r) {
  std::unordered_map<Marking, std::size_t, MarkingHash> index;
  index.reserve(std::min<std::size_t>(maxStates, std::size_t{1} << 16));

  r.states.reserve(std::min<std::size_t>(maxStates, 4096));
  r.edges.reserve(std::min<std::size_t>(maxStates, 4096));
  r.parents.reserve(std::min<std::size_t>(maxStates, 4096));
  r.states.push_back(initial);
  r.edges.emplace_back();
  r.parents.emplace_back();
  index.emplace(initial, 0);

  std::deque<std::size_t> frontier{0};
  while (!frontier.empty()) {
    std::size_t s = frontier.front();
    frontier.pop_front();
    // Copy: r.states may reallocate as successors are appended.
    const Marking m = r.states[s];
    std::vector<TransitionId> en = net.enabledSet(m);
    if (en.empty()) r.deadStates.push_back(s);
    for (TransitionId t : en) {
      Marking next = net.fire(t, m);
      auto it = index.find(next);
      if (it != index.end()) {
        r.edges[s].push_back(ReachEdge{t, it->second});
        continue;
      }
      if (r.states.size() >= maxStates) {
        r.complete = false;  // cap: drop the new state, record no edge
        continue;
      }
      const std::size_t id = r.states.size();
      auto [ins, inserted] = index.emplace(std::move(next), id);
      CONFAIL_ASSERT(inserted, "duplicate marking after failed find");
      r.states.push_back(ins->first);
      r.edges.emplace_back();
      r.parents.push_back(ParentLink{s, t});
      frontier.push_back(id);
      r.edges[s].push_back(ReachEdge{t, id});
    }
  }
}

}  // namespace

ReachabilityResult reachable(const Net& net, const Marking& initial,
                             const ReachOptions& opt) {
  CONFAIL_CHECK(initial.size() == net.placeCount(), UsageError,
                "initial marking size mismatch");
  // Packed path: 1-bounded markings of nets up to 256 places key directly
  // into a flat table (1 word <= 64 places, 4 words beyond).  State ids
  // must also fit the table's 32-bit value slot.
  if (opt.maxStates < static_cast<std::size_t>(FlatMap64::kNoValue)) {
    const detail::IdentityCanon canon;
    if (net.placeCount() <= 64) {
      ReachabilityResult r;
      if (detail::packedLevelBfs<1>(net, initial, opt, canon, r)) {
        detail::publishReachMetrics(opt.metrics, r);
        return r;
      }
      // A place exceeded one token mid-enumeration: discard and redo
      // generically.
    } else if (net.placeCount() <= 256) {
      ReachabilityResult r;
      if (detail::packedLevelBfs<4>(net, initial, opt, canon, r)) {
        detail::publishReachMetrics(opt.metrics, r);
        return r;
      }
    }
  }
  ReachabilityResult r;
  reachableGeneric(net, initial, opt.maxStates, r);
  detail::publishReachMetrics(opt.metrics, r);
  return r;
}

ReachabilityResult reachable(const Net& net, const Marking& initial,
                             std::size_t maxStates) {
  ReachOptions opt;
  opt.maxStates = maxStates;
  return reachable(net, initial, opt);
}

bool holdsPInvariant(const ReachabilityResult& r, const std::vector<int>& weights) {
  CONFAIL_CHECK(!r.states.empty(), UsageError, "empty reachability result");
  auto weighted = [&weights](const Marking& m) {
    long long sum = 0;
    for (std::size_t i = 0; i < m.size() && i < weights.size(); ++i) {
      sum += static_cast<long long>(weights[i]) * static_cast<long long>(m[i]);
    }
    return sum;
  };
  const long long expected = weighted(r.states[0]);
  for (const Marking& m : r.states) {
    if (weighted(m) != expected) return false;
  }
  return true;
}

std::uint32_t maxTokensPerPlace(const ReachabilityResult& r) {
  std::uint32_t best = 0;
  for (const Marking& m : r.states) {
    for (std::uint32_t v : m) best = std::max(best, v);
  }
  return best;
}

std::vector<TransitionId> shortestPathTo(const Net& net,
                                         const ReachabilityResult& r,
                                         std::size_t target) {
  CONFAIL_CHECK(target < r.states.size(), UsageError, "bad target state");
  CONFAIL_CHECK(r.parents.size() == r.states.size(), UsageError,
                "result carries no parent links");
  // The enumeration is a BFS, so the recorded discovery tree is a
  // shortest-path tree: walk parent links back to the root.
  std::vector<TransitionId> path;
  for (std::size_t s = target; s != 0;) {
    const ParentLink& p = r.parents[s];
    CONFAIL_ASSERT(p.parent != ParentLink::kNone, "broken parent chain");
    path.push_back(p.transition);
    s = p.parent;
  }
  std::reverse(path.begin(), path.end());
  (void)net;
  return path;
}

}  // namespace confail::petri
