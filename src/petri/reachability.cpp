#include "confail/petri/reachability.hpp"

#include <algorithm>
#include <deque>

#include "confail/support/assert.hpp"

namespace confail::petri {

std::size_t ReachabilityResult::edgeCount() const {
  std::size_t n = 0;
  for (const auto& e : edges) n += e.size();
  return n;
}

ReachabilityResult reachable(const Net& net, const Marking& initial,
                             std::size_t maxStates) {
  CONFAIL_CHECK(initial.size() == net.placeCount(), UsageError,
                "initial marking size mismatch");
  ReachabilityResult r;
  std::unordered_map<Marking, std::size_t, MarkingHash> index;

  r.states.push_back(initial);
  r.edges.emplace_back();
  index.emplace(initial, 0);

  std::deque<std::size_t> frontier{0};
  while (!frontier.empty()) {
    std::size_t s = frontier.front();
    frontier.pop_front();
    // Copy: r.states may reallocate as successors are appended.
    const Marking m = r.states[s];
    std::vector<TransitionId> en = net.enabledSet(m);
    if (en.empty()) r.deadStates.push_back(s);
    for (TransitionId t : en) {
      Marking next = net.fire(t, m);
      auto [it, inserted] = index.emplace(std::move(next), r.states.size());
      if (inserted) {
        if (r.states.size() >= maxStates) {
          r.complete = false;
          index.erase(it);
          continue;
        }
        r.states.push_back(it->first);
        r.edges.emplace_back();
        frontier.push_back(it->second);
      }
      r.edges[s].push_back(ReachEdge{t, it->second});
    }
  }
  return r;
}

bool holdsPInvariant(const ReachabilityResult& r, const std::vector<int>& weights) {
  CONFAIL_CHECK(!r.states.empty(), UsageError, "empty reachability result");
  auto weighted = [&weights](const Marking& m) {
    long long sum = 0;
    for (std::size_t i = 0; i < m.size() && i < weights.size(); ++i) {
      sum += static_cast<long long>(weights[i]) * static_cast<long long>(m[i]);
    }
    return sum;
  };
  const long long expected = weighted(r.states[0]);
  for (const Marking& m : r.states) {
    if (weighted(m) != expected) return false;
  }
  return true;
}

std::uint32_t maxTokensPerPlace(const ReachabilityResult& r) {
  std::uint32_t best = 0;
  for (const Marking& m : r.states) {
    for (std::uint32_t v : m) best = std::max(best, v);
  }
  return best;
}

std::vector<TransitionId> shortestPathTo(const Net& net,
                                         const ReachabilityResult& r,
                                         std::size_t target) {
  CONFAIL_CHECK(target < r.states.size(), UsageError, "bad target state");
  // BFS over the recorded edges from state 0, tracking parents.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> parent(r.states.size(), kNone);
  std::vector<TransitionId> via(r.states.size(), 0);
  std::deque<std::size_t> q{0};
  std::vector<bool> seen(r.states.size(), false);
  seen[0] = true;
  while (!q.empty()) {
    std::size_t s = q.front();
    q.pop_front();
    if (s == target) break;
    for (const ReachEdge& e : r.edges[s]) {
      if (seen[e.target]) continue;
      seen[e.target] = true;
      parent[e.target] = s;
      via[e.target] = e.transition;
      q.push_back(e.target);
    }
  }
  CONFAIL_CHECK(target == 0 || seen[target], UsageError,
                "target state unreachable in recorded graph");
  std::vector<TransitionId> path;
  for (std::size_t s = target; s != 0; s = parent[s]) {
    path.push_back(via[s]);
    CONFAIL_ASSERT(parent[s] != kNone, "broken parent chain");
  }
  std::reverse(path.begin(), path.end());
  (void)net;
  return path;
}

}  // namespace confail::petri
