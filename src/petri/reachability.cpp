#include "confail/petri/reachability.hpp"

#include <algorithm>
#include <deque>
#include <optional>

#include "confail/support/assert.hpp"
#include "confail/support/flat_table.hpp"

namespace confail::petri {

std::size_t ReachabilityResult::edgeCount() const {
  std::size_t n = 0;
  for (const auto& e : edges) n += e.size();
  return n;
}

namespace {

// The Figure-1 nets (and every net the paper models) have a handful of
// places with small token counts, so a marking packs into a single 64-bit
// word at 8 bits per place.  That turns the hot BFS lookup into a probe of
// a flat open-addressing table keyed on the packed word — no Marking
// hashing, no per-node allocation, no pointer chasing.
//
// Returns nullopt if any place holds >= 256 tokens, in which case the
// caller falls back to the generic path (restarted from scratch; the
// compact run's partial work is discarded, which is cheap precisely
// because such nets blow past the encoding within a few levels of BFS).
std::optional<std::uint64_t> encodeMarking(const Marking& m) {
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i] >= 256) return std::nullopt;
    key |= static_cast<std::uint64_t>(m[i]) << (8 * i);
  }
  return key;
}

bool reachableCompact(const Net& net, const Marking& initial,
                      std::size_t maxStates, ReachabilityResult& r) {
  FlatMap64 index(std::min<std::size_t>(maxStates, std::size_t{1} << 16));
  const std::optional<std::uint64_t> initKey = encodeMarking(initial);
  if (!initKey) return false;

  r.states.reserve(std::min<std::size_t>(maxStates, 4096));
  r.edges.reserve(std::min<std::size_t>(maxStates, 4096));
  r.states.push_back(initial);
  r.edges.emplace_back();
  index.findOrInsert(*initKey, 0);

  std::deque<std::size_t> frontier{0};
  while (!frontier.empty()) {
    std::size_t s = frontier.front();
    frontier.pop_front();
    // Copy: r.states may reallocate as successors are appended.
    const Marking m = r.states[s];
    std::vector<TransitionId> en = net.enabledSet(m);
    if (en.empty()) r.deadStates.push_back(s);
    for (TransitionId t : en) {
      Marking next = net.fire(t, m);
      const std::optional<std::uint64_t> key = encodeMarking(next);
      if (!key) return false;  // encoding overflow: redo generically
      const std::uint32_t found = index.find(*key);
      if (found != FlatMap64::kNoValue) {
        r.edges[s].push_back(ReachEdge{t, found});
        continue;
      }
      if (r.states.size() >= maxStates) {
        r.complete = false;  // cap: drop the new state, record no edge
        continue;
      }
      const std::uint32_t id = static_cast<std::uint32_t>(r.states.size());
      index.findOrInsert(*key, id);
      r.states.push_back(std::move(next));
      r.edges.emplace_back();
      frontier.push_back(id);
      r.edges[s].push_back(ReachEdge{t, id});
    }
  }
  return true;
}

void reachableGeneric(const Net& net, const Marking& initial,
                      std::size_t maxStates, ReachabilityResult& r) {
  std::unordered_map<Marking, std::size_t, MarkingHash> index;
  index.reserve(std::min<std::size_t>(maxStates, std::size_t{1} << 16));

  r.states.reserve(std::min<std::size_t>(maxStates, 4096));
  r.edges.reserve(std::min<std::size_t>(maxStates, 4096));
  r.states.push_back(initial);
  r.edges.emplace_back();
  index.emplace(initial, 0);

  std::deque<std::size_t> frontier{0};
  while (!frontier.empty()) {
    std::size_t s = frontier.front();
    frontier.pop_front();
    // Copy: r.states may reallocate as successors are appended.
    const Marking m = r.states[s];
    std::vector<TransitionId> en = net.enabledSet(m);
    if (en.empty()) r.deadStates.push_back(s);
    for (TransitionId t : en) {
      Marking next = net.fire(t, m);
      auto it = index.find(next);
      if (it != index.end()) {
        r.edges[s].push_back(ReachEdge{t, it->second});
        continue;
      }
      if (r.states.size() >= maxStates) {
        r.complete = false;  // cap: drop the new state, record no edge
        continue;
      }
      const std::size_t id = r.states.size();
      auto [ins, inserted] = index.emplace(std::move(next), id);
      CONFAIL_ASSERT(inserted, "duplicate marking after failed find");
      r.states.push_back(ins->first);
      r.edges.emplace_back();
      frontier.push_back(id);
      r.edges[s].push_back(ReachEdge{t, id});
    }
  }
}

}  // namespace

ReachabilityResult reachable(const Net& net, const Marking& initial,
                             std::size_t maxStates) {
  CONFAIL_CHECK(initial.size() == net.placeCount(), UsageError,
                "initial marking size mismatch");
  // Compact path: markings of nets with <= 8 places pack into one 64-bit
  // word (8 bits per place), keyed into a flat open-addressing table.
  // State ids must also fit the table's 32-bit value slot.
  if (net.placeCount() <= 8 &&
      maxStates < static_cast<std::size_t>(FlatMap64::kNoValue)) {
    ReachabilityResult r;
    if (reachableCompact(net, initial, maxStates, r)) return r;
    // A place exceeded 255 tokens mid-enumeration: discard and redo
    // generically.
  }
  ReachabilityResult r;
  reachableGeneric(net, initial, maxStates, r);
  return r;
}

bool holdsPInvariant(const ReachabilityResult& r, const std::vector<int>& weights) {
  CONFAIL_CHECK(!r.states.empty(), UsageError, "empty reachability result");
  auto weighted = [&weights](const Marking& m) {
    long long sum = 0;
    for (std::size_t i = 0; i < m.size() && i < weights.size(); ++i) {
      sum += static_cast<long long>(weights[i]) * static_cast<long long>(m[i]);
    }
    return sum;
  };
  const long long expected = weighted(r.states[0]);
  for (const Marking& m : r.states) {
    if (weighted(m) != expected) return false;
  }
  return true;
}

std::uint32_t maxTokensPerPlace(const ReachabilityResult& r) {
  std::uint32_t best = 0;
  for (const Marking& m : r.states) {
    for (std::uint32_t v : m) best = std::max(best, v);
  }
  return best;
}

std::vector<TransitionId> shortestPathTo(const Net& net,
                                         const ReachabilityResult& r,
                                         std::size_t target) {
  CONFAIL_CHECK(target < r.states.size(), UsageError, "bad target state");
  // BFS over the recorded edges from state 0, tracking parents.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> parent(r.states.size(), kNone);
  std::vector<TransitionId> via(r.states.size(), 0);
  std::deque<std::size_t> q{0};
  std::vector<bool> seen(r.states.size(), false);
  seen[0] = true;
  while (!q.empty()) {
    std::size_t s = q.front();
    q.pop_front();
    if (s == target) break;
    for (const ReachEdge& e : r.edges[s]) {
      if (seen[e.target]) continue;
      seen[e.target] = true;
      parent[e.target] = s;
      via[e.target] = e.transition;
      q.push_back(e.target);
    }
  }
  CONFAIL_CHECK(target == 0 || seen[target], UsageError,
                "target state unreachable in recorded graph");
  std::vector<TransitionId> path;
  for (std::size_t s = target; s != 0; s = parent[s]) {
    path.push_back(via[s]);
    CONFAIL_ASSERT(parent[s] != kNone, "broken parent chain");
  }
  std::reverse(path.begin(), path.end());
  (void)net;
  return path;
}

}  // namespace confail::petri
