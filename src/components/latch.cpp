#include "confail/components/latch.hpp"

#include "confail/support/assert.hpp"

namespace confail::components {

using events::EventKind;
using monitor::MethodScope;
using monitor::Synchronized;

CountDownLatch::CountDownLatch(monitor::Runtime& rt, const std::string& name,
                               int count, const Faults& faults)
    : rt_(rt),
      f_(faults),
      mon_(rt, name),
      count_(rt, name + ".count", count),
      mAwait_(rt.registerMethod(name + ".await")),
      mCountDown_(rt.registerMethod(name + ".countDown")) {
  CONFAIL_CHECK(count >= 0, UsageError, "negative latch count");
}

void CountDownLatch::await() {
  MethodScope scope(rt_, mAwait_);
  Synchronized sync(mon_);
  for (;;) {
    bool open = count_.get() == 0;
    rt_.emit(EventKind::GuardEval, events::kNoMonitor, mAwait_, !open);
    if (open) break;
    mon_.wait();
  }
}

void CountDownLatch::countDown() {
  MethodScope scope(rt_, mCountDown_);
  Synchronized sync(mon_);
  int c = count_.get();
  if (c == 0) return;
  count_.set(c - 1);
  if (c - 1 == 0 && !f_.skipNotify) mon_.notifyAll();
}

}  // namespace confail::components
