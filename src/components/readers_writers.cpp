#include "confail/components/readers_writers.hpp"

namespace confail::components {

using events::EventKind;
using monitor::MethodScope;
using monitor::Synchronized;

ReadersWriters::ReadersWriters(monitor::Runtime& rt, Preference pref,
                               const Faults& faults)
    : rt_(rt),
      pref_(pref),
      f_(faults),
      mon_(rt, "ReadersWriters"),
      readers_(rt, "rw.readers", 0),
      writer_(rt, "rw.writer", 0),
      waitingWriters_(rt, "rw.waitingWriters", 0),
      mStartRead_(rt.registerMethod("rw.startRead")),
      mEndRead_(rt.registerMethod("rw.endRead")),
      mStartWrite_(rt.registerMethod("rw.startWrite")),
      mEndWrite_(rt.registerMethod("rw.endWrite")) {}

void ReadersWriters::guardEval(events::MethodId m, bool value) {
  rt_.emit(EventKind::GuardEval, events::kNoMonitor, m, value);
}

void ReadersWriters::startRead() {
  MethodScope scope(rt_, mStartRead_);
  Synchronized sync(mon_);
  for (;;) {
    // Readers-preference admits readers whenever no writer is active;
    // Fair mode also defers to queued writers.
    bool blocked = writer_.get() != 0 ||
                   (pref_ == Preference::Fair && waitingWriters_.get() > 0);
    guardEval(mStartRead_, blocked);
    if (!blocked) break;
    mon_.wait();
  }
  readers_.set(readers_.get() + 1);
}

void ReadersWriters::endRead() {
  MethodScope scope(rt_, mEndRead_);
  if (f_.unsyncedEndRead) {
    // FF-T1 mutant: decrement without the monitor lock; concurrent
    // endRead calls interleave and lose updates, leaving phantom readers
    // that block writers forever.
    readers_.set(readers_.get() - 1);
    return;
  }
  Synchronized sync(mon_);
  readers_.set(readers_.get() - 1);
  if (readers_.get() == 0) mon_.notifyAll();
}

void ReadersWriters::startWrite() {
  MethodScope scope(rt_, mStartWrite_);
  Synchronized sync(mon_);
  waitingWriters_.set(waitingWriters_.get() + 1);
  for (;;) {
    bool blocked = writer_.get() != 0 || readers_.get() > 0;
    guardEval(mStartWrite_, blocked);
    if (!blocked) break;
    mon_.wait();
  }
  waitingWriters_.set(waitingWriters_.get() - 1);
  writer_.set(1);
}

void ReadersWriters::endWrite() {
  MethodScope scope(rt_, mEndWrite_);
  Synchronized sync(mon_);
  writer_.set(0);
  if (!f_.skipNotifyOnEndWrite) mon_.notifyAll();
}

}  // namespace confail::components
