#include "confail/components/semaphore.hpp"

#include "confail/support/assert.hpp"

namespace confail::components {

using events::EventKind;
using monitor::MethodScope;
using monitor::Synchronized;

CountingSemaphore::CountingSemaphore(monitor::Runtime& rt,
                                     const std::string& name,
                                     int initialPermits, const Faults& faults)
    : rt_(rt),
      f_(faults),
      mon_(rt, name),
      permits_(rt, name + ".permits", initialPermits),
      mAcquire_(rt.registerMethod(name + ".acquire")),
      mRelease_(rt.registerMethod(name + ".release")) {
  CONFAIL_CHECK(initialPermits >= 0, UsageError, "negative initial permits");
}

void CountingSemaphore::acquire() {
  MethodScope scope(rt_, mAcquire_);
  Synchronized sync(mon_);
  if (f_.ifInsteadOfWhile) {
    bool none = permits_.get() == 0;
    rt_.emit(EventKind::GuardEval, events::kNoMonitor, mAcquire_, none);
    if (none) mon_.wait();
  } else {
    for (;;) {
      bool none = permits_.get() == 0;
      rt_.emit(EventKind::GuardEval, events::kNoMonitor, mAcquire_, none);
      if (!none) break;
      mon_.wait();
    }
  }
  permits_.set(permits_.get() - 1);
}

void CountingSemaphore::release() {
  MethodScope scope(rt_, mRelease_);
  Synchronized sync(mon_);
  permits_.set(permits_.get() + 1);
  if (!f_.skipNotify) mon_.notifyOne();
}

}  // namespace confail::components
