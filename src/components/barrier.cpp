#include "confail/components/barrier.hpp"

#include "confail/support/assert.hpp"

namespace confail::components {

using events::EventKind;
using monitor::MethodScope;
using monitor::Synchronized;

CyclicBarrier::CyclicBarrier(monitor::Runtime& rt, const std::string& name,
                             int parties, const Faults& faults)
    : rt_(rt),
      f_(faults),
      parties_(parties),
      mon_(rt, name),
      arrived_(rt, name + ".arrived", 0),
      generation_(rt, name + ".generation", 0),
      mAwait_(rt.registerMethod(name + ".await")) {
  CONFAIL_CHECK(parties >= 1, UsageError, "barrier needs >= 1 parties");
}

int CyclicBarrier::await() {
  MethodScope scope(rt_, mAwait_);
  Synchronized sync(mon_);
  const int myGen = generation_.get();
  arrived_.set(arrived_.get() + 1);
  if (arrived_.get() == parties_) {
    // Last arriver: open the barrier for this generation.
    arrived_.set(0);
    generation_.set(myGen + 1);
    if (f_.notifyOneOnly) {
      mon_.notifyOne();
    } else {
      mon_.notifyAll();
    }
    return myGen;
  }
  if (f_.ifInsteadOfWhile) {
    bool same = generation_.get() == myGen;
    rt_.emit(EventKind::GuardEval, events::kNoMonitor, mAwait_, same);
    if (same) mon_.wait();
  } else {
    for (;;) {
      bool same = generation_.get() == myGen;
      rt_.emit(EventKind::GuardEval, events::kNoMonitor, mAwait_, same);
      if (!same) break;
      mon_.wait();
    }
  }
  return myGen;
}

}  // namespace confail::components
