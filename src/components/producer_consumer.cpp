#include "confail/components/producer_consumer.hpp"

namespace confail::components {

using events::EventKind;
using monitor::MethodScope;
using monitor::Synchronized;

ProducerConsumer::ProducerConsumer(Runtime& rt, const Faults& faults)
    : rt_(rt),
      f_(faults),
      mon_(rt, "ProducerConsumer",
           [&faults] {
             monitor::Monitor::Options o;
             o.spuriousWakeProbability = faults.spuriousWakeProbability;
             return o;
           }()),
      contents_(rt, "contents", ""),
      totalLength_(rt, "totalLength", 0),
      curPos_(rt, "curPos", 0),
      mReceive_(rt.registerMethod("ProducerConsumer.receive")),
      mSend_(rt.registerMethod("ProducerConsumer.send")) {}

void ProducerConsumer::guardEval(events::MethodId m, bool value) {
  rt_.emit(EventKind::GuardEval, events::kNoMonitor, m, value);
}

char ProducerConsumer::receive() {
  MethodScope scope(rt_, mReceive_);

  if (f_.skipSync) {
    // FF-T1 mutant: no synchronized block — busy-wait on the guard and
    // touch the shared state with no mutual exclusion.
    for (;;) {
      bool empty = curPos_.get() == 0;
      guardEval(mReceive_, empty);
      if (!empty) break;
      rt_.schedulePoint();
    }
    std::string c = contents_.get();
    int tl = totalLength_.get();
    int cp = curPos_.get();
    char y = (cp > 0 && tl - cp >= 0 && tl - cp < static_cast<int>(c.size()))
                 ? c[static_cast<std::size_t>(tl - cp)]
                 : '?';
    curPos_.set(cp - 1);
    return y;
  }

  Synchronized sync(mon_);

  // wait if no character is available
  if (f_.skipWaitReceive) {
    // FF-T3 mutant: the required wait is never made; an empty buffer is
    // read anyway, yielding garbage ('?') and a negative curPos.
  } else if (f_.ifInsteadOfWhile) {
    // EF-T5-vulnerable mutant: guard tested once, never re-checked after
    // the wake — a premature or spurious wake proceeds on a false guard.
    bool empty = curPos_.get() == 0;
    guardEval(mReceive_, empty);
    if (empty) mon_.wait();
  } else {
    for (;;) {
      bool empty = curPos_.get() == 0;
      guardEval(mReceive_, empty);
      if (!empty) break;
      mon_.wait();
    }
  }

  if (f_.holdLockForever) {
    // FF-T4 mutant: endless loop inside the critical section; the lock is
    // never released and every other thread blocks at lock entry.
    for (;;) rt_.schedulePoint();
  }

  // retrieve character:  y = contents.charAt(totalLength - curPos)
  std::string c = contents_.get();
  int tl = totalLength_.get();
  int cp = curPos_.get();
  char y = (cp > 0 && tl - cp >= 0 && tl - cp < static_cast<int>(c.size()))
               ? c[static_cast<std::size_t>(tl - cp)]
               : '?';
  curPos_.set(cp - 1);

  // notify blocked send/receive calls
  if (!f_.skipNotify) {
    if (f_.notifyOneOnly) {
      mon_.notifyOne();
    } else {
      mon_.notifyAll();
    }
  }
  return y;
}

void ProducerConsumer::send(const std::string& x) {
  MethodScope scope(rt_, mSend_);

  if (f_.skipSync) {
    for (;;) {
      bool busy = curPos_.get() > 0;
      guardEval(mSend_, busy);
      if (!busy) break;
      rt_.schedulePoint();
    }
    contents_.set(x);
    totalLength_.set(static_cast<int>(x.size()));
    curPos_.set(static_cast<int>(x.size()));
    return;
  }

  if (f_.earlyReleaseSend) {
    // EF-T4 mutant: the lock is released after storing contents but before
    // the length/position update; the tail of the update runs
    // unsynchronized and a receiver can observe a half-written state.
    {
      Synchronized sync(mon_);
      for (;;) {
        bool busy = curPos_.get() > 0;
        guardEval(mSend_, busy);
        if (!busy) break;
        mon_.wait();
      }
      contents_.set(x);
    }  // lock released prematurely
    totalLength_.set(static_cast<int>(x.size()));
    curPos_.set(static_cast<int>(x.size()));
    if (!f_.skipNotify) {
      Synchronized sync(mon_);
      if (f_.notifyOneOnly) mon_.notifyOne(); else mon_.notifyAll();
    }
    return;
  }

  Synchronized sync(mon_);

  if (f_.erroneousWaitSend) {
    // EF-T3 mutant: an erroneous wait that is not desired — send suspends
    // once even when the buffer is empty and ready for new content.
    guardEval(mSend_, true);
    mon_.wait();
  }

  // wait if there are more characters
  if (f_.ifInsteadOfWhile) {
    bool busy = curPos_.get() > 0;
    guardEval(mSend_, busy);
    if (busy) mon_.wait();
  } else {
    for (;;) {
      bool busy = curPos_.get() > 0;
      guardEval(mSend_, busy);
      if (!busy) break;
      mon_.wait();
    }
  }

  // store string
  contents_.set(x);
  totalLength_.set(static_cast<int>(x.size()));
  curPos_.set(static_cast<int>(x.size()));

  // notify blocked send/receive calls
  if (!f_.skipNotify) {
    if (f_.notifyOneOnly) {
      mon_.notifyOne();
    } else {
      mon_.notifyAll();
    }
  }
}

cofg::MethodModel ProducerConsumer::receiveModel() {
  cofg::MethodModel m("ProducerConsumer.receive");
  m.waitLoop("curPos == 0").notifyAll();
  return m;
}

cofg::MethodModel ProducerConsumer::sendModel() {
  cofg::MethodModel m("ProducerConsumer.send");
  m.waitLoop("curPos > 0").notifyAll();
  return m;
}

cofg::MethodModel ProducerConsumer::receiveModelFor(const Faults& f) {
  cofg::MethodModel m("ProducerConsumer.receive[mutant]",
                      /*isSynchronized=*/!f.skipSync);
  if (!f.skipWaitReceive) {
    if (f.ifInsteadOfWhile) {
      m.waitIf("curPos == 0");
    } else {
      m.waitLoop("curPos == 0");
    }
  }
  if (!f.skipNotify) {
    if (f.notifyOneOnly) {
      m.notifyOne();
    } else {
      m.notifyAll();
    }
  }
  return m;
}

cofg::MethodModel ProducerConsumer::sendModelFor(const Faults& f) {
  cofg::MethodModel m("ProducerConsumer.send[mutant]",
                      /*isSynchronized=*/!f.skipSync);
  if (f.erroneousWaitSend) m.waitIf("(erroneous unconditional wait)");
  if (f.ifInsteadOfWhile) {
    m.waitIf("curPos > 0");
  } else {
    m.waitLoop("curPos > 0");
  }
  if (!f.skipNotify) {
    if (f.notifyOneOnly) {
      m.notifyOne();
    } else {
      m.notifyAll();
    }
  }
  return m;
}

}  // namespace confail::components
