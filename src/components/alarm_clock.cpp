#include "confail/components/alarm_clock.hpp"

namespace confail::components {

using events::EventKind;
using monitor::MethodScope;
using monitor::Synchronized;

AlarmClock::AlarmClock(monitor::Runtime& rt, const std::string& name,
                       const Faults& f)
    : rt_(rt),
      f_(f),
      mon_(rt, name),
      time_(rt, name + ".time", 0),
      mWakeMe_(rt.registerMethod(name + ".wakeMe")),
      mTick_(rt.registerMethod(name + ".tick")) {}

long AlarmClock::wakeMe(int ticks) {
  MethodScope scope(rt_, mWakeMe_);
  Synchronized sync(mon_);
  const long deadline = time_.get() + ticks;
  for (;;) {
    bool early = time_.get() < deadline;
    rt_.emit(EventKind::GuardEval, events::kNoMonitor, mWakeMe_, early);
    if (!early) break;
    mon_.wait();
  }
  return time_.get();
}

void AlarmClock::tick() {
  MethodScope scope(rt_, mTick_);
  Synchronized sync(mon_);
  time_.set(time_.get() + 1);
  if (f_.skipNotify) return;
  if (f_.notifyOneOnly) {
    mon_.notifyOne();
  } else {
    mon_.notifyAll();
  }
}

}  // namespace confail::components
