// CyclicBarrier: N parties rendezvous; generation counter prevents a fast
// thread from lapping slow ones.  Faults demonstrate FF-T5 (notify instead
// of notifyAll) and EF-T5 (missing generation re-check).
#pragma once

#include <string>

#include "confail/cofg/method_model.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"

namespace confail::components {

class CyclicBarrier {
 public:
  struct Faults {
    /// FF-T5: the last arriver calls notify() — only one waiter wakes.
    bool notifyOneOnly = false;
    /// EF-T5 vulnerability: waiters do not re-check the generation.
    bool ifInsteadOfWhile = false;
  };

  CyclicBarrier(monitor::Runtime& rt, const std::string& name, int parties,
                const Faults& faults);
  CyclicBarrier(monitor::Runtime& rt, const std::string& name, int parties)
      : CyclicBarrier(rt, name, parties, Faults()) {}

  /// Block until all parties have arrived; reusable across generations.
  /// Returns the generation index that was completed.
  int await();

  /// Concurrency skeleton for CoFG construction.  await() is either the
  /// last arriver (notifyAll, no wait) or a waiter (guarded wait loop, no
  /// notify); the union skeleton has both statements with the wait first.
  static cofg::MethodModel awaitModel() {
    cofg::MethodModel m("CyclicBarrier.await");
    m.waitLoop("generation == myGen")
        .notifyAllOptional("last arriver opens the barrier");
    return m;
  }

  monitor::Monitor& mon() { return mon_; }
  events::MethodId awaitMethodId() const { return mAwait_; }

 private:
  monitor::Runtime& rt_;
  Faults f_;
  int parties_;
  monitor::Monitor mon_;
  monitor::SharedVar<int> arrived_;
  monitor::SharedVar<int> generation_;
  events::MethodId mAwait_;
};

}  // namespace confail::components
