// AlarmClock: the classic Concurrent Pascal monitor (Brinch Hansen), a
// sibling of the paper's producer-consumer example.  Threads call
// wakeMe(n) to sleep for n ticks of a logical clock; a driver thread calls
// tick().  The canonical implementation wakes every sleeper on every tick
// (notifyAll) and each re-checks its own deadline — the textbook
// demonstration of why guarded wait loops are the correct idiom.
#pragma once

#include <string>

#include "confail/cofg/method_model.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"

namespace confail::components {

class AlarmClock {
 public:
  struct Faults {
    /// FF-T5: tick() forgets to notify — sleepers never wake.
    bool skipNotify = false;
    /// FF-T5 (subtler): tick() uses notify() — only one sleeper re-checks
    /// its deadline per tick; others oversleep or hang.
    bool notifyOneOnly = false;
  };

  AlarmClock(monitor::Runtime& rt, const std::string& name, const Faults& f);
  AlarmClock(monitor::Runtime& rt, const std::string& name)
      : AlarmClock(rt, name, Faults()) {}

  /// Sleep until `ticks` more ticks have elapsed.  Returns the clock time
  /// at which the caller actually woke (== deadline when correct).
  long wakeMe(int ticks);

  /// Advance the clock by one tick, waking due sleepers.
  void tick();

  /// Concurrency skeletons for CoFG construction.
  static cofg::MethodModel wakeMeModel() {
    cofg::MethodModel m("AlarmClock.wakeMe");
    m.waitLoop("time < deadline");
    return m;
  }
  static cofg::MethodModel tickModel() {
    cofg::MethodModel m("AlarmClock.tick");
    m.notifyAll();
    return m;
  }

  long now() const { return time_.peek(); }
  monitor::Monitor& mon() { return mon_; }
  events::MethodId wakeMeMethodId() const { return mWakeMe_; }
  events::MethodId tickMethodId() const { return mTick_; }

 private:
  monitor::Runtime& rt_;
  Faults f_;
  monitor::Monitor mon_;
  monitor::SharedVar<long> time_;
  events::MethodId mWakeMe_, mTick_;
};

}  // namespace confail::components
