// Canonical exploration scenarios, shared by the parallel-explorer tests,
// the benches (ablation_schedulers, explorer_scaling) and the
// confail_explore tool so they all measure exactly the same trees.
//
//   * figure2      — the paper's Figure-2 producer/consumer shape with a
//                    correct notifyAll buffer: capacity 1, 2 producers x 2
//                    items, 2 consumers x 2 items.  Deadlock-free.
//   * ffT5Notify   — the same shape with notify() instead of notifyAll()
//                    (FF-T5, "a notify is called rather than a notifyAll"):
//                    many schedules wake a same-side waiter and deadlock.
//   * disjointCounters — two threads incrementing two unrelated shared
//                    variables; every interleaving commutes, the showcase
//                    for the explorer's sleep-set reduction.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "confail/components/bounded_buffer.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/obs/metrics.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace confail::components::scenarios {

/// Optional observation hooks for a scenario run.  `trace`, when set, is
/// cleared and then receives the run's events (instead of a scenario-private
/// trace that dies with the run) — feed it to the exporters or the offline
/// detectors afterwards.  `metrics`, when set, is attached to the scenario's
/// Runtime before any monitor is built, so per-monitor counters register.
/// Exploration note: a shared external trace serializes appends from
/// parallel workers and interleaves their runs — pass a trace only to a
/// single capture run; `metrics` alone is safe under parallel exploration.
///
/// `decorate`, when set, is called once per scenario instantiation with the
/// freshly built Runtime, before any threads are spawned; whatever it
/// returns is owned by the scenario state and destroyed with it (after the
/// components, before the Runtime).  This is how confail::inject attaches a
/// per-run Injector without the components layer depending on it.
///
/// DEPRECATED as a hand-wired bundle: prefer building runs through
/// inject::ExploreConfig, which owns this plumbing (trace capture, metrics
/// registry, decoration) behind one builder — see docs/injection.md
/// (Migration).  The struct itself stays as the low-level carrier.
struct Instruments {
  events::Trace* trace = nullptr;
  obs::Registry* metrics = nullptr;
  std::function<std::shared_ptr<void>(monitor::Runtime&)> decorate;
};

namespace detail {

inline void boundedBufferScenario(confail::sched::VirtualScheduler& s,
                                  const BoundedBuffer<int>::Faults& faults,
                                  int itemsPerThread = 2,
                                  const Instruments& ins = {}) {
  // The State (and its trace) is kept alive by the spawned closures, which
  // the scheduler owns until the run finishes.
  struct State {
    events::Trace ownTrace;
    monitor::Runtime rt;
    std::shared_ptr<void> decoration;  ///< outlives components, not rt
    BoundedBuffer<int> buf;
    State(confail::sched::VirtualScheduler& sc,
          const BoundedBuffer<int>::Faults& f, const Instruments& i)
        : rt(i.trace != nullptr ? *i.trace : ownTrace, sc, 1, i.metrics),
          decoration(i.decorate ? i.decorate(rt) : nullptr),
          buf(rt, "buf", 1, f) {}
  };
  if (ins.trace != nullptr) ins.trace->clear();
  // Every piece of mutable state in this scenario implements the snapshot
  // protocol (Runtime, Monitor, SharedVar, the buffer's SnapshotCell), so
  // the explorer may use checkpoint/restore instead of prefix replay.
  s.declareSnapshotSafe();
  auto st = std::make_shared<State>(s, faults, ins);
  for (int p = 0; p < 2; ++p) {
    st->rt.spawn("p" + std::to_string(p), [st, itemsPerThread] {
      for (int i = 0; i < itemsPerThread; ++i) st->buf.put(i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    st->rt.spawn("c" + std::to_string(c), [st, itemsPerThread] {
      for (int i = 0; i < itemsPerThread; ++i) (void)st->buf.take();
    });
  }
}

}  // namespace detail

/// Figure-2 producer/consumer with a correct (notifyAll) buffer.
inline void figure2(confail::sched::VirtualScheduler& s) {
  detail::boundedBufferScenario(s, BoundedBuffer<int>::Faults{});
}
inline void figure2(confail::sched::VirtualScheduler& s,
                    const Instruments& ins) {
  detail::boundedBufferScenario(s, BoundedBuffer<int>::Faults{}, 2, ins);
}

/// FF-T5 mutant: notify() where notifyAll() is required.
inline void ffT5Notify(confail::sched::VirtualScheduler& s) {
  BoundedBuffer<int>::Faults f;
  f.notifyOneOnly = true;
  detail::boundedBufferScenario(s, f);
}
inline void ffT5Notify(confail::sched::VirtualScheduler& s,
                       const Instruments& ins) {
  BoundedBuffer<int>::Faults f;
  f.notifyOneOnly = true;
  detail::boundedBufferScenario(s, f, 2, ins);
}

/// Single-item FF-T5 mutant: 2 producers x 1 item, 2 consumers x 1 item,
/// capacity 1, notify().  The same missed-notification deadlock as
/// ffT5Notify, but its schedule tree is small enough to exhaust unbounded —
/// the workhorse of the parallel-determinism tests.
inline void ffT5Small(confail::sched::VirtualScheduler& s) {
  BoundedBuffer<int>::Faults f;
  f.notifyOneOnly = true;
  detail::boundedBufferScenario(s, f, /*itemsPerThread=*/1);
}
inline void ffT5Small(confail::sched::VirtualScheduler& s,
                      const Instruments& ins) {
  BoundedBuffer<int>::Faults f;
  f.notifyOneOnly = true;
  detail::boundedBufferScenario(s, f, /*itemsPerThread=*/1, ins);
}

/// Classic lock-order deadlock (the paper's FF-T2 "locks held by several
/// threads in a circular chain"): t0 takes A then B, t1 takes B then A.
inline void lockOrder(confail::sched::VirtualScheduler& s,
                      const Instruments& ins) {
  struct State {
    events::Trace ownTrace;
    monitor::Runtime rt;
    std::shared_ptr<void> decoration;
    monitor::Monitor a;
    monitor::Monitor b;
    State(confail::sched::VirtualScheduler& sc, const Instruments& i)
        : rt(i.trace != nullptr ? *i.trace : ownTrace, sc, 1, i.metrics),
          decoration(i.decorate ? i.decorate(rt) : nullptr),
          a(rt, "A"),
          b(rt, "B") {}
  };
  if (ins.trace != nullptr) ins.trace->clear();
  s.declareSnapshotSafe();  // Runtime + two Monitors: all snapshot sources
  auto st = std::make_shared<State>(s, ins);
  st->rt.spawn("t0", [st] {
    monitor::Synchronized ga(st->a);
    monitor::Synchronized gb(st->b);
  });
  st->rt.spawn("t1", [st] {
    monitor::Synchronized gb(st->b);
    monitor::Synchronized ga(st->a);
  });
}
inline void lockOrder(confail::sched::VirtualScheduler& s) {
  lockOrder(s, Instruments{});
}

/// Two threads on fully disjoint state: adjacent steps of different
/// threads always commute.
inline void disjointCounters(confail::sched::VirtualScheduler& s,
                             const Instruments& ins) {
  struct State {
    events::Trace ownTrace;
    monitor::Runtime rt;
    std::shared_ptr<void> decoration;
    monitor::SharedVar<int> a;
    monitor::SharedVar<int> b;
    State(confail::sched::VirtualScheduler& sc, const Instruments& i)
        : rt(i.trace != nullptr ? *i.trace : ownTrace, sc, 1, i.metrics),
          decoration(i.decorate ? i.decorate(rt) : nullptr),
          a(rt, "a", 0),
          b(rt, "b", 0) {}
  };
  if (ins.trace != nullptr) ins.trace->clear();
  s.declareSnapshotSafe();  // Runtime + two SharedVar<int>: all sources
  auto st = std::make_shared<State>(s, ins);
  st->rt.spawn("ta", [st] {
    for (int i = 0; i < 2; ++i) st->a.set(st->a.get() + 1);
  });
  st->rt.spawn("tb", [st] {
    for (int i = 0; i < 2; ++i) st->b.set(st->b.get() + 1);
  });
}
inline void disjointCounters(confail::sched::VirtualScheduler& s) {
  disjointCounters(s, Instruments{});
}

// ---------------------------------------------------------------------------
// Fuzzer-found reproducers.  These are hand-translations of gen IR programs
// that the `confail fuzz` differential harness shrank out of failing seeds
// during development; they are pinned here (components cannot depend on gen)
// so the exact shapes stay in the regression surface forever.  The IR each
// one encodes is quoted in its comment together with the seed that produced
// it — `confail fuzz --seeds N..N+1 ...` regenerates the original program.
// ---------------------------------------------------------------------------

/// gen IR:  t0: lock m0; wait m0; unlock m0        (1 thread, 1 monitor)
/// The minimal deadlocking monitor program: a self-wait nobody can ever
/// notify.  This is what the shrinker reduces *every* deadlocking seed to
/// under the drop-deadlocks sabotage oracle (first tripping seed 0 of
/// `confail fuzz --seeds 0..40 --sabotage drop-deadlocks`), and doubles as
/// the known-minimal fixture of the shrinker unit tests.
inline void genSelfWait(confail::sched::VirtualScheduler& s,
                        const Instruments& ins) {
  struct State {
    events::Trace ownTrace;
    monitor::Runtime rt;
    std::shared_ptr<void> decoration;
    monitor::Monitor m0;
    State(confail::sched::VirtualScheduler& sc, const Instruments& i)
        : rt(i.trace != nullptr ? *i.trace : ownTrace, sc, 1, i.metrics),
          decoration(i.decorate ? i.decorate(rt) : nullptr),
          m0(rt, "m0") {}
  };
  if (ins.trace != nullptr) ins.trace->clear();
  s.declareSnapshotSafe();
  auto st = std::make_shared<State>(s, ins);
  st->rt.spawn("t0", [st] {
    monitor::Synchronized g(st->m0);
    st->m0.wait();
  });
}
inline void genSelfWait(confail::sched::VirtualScheduler& s) {
  genSelfWait(s, Instruments{});
}

/// gen IR:  t0: lock m0; wait m0; unlock m0
///          t1: lock m0; notify m0; unlock m0      (2 threads, 1 monitor)
/// Lost notification: schedules where t1's notify lands before t0 waits
/// leave t0 blocked forever (the paper's FF-T5 neighborhood without the
/// buffer plumbing).  Distilled from seed 54 of the default fuzz tier, a
/// 2-thread/21-op program over one monitor whose bounded tree completes on
/// exactly 1 of its 16 schedules — the one where the waiter reaches its
/// wait before the lone notifyAll fires — and deadlocks on the other 15.
inline void genLostSignal(confail::sched::VirtualScheduler& s,
                          const Instruments& ins) {
  struct State {
    events::Trace ownTrace;
    monitor::Runtime rt;
    std::shared_ptr<void> decoration;
    monitor::Monitor m0;
    State(confail::sched::VirtualScheduler& sc, const Instruments& i)
        : rt(i.trace != nullptr ? *i.trace : ownTrace, sc, 1, i.metrics),
          decoration(i.decorate ? i.decorate(rt) : nullptr),
          m0(rt, "m0") {}
  };
  if (ins.trace != nullptr) ins.trace->clear();
  s.declareSnapshotSafe();
  auto st = std::make_shared<State>(s, ins);
  st->rt.spawn("t0", [st] {
    monitor::Synchronized g(st->m0);
    st->m0.wait();
  });
  st->rt.spawn("t1", [st] {
    monitor::Synchronized g(st->m0);
    st->m0.notifyOne();
  });
}
inline void genLostSignal(confail::sched::VirtualScheduler& s) {
  genLostSignal(s, Instruments{});
}

/// gen IR:  t0: lock m0; write v0; unlock m0
///          t1: write v0                           (2 threads, 1 mon, 1 var)
/// Inconsistent guarding: t1 touches v0 without ever holding m0, so every
/// interleaving carries a data race (empty lock-set intersection + no
/// happens-before edge) while all runs still complete — the FF-T1 shape the
/// lockset/hb detectors exist for.  Distilled from seed 7 of the default
/// fuzz tier (2 threads, 18 ops: t1 writes v0 with an empty lock stack
/// while t0 accesses it under m0); the clean-tier fuzz oracle proves
/// generated *guarded* programs never trip these detectors.
inline void genUnguardedWrite(confail::sched::VirtualScheduler& s,
                              const Instruments& ins) {
  struct State {
    events::Trace ownTrace;
    monitor::Runtime rt;
    std::shared_ptr<void> decoration;
    monitor::Monitor m0;
    monitor::SharedVar<int> v0;
    State(confail::sched::VirtualScheduler& sc, const Instruments& i)
        : rt(i.trace != nullptr ? *i.trace : ownTrace, sc, 1, i.metrics),
          decoration(i.decorate ? i.decorate(rt) : nullptr),
          m0(rt, "m0"),
          v0(rt, "v0", 0) {}
  };
  if (ins.trace != nullptr) ins.trace->clear();
  s.declareSnapshotSafe();
  auto st = std::make_shared<State>(s, ins);
  st->rt.spawn("t0", [st] {
    monitor::Synchronized g(st->m0);
    st->v0.set(st->v0.peek() + 1);
  });
  st->rt.spawn("t1", [st] { st->v0.set(st->v0.peek() + 1); });
}
inline void genUnguardedWrite(confail::sched::VirtualScheduler& s) {
  genUnguardedWrite(s, Instruments{});
}

}  // namespace confail::components::scenarios
