// ThreadPool: a fixed-size worker pool fed by a bounded task queue — the
// kind of composite component the paper's intro motivates (components
// "come to life through objects ... one or more classes").  Built entirely
// on the instrumented substrate: BoundedBuffer for the queue, monitor
// wait/notify for idle workers, so the whole pool is analyzable by the
// same detectors, model validation and CoFG coverage as the primitives.
#pragma once

#include <functional>
#include <string>

#include "confail/components/bounded_buffer.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/components/latch.hpp"
#include "confail/monitor/runtime.hpp"

namespace confail::components {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Creates `workers` logical threads immediately (in virtual mode they
  /// run once the scheduler runs).  `queueCapacity` bounds submit().
  ThreadPool(monitor::Runtime& rt, const std::string& name, int workers,
             std::size_t queueCapacity);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; blocks while the queue is full.  Tasks that throw are
  /// counted as failed, not propagated (a pool must survive bad tasks).
  void submit(Task task);

  /// Stop accepting work and release every worker once the queue drains.
  /// Blocks (on the pool's latch) until all workers have exited.
  void shutdown();

  int completedTasks() const { return completed_.peek(); }
  int failedTasks() const { return failed_.peek(); }

 private:
  struct Slot {
    Task task;  // empty task == poison pill
  };

  void workerLoop();

  monitor::Runtime& rt_;
  int workers_;
  BoundedBuffer<Slot> queue_;
  monitor::Monitor stats_;  // guards the two counters below
  monitor::SharedVar<int> completed_;
  monitor::SharedVar<int> failed_;
  CountDownLatch exited_;
};

}  // namespace confail::components
