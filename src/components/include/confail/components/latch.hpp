// CountDownLatch: one-shot gate; await() blocks until count reaches zero.
#pragma once

#include <string>

#include "confail/cofg/method_model.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"

namespace confail::components {

class CountDownLatch {
 public:
  struct Faults {
    /// FF-T5: countDown reaching zero does not notify.
    bool skipNotify = false;
  };

  CountDownLatch(monitor::Runtime& rt, const std::string& name, int count,
                 const Faults& faults);
  CountDownLatch(monitor::Runtime& rt, const std::string& name, int count)
      : CountDownLatch(rt, name, count, Faults()) {}

  /// Block until the count reaches zero.
  void await();

  /// Decrement the count (no-op below zero); wakes awaiters at zero.
  void countDown();

  /// Concurrency skeletons for CoFG construction.
  static cofg::MethodModel awaitModel() {
    cofg::MethodModel m("CountDownLatch.await");
    m.waitLoop("count > 0");
    return m;
  }
  static cofg::MethodModel countDownModel() {
    cofg::MethodModel m("CountDownLatch.countDown");
    m.notifyAllOptional("count reached zero");
    return m;
  }

  int count() const { return count_.peek(); }
  monitor::Monitor& mon() { return mon_; }
  events::MethodId awaitMethodId() const { return mAwait_; }
  events::MethodId countDownMethodId() const { return mCountDown_; }

 private:
  monitor::Runtime& rt_;
  Faults f_;
  monitor::Monitor mon_;
  monitor::SharedVar<int> count_;
  events::MethodId mAwait_, mCountDown_;
};

}  // namespace confail::components
