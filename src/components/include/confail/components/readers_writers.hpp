// ReadersWriters: a monitor granting shared read / exclusive write access.
//
// Readers-preference by default — the configuration in which writer
// starvation (FF-T2: "one or more threads repeatedly acquire the lock being
// requested by this thread") is reachable under a continuous stream of
// readers.  A fair variant (writers block new readers) removes the
// starvation, which the scheduler-ablation bench demonstrates.
#pragma once

#include <string>

#include "confail/cofg/method_model.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"

namespace confail::components {

class ReadersWriters {
 public:
  struct Faults {
    /// FF-T5: endWrite forgets to notify — queued readers/writers hang.
    bool skipNotifyOnEndWrite = false;
    /// FF-T1: endRead decrements the reader count without the monitor lock.
    bool unsyncedEndRead = false;
  };

  enum class Preference { Readers, Fair };

  ReadersWriters(monitor::Runtime& rt, Preference pref, const Faults& faults);
  ReadersWriters(monitor::Runtime& rt, Preference pref)
      : ReadersWriters(rt, pref, Faults()) {}
  explicit ReadersWriters(monitor::Runtime& rt)
      : ReadersWriters(rt, Preference::Readers, Faults()) {}

  void startRead();
  void endRead();
  void startWrite();
  void endWrite();

  /// Concurrency skeletons for CoFG construction.
  static cofg::MethodModel startReadModel() {
    cofg::MethodModel m("rw.startRead");
    m.waitLoop("writer active (or fair-mode writers queued)");
    return m;
  }
  static cofg::MethodModel endReadModel() {
    cofg::MethodModel m("rw.endRead");
    m.notifyAllOptional("last reader leaves");
    return m;
  }
  static cofg::MethodModel startWriteModel() {
    cofg::MethodModel m("rw.startWrite");
    m.waitLoop("writer active or readers > 0");
    return m;
  }
  static cofg::MethodModel endWriteModel() {
    cofg::MethodModel m("rw.endWrite");
    m.notifyAll();
    return m;
  }

  int activeReaders() const { return readers_.peek(); }
  bool writerActive() const { return writer_.peek() != 0; }
  monitor::Monitor& mon() { return mon_; }
  events::MethodId startReadMethodId() const { return mStartRead_; }
  events::MethodId endReadMethodId() const { return mEndRead_; }
  events::MethodId startWriteMethodId() const { return mStartWrite_; }
  events::MethodId endWriteMethodId() const { return mEndWrite_; }

 private:
  void guardEval(events::MethodId m, bool value);

  monitor::Runtime& rt_;
  Preference pref_;
  Faults f_;
  monitor::Monitor mon_;
  monitor::SharedVar<int> readers_;        ///< active readers
  monitor::SharedVar<int> writer_;         ///< 1 while a writer is active
  monitor::SharedVar<int> waitingWriters_; ///< writers queued (Fair mode)
  events::MethodId mStartRead_, mEndRead_, mStartWrite_, mEndWrite_;
};

}  // namespace confail::components
