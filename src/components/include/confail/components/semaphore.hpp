// CountingSemaphore: acquire/release built on a monitor, with the classic
// seeded faults (release without notify, if-guarded acquire).
#pragma once

#include <string>

#include "confail/cofg/method_model.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"

namespace confail::components {

class CountingSemaphore {
 public:
  struct Faults {
    /// FF-T5: release() increments the count but never notifies.
    bool skipNotify = false;
    /// EF-T5 vulnerability: acquire uses an if-guard.
    bool ifInsteadOfWhile = false;
  };

  CountingSemaphore(monitor::Runtime& rt, const std::string& name,
                    int initialPermits, const Faults& faults);
  CountingSemaphore(monitor::Runtime& rt, const std::string& name,
                    int initialPermits)
      : CountingSemaphore(rt, name, initialPermits, Faults()) {}

  /// Take one permit, blocking while none are available.
  void acquire();

  /// Return one permit, waking a blocked acquirer.
  void release();

  /// Concurrency skeletons for CoFG construction.
  static cofg::MethodModel acquireModel() {
    cofg::MethodModel m("CountingSemaphore.acquire");
    m.waitLoop("permits == 0");
    return m;
  }
  static cofg::MethodModel releaseModel() {
    cofg::MethodModel m("CountingSemaphore.release");
    m.notifyOne();
    return m;
  }

  int permits() const { return permits_.peek(); }
  monitor::Monitor& mon() { return mon_; }
  events::MethodId acquireMethodId() const { return mAcquire_; }
  events::MethodId releaseMethodId() const { return mRelease_; }

 private:
  monitor::Runtime& rt_;
  Faults f_;
  monitor::Monitor mon_;
  monitor::SharedVar<int> permits_;
  events::MethodId mAcquire_, mRelease_;
};

}  // namespace confail::components
