// ProducerConsumer: the paper's Figure 2, translated statement-for-statement
// from Java to the confail monitor substrate.
//
//   class ProducerConsumer {
//       String contents;  int totalLength, curPos = 0;
//       public synchronized char receive() {
//           char y;
//           while (curPos == 0) wait();
//           y = contents.charAt(totalLength - curPos);
//           curPos = curPos - 1;
//           notifyAll();
//           return y;
//       }
//       public synchronized void send(String x) {
//           while (curPos > 0) wait();
//           contents = x;  totalLength = x.length();  curPos = totalLength;
//           notifyAll();
//       }
//   }
//
// The component is an *asymmetric* producer-consumer monitor (Brinch
// Hansen's Concurrent Pascal example): send deposits a whole string, and
// each receive call retrieves one character.
//
// A Faults plan injects exactly one (or more) of the paper's Table 1
// failure classes; the correct and faulty paths live side by side so each
// seeded fault is explicit and reviewable.
#pragma once

#include <string>

#include "confail/cofg/method_model.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"

namespace confail::components {

using monitor::Runtime;

class ProducerConsumer {
 public:
  /// Seeded faults, one switch per Table 1 failure class (see bench/table1
  /// for the class -> switch mapping).
  struct Faults {
    /// FF-T1: methods are not synchronized; guards busy-wait on the shared
    /// state with no mutual exclusion (interference manifests).
    bool skipSync = false;
    /// EF-T5 vulnerability: `if (guard) wait();` instead of `while`.
    bool ifInsteadOfWhile = false;
    /// FF-T3: receive() never waits; an empty buffer yields a garbage char.
    bool skipWaitReceive = false;
    /// EF-T3: send() erroneously waits once even when the buffer is empty.
    bool erroneousWaitSend = false;
    /// FF-T4: receive() spins forever inside the critical section.
    bool holdLockForever = false;
    /// EF-T4: send() releases the lock after storing contents but before
    /// updating totalLength/curPos, finishing the update unsynchronized.
    bool earlyReleaseSend = false;
    /// FF-T5: receive()/send() never notify.
    bool skipNotify = false;
    /// FF-T5 (weaker): notify() instead of notifyAll() — with several
    /// blocked senders and receivers, the single wake can go to the wrong
    /// thread and the rest hang.
    bool notifyOneOnly = false;
    /// Environment hostility rather than a code fault: probability of a
    /// spurious wakeup per unlock (virtual mode).  Harmless with while-
    /// guards; converts the ifInsteadOfWhile vulnerability into real
    /// EF-T5 premature re-entry.
    double spuriousWakeProbability = 0.0;
  };

  ProducerConsumer(Runtime& rt, const Faults& faults);
  explicit ProducerConsumer(Runtime& rt) : ProducerConsumer(rt, Faults()) {}

  /// Retrieve a single character (blocks while the buffer is empty).
  char receive();

  /// Deposit a string (blocks while unreceived characters remain).
  void send(const std::string& x);

  /// Number of characters not yet received (unsynchronized peek for tests).
  int pendingChars() const { return curPos_.peek(); }

  monitor::Monitor& mon() { return mon_; }
  events::MethodId receiveMethodId() const { return mReceive_; }
  events::MethodId sendMethodId() const { return mSend_; }

  /// The MethodModels from which the Figure 3 CoFGs are built.  Both
  /// methods share the same shape: one guarded wait loop, one notifyAll.
  static cofg::MethodModel receiveModel();
  static cofg::MethodModel sendModel();

  /// Model of the method a given fault plan *actually* implements — the
  /// mutant's CoFG.  Comparing it against the correct model exposes the
  /// structural difference (e.g. the if-guard loses the wait->wait arc;
  /// skipWaitReceive loses the wait node entirely).
  static cofg::MethodModel receiveModelFor(const Faults& f);
  static cofg::MethodModel sendModelFor(const Faults& f);

 private:
  void guardEval(events::MethodId m, bool value);

  Runtime& rt_;
  Faults f_;
  monitor::Monitor mon_;
  monitor::SharedVar<std::string> contents_;
  monitor::SharedVar<int> totalLength_;
  monitor::SharedVar<int> curPos_;
  events::MethodId mReceive_;
  events::MethodId mSend_;
};

}  // namespace confail::components
