// FifoLock: a ticket lock built on a monitor — the classic *fix* for the
// FF-T2 starvation failure.  Table 1 notes the JVM "is not required to be
// fair"; a component that needs fairness must build it itself, and this is
// how: tickets are granted strictly in request order regardless of the
// underlying monitor's grant/wake policy.
#pragma once

#include <string>

#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"

namespace confail::components {

class FifoLock {
 public:
  FifoLock(monitor::Runtime& rt, const std::string& name);

  /// Take a ticket and wait until it is served (strict FIFO).
  void lock();

  /// Serve the next ticket.
  void unlock();

  /// RAII guard.
  class Guard {
   public:
    explicit Guard(FifoLock& l) : l_(l) { l_.lock(); }
    // noexcept(false) for the same teardown reason as monitor::Synchronized.
    ~Guard() noexcept(false) { l_.unlock(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    FifoLock& l_;
  };

  monitor::Monitor& mon() { return mon_; }

 private:
  monitor::Runtime& rt_;
  monitor::Monitor mon_;
  monitor::SharedVar<int> nextTicket_;
  monitor::SharedVar<int> nowServing_;
  events::MethodId mLock_, mUnlock_;
};

}  // namespace confail::components
