// BoundedBuffer<T>: the classic symmetric producer-consumer monitor — a
// fixed-capacity FIFO with blocking put/take.  The component the paper's
// Section 3.2 sketch (put/get with wait/notify) describes.
//
// Header-only template built on the same substrate as ProducerConsumer.
#pragma once

#include <deque>
#include <string>

#include "confail/cofg/method_model.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/monitor/snapshot_cell.hpp"

namespace confail::components {

template <typename T>
class BoundedBuffer {
 public:
  struct Faults {
    /// FF-T5: use notify() instead of notifyAll() — with mixed producer and
    /// consumer waiters the single wake can land on the wrong side.
    bool notifyOneOnly = false;
    /// EF-T5 vulnerability: if-guards instead of while-guards.
    bool ifInsteadOfWhile = false;
    /// FF-T5: take() never notifies (producers waiting on a full buffer hang).
    bool skipNotifyOnTake = false;
    /// FF-T3: put() does not wait when full — silently drops the oldest item.
    bool dropWhenFull = false;
  };

  BoundedBuffer(monitor::Runtime& rt, const std::string& name,
                std::size_t capacity, const Faults& faults)
      : rt_(rt),
        f_(faults),
        capacity_(capacity),
        mon_(rt, name),
        items_(rt, {}),
        size_(rt, name + ".size", 0),
        mPut_(rt.registerMethod(name + ".put")),
        mTake_(rt.registerMethod(name + ".take")) {}

  BoundedBuffer(monitor::Runtime& rt, const std::string& name,
                std::size_t capacity)
      : BoundedBuffer(rt, name, capacity, Faults()) {}

  /// Blocking insert (Java: synchronized put + wait while full + notifyAll).
  void put(T item) {
    monitor::MethodScope scope(rt_, mPut_);
    monitor::Synchronized sync(mon_);
    if (f_.dropWhenFull) {
      if (size_.get() == static_cast<int>(capacity_)) {
        items_.mut().pop_front();
        size_.set(size_.get() - 1);
      }
    } else if (f_.ifInsteadOfWhile) {
      bool full = size_.get() == static_cast<int>(capacity_);
      guardEval(mPut_, full);
      if (full) mon_.wait();
    } else {
      for (;;) {
        bool full = size_.get() == static_cast<int>(capacity_);
        guardEval(mPut_, full);
        if (!full) break;
        mon_.wait();
      }
    }
    items_.mut().push_back(std::move(item));
    size_.set(size_.get() + 1);
    if (f_.notifyOneOnly) mon_.notifyOne(); else mon_.notifyAll();
  }

  /// Blocking remove.
  T take() {
    monitor::MethodScope scope(rt_, mTake_);
    monitor::Synchronized sync(mon_);
    if (f_.ifInsteadOfWhile) {
      bool empty = size_.get() == 0;
      guardEval(mTake_, empty);
      if (empty) mon_.wait();
    } else {
      for (;;) {
        bool empty = size_.get() == 0;
        guardEval(mTake_, empty);
        if (!empty) break;
        mon_.wait();
      }
    }
    // An if-guard mutant can reach this point with an empty deque after a
    // premature wake; surface it as a typed error rather than UB.
    CONFAIL_CHECK(!items_.get().empty(), confail::Error,
                  "take() proceeded on an empty buffer (premature wake)");
    T item = std::move(items_.mut().front());
    items_.mut().pop_front();
    size_.set(size_.get() - 1);
    if (!f_.skipNotifyOnTake) {
      if (f_.notifyOneOnly) mon_.notifyOne(); else mon_.notifyAll();
    }
    return item;
  }

  /// Concurrency skeletons for CoFG construction (paper Section 6
  /// applied beyond the producer-consumer, the paper's future-work item 1).
  static cofg::MethodModel putModel() {
    cofg::MethodModel m("BoundedBuffer.put");
    m.waitLoop("size == capacity").notifyAll();
    return m;
  }
  static cofg::MethodModel takeModel() {
    cofg::MethodModel m("BoundedBuffer.take");
    m.waitLoop("size == 0").notifyAll();
    return m;
  }

  int sizeNow() const { return size_.peek(); }
  std::size_t capacity() const { return capacity_; }
  monitor::Monitor& mon() { return mon_; }
  events::MethodId putMethodId() const { return mPut_; }
  events::MethodId takeMethodId() const { return mTake_; }

 private:
  void guardEval(events::MethodId m, bool value) {
    rt_.emit(events::EventKind::GuardEval, events::kNoMonitor, m, value);
  }

  monitor::Runtime& rt_;
  Faults f_;
  std::size_t capacity_;
  monitor::Monitor mon_;
  monitor::SnapshotCell<std::deque<T>> items_;  // guarded by mon_
  monitor::SharedVar<int> size_;
  events::MethodId mPut_;
  events::MethodId mTake_;
};

}  // namespace confail::components
