// Scenario registry: the canonical named-scenario table, shared by the
// unified `confail` CLI (explore/inject verbs), the injection campaign
// driver and the tests, so every consumer sees the same scenarios with the
// same names, order and capability flags.  Formerly a private table inside
// confail_explore.
#pragma once

#include <string>
#include <vector>

#include "confail/components/scenarios.hpp"

namespace confail::components::scenarios {

using ScenarioFn = void (*)(confail::sched::VirtualScheduler&);
using InstrumentedScenarioFn = void (*)(confail::sched::VirtualScheduler&,
                                        const Instruments&);

/// One canonical scenario plus the capability flags exploration and
/// injection drivers need to decide what applies to it.
struct NamedScenario {
  const char* name;
  ScenarioFn fn;
  InstrumentedScenarioFn ifn;
  bool hasBuffer;      ///< registers buf.put/buf.take (CoFG coverage applies)
  bool faultSeeded;    ///< carries a seeded failure even uninjected
  bool usesMonitor;    ///< lock deviations (FF-T1/T2/T4, EF-T2/T4) apply
  bool usesWaitNotify; ///< wait/notify deviations (FF/EF-T3/T5) apply
  const char* starveVictim;  ///< thread name the FF-T2 starve plan targets
  const char* blurb;
};

/// All scenarios, in the stable order the CLI lists them.
const std::vector<NamedScenario>& registry();

/// Lookup by name; nullptr when unknown.
const NamedScenario* find(const std::string& name);

}  // namespace confail::components::scenarios
