// Scenario registry: the canonical named-scenario table, shared by the
// unified `confail` CLI (explore/inject/fuzz verbs), the injection campaign
// driver and the tests, so every consumer sees the same scenarios with the
// same names, order and capability flags.  Formerly a private table inside
// confail_explore.
//
// NamedScenario is a *value* type over std::function, so scenarios do not
// have to be free functions compiled into this table: confail::gen builds
// NamedScenario values at run time for machine-generated monitor programs
// (gen::asScenario) and feeds them to the same ExploreConfig / runCell
// machinery the registry entries use.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "confail/components/scenarios.hpp"

namespace confail::components::scenarios {

using ScenarioFn = std::function<void(confail::sched::VirtualScheduler&)>;
using InstrumentedScenarioFn =
    std::function<void(confail::sched::VirtualScheduler&, const Instruments&)>;

/// One canonical scenario plus the capability flags exploration and
/// injection drivers need to decide what applies to it.
struct NamedScenario {
  std::string name;
  ScenarioFn fn;
  InstrumentedScenarioFn ifn;
  bool hasBuffer = false;      ///< registers buf.put/buf.take (CoFG coverage)
  bool faultSeeded = false;    ///< carries a seeded failure even uninjected
  bool usesMonitor = false;    ///< lock deviations (FF-T1/T2/T4, EF-T2/T4)
  bool usesWaitNotify = false; ///< wait/notify deviations (FF/EF-T3/T5)
  std::string starveVictim;    ///< thread name the FF-T2 starve plan targets
  std::string blurb;
};

/// All scenarios, in the stable order the CLI lists them.
const std::vector<NamedScenario>& registry();

/// Lookup by name; nullptr when unknown.
const NamedScenario* find(const std::string& name);

}  // namespace confail::components::scenarios
