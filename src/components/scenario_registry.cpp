#include "confail/components/scenario_registry.hpp"

namespace confail::components::scenarios {

const std::vector<NamedScenario>& registry() {
  // Names, order and blurbs are stable CLI output; extend at the end.
  static const std::vector<NamedScenario> kScenarios = {
      {"fig2", figure2, figure2, true, false, true, true, "c1",
       "Figure 2 producer/consumer, correct guards (no failure expected)"},
      {"ff_t5", ffT5Notify, ffT5Notify, true, true, true, true, "c1",
       "FF-T5: notify() where notifyAll() is required (2 items/thread)"},
      {"ff_t5_small", ffT5Small, ffT5Small, true, true, true, true, "c1",
       "FF-T5 variant, 1 item/thread (small exhaustible tree)"},
      {"lock_order", lockOrder, lockOrder, false, true, true, false, "t1",
       "two monitors acquired in opposite orders (deadlock)"},
      {"disjoint", disjointCounters, disjointCounters, false, false, false,
       false, "",
       "two threads on disjoint shared vars (sleep-set showcase)"},
  };
  return kScenarios;
}

const NamedScenario* find(const std::string& name) {
  for (const NamedScenario& s : registry()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

}  // namespace confail::components::scenarios
