#include "confail/components/scenario_registry.hpp"

namespace confail::components::scenarios {

namespace {

// The scenario functions are overload sets (plain / instrumented), so the
// table disambiguates them through lambdas when binding std::function.
template <typename F>
NamedScenario entry(std::string name, F fn, bool hasBuffer, bool faultSeeded,
                    bool usesMonitor, bool usesWaitNotify,
                    std::string starveVictim, std::string blurb) {
  NamedScenario sc;
  sc.name = std::move(name);
  sc.fn = [fn](confail::sched::VirtualScheduler& s) { fn(s); };
  sc.ifn = [fn](confail::sched::VirtualScheduler& s, const Instruments& ins) {
    fn(s, ins);
  };
  sc.hasBuffer = hasBuffer;
  sc.faultSeeded = faultSeeded;
  sc.usesMonitor = usesMonitor;
  sc.usesWaitNotify = usesWaitNotify;
  sc.starveVictim = std::move(starveVictim);
  sc.blurb = std::move(blurb);
  return sc;
}

struct Fig2 {
  void operator()(confail::sched::VirtualScheduler& s) const { figure2(s); }
  void operator()(confail::sched::VirtualScheduler& s,
                  const Instruments& i) const {
    figure2(s, i);
  }
};
struct FfT5 {
  void operator()(confail::sched::VirtualScheduler& s) const { ffT5Notify(s); }
  void operator()(confail::sched::VirtualScheduler& s,
                  const Instruments& i) const {
    ffT5Notify(s, i);
  }
};
struct FfT5Small {
  void operator()(confail::sched::VirtualScheduler& s) const { ffT5Small(s); }
  void operator()(confail::sched::VirtualScheduler& s,
                  const Instruments& i) const {
    ffT5Small(s, i);
  }
};
struct LockOrder {
  void operator()(confail::sched::VirtualScheduler& s) const { lockOrder(s); }
  void operator()(confail::sched::VirtualScheduler& s,
                  const Instruments& i) const {
    lockOrder(s, i);
  }
};
struct Disjoint {
  void operator()(confail::sched::VirtualScheduler& s) const {
    disjointCounters(s);
  }
  void operator()(confail::sched::VirtualScheduler& s,
                  const Instruments& i) const {
    disjointCounters(s, i);
  }
};
struct GenSelfWait {
  void operator()(confail::sched::VirtualScheduler& s) const { genSelfWait(s); }
  void operator()(confail::sched::VirtualScheduler& s,
                  const Instruments& i) const {
    genSelfWait(s, i);
  }
};
struct GenLostSignal {
  void operator()(confail::sched::VirtualScheduler& s) const {
    genLostSignal(s);
  }
  void operator()(confail::sched::VirtualScheduler& s,
                  const Instruments& i) const {
    genLostSignal(s, i);
  }
};
struct GenUnguardedWrite {
  void operator()(confail::sched::VirtualScheduler& s) const {
    genUnguardedWrite(s);
  }
  void operator()(confail::sched::VirtualScheduler& s,
                  const Instruments& i) const {
    genUnguardedWrite(s, i);
  }
};

}  // namespace

const std::vector<NamedScenario>& registry() {
  // Names, order and blurbs are stable CLI output; extend at the end.
  static const std::vector<NamedScenario> kScenarios = {
      entry("fig2", Fig2{}, true, false, true, true, "c1",
            "Figure 2 producer/consumer, correct guards (no failure expected)"),
      entry("ff_t5", FfT5{}, true, true, true, true, "c1",
            "FF-T5: notify() where notifyAll() is required (2 items/thread)"),
      entry("ff_t5_small", FfT5Small{}, true, true, true, true, "c1",
            "FF-T5 variant, 1 item/thread (small exhaustible tree)"),
      entry("lock_order", LockOrder{}, false, true, true, false, "t1",
            "two monitors acquired in opposite orders (deadlock)"),
      entry("disjoint", Disjoint{}, false, false, false, false, "",
            "two threads on disjoint shared vars (sleep-set showcase)"),
      // Fuzzer-found reproducers (see scenarios.hpp for the gen IR and the
      // seeds that produced them).
      entry("gen_selfwait", GenSelfWait{}, false, true, true, true, "t0",
            "fuzz reproducer: self-wait with no notifier (always deadlocks)"),
      entry("gen_lost_signal", GenLostSignal{}, false, true, true, true, "t0",
            "fuzz reproducer: notify can land before the wait (lost signal)"),
      entry("gen_unguarded_write", GenUnguardedWrite{}, false, true, true,
            false, "t0",
            "fuzz reproducer: one writer bypasses the guard (data race)"),
  };
  return kScenarios;
}

const NamedScenario* find(const std::string& name) {
  for (const NamedScenario& s : registry()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

}  // namespace confail::components::scenarios
