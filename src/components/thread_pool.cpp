#include "confail/components/thread_pool.hpp"

#include "confail/support/assert.hpp"

namespace confail::components {

ThreadPool::ThreadPool(monitor::Runtime& rt, const std::string& name,
                       int workers, std::size_t queueCapacity)
    : rt_(rt),
      workers_(workers),
      queue_(rt, name + ".queue", queueCapacity),
      stats_(rt, name + ".stats"),
      completed_(rt, name + ".completed", 0),
      failed_(rt, name + ".failed", 0),
      exited_(rt, name + ".exited", workers) {
  CONFAIL_CHECK(workers >= 1, UsageError, "pool needs at least one worker");
  for (int w = 0; w < workers; ++w) {
    rt_.spawn(name + ".worker" + std::to_string(w), [this] { workerLoop(); });
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    Slot slot = queue_.take();
    if (!slot.task) break;  // poison pill: shut down
    try {
      slot.task();
      monitor::Synchronized sync(stats_);
      completed_.set(completed_.get() + 1);
    } catch (const ExecutionAborted&) {
      throw;  // scheduler teardown must unwind the worker
    } catch (const std::exception&) {
      monitor::Synchronized sync(stats_);
      failed_.set(failed_.get() + 1);
    }
  }
  exited_.countDown();
}

void ThreadPool::submit(Task task) {
  CONFAIL_CHECK(static_cast<bool>(task), UsageError,
                "submit of an empty task (reserved for shutdown)");
  queue_.put(Slot{std::move(task)});
}

void ThreadPool::shutdown() {
  for (int w = 0; w < workers_; ++w) {
    queue_.put(Slot{});  // one pill per worker, behind all queued work
  }
  exited_.await();
}

}  // namespace confail::components
