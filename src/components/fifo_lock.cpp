#include "confail/components/fifo_lock.hpp"

namespace confail::components {

using events::EventKind;
using monitor::MethodScope;
using monitor::Synchronized;

FifoLock::FifoLock(monitor::Runtime& rt, const std::string& name)
    : rt_(rt),
      mon_(rt, name,
           [] {
             // Deliberately use the *unfair* random policies underneath:
             // the ticket protocol must deliver FIFO anyway.
             monitor::Monitor::Options o;
             o.grantPolicy = monitor::SelectPolicy::Random;
             o.wakePolicy = monitor::SelectPolicy::Random;
             return o;
           }()),
      nextTicket_(rt, name + ".nextTicket", 0),
      nowServing_(rt, name + ".nowServing", 0),
      mLock_(rt.registerMethod(name + ".lock")),
      mUnlock_(rt.registerMethod(name + ".unlock")) {}

void FifoLock::lock() {
  MethodScope scope(rt_, mLock_);
  Synchronized sync(mon_);
  const int ticket = nextTicket_.get();
  nextTicket_.set(ticket + 1);
  for (;;) {
    bool notMyTurn = nowServing_.get() != ticket;
    rt_.emit(EventKind::GuardEval, events::kNoMonitor, mLock_, notMyTurn);
    if (!notMyTurn) break;
    mon_.wait();
  }
}

void FifoLock::unlock() {
  MethodScope scope(rt_, mUnlock_);
  Synchronized sync(mon_);
  nowServing_.set(nowServing_.get() + 1);
  // notifyAll is required: with notify() the single wake could land on a
  // ticket that is not next, which would then re-wait — losing the wake.
  mon_.notifyAll();
}

}  // namespace confail::components
