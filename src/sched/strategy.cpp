#include "confail/sched/strategy.hpp"

#include <algorithm>

#include "confail/support/assert.hpp"

namespace confail::sched {

ThreadId RoundRobinStrategy::pick(const std::vector<ThreadId>& runnable,
                                  std::uint64_t /*step*/) {
  CONFAIL_ASSERT(!runnable.empty(), "pick on empty runnable set");
  // First runnable id strictly greater than the last scheduled one,
  // wrapping around — classic fair rotation.
  for (ThreadId t : runnable) {
    if (last_ == events::kNoThread || t > last_) {
      last_ = t;
      return t;
    }
  }
  last_ = runnable.front();
  return last_;
}

ThreadId RandomWalkStrategy::pick(const std::vector<ThreadId>& runnable,
                                  std::uint64_t /*step*/) {
  CONFAIL_ASSERT(!runnable.empty(), "pick on empty runnable set");
  return runnable[rng_.pickIndex(runnable)];
}

PctStrategy::PctStrategy(std::uint64_t seed, unsigned depth,
                         std::uint64_t expectedSteps)
    : rng_(seed) {
  CONFAIL_ASSERT(depth >= 1, "PCT depth must be >= 1");
  // depth-1 change points uniformly over the expected execution length.
  for (unsigned i = 0; i + 1 < depth; ++i) {
    changePoints_.push_back(rng_.below(std::max<std::uint64_t>(expectedSteps, 1)));
  }
  std::sort(changePoints_.begin(), changePoints_.end());
}

void PctStrategy::onSpawn(ThreadId t) {
  if (priority_.size() <= t) priority_.resize(t + 1, 0);
  // Random high priority band; change points later demote to a low band
  // (0, 1, 2, ... in hit order) so the demoted thread runs last.
  priority_[t] = (1ull << 32) + rng_.next() % (1ull << 31);
}

ThreadId PctStrategy::pick(const std::vector<ThreadId>& runnable,
                           std::uint64_t step) {
  CONFAIL_ASSERT(!runnable.empty(), "pick on empty runnable set");
  ThreadId best = runnable.front();
  std::uint64_t bestPri = 0;
  for (ThreadId t : runnable) {
    std::uint64_t pri = t < priority_.size() ? priority_[t] : 0;
    if (pri >= bestPri) {
      bestPri = pri;
      best = t;
    }
  }
  if (nextChange_ < changePoints_.size() && step >= changePoints_[nextChange_]) {
    // Demote the currently-highest thread to the lowest unused priority.
    priority_[best] = nextLowPriority_++;
    ++nextChange_;
  }
  return best;
}

ThreadId PrefixReplayStrategy::pick(const std::vector<ThreadId>& runnable,
                                    std::uint64_t step) {
  CONFAIL_ASSERT(!runnable.empty(), "pick on empty runnable set");
  if (step < len_) {
    ThreadId want = data_[step];
    if (!std::binary_search(runnable.begin(), runnable.end(), want)) {
      throw UsageError(
          "schedule replay diverged: thread " + std::to_string(want) +
          " demanded at step " + std::to_string(step) + " is not runnable");
    }
    return want;
  }
  if (step == len_ && avoid_ != events::kNoThread) {
    for (ThreadId t : runnable) {
      if (t != avoid_) return t;  // lowest id among the non-avoided
    }
  }
  return runnable.front();
}

}  // namespace confail::sched
