// Snapshot protocol for incremental (stateful) exploration.
//
// The stateless explorer re-executes every branch's schedule prefix from
// the root — O(depth) re-execution per run.  Incremental exploration
// (incremental.hpp) instead checkpoints the complete session state at each
// decision point and *restores* a parent's state when a child branch is
// dispatched, the classic stateful-search move of JPF and VeriSoft.
//
// A SnapshotSource is any object whose mutable state must survive a
// checkpoint/restore round trip: monitors, shared variables, the Runtime
// (policy RNG, id counters, method stacks, trace length) and the fault
// Injector all implement it.  The protocol is copy-on-write via *version
// stamps* drawn from one global monotone clock:
//
//   * every mutation calls snapshotBump(), which assigns the object a
//     fresh, globally unique stamp;
//   * snapshotSave() re-serializes only if the object's stamp changed
//     since the cached payload was produced — sibling checkpoints that
//     saw no intervening mutation share one immutable payload;
//   * snapshotRestore() skips the copy entirely when the object already
//     carries the payload's stamp: stamps are never reused, so an equal
//     stamp proves the bytes are already identical.
//
// The stamp must come from a single global clock, not a per-object
// counter: with per-object counters, save at version v, mutate, restore
// to v, mutate again would re-reach "v+1" with *different* contents and a
// later restore-to-v+1 would incorrectly skip the copy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace confail::sched {

/// Next stamp from the global snapshot-version clock.  Stamps are unique
/// across all objects and all time; equal stamps therefore prove equal
/// state.
inline std::uint64_t nextSnapshotVersion() noexcept {
  static std::atomic<std::uint64_t> clock{1};
  return clock.fetch_add(1, std::memory_order_relaxed);
}

/// An object participating in checkpoint/restore.  Implementations provide
/// saveState()/restoreState() (a deep copy of their mutable state as an
/// opaque immutable payload) and call snapshotBump() from every mutating
/// operation; the base class supplies the copy-on-write caching on top.
///
/// Registration mirrors FingerprintSource: virtual-mode monitors, shared
/// variables, the Runtime and the Injector register themselves via
/// VirtualScheduler::addSnapshotSource and unregister in their destructors.
class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;

  /// Payload for the object's current state, reusing the cached one when
  /// nothing mutated since it was produced.  `versionOut` receives the
  /// stamp the payload corresponds to.  `freshBytes` is incremented by the
  /// payload size only when a new payload had to be serialized (budget
  /// accounting: shared payloads are free).
  std::shared_ptr<const void> snapshotSave(std::uint64_t& versionOut,
                                           std::size_t& freshBytes) {
    if (!cached_ || cachedVersion_ != version_) {
      cached_ = saveState();
      cachedVersion_ = version_;
      freshBytes += snapshotBytes();
    }
    versionOut = version_;
    return cached_;
  }

  /// Rewind to `payload` (previously produced by snapshotSave with stamp
  /// `version`).  No-op when the object already carries that stamp.
  void snapshotRestore(const std::shared_ptr<const void>& payload,
                       std::uint64_t version) {
    if (version_ == version) return;
    restoreState(payload);
    version_ = version;
    cached_ = payload;
    cachedVersion_ = version;
  }

  /// Approximate heap size of one saved payload, for the snapshot-memory
  /// budget.  An estimate is fine; it only steers eviction.
  virtual std::size_t snapshotBytes() const = 0;

 protected:
  /// Mark this object mutated: the next snapshotSave() serializes afresh
  /// and no existing payload's stamp will ever match again.
  void snapshotBump() noexcept { version_ = nextSnapshotVersion(); }

 private:
  virtual std::shared_ptr<const void> saveState() const = 0;
  virtual void restoreState(const std::shared_ptr<const void>& payload) = 0;

  std::uint64_t version_ = nextSnapshotVersion();
  std::shared_ptr<const void> cached_;
  std::uint64_t cachedVersion_ = 0;
};

}  // namespace confail::sched
