// Work-stealing deque pool for the parallel schedule explorer.
//
// Each worker owns a shard: a deque it pushes and pops at the back (LIFO,
// preserving the serial explorer's depth-first order and cache locality,
// since a just-branched prefix shares most of its replay with the run that
// produced it).  An idle worker steals a small batch from the *front* of a
// victim's shard — the oldest, shallowest prefixes, whose subtrees are the
// largest and therefore the best units to migrate; sibling branches from
// one decision point sit adjacent there and travel together.
//
// Termination is exact, not heuristic: `inFlight` counts items that are
// queued or being processed (processing may push children, so a worker's
// claim keeps the count positive until done() is called).  When it reaches
// zero no further work can appear and every blocked worker wakes and exits.
// Shards use plain mutexes: the owner's push/pop is uncontended in the
// common case, and steals are rare once the tree fans out — profiling the
// explorer shows run execution (thread spawn + semaphore ping-pong)
// dominates queue traffic by orders of magnitude, so a lock-free Chase-Lev
// deque would buy nothing measurable here.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace confail::sched {

template <typename T>
class WorkStealQueue {
 public:
  explicit WorkStealQueue(std::size_t workers) {
    shards_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// Enqueue an item on `worker`'s own shard.  inFlight is raised *before*
  /// the item becomes visible: an item that can be stolen and completed must
  /// never be momentarily uncounted, or a thief's done() could drive the
  /// count to zero with work still live and wake idle workers into exiting.
  void push(std::size_t worker, T item) {
    inFlight_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> g(shards_[worker]->mu);
      shards_[worker]->q.push_back(std::move(item));
    }
    queued_.fetch_add(1, std::memory_order_release);
    cv_.notify_one();
  }

  /// Enqueue a batch on `worker`'s own shard under one lock acquisition,
  /// preserving order (the deque ends up exactly as if each item had been
  /// push()ed in sequence, so serial LIFO traversal is unchanged).  The
  /// explorer publishes each run's children in one batch *after* its race
  /// analysis has finished claiming branches: a child popped by another
  /// worker can therefore never race its own analysis against the tail of
  /// the analysis that produced it (see the claim-order note in
  /// explorer.cpp).  Consumes `items` (left empty).
  void pushAll(std::size_t worker, std::vector<T>& items) {
    if (items.empty()) return;
    const std::int64_t n = static_cast<std::int64_t>(items.size());
    inFlight_.fetch_add(n, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> g(shards_[worker]->mu);
      for (T& item : items) {
        shards_[worker]->q.push_back(std::move(item));
      }
    }
    items.clear();
    queued_.fetch_add(n, std::memory_order_release);
    if (n == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  /// Fetch the next item for `worker`: its own back first (DFS order), then
  /// steal from the front of another shard.  Blocks until an item arrives,
  /// all work is finished (returns nullopt), or stop() is called (returns
  /// nullopt immediately).  The caller MUST call done() after processing a
  /// returned item (after pushing any children it produces).
  std::optional<T> next(std::size_t worker) {
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) return std::nullopt;
      if (auto item = tryPop(worker)) return item;
      if (inFlight_.load(std::memory_order_acquire) == 0) return std::nullopt;
      std::unique_lock<std::mutex> lk(idleMu_);
      // Re-check under the lock with a short timed wait: a push between our
      // scan and the wait would otherwise be missable.  The timeout bounds
      // the race window; idle workers cost a few wakeups/ms at worst.
      cv_.wait_for(lk, std::chrono::milliseconds(1), [&] {
        return stop_.load(std::memory_order_acquire) ||
               queued_.load(std::memory_order_acquire) > 0 ||
               inFlight_.load(std::memory_order_acquire) == 0;
      });
    }
  }

  /// Mark one previously-fetched item fully processed.
  void done() {
    if (inFlight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      cv_.notify_all();
    }
  }

  /// Abandon all remaining work: every next() call returns nullopt from now
  /// on (used for callback-requested stops and budget exhaustion).
  void stop() {
    stop_.store(true, std::memory_order_release);
    cv_.notify_all();
  }

  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Items taken from another worker's shard so far (each migrated batch
  /// member counts).
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Successful steal operations (each moved up to kStealBatch items).
  std::uint64_t stealBatches() const {
    return stealBatches_.load(std::memory_order_relaxed);
  }

  /// Items currently queued (approximate under concurrency: a wakeup hint,
  /// not a synchronized count — good enough for progress reporting).
  std::int64_t queuedApprox() const {
    return queued_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mu;
    std::deque<T> q;
  };

  std::optional<T> tryPop(std::size_t worker) {
    {
      Shard& own = *shards_[worker];
      std::lock_guard<std::mutex> g(own.mu);
      if (!own.q.empty()) {
        T item = std::move(own.q.back());
        own.q.pop_back();
        queued_.fetch_sub(1, std::memory_order_relaxed);
        return item;
      }
    }
    for (std::size_t k = 1; k < shards_.size(); ++k) {
      Shard& victim = *shards_[(worker + k) % shards_.size()];
      // Batch steal: grab up to kStealBatch of the victim's oldest items in
      // one lock acquisition.  Siblings branched from one decision point sit
      // adjacent at the shard front, so migrating a batch moves a coherent
      // chunk of subtree and an oversubscribed victim is visited ~4x less
      // often.  The surplus is re-homed under the thief's own lock *after*
      // the victim's is released — two thieves stealing from each other
      // would otherwise hold opposite locks and deadlock.
      std::vector<T> batch;
      {
        std::lock_guard<std::mutex> g(victim.mu);
        const std::size_t take =
            std::min(victim.q.size(), kStealBatch);
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(victim.q.front()));
          victim.q.pop_front();
        }
      }
      if (batch.empty()) continue;
      queued_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(batch.size(), std::memory_order_relaxed);
      stealBatches_.fetch_add(1, std::memory_order_relaxed);
      T item = std::move(batch.front());
      if (batch.size() > 1) {
        Shard& own = *shards_[worker];
        std::lock_guard<std::mutex> g(own.mu);
        // Keep relative age: batch[1] is the oldest surplus item, so append
        // in reverse and the owner's LIFO pop sees oldest first — the
        // shallowest prefix with the largest subtree, matching the
        // steal-from-front policy this batch came from.
        for (std::size_t i = batch.size(); i-- > 1;) {
          own.q.push_back(std::move(batch[i]));
        }
      }
      return item;
    }
    return std::nullopt;
  }

  /// Oldest-first items migrated per successful steal; siblings from one
  /// branch point travel together.
  static constexpr std::size_t kStealBatch = 4;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::int64_t> inFlight_{0};  ///< queued + being processed
  std::atomic<std::int64_t> queued_{0};    ///< queued only (wakeup hint)
  std::atomic<std::uint64_t> steals_{0};        ///< cross-shard item moves
  std::atomic<std::uint64_t> stealBatches_{0};  ///< cross-shard steal ops
  std::atomic<bool> stop_{false};
  std::mutex idleMu_;
  std::condition_variable cv_;
};

}  // namespace confail::sched
