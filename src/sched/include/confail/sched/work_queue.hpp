// Work-stealing deque pool for the parallel schedule explorer.
//
// Each worker owns a shard: a deque it pushes and pops at the back (LIFO,
// preserving the serial explorer's depth-first order and cache locality,
// since a just-branched prefix shares most of its replay with the run that
// produced it).  An idle worker steals from the *front* of a victim's
// shard — the oldest, shallowest prefix, whose subtree is the largest and
// therefore the best unit to migrate.
//
// Termination is exact, not heuristic: `inFlight` counts items that are
// queued or being processed (processing may push children, so a worker's
// claim keeps the count positive until done() is called).  When it reaches
// zero no further work can appear and every blocked worker wakes and exits.
// Shards use plain mutexes: the owner's push/pop is uncontended in the
// common case, and steals are rare once the tree fans out — profiling the
// explorer shows run execution (thread spawn + semaphore ping-pong)
// dominates queue traffic by orders of magnitude, so a lock-free Chase-Lev
// deque would buy nothing measurable here.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace confail::sched {

template <typename T>
class WorkStealQueue {
 public:
  explicit WorkStealQueue(std::size_t workers) {
    shards_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// Enqueue an item on `worker`'s own shard.
  void push(std::size_t worker, T item) {
    {
      std::lock_guard<std::mutex> g(shards_[worker]->mu);
      shards_[worker]->q.push_back(std::move(item));
    }
    inFlight_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_release);
    cv_.notify_one();
  }

  /// Fetch the next item for `worker`: its own back first (DFS order), then
  /// steal from the front of another shard.  Blocks until an item arrives,
  /// all work is finished (returns nullopt), or stop() is called (returns
  /// nullopt immediately).  The caller MUST call done() after processing a
  /// returned item (after pushing any children it produces).
  std::optional<T> next(std::size_t worker) {
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) return std::nullopt;
      if (auto item = tryPop(worker)) return item;
      if (inFlight_.load(std::memory_order_acquire) == 0) return std::nullopt;
      std::unique_lock<std::mutex> lk(idleMu_);
      // Re-check under the lock with a short timed wait: a push between our
      // scan and the wait would otherwise be missable.  The timeout bounds
      // the race window; idle workers cost a few wakeups/ms at worst.
      cv_.wait_for(lk, std::chrono::milliseconds(1), [&] {
        return stop_.load(std::memory_order_acquire) ||
               queued_.load(std::memory_order_acquire) > 0 ||
               inFlight_.load(std::memory_order_acquire) == 0;
      });
    }
  }

  /// Mark one previously-fetched item fully processed.
  void done() {
    if (inFlight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      cv_.notify_all();
    }
  }

  /// Abandon all remaining work: every next() call returns nullopt from now
  /// on (used for callback-requested stops and budget exhaustion).
  void stop() {
    stop_.store(true, std::memory_order_release);
    cv_.notify_all();
  }

  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Items taken from another worker's shard so far.
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Items currently queued (approximate under concurrency: a wakeup hint,
  /// not a synchronized count — good enough for progress reporting).
  std::int64_t queuedApprox() const {
    return queued_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mu;
    std::deque<T> q;
  };

  std::optional<T> tryPop(std::size_t worker) {
    {
      Shard& own = *shards_[worker];
      std::lock_guard<std::mutex> g(own.mu);
      if (!own.q.empty()) {
        T item = std::move(own.q.back());
        own.q.pop_back();
        queued_.fetch_sub(1, std::memory_order_relaxed);
        return item;
      }
    }
    for (std::size_t k = 1; k < shards_.size(); ++k) {
      Shard& victim = *shards_[(worker + k) % shards_.size()];
      std::lock_guard<std::mutex> g(victim.mu);
      if (!victim.q.empty()) {
        T item = std::move(victim.q.front());
        victim.q.pop_front();
        queued_.fetch_sub(1, std::memory_order_relaxed);
        steals_.fetch_add(1, std::memory_order_relaxed);
        return item;
      }
    }
    return std::nullopt;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::int64_t> inFlight_{0};  ///< queued + being processed
  std::atomic<std::int64_t> queued_{0};    ///< queued only (wakeup hint)
  std::atomic<std::uint64_t> steals_{0};   ///< cross-shard pops
  std::atomic<bool> stop_{false};
  std::mutex idleMu_;
  std::condition_variable cv_;
};

}  // namespace confail::sched
