// State fingerprinting and step footprints for schedule-tree pruning.
//
// The exhaustive explorer re-executes the program once per schedule prefix;
// without reduction, every permutation of independent steps is paid for in
// full.  Two classic model-checking ideas (JPF-style state hashing, sleep
// sets) are grafted onto the stateless design:
//
//   * A *fingerprint* is a 64-bit hash of the complete scheduler-visible
//     state at a decision point: every logical thread's status and block
//     reason, plus the state of each registered FingerprintSource (monitors
//     hash owner/depth/entry-queue/wait-set; shared variables hash their
//     value; the Runtime hashes its policy-RNG state).  Two runs whose
//     fingerprints agree at the same decision depth are in the same state
//     and share one future: branching is done once.
//
//   * A *footprint* summarizes what one scheduler step (the segment between
//     two decision points) touched, as read/write Bloom masks over monitor,
//     variable and blocking-resource tags.  Two adjacent steps of different
//     threads with non-conflicting footprints commute — executing them in
//     either order reaches the same state — which lets the explorer skip
//     queueing one of the two transposed orders (a sleep-set-style check).
//
// Soundness assumptions are documented in docs/exploration.md: components
// must route all cross-thread interaction through instrumented state
// (monitors, SharedVar, scheduler blocking), and 64-bit hashing carries the
// usual negligible-but-nonzero collision risk accepted by hash-compaction
// model checkers.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "confail/events/event.hpp"

namespace confail::sched {

/// Anything that contributes state to a VirtualScheduler fingerprint.
/// Instances register via VirtualScheduler::addFingerprintSource (monitors,
/// shared variables and the Runtime do this automatically in virtual mode)
/// and must unregister before destruction.
class FingerprintSource {
 public:
  virtual ~FingerprintSource() = default;
  /// A hash of this object's current logical state.  Must be a pure
  /// function of state: two objects in equal states (possibly in different
  /// runs of the same program) must return equal values.
  virtual std::uint64_t stateFingerprint() const = 0;
};

/// FNV-1a offset basis; the seed of every fingerprint chain.
inline constexpr std::uint64_t kFpSeed = 0xcbf29ce484222325ull;

/// Mix one 64-bit quantity into a running fingerprint (FNV-1a over the
/// value's bytes, unrolled to one multiply per word plus avalanche).
inline std::uint64_t fpMix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v;
  h *= 0x100000001b3ull;
  h ^= h >> 29;
  return h;
}

/// Stable tag for a named resource (domain: 'm' monitor, 'v' shared var,
/// 'b' scheduler block resource, 'r' policy RNG).  SplitMix64-finalized so
/// dense ids spread over the footprint mask bits.
inline std::uint64_t fpTag(char domain, std::uint64_t id) noexcept {
  std::uint64_t k = (static_cast<std::uint64_t>(domain) << 56) ^ id;
  k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
  k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
  return k ^ (k >> 31);
}

/// What one scheduler step touched: 64-bit read/write Bloom masks over
/// resource tags, plus a "global" flag for effects that defeat commutation
/// analysis entirely (thread spawn, abstract-clock progress).  A set bit
/// may alias several resources; aliasing only makes the independence check
/// more conservative, never unsound.
struct Footprint {
  std::uint64_t read = 0;
  std::uint64_t write = 0;
  bool global = false;

  void addRead(std::uint64_t tag) noexcept { read |= 1ull << (tag & 63); }
  void addWrite(std::uint64_t tag) noexcept { write |= 1ull << (tag & 63); }
  void clear() noexcept { read = write = 0; global = false; }

  /// True if two steps with these footprints commute: neither is global and
  /// no write of one overlaps a read or write of the other.
  bool independentWith(const Footprint& o) const noexcept {
    if (global || o.global) return false;
    return (write & o.write) == 0 && (write & o.read) == 0 &&
           (read & o.write) == 0;
  }

  /// The dependence relation of the DPOR literature — the complement of
  /// independence.  Two dependent steps do not commute: their order is
  /// observable, so reversing them is a genuine schedule-tree branch.
  /// Bloom aliasing can only add dependence (suppress a reduction), never
  /// remove it — conservative in the sound direction.
  bool dependentWith(const Footprint& o) const noexcept {
    return !independentWith(o);
  }
};

/// A thread whose next step is provably redundant to schedule — the
/// classic DPOR *sleep set* entry (Flanagan–Godefroid).  `tid`'s pending
/// step, whose footprint was `fp` when the thread was put to sleep, has
/// already been explored from this state by a sibling branch; re-executing
/// it here would only permute independent steps.  The entry *wakes*
/// (stops applying) as soon as some executed step is dependent with `fp`,
/// because from then on the reordering is observable again.
struct SleepEntry {
  events::ThreadId tid = 0;
  Footprint fp;
};

/// Concurrent visited set of (depth, fingerprint) keys shared by all
/// explorer workers: 64 open-addressing segments striped by the key's high
/// bits, with a lock-free insert fast path.
///
/// Each segment is a power-of-two array of atomic key slots probed
/// linearly; an insert claims an empty slot with a single fetch-style CAS,
/// so the dedup check on the explorer's branch loop never takes a mutex —
/// at 8 workers the striped-mutex predecessor serialized exactly the runs
/// that fan out fastest.  Only segment *growth* locks (one mutex per
/// segment, held by the grower alone): the grower copies the live table,
/// publishes the bigger one, then re-scans the old table once so inserts
/// that raced the copy are carried over (an inserter that noticed the swap
/// also re-inserts itself — the CAS makes the duplicate harmless).  Keys
/// are never deleted and retired tables are kept until destruction, so a
/// concurrent prober can always finish its probe on the table it loaded.
///
/// A rare insert/grow race can report the same key "new" twice; the
/// explorer then expands one converged state twice — strictly extra work,
/// never lost work, the same direction hash collisions already lean.
class VisitedSet {
 public:
  explicit VisitedSet(std::size_t expectedPerShard = 256) {
    std::size_t cap = 64;
    while (cap * 7 < expectedPerShard * 10) cap <<= 1;
    for (auto& s : shards_) {
      s = std::make_unique<Shard>();
      s->tables.push_back(std::make_unique<Table>(cap));
      s->live.store(s->tables.back().get(), std::memory_order_release);
    }
  }

  /// Insert the key; returns true if it was new (caller owns expanding the
  /// state), false if some run already expanded an equal state.
  bool insert(std::uint64_t key) {
    if (key == 0) key = 1;  // 0 marks an empty slot
    Shard& s = *shards_[(key >> 58) & (kShards - 1)];
    // One scramble per insert, not per probe attempt: the hash is a pure
    // function of the key, so retries (table growth, CAS losses) reuse it.
    const std::uint64_t h = scramble(key);
    for (;;) {
      Table* t = s.live.load(std::memory_order_seq_cst);
      std::size_t i = static_cast<std::size_t>(h) & t->mask;
      for (;;) {
        std::uint64_t cur = t->slots[i].load(std::memory_order_acquire);
        if (cur == key) return false;
        if (cur == 0) {
          if (t->slots[i].compare_exchange_strong(cur, key,
                                                  std::memory_order_seq_cst)) {
            // If a grower swapped tables while we probed, it may have
            // copied past our slot already; redo the insert in the live
            // table (the CAS there dedups against the grower's re-scan).
            if (s.live.load(std::memory_order_seq_cst) != t) break;
            const std::size_t n =
                s.size.fetch_add(1, std::memory_order_relaxed) + 1;
            if (n * 10 >= (t->mask + 1) * 7) grow(s, t);
            return true;
          }
          if (cur == key) return false;  // lost the race to an equal key
          continue;  // lost to a different key in this slot; keep probing
        }
        i = (i + 1) & t->mask;
      }
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      n += s->size.load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Occupied fraction of the live tables (dedup-table pressure gauge).
  double loadFactor() const {
    std::size_t used = 0;
    std::size_t cap = 0;
    for (const auto& s : shards_) {
      used += s->size.load(std::memory_order_relaxed);
      cap += s->live.load(std::memory_order_acquire)->mask + 1;
    }
    return cap > 0 ? static_cast<double>(used) / static_cast<double>(cap) : 0.0;
  }

  /// Occupancy of the fullest shard.  The aggregate loadFactor() hides
  /// stripe imbalance — a skewed fingerprint distribution can drive one
  /// shard toward its growth threshold while the mean looks healthy.
  double maxShardLoadFactor() const {
    double worst = 0.0;
    for (const auto& s : shards_) {
      const double used =
          static_cast<double>(s->size.load(std::memory_order_relaxed));
      const double cap = static_cast<double>(
          s->live.load(std::memory_order_acquire)->mask + 1);
      worst = std::max(worst, used / cap);
    }
    return worst;
  }

 private:
  static constexpr std::size_t kShards = 64;

  struct Table {
    explicit Table(std::size_t cap)
        : mask(cap - 1), slots(std::make_unique<std::atomic<std::uint64_t>[]>(cap)) {
      for (std::size_t i = 0; i < cap; ++i) {
        slots[i].store(0, std::memory_order_relaxed);
      }
    }
    std::size_t mask;
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };

  struct Shard {
    std::atomic<Table*> live{nullptr};
    std::atomic<std::size_t> size{0};
    std::mutex growMu;                           ///< serializes growth only
    std::vector<std::unique_ptr<Table>> tables;  ///< guarded by growMu
  };

  /// SplitMix64 finalizer: fpMix output is already avalanched, but the
  /// shard stripe consumed the high bits — rescramble so the probe index
  /// is independent of the stripe.
  static std::uint64_t scramble(std::uint64_t k) {
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return k ^ (k >> 31);
  }

  static void copyInto(const Table& from, Table& to) {
    for (std::size_t i = 0; i <= from.mask; ++i) {
      const std::uint64_t key = from.slots[i].load(std::memory_order_acquire);
      if (key == 0) continue;
      std::size_t j = static_cast<std::size_t>(scramble(key)) & to.mask;
      for (;;) {
        std::uint64_t cur = to.slots[j].load(std::memory_order_relaxed);
        if (cur == key) break;
        if (cur == 0 &&
            to.slots[j].compare_exchange_strong(cur, key,
                                                std::memory_order_release)) {
          break;
        }
        if (cur == key) break;
        j = (j + 1) & to.mask;
      }
    }
  }

  static void grow(Shard& s, Table* seen) {
    std::lock_guard<std::mutex> g(s.growMu);
    Table* t = s.live.load(std::memory_order_seq_cst);
    if (t != seen) return;  // someone else already grew past this table
    auto bigger = std::make_unique<Table>((t->mask + 1) * 2);
    copyInto(*t, *bigger);
    s.live.store(bigger.get(), std::memory_order_seq_cst);
    // Catch stragglers: a CAS into the old table that was not yet visible
    // during the first copy is visible now (it preceded the seq_cst swap
    // the straggler checked against).
    copyInto(*t, *bigger);
    s.tables.push_back(std::move(bigger));
  }

  std::unique_ptr<Shard> shards_[kShards];
};

}  // namespace confail::sched
