// State fingerprinting and step footprints for schedule-tree pruning.
//
// The exhaustive explorer re-executes the program once per schedule prefix;
// without reduction, every permutation of independent steps is paid for in
// full.  Two classic model-checking ideas (JPF-style state hashing, sleep
// sets) are grafted onto the stateless design:
//
//   * A *fingerprint* is a 64-bit hash of the complete scheduler-visible
//     state at a decision point: every logical thread's status and block
//     reason, plus the state of each registered FingerprintSource (monitors
//     hash owner/depth/entry-queue/wait-set; shared variables hash their
//     value; the Runtime hashes its policy-RNG state).  Two runs whose
//     fingerprints agree at the same decision depth are in the same state
//     and share one future: branching is done once.
//
//   * A *footprint* summarizes what one scheduler step (the segment between
//     two decision points) touched, as read/write Bloom masks over monitor,
//     variable and blocking-resource tags.  Two adjacent steps of different
//     threads with non-conflicting footprints commute — executing them in
//     either order reaches the same state — which lets the explorer skip
//     queueing one of the two transposed orders (a sleep-set-style check).
//
// Soundness assumptions are documented in docs/exploration.md: components
// must route all cross-thread interaction through instrumented state
// (monitors, SharedVar, scheduler blocking), and 64-bit hashing carries the
// usual negligible-but-nonzero collision risk accepted by hash-compaction
// model checkers.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "confail/events/event.hpp"
#include "confail/sched/visited_set.hpp"

namespace confail::sched {

/// Anything that contributes state to a VirtualScheduler fingerprint.
/// Instances register via VirtualScheduler::addFingerprintSource (monitors,
/// shared variables and the Runtime do this automatically in virtual mode)
/// and must unregister before destruction.
class FingerprintSource {
 public:
  virtual ~FingerprintSource() = default;
  /// A hash of this object's current logical state.  Must be a pure
  /// function of state: two objects in equal states (possibly in different
  /// runs of the same program) must return equal values.
  virtual std::uint64_t stateFingerprint() const = 0;
};

/// FNV-1a offset basis; the seed of every fingerprint chain.
inline constexpr std::uint64_t kFpSeed = 0xcbf29ce484222325ull;

/// Mix one 64-bit quantity into a running fingerprint (FNV-1a over the
/// value's bytes, unrolled to one multiply per word plus avalanche).
inline std::uint64_t fpMix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v;
  h *= 0x100000001b3ull;
  h ^= h >> 29;
  return h;
}

/// Stable tag for a named resource (domain: 'm' monitor, 'v' shared var,
/// 'b' scheduler block resource, 'r' policy RNG).  SplitMix64-finalized so
/// dense ids spread over the footprint mask bits.
inline std::uint64_t fpTag(char domain, std::uint64_t id) noexcept {
  std::uint64_t k = (static_cast<std::uint64_t>(domain) << 56) ^ id;
  k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
  k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
  return k ^ (k >> 31);
}

/// What one scheduler step touched: 64-bit read/write Bloom masks over
/// resource tags, plus a "global" flag for effects that defeat commutation
/// analysis entirely (thread spawn, abstract-clock progress).  A set bit
/// may alias several resources; aliasing only makes the independence check
/// more conservative, never unsound.
struct Footprint {
  std::uint64_t read = 0;
  std::uint64_t write = 0;
  bool global = false;

  void addRead(std::uint64_t tag) noexcept { read |= 1ull << (tag & 63); }
  void addWrite(std::uint64_t tag) noexcept { write |= 1ull << (tag & 63); }
  void clear() noexcept { read = write = 0; global = false; }

  /// True if two steps with these footprints commute: neither is global and
  /// no write of one overlaps a read or write of the other.
  bool independentWith(const Footprint& o) const noexcept {
    if (global || o.global) return false;
    return (write & o.write) == 0 && (write & o.read) == 0 &&
           (read & o.write) == 0;
  }

  /// The dependence relation of the DPOR literature — the complement of
  /// independence.  Two dependent steps do not commute: their order is
  /// observable, so reversing them is a genuine schedule-tree branch.
  /// Bloom aliasing can only add dependence (suppress a reduction), never
  /// remove it — conservative in the sound direction.
  bool dependentWith(const Footprint& o) const noexcept {
    return !independentWith(o);
  }
};

/// A thread whose next step is provably redundant to schedule — the
/// classic DPOR *sleep set* entry (Flanagan–Godefroid).  `tid`'s pending
/// step, whose footprint was `fp` when the thread was put to sleep, has
/// already been explored from this state by a sibling branch; re-executing
/// it here would only permute independent steps.  The entry *wakes*
/// (stops applying) as soon as some executed step is dependent with `fp`,
/// because from then on the reordering is observable again.
struct SleepEntry {
  events::ThreadId tid = 0;
  Footprint fp;
};

}  // namespace confail::sched
