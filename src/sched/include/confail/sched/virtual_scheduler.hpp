// VirtualScheduler: deterministic cooperative execution of logical threads.
//
// Architecture (the standard model-checker / CHESS design):
//   * Every logical thread is backed by a real std::thread, but all threads
//     are gated on per-thread binary semaphores so that EXACTLY ONE logical
//     thread executes at any moment.  The thread that calls run() acts as
//     the controller.
//   * At every instrumented operation (schedule point), the running thread
//     hands control back to the controller, which consults the Strategy to
//     pick the next runnable thread.
//   * Blocking (monitor entry queues, wait sets, abstract-clock awaits) is
//     scheduler state, never native blocking.  A global deadlock is
//     therefore *observable* — the controller sees no runnable thread —
//     instead of hanging the process.  This is what makes the paper's
//     "check call completion time" technique and the failure classes FF-T2,
//     FF-T4 and FF-T5 mechanically detectable.
//
// Because only one logical thread runs at a time and control transfer goes
// through semaphore release/acquire pairs, all scheduler state is free of
// data races by construction (strict alternation + synchronizes-with).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "confail/sched/fingerprint.hpp"
#include "confail/sched/snapshot.hpp"
#include "confail/sched/strategy.hpp"
#include "confail/support/assert.hpp"

namespace confail::obs {
class Registry;
}

namespace confail::sched {

class IncrementalRunner;

namespace detail {
struct Fiber;    // ucontext fiber backing a logical thread (defined in .cpp)
struct FiberRt;  // per-scheduler controller context (defined in .cpp)
struct StackImage;  // frozen fiber stack + register file (defined in .cpp)
}  // namespace detail

/// True when this build can back logical threads with snapshot-capable
/// ucontext fibers: Linux on x86-64 or aarch64, sanitizers off.  When
/// false, incremental exploration silently degrades to prefix replay.
bool fibersSupported() noexcept;

/// Why a logical thread is not runnable.
enum class BlockKind : std::uint8_t {
  None,         ///< not blocked
  LockAcquire,  ///< in a monitor entry queue (Figure 1 place B, no token in E)
  CondWait,     ///< in a monitor wait set (Figure 1 place D)
  ClockAwait,   ///< awaiting an abstract-clock time
  Join,         ///< joining another logical thread
  Custom,       ///< component-defined blocking
};

const char* blockKindName(BlockKind k);

/// How a run ended.
enum class Outcome : std::uint8_t {
  Completed,  ///< all logical threads finished
  Deadlock,   ///< unfinished threads exist but none is runnable
  StepLimit,  ///< the step budget was exhausted (livelock / runaway loop)
  Exception,  ///< a logical thread threw an uncaught exception
};

const char* outcomeName(Outcome o);

/// A thread stuck at the end of a deadlocked run.
struct BlockedThreadInfo {
  ThreadId id = events::kNoThread;
  std::string name;
  BlockKind kind = BlockKind::None;
  std::uint64_t resource = 0;  ///< monitor id / clock time / joined thread
};

/// Result of VirtualScheduler::run().
struct RunResult {
  Outcome outcome = Outcome::Completed;
  std::uint64_t steps = 0;
  /// The thread chosen at each decision point — a complete, replayable
  /// schedule (feed to PrefixReplayStrategy).
  std::vector<ThreadId> schedule;
  /// The runnable set at each decision point (the explorer branches on
  /// the points where this has more than one element).
  std::vector<std::vector<ThreadId>> choiceSets;
  /// Populated when outcome == Deadlock.
  std::vector<BlockedThreadInfo> blocked;
  /// Populated when outcome == Exception.
  std::string errorMessage;
  /// With Options::captureState: the state fingerprint at each decision
  /// point, aligned with `schedule` (fingerprints[i] hashes the state in
  /// which schedule[i] was chosen).  The explorer's dedup table keys on
  /// (depth, fingerprint) pairs from here.
  std::vector<std::uint64_t> fingerprints;
  /// With Options::captureState: what each step touched (the segment from
  /// decision point i to i+1, executed by schedule[i]).  Consumed by the
  /// explorer's adjacent-step independence (sleep-set) check.
  std::vector<Footprint> stepFootprints;
  /// True if the run was cut short because every runnable thread was in
  /// the DPOR sleep set (see Options::sleepSet): the executed portion is a
  /// redundant prefix, not a leaf of the reduced tree.  outcome is
  /// Completed in that case.
  bool sleepPruned = false;

  bool ok() const { return outcome == Outcome::Completed; }
};

/// Consulted by the controller when no thread is runnable, before declaring
/// deadlock.  The abstract clock registers one of these to auto-advance
/// logical time (discrete-event style).  Returns true if it made at least
/// one thread runnable.
class IdleHandler {
 public:
  virtual ~IdleHandler() = default;
  virtual bool onIdle() = 0;
};

class VirtualScheduler {
 public:
  struct Options {
    /// Abort the run after this many decision points (livelock guard).
    std::uint64_t maxSteps = 200000;
    /// Record per-decision-point state fingerprints and per-step footprints
    /// into the RunResult (see RunResult::fingerprints).  Off by default:
    /// only the pruning explorer pays for state hashing.
    bool captureState = false;
    /// Optional metrics sink: run() adds its step count, context-switch
    /// count (decision points where the pick changed threads) and run tally
    /// to sched.* counters when it returns.  Published once per run, not
    /// per step; must outlive the scheduler.
    obs::Registry* metrics = nullptr;

    /// DPOR sleep set carried into this run (empty for everyone but the
    /// explorer's Reduction::Dpor mode).  Each entry names a thread whose
    /// pending step is already covered by a sibling branch; from decision
    /// point `sleepFilterFrom` on, sleeping threads are excluded from the
    /// strategy's pick, and a decision point whose every runnable thread is
    /// asleep ends the run early with RunResult::sleepPruned set (the whole
    /// subtree is redundant).  An entry wakes when a step at index >=
    /// `sleepProcessFrom` is dependent with its footprint (or is the
    /// sleeping thread itself).  Filtering stops at `sleepFilterTo` (the
    /// explorer's branch-depth bound): past it no branching happens, so
    /// picks must match the unreduced explorer's free run for the executed
    /// leaves to stay comparable.  Requires captureState (footprints drive
    /// the wake rule).
    std::vector<SleepEntry> sleepSet;
    std::size_t sleepProcessFrom = 0;
    std::size_t sleepFilterFrom = 0;
    std::size_t sleepFilterTo = static_cast<std::size_t>(-1);

    /// Back logical threads with ucontext fibers instead of real
    /// std::threads.  Fibers run on the controller's own thread under the
    /// same strict alternation, but their stacks can be copied in and out,
    /// which is what makes checkpoint/restore of mid-run threads possible.
    /// Set only by the incremental explorer; requires fibersSupported().
    bool fibers = false;
  };

  explicit VirtualScheduler(Strategy& strategy) : VirtualScheduler(strategy, Options()) {}
  VirtualScheduler(Strategy& strategy, Options opts);
  ~VirtualScheduler();

  VirtualScheduler(const VirtualScheduler&) = delete;
  VirtualScheduler& operator=(const VirtualScheduler&) = delete;

  /// Create a logical thread.  May be called before run() or from a running
  /// logical thread; never after the run finished.
  ThreadId spawn(std::string name, std::function<void()> fn);

  /// Execute until completion, deadlock, step limit, or exception.
  /// Must be called from the controller thread (the one that constructed
  /// the scheduler); runs each logical thread in strict alternation.
  RunResult run();

  // ---- Called from the RUNNING logical thread -----------------------------

  /// Voluntary schedule point: lets the strategy preempt here.
  void yield();

  /// Block the calling thread.  Returns when some other agent called
  /// unblock() on it AND the strategy scheduled it again.
  /// Throws ExecutionAborted if the run is being torn down.
  void block(BlockKind kind, std::uint64_t resource);

  /// Make a blocked thread runnable.  Called by the running thread (e.g. a
  /// monitor handing over a lock) or by an IdleHandler on the controller.
  void unblock(ThreadId t);

  /// Block the calling logical thread until `t` finishes (Java
  /// Thread.join).  Returns immediately if `t` already finished.
  /// Self-join is a UsageError.
  void joinThread(ThreadId t);

  /// Update the recorded block reason of a thread that stays blocked
  /// (e.g. a notified waiter that moved from the wait set to the lock
  /// entry queue: CondWait -> LockAcquire).  Keeps deadlock reports honest.
  void reblock(ThreadId t, BlockKind kind, std::uint64_t resource);

  /// Logical id of the calling thread; kNoThread on the controller.
  ThreadId currentThread() const;

  /// Name of a logical thread.
  const std::string& threadName(ThreadId t) const;

  /// True while the calling context is a logical thread of this scheduler.
  bool onLogicalThread() const;

  /// Blocked/runnable introspection (used by deadlock reporting and tests).
  BlockKind blockKindOf(ThreadId t) const;
  std::size_t threadCount() const;

  /// Register an idle handler (e.g. the abstract clock).  Handlers are
  /// consulted in registration order.
  void addIdleHandler(IdleHandler* h);

  // ---- state fingerprinting (schedule-tree pruning) -----------------------

  /// Register an object whose state participates in fingerprint().  Sources
  /// are hashed in registration order, which is deterministic because the
  /// explorer's program callback constructs the same objects in the same
  /// order on every run.  Monitors, SharedVars and the Runtime register
  /// themselves in virtual mode.
  void addFingerprintSource(const FingerprintSource* s);

  /// Unregister a source (called from its destructor).  Safe during
  /// scheduler teardown.
  void removeFingerprintSource(const FingerprintSource* s);

  // ---- state snapshots (incremental exploration) --------------------------

  /// Register an object whose mutable state must survive checkpoint /
  /// restore (see snapshot.hpp).  Monitors, SharedVars, the Runtime and
  /// the Injector register themselves in virtual mode, mirroring their
  /// fingerprint registration.
  void addSnapshotSource(SnapshotSource* s);

  /// Unregister a snapshot source (called from its destructor).
  void removeSnapshotSource(SnapshotSource* s);

  /// Declare that the program under test keeps ALL of its mutable state
  /// either in registered SnapshotSources or in plain stack locals of its
  /// logical threads (no heap-owning locals crossing schedule points, no
  /// unregistered shared state).  Only declared programs are eligible for
  /// incremental exploration; the scenario builders in
  /// components/scenarios.hpp declare themselves.
  void declareSnapshotSafe() { snapshotSafe_ = true; }

  /// Veto snapshot safety for this scheduler (e.g. a SharedVar over a
  /// non-copyable type cannot participate in save/restore).  Wins over any
  /// declareSnapshotSafe() call, before or after.
  void poisonSnapshotSafety() { snapshotPoisoned_ = true; }

  /// True when the program declared itself snapshot-safe and nothing
  /// vetoed it since.
  bool snapshotSafe() const { return snapshotSafe_ && !snapshotPoisoned_; }

  /// Hash of the complete scheduler-visible state: every logical thread's
  /// (status, block kind, block resource) plus each registered source.
  /// Deterministic: equal states yield equal fingerprints across runs.
  std::uint64_t fingerprint() const;

  /// Record that the currently-running logical thread accessed the resource
  /// identified by `tag` (see fpTag).  No-op unless Options::captureState is
  /// set and a logical thread is executing.  Called by the Runtime for every
  /// instrumented operation and by the scheduler's own blocking primitives.
  void noteAccess(std::uint64_t tag, bool isWrite);

  /// Mark the current step as having a global effect (thread spawn, clock
  /// progress): it will never be treated as independent of anything.
  void noteGlobalEffect();

  /// True while the run is being torn down (deadlock/step-limit/exception).
  /// RAII cleanup code uses this to tolerate partially-unwound state.
  bool aborting() const { return aborting_; }

  /// The scheduler's own deterministic RNG, seeded from the strategy-level
  /// seed by the caller; available to monitors for wake-policy choices.
  // (kept out of here on purpose: policy randomness lives in the Runtime.)

 private:
  friend class IncrementalRunner;

  enum class ThreadState : std::uint8_t { Runnable, Running, Blocked, Finished };

  struct ThreadRecord {
    // Both out of line: detail::Fiber is incomplete here.
    explicit ThreadRecord(ThreadId id_, std::string name_);
    ~ThreadRecord();
    ThreadId id;
    std::string name;
    ThreadState state = ThreadState::Runnable;
    BlockKind blockKind = BlockKind::None;
    std::uint64_t blockResource = 0;
    std::binary_semaphore sem{0};
    std::thread real;
    std::unique_ptr<detail::Fiber> fiber;  // set instead of `real` w/ fibers
    std::exception_ptr error;
    std::function<void()> fn;
    std::vector<ThreadId> joiners;  // threads blocked joining on this one
  };

  /// A copy-on-write checkpoint of the complete session state at one
  /// decision point: every logical thread's scheduler state and frozen
  /// stack, plus every registered SnapshotSource's payload.  Immutable
  /// once built; siblings share unmodified pieces via shared_ptr.
  struct Snapshot {
    struct ThreadSnap {
      ThreadState state = ThreadState::Runnable;
      BlockKind blockKind = BlockKind::None;
      std::uint64_t blockResource = 0;
      std::vector<ThreadId> joiners;
      std::shared_ptr<const detail::StackImage> stack;
    };
    struct SourceSnap {
      SnapshotSource* src = nullptr;
      std::shared_ptr<const void> payload;
      std::uint64_t version = 0;
    };
    std::vector<ThreadSnap> threads;
    std::uint64_t liveCount = 0;
    std::vector<SourceSnap> sources;
    std::uint64_t sourceGen = 0;
    /// Heap bytes newly serialized for this snapshot (payloads and stack
    /// images not shared with an earlier snapshot): the budget increment.
    std::size_t freshBytes = 0;
  };

  void workerMain(ThreadRecord& rec);
  static void fiberTrampoline();
  void fiberMain(ThreadRecord& rec);
  void finishSelf(ThreadRecord& rec);
  /// Hand the CPU to `rec` until it yields/blocks/finishes (semaphore
  /// hand-off for thread-backed records, swapcontext for fibers).
  void resumeThread(ThreadRecord& rec);
  void switchToController(ThreadRecord& rec);
  void checkAbort() const;
  void abortRun();
  std::vector<ThreadId> runnableSet() const;
  ThreadRecord& recordOf(ThreadId t);
  const ThreadRecord& recordOf(ThreadId t) const;

  /// The decision loop shared verbatim by run() and the incremental
  /// runner.  Appends to `result` (which the runner pre-seeds with the
  /// restored prefix) until the run ends; `contextSwitches` counts pick
  /// changes across the executed portion.
  void runLoop(RunResult& result, std::uint64_t& contextSwitches);

  /// Freeze the complete session state (controller only, all fibers
  /// suspended).  Requires Options::fibers.
  std::shared_ptr<const Snapshot> saveSnapshot();

  /// Rewind the session to `snap`.  Returns false (leaving state poisoned
  /// for this session) if the thread set or snapshot-source registration
  /// changed since the snapshot was taken — the caller must then abandon
  /// incremental execution for this session.
  bool restoreSnapshot(const Snapshot& snap);

  Strategy& strategy_;
  Options opts_;
  // Declared before threads_ on purpose: destroying threads_ runs the
  // program closures' destructors, which unregister monitors / shared vars
  // from these vectors — they must still be alive then.
  std::vector<const FingerprintSource*> fingerprintSources_;
  std::vector<SnapshotSource*> snapshotSources_;
  std::uint64_t snapshotSourceGen_ = 0;  // bumped on (un)registration
  Footprint stepFootprint_;
  std::vector<std::unique_ptr<ThreadRecord>> threads_;
  std::vector<IdleHandler*> idleHandlers_;
  std::binary_semaphore controllerSem_{0};
  std::unique_ptr<detail::FiberRt> fiberRt_;  // controller context (fibers)
  /// Invoked by runLoop at every decision point, before the pick executes
  /// (the incremental runner installs this to store checkpoints).  Gets the
  /// step index and the runnable-set size: only multi-choice points can
  /// ever host a branch, so single-choice points skip the snapshot.
  std::function<void(std::uint64_t step, std::size_t runnableCount)>
      checkpointHook_;
  bool aborting_ = false;
  bool finished_ = false;
  bool snapshotSafe_ = false;
  bool snapshotPoisoned_ = false;
  std::uint64_t liveCount_ = 0;  // spawned and not finished
};

}  // namespace confail::sched
