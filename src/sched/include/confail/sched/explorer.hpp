// Bounded exhaustive schedule exploration (stateless DFS).
//
// The explorer repeatedly executes a *program* — a callback that spawns
// logical threads on a fresh VirtualScheduler — replaying a schedule prefix
// and then branching on every decision point where more than one thread was
// runnable.  Because everything in confail is deterministic modulo the
// schedule, identical prefixes reproduce identical states, so the set of
// explored schedules forms a tree that covers every interleaving up to the
// configured bounds.
//
// This is the mechanism that turns the paper's failure classes from
// "things that may happen under some JVM scheduler" into properties that
// can be *proved reachable* (a deadlock exists / a race manifests) or
// exhaustively absent within bounds.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "confail/sched/virtual_scheduler.hpp"

namespace confail::sched {

class ExhaustiveExplorer {
 public:
  struct Options {
    std::uint64_t maxRuns = 10000;     ///< execution budget
    std::uint64_t maxSteps = 100000;   ///< per-run step budget
    std::size_t maxBranchDepth = static_cast<std::size_t>(-1);
    ///< only branch on decision points below this index (iteration bounding)
  };

  /// A program spawns its logical threads on the given scheduler; the
  /// explorer then drives the run.  The callback must build all state
  /// afresh on each invocation (the explorer re-executes many times).
  using Program = std::function<void(VirtualScheduler&)>;

  /// Invoked after every run with the schedule that was executed and its
  /// result.  Return false to stop exploring early (e.g. first bug found).
  using RunCallback =
      std::function<bool(const std::vector<ThreadId>& schedule, const RunResult&)>;

  struct Stats {
    std::uint64_t runs = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadlocks = 0;
    std::uint64_t stepLimited = 0;
    std::uint64_t exceptions = 0;
    bool exhausted = false;   ///< true if the whole bounded tree was covered
    bool stoppedByCallback = false;
    /// First failing schedule (deadlock/exception), if any — replay it with
    /// PrefixReplayStrategy to reproduce the failure deterministically.
    std::vector<ThreadId> firstFailure;
    Outcome firstFailureOutcome = Outcome::Completed;
  };

  ExhaustiveExplorer() : ExhaustiveExplorer(Options()) {}
  explicit ExhaustiveExplorer(Options opts) : opts_(opts) {}

  /// Explore the schedule tree of `program`.  `cb` may be null.
  Stats explore(const Program& program, const RunCallback& cb = nullptr) const;

 private:
  Options opts_;
};

}  // namespace confail::sched
