// Bounded exhaustive schedule exploration (stateless, parallel DFS).
//
// The explorer repeatedly executes a *program* — a callback that spawns
// logical threads on a fresh VirtualScheduler — replaying a schedule prefix
// and then branching on every decision point where more than one thread was
// runnable.  Because everything in confail is deterministic modulo the
// schedule, identical prefixes reproduce identical states, so the set of
// explored schedules forms a tree that covers every interleaving up to the
// configured bounds.
//
// The tree is explored by `workers` OS threads pulling prefixes from a
// work-stealing queue; each worker owns its own scheduler replay, so runs
// proceed fully in parallel.  Queued prefixes are nodes of an immutable
// parent-pointer tree bump-allocated per worker (see prefix_tree.hpp), so
// enqueueing a child is O(1) instead of an O(depth) vector copy.
//
// Optional reductions cut the tree:
//
//   * fingerprintPruning — hash the full execution state (thread statuses,
//     lock owners, wait sets, shared-variable contents, policy-RNG stream)
//     at every decision point and branch from a (depth, fingerprint) pair
//     at most once, JPF-style;
//   * Reduction::Sleep — skip the transposed sibling of two adjacent
//     independent steps (their footprints touch disjoint state), a one-shot
//     sleep-set reduction;
//   * Reduction::Dpor — footprint-driven dynamic partial-order reduction
//     (source-set backtracking, Flanagan–Godefroid lineage): instead of
//     enqueueing every untried sibling at every branch point, each executed
//     run is scanned for races (pairs of dependent steps by different
//     threads) and only the schedule reversals those races demand are
//     enqueued, exactly once per decision point via an atomic claim mask on
//     the shared prefix tree.  Explores at least one representative of
//     every Mazurkiewicz trace within bounds; failing witnesses are
//     canonicalized to the lexicographically smallest linearization of
//     their trace so `firstFailure` matches the one Reduction::None finds.
//
// See docs/exploration.md for the design, the determinism guarantees, and
// the soundness argument for the reductions.
//
// This is the mechanism that turns the paper's failure classes from
// "things that may happen under some JVM scheduler" into properties that
// can be *proved reachable* (a deadlock exists / a race manifests) or
// exhaustively absent within bounds.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "confail/sched/virtual_scheduler.hpp"

namespace confail::obs {
class Registry;
}

namespace confail::sched {

/// The lexicographically smallest linearization of a run's Mazurkiewicz
/// trace (program order + footprint dependence); requires the run to have
/// been captured with VirtualScheduler::Options::captureState.  Two runs of
/// the same trace canonicalize identically, so this is a trace-class
/// identity usable for cross-reduction comparisons; ExhaustiveExplorer uses
/// it to report DPOR failure witnesses.  Returns the schedule unchanged for
/// very long runs or when footprints are missing.
std::vector<ThreadId> canonicalTraceWitness(const RunResult& result);

class ExhaustiveExplorer {
 public:
  /// Schedule-tree reduction level (orthogonal to fingerprintPruning,
  /// except that Dpor ignores the fingerprint dedup table — see below).
  enum class Reduction : std::uint8_t {
    None,   ///< branch on every untried sibling (full enumeration)
    Sleep,  ///< one-shot sleep-set skip of transposed independent steps
    Dpor,   ///< source-set dynamic partial-order reduction
  };

  /// Periodic heartbeat snapshot passed to Options::onProgress.
  struct Progress {
    std::uint64_t runs = 0;        ///< runs claimed so far
    std::int64_t queueDepth = 0;   ///< prefixes awaiting execution (approx)
    std::uint64_t steals = 0;      ///< cross-worker queue migrations so far
    double elapsedSec = 0.0;
    double runsPerSec = 0.0;
  };
  using ProgressCallback = std::function<void(const Progress&)>;

  struct Options {
    std::uint64_t maxRuns = 10000;     ///< execution budget
    std::uint64_t maxSteps = 100000;   ///< per-run step budget
    std::size_t maxBranchDepth = static_cast<std::size_t>(-1);
    ///< only branch on decision points below this index (iteration bounding)

    /// Number of exploration worker threads.  1 (the default) explores on
    /// the calling thread with no extra threads — bit-identical to the
    /// legacy serial DFS.  0 means std::thread::hardware_concurrency().
    std::size_t workers = 1;

    /// Branch from each (depth, state-fingerprint) pair at most once.
    /// Cuts re-exploration of converged interleavings; Stats counters stay
    /// deterministic across worker counts (see docs/exploration.md).
    /// Ignored under Reduction::Dpor: a state's backtrack set depends on
    /// the races seen along the path that reached it, so deduping by state
    /// alone could skip a reversal DPOR still needs.
    bool fingerprintPruning = false;

    /// Which schedule-tree reduction to apply (see Reduction).  Sleep with
    /// workers == 1 stays byte-identical to the historical sleep-set
    /// explorer output; Dpor preserves the failure set and the
    /// lexicographic-min witness but explores far fewer runs.
    Reduction reduction = Reduction::None;

    /// Incremental exploration: each worker keeps one long-lived fiber
    /// scheduler, checkpoints its state at branch points (copy-on-write —
    /// siblings share unmodified stacks and payloads) and starts each child
    /// run by restoring its parent's checkpoint instead of replaying the
    /// O(depth) prefix.  Produces the exact same runs, failure sets,
    /// canonical witnesses and Stats counters as replay; silently falls
    /// back to replay when fibers are unsupported (sanitized builds,
    /// non-x86-64/aarch64) or the program is not snapshot-safe (see
    /// VirtualScheduler::declareSnapshotSafe).  See docs/exploration.md.
    bool incremental = true;

    /// Per-worker cap on retained checkpoint memory (estimated fresh bytes
    /// plus path data).  Over the cap, checkpoints are dropped oldest-first
    /// and affected children replay the gap from the nearest retained
    /// ancestor — graceful degradation, never failure.
    std::size_t snapshotBudgetBytes = 256ull * 1024 * 1024;

    /// Optional metrics sink.  When set, explore() publishes throughput
    /// (explorer.runs_per_sec), reduction effectiveness
    /// (explorer.dedup_hit_rate, explorer.dpor_backtracks), work-stealing
    /// traffic (explorer.steals), per-run schedule lengths
    /// (explorer.run_steps histogram), per-worker run counts and
    /// utilization, memory pressure (explorer.prefix_arena_bytes,
    /// explorer.visited_load_factor) and the outcome counters.  Recording
    /// is batched per worker and written once at merge time, so the hot
    /// loop is untouched; the registry must outlive explore().
    obs::Registry* metrics = nullptr;

    /// Invoke onProgress roughly every this many runs (0 disables).  The
    /// callback fires from whichever worker crosses the boundary, serialized
    /// under its own mutex (independent of the run callback); keep it cheap.
    std::uint64_t progressIntervalRuns = 0;
    ProgressCallback onProgress;
  };

  /// A program spawns its logical threads on the given scheduler; the
  /// explorer then drives the run.  The callback must build all state
  /// afresh on each invocation (the explorer re-executes many times), and
  /// with workers > 1 it must be safe to invoke from several exploration
  /// threads concurrently (each invocation gets its own scheduler).
  using Program = std::function<void(VirtualScheduler&)>;

  /// Invoked after every run with the schedule that was executed and its
  /// result.  Return false to stop exploring early (e.g. first bug found).
  /// Invocations are serialized under an internal mutex, but with
  /// workers > 1 they arrive from arbitrary worker threads and in a
  /// nondeterministic order; runs already in flight when the callback
  /// returns false still complete (without further callbacks).
  /// Under Reduction::Dpor, sleep-pruned partial runs (every runnable
  /// thread asleep — a redundant prefix, not a leaf of the reduced tree)
  /// consume run budget but are never reported through the callback.
  using RunCallback =
      std::function<bool(const std::vector<ThreadId>& schedule, const RunResult&)>;

  struct Stats {
    std::uint64_t runs = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadlocks = 0;
    std::uint64_t stepLimited = 0;
    std::uint64_t exceptions = 0;
    /// Child prefixes skipped by fingerprint pruning or sleep sets.
    std::uint64_t prunedBranches = 0;
    /// Decision points whose (depth, fingerprint) had already been expanded.
    std::uint64_t dedupedStates = 0;
    /// Reduction::Dpor only: schedule reversals enqueued by the race
    /// analysis (the entire frontier past the root run, since DPOR queues
    /// work exclusively through backtracking).
    std::uint64_t dporBacktracks = 0;
    /// Incremental exploration only (all zero under replay).  These count
    /// mechanism, not tree shape, so unlike the counters above they may
    /// legitimately vary across worker counts and traversal orders.
    std::uint64_t snapshotRestores = 0;   ///< runs started from a checkpoint
    std::uint64_t replayStepsAvoided = 0; ///< prefix steps never re-executed
    std::size_t snapshotPeakBytes = 0;    ///< max per-worker retained bytes
    bool exhausted = false;   ///< true if the whole bounded tree was covered
    bool stoppedByCallback = false;
    /// Lexicographically smallest failing schedule (deadlock / step limit /
    /// exception) among all executed runs, if any — replay it with
    /// PrefixReplayStrategy to reproduce the failure deterministically.
    /// The lexicographic-minimum rule makes the witness independent of
    /// traversal order, so it is identical across worker counts whenever
    /// the same set of runs executes (always true on an exhausted tree
    /// with reductions off), and is reported even when the run budget is
    /// exhausted mid-tree.  Under Reduction::Dpor each failing schedule is
    /// first canonicalized to the lexicographically smallest linearization
    /// of its Mazurkiewicz trace, so the witness matches the one
    /// Reduction::None reports even though DPOR may never execute it.
    std::vector<ThreadId> firstFailure;
    Outcome firstFailureOutcome = Outcome::Completed;
  };

  ExhaustiveExplorer() : ExhaustiveExplorer(Options()) {}
  explicit ExhaustiveExplorer(Options opts) : opts_(opts) {}

  /// Explore the schedule tree of `program`.  `cb` may be null.
  Stats explore(const Program& program, const RunCallback& cb = nullptr) const;

 private:
  Options opts_;
};

}  // namespace confail::sched
