// Concurrent visited set of 64-bit state keys, shared by the explorer's
// schedule-tree dedup and reusable by any state-space enumerator that only
// needs membership ("was this state seen?") rather than a value per state.
//
// 64 open-addressing segments striped by the key's high bits, with a
// lock-free insert fast path.  Each segment is a power-of-two array of
// atomic key slots probed linearly; an insert claims an empty slot with a
// single fetch-style CAS, so the dedup check on the explorer's branch loop
// never takes a mutex — at 8 workers the striped-mutex predecessor
// serialized exactly the runs that fan out fastest.  Only segment *growth*
// locks (one mutex per segment, held by the grower alone): the grower
// copies the live table, publishes the bigger one, then re-scans the old
// table once so inserts that raced the copy are carried over (an inserter
// that noticed the swap also re-inserts itself — the CAS makes the
// duplicate harmless).  Keys are never deleted and retired tables are kept
// until destruction, so a concurrent prober can always finish its probe on
// the table it loaded.
//
// A rare insert/grow race can report the same key "new" twice; callers
// then expand one converged state twice — strictly extra work, never lost
// work, the same direction hash collisions already lean.  The flip side:
// "new" attribution is *racy*, so a deterministic enumerator that numbers
// states by discovery order cannot be built on this set — the Petri
// reachability engine needs exactly that and uses a barrier-phased
// FlatMapN instead (see docs/petri.md for the trade-off).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace confail::sched {

class VisitedSet {
 public:
  explicit VisitedSet(std::size_t expectedPerShard = 256) {
    std::size_t cap = 64;
    while (cap * 7 < expectedPerShard * 10) cap <<= 1;
    for (auto& s : shards_) {
      s = std::make_unique<Shard>();
      s->tables.push_back(std::make_unique<Table>(cap));
      s->live.store(s->tables.back().get(), std::memory_order_release);
    }
  }

  /// Insert the key; returns true if it was new (caller owns expanding the
  /// state), false if some run already expanded an equal state.
  bool insert(std::uint64_t key) {
    if (key == 0) key = 1;  // 0 marks an empty slot
    Shard& s = *shards_[(key >> 58) & (kShards - 1)];
    // One scramble per insert, not per probe attempt: the hash is a pure
    // function of the key, so retries (table growth, CAS losses) reuse it.
    const std::uint64_t h = scramble(key);
    for (;;) {
      Table* t = s.live.load(std::memory_order_seq_cst);
      std::size_t i = static_cast<std::size_t>(h) & t->mask;
      for (;;) {
        std::uint64_t cur = t->slots[i].load(std::memory_order_acquire);
        if (cur == key) return false;
        if (cur == 0) {
          if (t->slots[i].compare_exchange_strong(cur, key,
                                                  std::memory_order_seq_cst)) {
            // If a grower swapped tables while we probed, it may have
            // copied past our slot already; redo the insert in the live
            // table (the CAS there dedups against the grower's re-scan).
            if (s.live.load(std::memory_order_seq_cst) != t) break;
            const std::size_t n =
                s.size.fetch_add(1, std::memory_order_relaxed) + 1;
            if (n * 10 >= (t->mask + 1) * 7) grow(s, t);
            return true;
          }
          if (cur == key) return false;  // lost the race to an equal key
          continue;  // lost to a different key in this slot; keep probing
        }
        i = (i + 1) & t->mask;
      }
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      n += s->size.load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Occupied fraction of the live tables (dedup-table pressure gauge).
  double loadFactor() const {
    std::size_t used = 0;
    std::size_t cap = 0;
    for (const auto& s : shards_) {
      used += s->size.load(std::memory_order_relaxed);
      cap += s->live.load(std::memory_order_acquire)->mask + 1;
    }
    return cap > 0 ? static_cast<double>(used) / static_cast<double>(cap) : 0.0;
  }

  /// Occupancy of the fullest shard.  The aggregate loadFactor() hides
  /// stripe imbalance — a skewed fingerprint distribution can drive one
  /// shard toward its growth threshold while the mean looks healthy.
  double maxShardLoadFactor() const {
    double worst = 0.0;
    for (const auto& s : shards_) {
      const double used =
          static_cast<double>(s->size.load(std::memory_order_relaxed));
      const double cap = static_cast<double>(
          s->live.load(std::memory_order_acquire)->mask + 1);
      worst = std::max(worst, used / cap);
    }
    return worst;
  }

 private:
  static constexpr std::size_t kShards = 64;

  struct Table {
    explicit Table(std::size_t cap)
        : mask(cap - 1), slots(std::make_unique<std::atomic<std::uint64_t>[]>(cap)) {
      for (std::size_t i = 0; i < cap; ++i) {
        slots[i].store(0, std::memory_order_relaxed);
      }
    }
    std::size_t mask;
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };

  struct Shard {
    std::atomic<Table*> live{nullptr};
    std::atomic<std::size_t> size{0};
    std::mutex growMu;                           ///< serializes growth only
    std::vector<std::unique_ptr<Table>> tables;  ///< guarded by growMu
  };

  /// SplitMix64 finalizer: fpMix output is already avalanched, but the
  /// shard stripe consumed the high bits — rescramble so the probe index
  /// is independent of the stripe.
  static std::uint64_t scramble(std::uint64_t k) {
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return k ^ (k >> 31);
  }

  static void copyInto(const Table& from, Table& to) {
    for (std::size_t i = 0; i <= from.mask; ++i) {
      const std::uint64_t key = from.slots[i].load(std::memory_order_acquire);
      if (key == 0) continue;
      std::size_t j = static_cast<std::size_t>(scramble(key)) & to.mask;
      for (;;) {
        std::uint64_t cur = to.slots[j].load(std::memory_order_relaxed);
        if (cur == key) break;
        if (cur == 0 &&
            to.slots[j].compare_exchange_strong(cur, key,
                                                std::memory_order_release)) {
          break;
        }
        if (cur == key) break;
        j = (j + 1) & to.mask;
      }
    }
  }

  static void grow(Shard& s, Table* seen) {
    std::lock_guard<std::mutex> g(s.growMu);
    Table* t = s.live.load(std::memory_order_seq_cst);
    if (t != seen) return;  // someone else already grew past this table
    auto bigger = std::make_unique<Table>((t->mask + 1) * 2);
    copyInto(*t, *bigger);
    s.live.store(bigger.get(), std::memory_order_seq_cst);
    // Catch stragglers: a CAS into the old table that was not yet visible
    // during the first copy is visible now (it preceded the seq_cst swap
    // the straggler checked against).
    copyInto(*t, *bigger);
    s.tables.push_back(std::move(bigger));
  }

  std::unique_ptr<Shard> shards_[kShards];
};

}  // namespace confail::sched
