// Zero-copy schedule prefixes: an immutable parent-pointer tree in an arena.
//
// The explorer's frontier used to carry a full std::vector<ThreadId> per
// queued work item — an O(depth) allocation and copy for every child, paid
// again each time the tree fans out.  A schedule prefix is by construction
// an extension of the prefix that spawned it, so the frontier is stored as
// a tree instead: each node appends one thread id to its parent's path, and
// a work item is a single pointer.  Queuing a child is O(1) and constant
// memory; the full prefix is materialized exactly once per run, when the
// worker walks the parent chain into its reusable scratch buffer for
// PrefixReplayStrategy to borrow.
//
// Nodes live in per-worker bump-allocated chunks owned by the explorer's
// PrefixArena: allocation never takes a lock (each worker extends only its
// own lane), nodes are immutable after publication (publication happens
// via the work queue's mutex, which orders the node stores before any
// other worker can observe the pointer), and everything is reclaimed at
// once when explore() returns.  Nodes are never freed individually — a
// parent must outlive every descendant, and at well under 100 bytes/node a
// multi-million-run exploration costs tens of MB, reported through the
// `explorer.prefix_arena_bytes` gauge (chunk granularity; DPOR sleep-set
// heap storage is tiny and uncounted).
//
// The one mutable field is `expanded`, the DPOR bookkeeping mask: bit t
// set means a run that picks thread t at this node's decision point has
// already been enqueued (or is the node's own spine).  Source-set
// backtracking (see explorer.cpp) uses fetch_or on it so that concurrent
// workers discovering the same race enqueue the reversal exactly once.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "confail/events/event.hpp"
#include "confail/sched/fingerprint.hpp"
#include "confail/support/assert.hpp"

namespace confail::sched {

using events::ThreadId;

/// One prefix: the path of thread ids from the root to this node.
/// `depth` is the path length; `tid` is the last id on it (the edge from
/// `parent`).  The node also carries the DPOR expansion mask for the
/// decision point *at the end of* its path.
struct PrefixNode {
  const PrefixNode* parent = nullptr;  ///< null only on the root
  ThreadId tid = events::kNoThread;    ///< edge label from parent
  std::uint32_t depth = 0;             ///< prefix length (edges from root)

  /// Bit t: a run choosing thread t at this node's decision point has been
  /// enqueued or is this node's spine.  Mutable because work items hand out
  /// const pointers (the path is immutable; this mask is bookkeeping).
  mutable std::atomic<std::uint64_t> expanded{0};

  /// Atomically claim thread `t` at this decision point.  True exactly once
  /// per (node, t) — the caller that wins owns enqueueing that branch.
  /// Ids beyond the 64-bit mask always claim (duplicated work, never lost
  /// work); real scenarios stay far below 64 logical threads.
  bool tryClaim(ThreadId t) const {
    if (t >= 64) return true;
    const std::uint64_t bit = 1ull << t;
    return (expanded.fetch_or(bit, std::memory_order_acq_rel) & bit) == 0;
  }

  /// Reduction::Dpor only: the sleep set valid at the state reached by
  /// prefix[0 .. depth-1), i.e. just *before* this node's last step
  /// executes (the creating run knows that state; it cannot know the last
  /// step's own footprint, so the scheduler replays the wake rule from
  /// step depth-1 on).  A path property, hence identical no matter which
  /// run creates the node; written once by the creator before publication.
  std::vector<SleepEntry> sleep;
};

/// Bump allocator for PrefixNodes, one lane per worker so allocation is
/// lock-free; all chunks die with the arena.
class PrefixArena {
 public:
  explicit PrefixArena(std::size_t workers) : lanes_(workers) {
    root_.parent = nullptr;
    root_.tid = events::kNoThread;
    root_.depth = 0;
  }

  PrefixArena(const PrefixArena&) = delete;
  PrefixArena& operator=(const PrefixArena&) = delete;

  /// The empty prefix.
  const PrefixNode* root() const { return &root_; }

  /// Append `tid` to `parent`'s path.  Only `worker`'s own thread may pass
  /// that lane index; the returned node may be read by any worker once it
  /// has been published through a synchronizing handoff (the work queue).
  /// Returned mutable so the creator can fill `sleep` before publishing.
  PrefixNode* child(std::size_t worker, const PrefixNode* parent,
                    ThreadId tid) {
    Lane& lane = lanes_[worker];
    if (lane.used == kChunkNodes) {
      lane.chunks.push_back(std::make_unique<Chunk>());
      lane.used = 0;
      bytes_.fetch_add(sizeof(Chunk), std::memory_order_relaxed);
    }
    PrefixNode* n = &lane.chunks.back()->nodes[lane.used++];
    n->parent = parent;
    n->tid = tid;
    n->depth = parent->depth + 1;
    return n;
  }

  /// Bytes of node storage allocated so far (chunk granularity).
  std::uint64_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kChunkNodes = 1024;
  struct Chunk {
    PrefixNode nodes[kChunkNodes];
  };
  struct Lane {
    std::vector<std::unique_ptr<Chunk>> chunks;
    std::size_t used = kChunkNodes;  ///< forces a chunk on first child()
  };

  PrefixNode root_;
  std::vector<Lane> lanes_;
  std::atomic<std::uint64_t> bytes_{0};
};

/// Walk the parent chain once, writing the prefix thread ids into `out`
/// (resized to the node's depth).  O(depth), the only per-run cost of the
/// tree representation.
inline void materializePrefix(const PrefixNode* n, std::vector<ThreadId>& out) {
  CONFAIL_ASSERT(n != nullptr, "null prefix node");
  out.resize(n->depth);
  for (const PrefixNode* p = n; p->parent != nullptr; p = p->parent) {
    out[p->depth - 1] = p->tid;
  }
}

/// Same walk, but collecting the node of every ancestor depth: on return
/// `out[d]` is the prefix node of length d, for d in [0, n->depth].  The
/// DPOR race analysis uses this to hang backtrack points on decision
/// points inside the replayed prefix.
inline void materializeChain(const PrefixNode* n,
                             std::vector<const PrefixNode*>& out) {
  CONFAIL_ASSERT(n != nullptr, "null prefix node");
  out.resize(static_cast<std::size_t>(n->depth) + 1);
  for (const PrefixNode* p = n;; p = p->parent) {
    out[p->depth] = p;
    if (p->parent == nullptr) break;
  }
}

}  // namespace confail::sched
