// Incremental exploration: checkpoint/restore instead of prefix replay.
//
// The stateless explorer pays O(depth) re-execution for every run: a child
// branch replays its whole prefix before taking its one new step.  An
// *incremental session* kills that cost by keeping ONE long-lived scheduler
// per worker whose logical threads are ucontext fibers (copyable stacks),
// checkpointing the complete execution state at branch points, and starting
// each child run by *restoring* its deepest checkpointed ancestor rather
// than replaying from the root.
//
// A checkpoint is a VirtualScheduler::Snapshot — every fiber's frozen stack
// and register file plus every registered SnapshotSource's payload — glued
// to the path data (schedule / choice sets / fingerprints / footprints) of
// the prefix it stands for, so a restored run's RunResult is
// indistinguishable from a from-scratch execution of the same schedule.
// Snapshots are copy-on-write: stacks and payloads carry version stamps
// from one global clock (snapshot.hpp), so sibling checkpoints share every
// piece that did not change between them and the budget only pays for
// fresh bytes.
//
// Equivalence by construction: the session drives the SAME runLoop as
// VirtualScheduler::run() with the SAME PrefixReplayStrategy (global step
// indices make the restored steps simply never consulted), so schedules,
// choice sets, fingerprints, footprints and outcomes are bit-identical to
// the replay path.  If anything breaks the session's assumptions — the
// program is not declared snapshot-safe, a restore detects mid-run
// (un)registration, the platform has no fibers — the runner reports
// unusable/null and the explorer falls back to plain replay.
//
// Memory is bounded by Config::budgetBytes: checkpoints are dropped
// oldest-first (the root checkpoint is pinned) and a child whose immediate
// ancestor was evicted transparently restores a shallower ancestor and
// replays the gap — the self-healing fallback re-stores what it re-reaches.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "confail/sched/prefix_tree.hpp"
#include "confail/sched/strategy.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace confail::obs {
class Registry;
}

namespace confail::sched {

/// Reseatable strategy indirection.  VirtualScheduler binds a Strategy& for
/// its whole life, but an incremental session reuses one scheduler across
/// many runs, each replaying a different prefix — so the session scheduler
/// is bound to this wrapper and the runner swaps the per-run replay
/// strategy underneath it.
class SwapStrategy final : public Strategy {
 public:
  void reset(Strategy* inner) { inner_ = inner; }

  ThreadId pick(const std::vector<ThreadId>& runnable,
                std::uint64_t step) override {
    CONFAIL_ASSERT(inner_ != nullptr, "SwapStrategy::pick with no inner");
    return inner_->pick(runnable, step);
  }

  void onSpawn(ThreadId t) override {
    // Spawns during program() construction precede the first run's strategy.
    if (inner_ != nullptr) inner_->onSpawn(t);
  }

 private:
  Strategy* inner_ = nullptr;
};

/// One worker's incremental-exploration session (not thread-safe; each
/// explorer worker owns one).  See the file comment for the design.
class IncrementalRunner {
 public:
  struct Config {
    std::uint64_t maxSteps = 200000;
    bool captureState = false;
    /// Retained-checkpoint memory cap (fresh bytes + path data, estimated).
    /// Over the cap, checkpoints are evicted oldest-first; the pinned root
    /// checkpoint never goes, so every run can at worst full-replay.
    std::size_t budgetBytes = 256ull * 1024 * 1024;
    obs::Registry* metrics = nullptr;  ///< per-run sched.* counters sink
  };

  /// Per-session tallies, drained by the explorer into obs counters.
  struct Tally {
    std::uint64_t restores = 0;           ///< checkpoint restores performed
    std::uint64_t stores = 0;             ///< checkpoints stored
    std::uint64_t evictions = 0;          ///< checkpoints evicted (budget)
    std::uint64_t budgetSkips = 0;        ///< checkpoints skipped (budget)
    std::uint64_t replayStepsAvoided = 0; ///< prefix steps not re-executed
    std::size_t retainedBytes = 0;        ///< current checkpoint estimate
    std::size_t peakBytes = 0;            ///< high-water mark of the above
  };

  /// Builds the session: constructs the fiber scheduler, runs `program`
  /// once to build the object graph, and checks it declared itself
  /// snapshot-safe.  Requires fibersSupported().
  IncrementalRunner(const std::function<void(VirtualScheduler&)>& program,
                    const Config& cfg);
  ~IncrementalRunner();

  IncrementalRunner(const IncrementalRunner&) = delete;
  IncrementalRunner& operator=(const IncrementalRunner&) = delete;

  /// False when the program did not declare snapshot safety (or poisoned
  /// it): the session cannot run anything and the caller must use replay.
  bool usable() const { return usable_; }

  /// Execute the run for the work item at `node` (whose materialized
  /// prefix the caller lends, exactly as it would to PrefixReplayStrategy).
  /// Restores the deepest cached ancestor checkpoint, replays the gap, and
  /// runs free — returning a RunResult identical to the replay path's.
  /// For Reduction::Dpor runs, `dporMode` wires the node's sleep set into
  /// the scheduler with `branchDepthLimit` as the filter bound.
  /// Returns nullopt (and flips usable() off) if the session discovered it
  /// cannot continue incrementally; the caller falls back to replay.
  std::optional<RunResult> run(const PrefixNode* node,
                               const std::vector<ThreadId>& prefix,
                               ThreadId avoidAtFirstFree,
                               std::size_t branchDepthLimit, bool dporMode);

  /// Attach the pending checkpoint taken at `spineNode->depth` during the
  /// most recent run() to the now-materialized spine node, making it
  /// restorable by that node's descendants.  The explorer calls this at
  /// every branch point it expands.
  void bind(const PrefixNode* spineNode);

  const Tally& tally() const { return tally_; }

 private:
  /// A restorable branch point: the frozen session state plus the path
  /// data of the prefix it stands for (seeds the child's RunResult).
  struct Checkpoint {
    std::shared_ptr<const VirtualScheduler::Snapshot> snap;
    std::vector<ThreadId> schedule;
    std::vector<std::vector<ThreadId>> choiceSets;
    std::vector<std::uint64_t> fingerprints;
    std::vector<Footprint> stepFootprints;
    std::size_t costBytes = 0;  ///< budget charge (fresh + path estimate)
  };

  void onCheckpoint(std::uint64_t step, std::size_t runnableCount);
  Checkpoint makeCheckpoint(std::size_t depth);
  /// Admit `ck` under the budget (evicting oldest-first); false = skipped.
  bool admit(Checkpoint& ck, bool pinned);
  void insert(const PrefixNode* key, Checkpoint ck);
  void dropPending();

  Config cfg_;
  SwapStrategy swap_;
  VirtualScheduler sched_;
  bool usable_ = false;
  bool firstRun_ = true;
  Tally tally_;

  /// Checkpoints keyed by the prefix-tree node whose path they froze.
  /// Nodes are arena-allocated for the whole exploration, so raw pointers
  /// are stable keys; entries for nodes the explorer never revisits are
  /// reclaimed by budget eviction.
  std::unordered_map<const PrefixNode*, Checkpoint> cache_;
  std::deque<const PrefixNode*> evictOrder_;  ///< FIFO, root excluded
  const PrefixNode* rootKey_ = nullptr;       ///< pinned (never evicted)

  /// Checkpoints taken during the current run at depths past the replayed
  /// prefix, awaiting bind() to their spine nodes; keyed by depth.
  std::unordered_map<std::size_t, Checkpoint> pending_;

  // Per-run state consumed by the checkpoint hook.
  std::optional<PrefixReplayStrategy> replay_;
  const std::vector<const PrefixNode*>* chainPtr_ = nullptr;
  RunResult* resultPtr_ = nullptr;
  std::size_t curPrefixLen_ = 0;
  std::size_t curBranchLimit_ = 0;

  std::vector<const PrefixNode*> chain_;  ///< reusable ancestor scratch
};

}  // namespace confail::sched
