// Scheduling strategies for the virtual scheduler.
//
// A strategy is consulted at every decision point (schedule point where at
// least one logical thread is runnable) and picks which thread runs next.
// All strategies are deterministic given their construction parameters, so
// any run can be reproduced exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "confail/events/event.hpp"
#include "confail/support/rng.hpp"

namespace confail::sched {

using events::ThreadId;

/// Picks the next thread to run from the (non-empty, ascending-id) set of
/// runnable threads.  `step` is the global decision index, starting at 0.
class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual ThreadId pick(const std::vector<ThreadId>& runnable,
                        std::uint64_t step) = 0;
  /// Called when a new thread is spawned (PCT uses this to assign priority).
  virtual void onSpawn(ThreadId /*t*/) {}
};

/// Cycles fairly through runnable threads.  The baseline "fair JVM".
class RoundRobinStrategy final : public Strategy {
 public:
  ThreadId pick(const std::vector<ThreadId>& runnable, std::uint64_t step) override;

 private:
  ThreadId last_ = events::kNoThread;
};

/// Uniform random walk over runnable threads; models an arbitrary,
/// unfair JVM scheduler.  Deterministic per seed.
class RandomWalkStrategy final : public Strategy {
 public:
  explicit RandomWalkStrategy(std::uint64_t seed) : rng_(seed) {}
  ThreadId pick(const std::vector<ThreadId>& runnable, std::uint64_t step) override;

 private:
  Xoshiro256 rng_;
};

/// PCT (probabilistic concurrency testing): random static priorities with
/// `depth-1` random priority-change points; always runs the highest-priority
/// runnable thread.  Gives probabilistic guarantees of hitting bugs of small
/// depth; used in the scheduler-ablation bench.
class PctStrategy final : public Strategy {
 public:
  /// `depth` >= 1; `expectedSteps` scales where change points are placed.
  PctStrategy(std::uint64_t seed, unsigned depth, std::uint64_t expectedSteps);
  ThreadId pick(const std::vector<ThreadId>& runnable, std::uint64_t step) override;
  void onSpawn(ThreadId t) override;

 private:
  Xoshiro256 rng_;
  std::vector<std::uint64_t> priority_;      // per thread id
  std::vector<std::uint64_t> changePoints_;  // decision indices (sorted)
  std::uint64_t nextLowPriority_ = 0;        // counts down as change points hit
  std::size_t nextChange_ = 0;
};

/// Replays a recorded schedule prefix, then falls back to picking the
/// lowest-id runnable thread.  Used by the exhaustive explorer and by
/// trace replay.  If the prefix becomes infeasible (the demanded thread is
/// not runnable) the strategy throws UsageError: this indicates the program
/// under test is not deterministic modulo the schedule.
class PrefixReplayStrategy final : public Strategy {
 public:
  explicit PrefixReplayStrategy(std::vector<ThreadId> prefix)
      : own_(std::move(prefix)), data_(own_.data()), len_(own_.size()) {}

  /// `avoidAtFirstFree`: at the first decision point past the prefix,
  /// prefer the lowest-id runnable thread OTHER than this one (fall back
  /// to it only if it is the sole runnable thread).  The explorer's
  /// sleep-set reduction uses this to keep the displaced spine thread out
  /// of the child's own spine, so the transposed schedule shows up as a
  /// prunable sibling instead.
  PrefixReplayStrategy(std::vector<ThreadId> prefix, ThreadId avoidAtFirstFree)
      : own_(std::move(prefix)),
        data_(own_.data()),
        len_(own_.size()),
        avoid_(avoidAtFirstFree) {}

  /// Zero-copy form: replay `prefix[0..len)` without owning it.  The
  /// explorer materializes each work item's prefix-tree chain into a
  /// per-worker scratch buffer once and lends it out here; the caller
  /// keeps the buffer alive and unchanged for the strategy's lifetime.
  PrefixReplayStrategy(const ThreadId* prefix, std::size_t len,
                       ThreadId avoidAtFirstFree = events::kNoThread)
      : data_(prefix), len_(len), avoid_(avoidAtFirstFree) {}

  // data_ points into own_ in the owning constructors; copying would leave
  // the copy aliasing the original's storage.
  PrefixReplayStrategy(const PrefixReplayStrategy&) = delete;
  PrefixReplayStrategy& operator=(const PrefixReplayStrategy&) = delete;

  ThreadId pick(const std::vector<ThreadId>& runnable, std::uint64_t step) override;

 private:
  std::vector<ThreadId> own_;          ///< storage for the owning form
  const ThreadId* data_ = nullptr;     ///< the prefix actually replayed
  std::size_t len_ = 0;
  ThreadId avoid_ = events::kNoThread;
};

}  // namespace confail::sched
