#include "confail/sched/incremental.hpp"

#include <algorithm>
#include <utility>

#include "confail/obs/metrics.hpp"
#include "confail/support/assert.hpp"

namespace confail::sched {

namespace {
VirtualScheduler::Options sessionOptions(const IncrementalRunner::Config& cfg) {
  VirtualScheduler::Options o;
  o.maxSteps = cfg.maxSteps;
  o.captureState = cfg.captureState;
  // sched.* counters are published by the runner per run (the scheduler
  // itself only publishes from run(), which a session never calls).
  o.metrics = nullptr;
  o.fibers = true;
  return o;
}
}  // namespace

IncrementalRunner::IncrementalRunner(
    const std::function<void(VirtualScheduler&)>& program, const Config& cfg)
    : cfg_(cfg), sched_(swap_, sessionOptions(cfg)) {
  CONFAIL_CHECK(fibersSupported(), UsageError,
                "incremental exploration requires fiber support");
  program(sched_);
  usable_ = sched_.snapshotSafe();
  sched_.checkpointHook_ = [this](std::uint64_t step, std::size_t runnable) {
    onCheckpoint(step, runnable);
  };
}

IncrementalRunner::~IncrementalRunner() = default;

std::optional<RunResult> IncrementalRunner::run(
    const PrefixNode* node, const std::vector<ThreadId>& prefix,
    ThreadId avoidAtFirstFree, std::size_t branchDepthLimit, bool dporMode) {
  if (!usable_) return std::nullopt;
  // Checkpoints from the previous run that the explorer never bound to a
  // spine node have no restorable key: refund them.
  dropPending();

  const std::size_t prefixLen = prefix.size();
  CONFAIL_ASSERT(node != nullptr && node->depth == prefixLen,
                 "work item depth does not match its prefix");
  materializeChain(node, chain_);

  // Deepest restorable ancestor.  A DPOR run must execute step prefixLen-1
  // live — the sleep-set wake rule (sleepProcessFrom = prefixLen-1)
  // consumes that step's footprint — so its search tops out one short of
  // the item's own depth.  (Work-item nodes are never checkpointed before
  // their own run anyway; the cap is a cheap invariant guard.)
  std::size_t searchTop = prefixLen;
  if (dporMode && prefixLen > 0) searchTop = prefixLen - 1;
  const Checkpoint* from = nullptr;
  std::size_t fromDepth = 0;
  for (std::size_t d = searchTop + 1; d-- > 0;) {
    auto it = cache_.find(chain_[d]);
    if (it != cache_.end()) {
      from = &it->second;
      fromDepth = d;
      break;
    }
  }

  RunResult result;
  if (from != nullptr) {
    if (!sched_.restoreSnapshot(*from->snap)) {
      // The program mutated its object graph mid-run (spawned a thread or
      // (un)registered a snapshot source): no snapshot taken before the
      // mutation can describe this session any more.  Poison the session;
      // the explorer falls back to plain replay.
      usable_ = false;
      return std::nullopt;
    }
    ++tally_.restores;
    tally_.replayStepsAvoided += fromDepth;
    // Seed the result with the restored prefix's path data so the finished
    // RunResult — and everything the explorer derives from it (branches,
    // DPOR race scans, canonical witnesses) — is indistinguishable from a
    // from-scratch execution of the same schedule.
    result.schedule = from->schedule;
    result.choiceSets = from->choiceSets;
    result.fingerprints = from->fingerprints;
    result.stepFootprints = from->stepFootprints;
    result.steps = fromDepth;
  } else if (!firstRun_) {
    // Dirty session state and nothing to rewind to.  The pinned root
    // checkpoint makes this unreachable in practice; bail out rather than
    // run from a corrupt state.
    usable_ = false;
    return std::nullopt;
  }
  firstRun_ = false;

  // Per-run scheduler options: runLoop copies opts_.sleepSet at entry, so
  // mutating them between runs is safe.
  if (dporMode) {
    sched_.opts_.sleepSet = node->sleep;
    sched_.opts_.sleepProcessFrom = prefixLen > 0 ? prefixLen - 1 : 0;
    sched_.opts_.sleepFilterFrom = prefixLen;
    sched_.opts_.sleepFilterTo = branchDepthLimit;
  } else {
    sched_.opts_.sleepSet.clear();
    sched_.opts_.sleepProcessFrom = 0;
    sched_.opts_.sleepFilterFrom = 0;
    sched_.opts_.sleepFilterTo = static_cast<std::size_t>(-1);
  }

  // The full prefix, not the tail: PrefixReplayStrategy indexes by the
  // GLOBAL step, so a run seeded at depth d simply never consults entries
  // below d — and any gap [d, prefixLen) left by an evicted checkpoint is
  // replayed through the very same strategy (self-healing fallback).
  replay_.emplace(prefix.data(), prefixLen, avoidAtFirstFree);
  swap_.reset(&*replay_);
  curPrefixLen_ = prefixLen;
  curBranchLimit_ = branchDepthLimit;
  resultPtr_ = &result;

  std::uint64_t contextSwitches = 0;
  sched_.runLoop(result, contextSwitches);

  // Mirror run()'s post-loop teardown: a from-scratch execution aborts the
  // run's residual threads, and their unwinding destructors emit trailing
  // trace events (e.g. the MethodExit of a still-blocked thread) that every
  // trace consumer sees.  Unwind here too so an incremental run's trace is
  // indistinguishable from replay; the next restore rewinds the unwound
  // stacks and the trace alike, so nothing of the abort survives it.
  sched_.abortRun();
  sched_.aborting_ = false;

  resultPtr_ = nullptr;
  swap_.reset(nullptr);
  replay_.reset();

  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("sched.runs").inc();
    // Only the executed portion: restored steps cost no execution.
    cfg_.metrics->counter("sched.steps").add(result.steps - fromDepth);
    cfg_.metrics->counter("sched.context_switches").add(contextSwitches);
  }
  return result;
}

void IncrementalRunner::bind(const PrefixNode* spineNode) {
  auto it = pending_.find(spineNode->depth);
  if (it == pending_.end()) return;
  insert(spineNode, std::move(it->second));
  pending_.erase(it);
}

void IncrementalRunner::onCheckpoint(std::uint64_t step,
                                     std::size_t runnableCount) {
  if (resultPtr_ == nullptr) return;
  const std::size_t s = static_cast<std::size_t>(step);
  // No branch is ever attached at or past the branch-depth bound, and a
  // single-choice point cannot host one either — except step 0, whose
  // checkpoint is the session's pinned always-restorable root.
  if (s >= curBranchLimit_ && s != 0) return;
  if (runnableCount <= 1 && s != 0) return;
  if (s <= curPrefixLen_) {
    // On the replayed prefix: the branch-point node already exists in the
    // prefix tree — key the checkpoint directly.
    const PrefixNode* key = chain_[s];
    if (cache_.count(key) != 0) return;  // already restorable
    Checkpoint ck = makeCheckpoint(s);
    if (!admit(ck, /*pinned=*/s == 0)) return;
    if (s == 0) rootKey_ = key;
    insert(key, std::move(ck));
  } else {
    // Past the prefix: the spine node for this depth is materialized by
    // the explorer only after the run, when it attaches branches.  Park
    // the checkpoint by depth; bind() attaches it to its node.
    if (pending_.count(s) != 0) return;
    Checkpoint ck = makeCheckpoint(s);
    if (!admit(ck, /*pinned=*/false)) return;
    pending_.emplace(s, std::move(ck));
  }
}

IncrementalRunner::Checkpoint IncrementalRunner::makeCheckpoint(
    std::size_t depth) {
  const RunResult& r = *resultPtr_;
  CONFAIL_ASSERT(r.schedule.size() == depth && r.choiceSets.size() == depth,
                 "checkpoint out of sync with the run's path data");
  Checkpoint ck;
  ck.snap = sched_.saveSnapshot();
  ck.schedule = r.schedule;
  ck.choiceSets = r.choiceSets;
  ck.fingerprints = r.fingerprints;
  ck.stepFootprints = r.stepFootprints;
  std::size_t path = ck.schedule.size() * sizeof(ThreadId) +
                     ck.fingerprints.size() * sizeof(std::uint64_t) +
                     ck.stepFootprints.size() * sizeof(Footprint);
  for (const std::vector<ThreadId>& cs : ck.choiceSets) {
    path += sizeof(std::vector<ThreadId>) + cs.size() * sizeof(ThreadId);
  }
  // freshBytes undercounts shared pieces on purpose: COW means a sibling
  // checkpoint only pays for what changed since the last save.
  ck.costBytes = ck.snap->freshBytes + path;
  return ck;
}

bool IncrementalRunner::admit(Checkpoint& ck, bool pinned) {
  while (tally_.retainedBytes + ck.costBytes > cfg_.budgetBytes &&
         !evictOrder_.empty()) {
    const PrefixNode* victim = evictOrder_.front();
    evictOrder_.pop_front();
    auto it = cache_.find(victim);
    if (it == cache_.end()) continue;
    tally_.retainedBytes -= std::min(tally_.retainedBytes,
                                     it->second.costBytes);
    cache_.erase(it);
    ++tally_.evictions;
  }
  if (!pinned && tally_.retainedBytes + ck.costBytes > cfg_.budgetBytes) {
    ++tally_.budgetSkips;
    return false;
  }
  tally_.retainedBytes += ck.costBytes;
  tally_.peakBytes = std::max(tally_.peakBytes, tally_.retainedBytes);
  ++tally_.stores;
  return true;
}

void IncrementalRunner::insert(const PrefixNode* key, Checkpoint ck) {
  if (cache_.count(key) != 0) {
    // Already restorable under this key (a prior run checkpointed the same
    // path); keep the existing entry and refund the duplicate.
    tally_.retainedBytes -= std::min(tally_.retainedBytes, ck.costBytes);
    return;
  }
  if (key != rootKey_) evictOrder_.push_back(key);
  cache_.emplace(key, std::move(ck));
}

void IncrementalRunner::dropPending() {
  for (const auto& [depth, ck] : pending_) {
    (void)depth;
    tally_.retainedBytes -= std::min(tally_.retainedBytes, ck.costBytes);
  }
  pending_.clear();
}

}  // namespace confail::sched
