#include "confail/sched/virtual_scheduler.hpp"

#include <algorithm>
#include <exception>

#include "confail/obs/metrics.hpp"

namespace confail::sched {

namespace {
// The logical thread currently executing on this real thread (if any).
struct TlsBinding {
  VirtualScheduler* sched = nullptr;
  void* record = nullptr;
};
thread_local TlsBinding tlsBinding;
}  // namespace

const char* blockKindName(BlockKind k) {
  switch (k) {
    case BlockKind::None: return "none";
    case BlockKind::LockAcquire: return "lock-acquire";
    case BlockKind::CondWait: return "cond-wait";
    case BlockKind::ClockAwait: return "clock-await";
    case BlockKind::Join: return "join";
    case BlockKind::Custom: return "custom";
  }
  return "?";
}

const char* outcomeName(Outcome o) {
  switch (o) {
    case Outcome::Completed: return "completed";
    case Outcome::Deadlock: return "deadlock";
    case Outcome::StepLimit: return "step-limit";
    case Outcome::Exception: return "exception";
  }
  return "?";
}

VirtualScheduler::VirtualScheduler(Strategy& strategy, Options opts)
    : strategy_(strategy), opts_(opts) {}

VirtualScheduler::~VirtualScheduler() {
  if (!finished_) {
    // run() was never called (or aborted mid-construction of a test):
    // tear down parked workers so their std::threads can be joined.
    abortRun();
  }
  for (auto& rec : threads_) {
    if (rec->real.joinable()) rec->real.join();
  }
}

ThreadId VirtualScheduler::spawn(std::string name, std::function<void()> fn) {
  CONFAIL_CHECK(!finished_ && !aborting_, UsageError,
                "spawn after the run finished");
  // A mid-run spawn changes the runnable universe for every later decision
  // and allocates a thread id whose value depends on spawn order: never
  // treat the spawning step as independent of anything.
  if (onLogicalThread()) noteGlobalEffect();
  const ThreadId id = static_cast<ThreadId>(threads_.size());
  auto rec = std::make_unique<ThreadRecord>(id, std::move(name));
  rec->fn = std::move(fn);
  ThreadRecord& r = *rec;
  threads_.push_back(std::move(rec));
  ++liveCount_;
  strategy_.onSpawn(id);
  r.real = std::thread([this, &r] { workerMain(r); });
  return id;
}

void VirtualScheduler::workerMain(ThreadRecord& rec) {
  rec.sem.acquire();  // wait until first scheduled
  tlsBinding = TlsBinding{this, &rec};
  if (!aborting_) {
    try {
      rec.fn();
    } catch (const ExecutionAborted&) {
      // Normal teardown path; nothing to record.
    } catch (...) {
      rec.error = std::current_exception();
    }
  }
  finishSelf(rec);
}

void VirtualScheduler::finishSelf(ThreadRecord& rec) {
  rec.state = ThreadState::Finished;
  rec.blockKind = BlockKind::None;
  --liveCount_;
  // Wake any logical threads joined on us (only outside teardown; during
  // teardown the controller wakes everyone itself).  unblock() records the
  // join-resource footprint, so a finish that wakes joiners conflicts with
  // their joinThread() step as required.
  if (!aborting_) {
    for (ThreadId j : rec.joiners) {
      if (recordOf(j).state == ThreadState::Blocked) unblock(j);
    }
  }
  rec.joiners.clear();
  tlsBinding = TlsBinding{};
  controllerSem_.release();
}

std::vector<ThreadId> VirtualScheduler::runnableSet() const {
  std::vector<ThreadId> out;
  for (const auto& rec : threads_) {
    if (rec->state == ThreadState::Runnable) out.push_back(rec->id);
  }
  return out;
}

VirtualScheduler::ThreadRecord& VirtualScheduler::recordOf(ThreadId t) {
  CONFAIL_ASSERT(t < threads_.size(), "bad thread id");
  return *threads_[t];
}

const VirtualScheduler::ThreadRecord& VirtualScheduler::recordOf(ThreadId t) const {
  CONFAIL_ASSERT(t < threads_.size(), "bad thread id");
  return *threads_[t];
}

RunResult VirtualScheduler::run() {
  CONFAIL_CHECK(!finished_, UsageError, "run() called twice");
  CONFAIL_CHECK(!onLogicalThread(), UsageError,
                "run() called from a logical thread");
  RunResult result;
  // Pre-size the per-step traces so the hot replay loop never reallocates;
  // cap the hint so a generous step budget (the 200k default) does not
  // preallocate megabytes for runs that finish in dozens of steps.
  const std::size_t reserveSteps =
      static_cast<std::size_t>(std::min<std::uint64_t>(opts_.maxSteps, 4096));
  result.schedule.reserve(reserveSteps);
  result.choiceSets.reserve(reserveSteps);
  if (opts_.captureState) {
    result.fingerprints.reserve(reserveSteps);
    result.stepFootprints.reserve(reserveSteps);
  }
  ThreadId lastPick = events::kNoThread;
  std::uint64_t contextSwitches = 0;
  // Live DPOR sleep set (see Options::sleepSet); entries are erased as
  // executed steps wake them.  Empty for every caller but the DPOR
  // explorer, in which case all the sleep branches below are dead.
  std::vector<SleepEntry> sleep = opts_.sleepSet;
  std::vector<ThreadId> awake;  // reused filtered-runnable scratch

  for (;;) {
    std::vector<ThreadId> runnable = runnableSet();
    if (runnable.empty()) {
      if (liveCount_ == 0) {
        result.outcome = Outcome::Completed;
        break;
      }
      // Give idle handlers (e.g. the abstract clock) a chance to advance
      // logical time and unblock awaiters before declaring deadlock.
      bool progressed = false;
      for (IdleHandler* h : idleHandlers_) {
        if (h->onIdle()) {
          progressed = true;
          break;
        }
      }
      if (progressed) {
        // Idle-handler progress (abstract-clock advance) changes blocked
        // threads behind the back of the step that led here: poison the
        // preceding step so it never passes an independence check.
        if (opts_.captureState && !result.stepFootprints.empty()) {
          result.stepFootprints.back().global = true;
        }
        continue;
      }
      result.outcome = Outcome::Deadlock;
      for (const auto& rec : threads_) {
        if (rec->state == ThreadState::Blocked) {
          result.blocked.push_back(BlockedThreadInfo{
              rec->id, rec->name, rec->blockKind, rec->blockResource});
        }
      }
      break;
    }

    if (result.steps >= opts_.maxSteps) {
      result.outcome = Outcome::StepLimit;
      break;
    }

    // Sleep filtering: from sleepFilterFrom on, the strategy only sees
    // threads that are not asleep.  An all-asleep decision point means
    // every continuation from here is covered by a sibling branch — stop
    // the run; the explorer treats it as a pruned (non-leaf) execution.
    const std::vector<ThreadId>* pickable = &runnable;
    if (!sleep.empty() && result.steps >= opts_.sleepFilterFrom &&
        result.steps < opts_.sleepFilterTo) {
      awake.clear();
      for (ThreadId t : runnable) {
        bool asleep = false;
        for (const SleepEntry& e : sleep) {
          if (e.tid == t) {
            asleep = true;
            break;
          }
        }
        if (!asleep) awake.push_back(t);
      }
      if (awake.empty()) {
        result.outcome = Outcome::Completed;
        result.sleepPruned = true;
        break;
      }
      pickable = &awake;
    }

    ThreadId pick;
    try {
      pick = strategy_.pick(*pickable, result.steps);
    } catch (const Error& e) {
      result.outcome = Outcome::Exception;
      result.errorMessage = e.what();
      break;
    }
    CONFAIL_ASSERT(
        std::binary_search(runnable.begin(), runnable.end(), pick),
        "strategy picked a non-runnable thread");

    result.schedule.push_back(pick);
    result.choiceSets.push_back(std::move(runnable));
    ++result.steps;
    if (lastPick != events::kNoThread && pick != lastPick) ++contextSwitches;
    lastPick = pick;
    if (opts_.captureState) {
      result.fingerprints.push_back(fingerprint());
      stepFootprint_.clear();
    }

    ThreadRecord& rec = recordOf(pick);
    rec.state = ThreadState::Running;
    rec.sem.release();
    controllerSem_.acquire();
    if (opts_.captureState) result.stepFootprints.push_back(stepFootprint_);

    // Wake sleeping threads whose covered reordering just became
    // observable: an executed step dependent with the entry's footprint
    // (or the entry's own thread being scheduled) invalidates it.
    if (!sleep.empty() && opts_.captureState &&
        result.steps - 1 >= opts_.sleepProcessFrom) {
      const Footprint& executed = result.stepFootprints.back();
      for (std::size_t k = sleep.size(); k-- > 0;) {
        if (sleep[k].tid == pick || sleep[k].fp.dependentWith(executed)) {
          sleep.erase(sleep.begin() + static_cast<std::ptrdiff_t>(k));
        }
      }
    }

    if (rec.state == ThreadState::Finished && rec.error) {
      result.outcome = Outcome::Exception;
      try {
        std::rethrow_exception(rec.error);
      } catch (const std::exception& e) {
        result.errorMessage = e.what();
      } catch (...) {
        result.errorMessage = "unknown exception";
      }
      break;
    }
  }

  abortRun();
  finished_ = true;
  for (auto& rec : threads_) {
    if (rec->real.joinable()) rec->real.join();
  }
  if (opts_.metrics != nullptr) {
    opts_.metrics->counter("sched.runs").inc();
    opts_.metrics->counter("sched.steps").add(result.steps);
    opts_.metrics->counter("sched.context_switches").add(contextSwitches);
  }
  return result;
}

void VirtualScheduler::abortRun() {
  aborting_ = true;
  for (auto& rec : threads_) {
    if (rec->state != ThreadState::Finished) {
      // Wake it; it will observe aborting_, throw ExecutionAborted through
      // the user stack (RAII releases any held resources) and finish.
      // Strictly sequential: wait for each to finish before waking the next
      // so that at most one logical thread ever executes at a time.
      rec->sem.release();
      controllerSem_.acquire();
      CONFAIL_ASSERT(rec->state == ThreadState::Finished,
                     "aborted thread did not finish");
    }
  }
}

void VirtualScheduler::checkAbort() const {
  if (aborting_) {
    throw ExecutionAborted("virtual scheduler run aborted");
  }
}

void VirtualScheduler::yield() {
  CONFAIL_ASSERT(onLogicalThread(), "yield off a logical thread");
  // During teardown a thread may pass a schedule point while unwinding
  // (e.g. a Synchronized destructor releasing a lock).  Yielding is
  // optional, so make it a no-op instead of throwing mid-unwind.
  if (aborting_) return;
  // Never park while an exception is propagating on this thread: if the
  // run were aborted while parked, the abort exception would collide with
  // the in-flight one and std::terminate.  Skipping the schedule point is
  // always safe.
  if (std::uncaught_exceptions() > 0) return;
  auto& rec = *static_cast<ThreadRecord*>(tlsBinding.record);
  rec.state = ThreadState::Runnable;
  switchToController(rec);
}

namespace {
// Footprint tag of a blocking resource: the rendezvous point between a
// block() and the unblock()/reblock() that releases it.
std::uint64_t blockTag(BlockKind kind, std::uint64_t resource) {
  return fpTag('b', (static_cast<std::uint64_t>(kind) << 56) ^ resource);
}
}  // namespace

void VirtualScheduler::block(BlockKind kind, std::uint64_t resource) {
  CONFAIL_ASSERT(onLogicalThread(), "block off a logical thread");
  checkAbort();
  noteAccess(blockTag(kind, resource), /*isWrite=*/true);
  auto& rec = *static_cast<ThreadRecord*>(tlsBinding.record);
  rec.state = ThreadState::Blocked;
  rec.blockKind = kind;
  rec.blockResource = resource;
  switchToController(rec);
}

void VirtualScheduler::switchToController(ThreadRecord& rec) {
  controllerSem_.release();
  rec.sem.acquire();
  checkAbort();
  CONFAIL_ASSERT(rec.state == ThreadState::Running,
                 "scheduled thread not marked running");
}

void VirtualScheduler::unblock(ThreadId t) {
  ThreadRecord& rec = recordOf(t);
  CONFAIL_ASSERT(rec.state == ThreadState::Blocked,
                 "unblock of a thread that is not blocked");
  noteAccess(blockTag(rec.blockKind, rec.blockResource), /*isWrite=*/true);
  rec.state = ThreadState::Runnable;
  rec.blockKind = BlockKind::None;
  rec.blockResource = 0;
}

void VirtualScheduler::joinThread(ThreadId t) {
  CONFAIL_ASSERT(onLogicalThread(), "joinThread off a logical thread");
  ThreadId self = currentThread();
  CONFAIL_CHECK(t != self, UsageError, "a thread cannot join itself");
  ThreadRecord& target = recordOf(t);
  if (target.state == ThreadState::Finished) return;
  target.joiners.push_back(self);
  block(BlockKind::Join, t);
}

void VirtualScheduler::reblock(ThreadId t, BlockKind kind,
                               std::uint64_t resource) {
  ThreadRecord& rec = recordOf(t);
  CONFAIL_ASSERT(rec.state == ThreadState::Blocked,
                 "reblock of a thread that is not blocked");
  noteAccess(blockTag(rec.blockKind, rec.blockResource), /*isWrite=*/true);
  noteAccess(blockTag(kind, resource), /*isWrite=*/true);
  rec.blockKind = kind;
  rec.blockResource = resource;
}

ThreadId VirtualScheduler::currentThread() const {
  if (tlsBinding.sched != this || tlsBinding.record == nullptr) {
    return events::kNoThread;
  }
  return static_cast<const ThreadRecord*>(tlsBinding.record)->id;
}

bool VirtualScheduler::onLogicalThread() const {
  return tlsBinding.sched == this && tlsBinding.record != nullptr;
}

const std::string& VirtualScheduler::threadName(ThreadId t) const {
  return recordOf(t).name;
}

BlockKind VirtualScheduler::blockKindOf(ThreadId t) const {
  return recordOf(t).blockKind;
}

std::size_t VirtualScheduler::threadCount() const { return threads_.size(); }

void VirtualScheduler::addIdleHandler(IdleHandler* h) {
  CONFAIL_ASSERT(h != nullptr, "null idle handler");
  idleHandlers_.push_back(h);
}

void VirtualScheduler::addFingerprintSource(const FingerprintSource* s) {
  CONFAIL_ASSERT(s != nullptr, "null fingerprint source");
  fingerprintSources_.push_back(s);
}

void VirtualScheduler::removeFingerprintSource(const FingerprintSource* s) {
  for (auto it = fingerprintSources_.begin(); it != fingerprintSources_.end();
       ++it) {
    if (*it == s) {
      fingerprintSources_.erase(it);
      return;
    }
  }
}

std::uint64_t VirtualScheduler::fingerprint() const {
  std::uint64_t h = kFpSeed;
  for (const auto& rec : threads_) {
    h = fpMix(h, (static_cast<std::uint64_t>(rec->state) << 40) ^
                     (static_cast<std::uint64_t>(rec->blockKind) << 32));
    h = fpMix(h, rec->blockResource);
  }
  for (const FingerprintSource* s : fingerprintSources_) {
    h = fpMix(h, s->stateFingerprint());
  }
  return h;
}

void VirtualScheduler::noteAccess(std::uint64_t tag, bool isWrite) {
  if (!opts_.captureState || !onLogicalThread()) return;
  if (isWrite) {
    stepFootprint_.addWrite(tag);
  } else {
    stepFootprint_.addRead(tag);
  }
}

void VirtualScheduler::noteGlobalEffect() {
  if (!opts_.captureState) return;
  stepFootprint_.global = true;
}

}  // namespace confail::sched
