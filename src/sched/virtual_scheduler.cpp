#include "confail/sched/virtual_scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "confail/obs/metrics.hpp"

// Fiber support: ucontext stack switching with raw stack-image copies is
// only implemented where it is known sound — Linux on x86-64 / aarch64 —
// and is incompatible with TSan/ASan shadow-stack bookkeeping.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CONFAIL_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CONFAIL_SANITIZED 1
#endif
#endif

#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__)) && \
    !defined(CONFAIL_SANITIZED)
#define CONFAIL_FIBERS 1
#include <ucontext.h>
#endif

namespace confail::sched {

namespace {
// The logical thread currently executing on this real thread (if any).
struct TlsBinding {
  VirtualScheduler* sched = nullptr;
  void* record = nullptr;
};
thread_local TlsBinding tlsBinding;

#ifdef CONFAIL_FIBERS
// Stacks only need to hold the scenario bodies plus exception unwinding;
// the *captured* portion per snapshot is just [SP - red zone, top).
constexpr std::size_t kFiberStackBytes = 256 * 1024;
constexpr std::size_t kRedZoneBytes = 128;

std::uintptr_t contextSp(const ucontext_t& ctx) {
#if defined(__x86_64__)
  return static_cast<std::uintptr_t>(ctx.uc_mcontext.gregs[REG_RSP]);
#else  // __aarch64__
  return static_cast<std::uintptr_t>(ctx.uc_mcontext.sp);
#endif
}
#endif  // CONFAIL_FIBERS
}  // namespace

namespace detail {

/// One logical thread's frozen execution: the used top of its stack plus
/// the register file at the suspend point.  Immutable; shared by every
/// snapshot taken while the fiber stayed suspended (version match).
struct StackImage {
  std::uint64_t version = 0;
  std::size_t used = 0;            ///< bytes saved at the top of the stack
  std::unique_ptr<char[]> bytes;   ///< copy of [stackTop - used, stackTop)
#ifdef CONFAIL_FIBERS
  ucontext_t ctx{};
#endif
};

/// The ucontext fiber backing a logical thread in snapshot mode.  The
/// object (and therefore `ctx`) is heap-pinned for the scheduler's whole
/// life: glibc's x86-64 ucontext_t holds a pointer into itself
/// (uc_mcontext.fpregs -> __fpregs_mem), so a context must always be
/// restored into the same ucontext_t it was captured from.
struct Fiber {
  std::unique_ptr<char[]> stack;
  std::size_t stackSize = 0;
  /// Stamp of the stack's current contents; bumped on every resume (the
  /// stack is about to change).  An image with an equal stamp is
  /// byte-identical to the live stack, so save and restore can skip it.
  std::uint64_t version = 0;
  std::shared_ptr<const StackImage> lastImage;
#ifdef CONFAIL_FIBERS
  ucontext_t ctx{};
#endif
};

/// Controller-side context the running fiber swaps back into.
struct FiberRt {
#ifdef CONFAIL_FIBERS
  ucontext_t controllerCtx{};
#endif
};

}  // namespace detail

bool fibersSupported() noexcept {
#ifdef CONFAIL_FIBERS
  return true;
#else
  return false;
#endif
}

VirtualScheduler::ThreadRecord::ThreadRecord(ThreadId id_, std::string name_)
    : id(id_), name(std::move(name_)) {}

VirtualScheduler::ThreadRecord::~ThreadRecord() = default;

const char* blockKindName(BlockKind k) {
  switch (k) {
    case BlockKind::None: return "none";
    case BlockKind::LockAcquire: return "lock-acquire";
    case BlockKind::CondWait: return "cond-wait";
    case BlockKind::ClockAwait: return "clock-await";
    case BlockKind::Join: return "join";
    case BlockKind::Custom: return "custom";
  }
  return "?";
}

const char* outcomeName(Outcome o) {
  switch (o) {
    case Outcome::Completed: return "completed";
    case Outcome::Deadlock: return "deadlock";
    case Outcome::StepLimit: return "step-limit";
    case Outcome::Exception: return "exception";
  }
  return "?";
}

VirtualScheduler::VirtualScheduler(Strategy& strategy, Options opts)
    : strategy_(strategy), opts_(opts) {
  if (opts_.fibers) {
    CONFAIL_CHECK(fibersSupported(), UsageError,
                  "fiber mode is unsupported on this platform/build");
    fiberRt_ = std::make_unique<detail::FiberRt>();
  }
}

VirtualScheduler::~VirtualScheduler() {
  if (!finished_) {
    // run() was never called (or aborted mid-construction of a test):
    // tear down parked workers so their std::threads can be joined.
    abortRun();
  }
  for (auto& rec : threads_) {
    if (rec->real.joinable()) rec->real.join();
  }
}

ThreadId VirtualScheduler::spawn(std::string name, std::function<void()> fn) {
  CONFAIL_CHECK(!finished_ && !aborting_, UsageError,
                "spawn after the run finished");
  // A mid-run spawn changes the runnable universe for every later decision
  // and allocates a thread id whose value depends on spawn order: never
  // treat the spawning step as independent of anything.
  if (onLogicalThread()) noteGlobalEffect();
  const ThreadId id = static_cast<ThreadId>(threads_.size());
  auto rec = std::make_unique<ThreadRecord>(id, std::move(name));
  rec->fn = std::move(fn);
  ThreadRecord& r = *rec;
  threads_.push_back(std::move(rec));
  ++liveCount_;
  strategy_.onSpawn(id);
  if (opts_.fibers) {
#ifdef CONFAIL_FIBERS
    auto f = std::make_unique<detail::Fiber>();
    f->stackSize = kFiberStackBytes;
    f->stack = std::make_unique<char[]>(f->stackSize);
    f->version = nextSnapshotVersion();
    CONFAIL_ASSERT(getcontext(&f->ctx) == 0, "getcontext failed");
    f->ctx.uc_stack.ss_sp = f->stack.get();
    f->ctx.uc_stack.ss_size = f->stackSize;
    f->ctx.uc_link = nullptr;
    makecontext(&f->ctx, &VirtualScheduler::fiberTrampoline, 0);
    r.fiber = std::move(f);
#endif
  } else {
    r.real = std::thread([this, &r] { workerMain(r); });
  }
  return id;
}

void VirtualScheduler::workerMain(ThreadRecord& rec) {
  rec.sem.acquire();  // wait until first scheduled
  tlsBinding = TlsBinding{this, &rec};
  if (!aborting_) {
    try {
      rec.fn();
    } catch (const ExecutionAborted&) {
      // Normal teardown path; nothing to record.
    } catch (...) {
      rec.error = std::current_exception();
    }
  }
  finishSelf(rec);
}

void VirtualScheduler::fiberTrampoline() {
  // The controller publishes {scheduler, record} through the TLS binding
  // immediately before swapping a fiber in for the first time; fibers run
  // on the controller's own OS thread, so the binding is already ours.
  auto* sched = tlsBinding.sched;
  auto* rec = static_cast<ThreadRecord*>(tlsBinding.record);
  CONFAIL_ASSERT(sched != nullptr && rec != nullptr,
                 "fiber started without a TLS binding");
  sched->fiberMain(*rec);
  // fiberMain's final swap back to the controller never returns: resuming
  // a finished fiber is a scheduler bug.
  std::abort();
}

void VirtualScheduler::fiberMain(ThreadRecord& rec) {
#ifdef CONFAIL_FIBERS
  if (!aborting_) {
    try {
      rec.fn();
    } catch (const ExecutionAborted&) {
      // Normal teardown path; nothing to record.
    } catch (...) {
      rec.error = std::current_exception();
    }
  }
  finishSelf(rec);
  swapcontext(&rec.fiber->ctx, &fiberRt_->controllerCtx);
#else
  (void)rec;
#endif
}

void VirtualScheduler::finishSelf(ThreadRecord& rec) {
  rec.state = ThreadState::Finished;
  rec.blockKind = BlockKind::None;
  --liveCount_;
  // Wake any logical threads joined on us (only outside teardown; during
  // teardown the controller wakes everyone itself).  unblock() records the
  // join-resource footprint, so a finish that wakes joiners conflicts with
  // their joinThread() step as required.
  if (!aborting_) {
    for (ThreadId j : rec.joiners) {
      if (recordOf(j).state == ThreadState::Blocked) unblock(j);
    }
  }
  rec.joiners.clear();
  if (!rec.fiber) {
    // Thread-backed workers clear their own binding and wake the
    // controller; for fibers the controller's resumeThread() does both
    // when the final swap returns to it.
    tlsBinding = TlsBinding{};
    controllerSem_.release();
  }
}

std::vector<ThreadId> VirtualScheduler::runnableSet() const {
  std::vector<ThreadId> out;
  for (const auto& rec : threads_) {
    if (rec->state == ThreadState::Runnable) out.push_back(rec->id);
  }
  return out;
}

VirtualScheduler::ThreadRecord& VirtualScheduler::recordOf(ThreadId t) {
  CONFAIL_ASSERT(t < threads_.size(), "bad thread id");
  return *threads_[t];
}

const VirtualScheduler::ThreadRecord& VirtualScheduler::recordOf(ThreadId t) const {
  CONFAIL_ASSERT(t < threads_.size(), "bad thread id");
  return *threads_[t];
}

RunResult VirtualScheduler::run() {
  CONFAIL_CHECK(!finished_, UsageError, "run() called twice");
  CONFAIL_CHECK(!onLogicalThread(), UsageError,
                "run() called from a logical thread");
  RunResult result;
  std::uint64_t contextSwitches = 0;
  runLoop(result, contextSwitches);
  abortRun();
  finished_ = true;
  for (auto& rec : threads_) {
    if (rec->real.joinable()) rec->real.join();
  }
  if (opts_.metrics != nullptr) {
    opts_.metrics->counter("sched.runs").inc();
    opts_.metrics->counter("sched.steps").add(result.steps);
    opts_.metrics->counter("sched.context_switches").add(contextSwitches);
  }
  return result;
}

void VirtualScheduler::runLoop(RunResult& result,
                               std::uint64_t& contextSwitches) {
  // Pre-size the per-step traces so the hot replay loop never reallocates;
  // cap the hint so a generous step budget (the 200k default) does not
  // preallocate megabytes for runs that finish in dozens of steps.
  const std::size_t reserveSteps =
      static_cast<std::size_t>(std::min<std::uint64_t>(opts_.maxSteps, 4096));
  result.schedule.reserve(reserveSteps);
  result.choiceSets.reserve(reserveSteps);
  if (opts_.captureState) {
    result.fingerprints.reserve(reserveSteps);
    result.stepFootprints.reserve(reserveSteps);
  }
  // The incremental runner pre-seeds `result` with a restored prefix; a
  // fresh run() starts empty.  Context switches are counted across the
  // seam so the tally matches a from-scratch execution of the same path.
  ThreadId lastPick =
      result.schedule.empty() ? events::kNoThread : result.schedule.back();
  // Live DPOR sleep set (see Options::sleepSet); entries are erased as
  // executed steps wake them.  Empty for every caller but the DPOR
  // explorer, in which case all the sleep branches below are dead.
  std::vector<SleepEntry> sleep = opts_.sleepSet;
  std::vector<ThreadId> awake;  // reused filtered-runnable scratch

  for (;;) {
    std::vector<ThreadId> runnable = runnableSet();
    if (runnable.empty()) {
      if (liveCount_ == 0) {
        result.outcome = Outcome::Completed;
        break;
      }
      // Give idle handlers (e.g. the abstract clock) a chance to advance
      // logical time and unblock awaiters before declaring deadlock.
      bool progressed = false;
      for (IdleHandler* h : idleHandlers_) {
        if (h->onIdle()) {
          progressed = true;
          break;
        }
      }
      if (progressed) {
        // Idle-handler progress (abstract-clock advance) changes blocked
        // threads behind the back of the step that led here: poison the
        // preceding step so it never passes an independence check.
        if (opts_.captureState && !result.stepFootprints.empty()) {
          result.stepFootprints.back().global = true;
        }
        continue;
      }
      result.outcome = Outcome::Deadlock;
      for (const auto& rec : threads_) {
        if (rec->state == ThreadState::Blocked) {
          result.blocked.push_back(BlockedThreadInfo{
              rec->id, rec->name, rec->blockKind, rec->blockResource});
        }
      }
      break;
    }

    if (result.steps >= opts_.maxSteps) {
      result.outcome = Outcome::StepLimit;
      break;
    }

    // Sleep filtering: from sleepFilterFrom on, the strategy only sees
    // threads that are not asleep.  An all-asleep decision point means
    // every continuation from here is covered by a sibling branch — stop
    // the run; the explorer treats it as a pruned (non-leaf) execution.
    const std::vector<ThreadId>* pickable = &runnable;
    if (!sleep.empty() && result.steps >= opts_.sleepFilterFrom &&
        result.steps < opts_.sleepFilterTo) {
      awake.clear();
      for (ThreadId t : runnable) {
        bool asleep = false;
        for (const SleepEntry& e : sleep) {
          if (e.tid == t) {
            asleep = true;
            break;
          }
        }
        if (!asleep) awake.push_back(t);
      }
      if (awake.empty()) {
        result.outcome = Outcome::Completed;
        result.sleepPruned = true;
        break;
      }
      pickable = &awake;
    }

    // A step is definitely about to execute from this state: let the
    // incremental runner checkpoint it as a branch-resume point.
    if (checkpointHook_) checkpointHook_(result.steps, runnable.size());

    ThreadId pick;
    try {
      pick = strategy_.pick(*pickable, result.steps);
    } catch (const Error& e) {
      result.outcome = Outcome::Exception;
      result.errorMessage = e.what();
      break;
    }
    CONFAIL_ASSERT(
        std::binary_search(runnable.begin(), runnable.end(), pick),
        "strategy picked a non-runnable thread");

    result.schedule.push_back(pick);
    result.choiceSets.push_back(std::move(runnable));
    ++result.steps;
    if (lastPick != events::kNoThread && pick != lastPick) ++contextSwitches;
    lastPick = pick;
    if (opts_.captureState) {
      result.fingerprints.push_back(fingerprint());
      stepFootprint_.clear();
    }

    ThreadRecord& rec = recordOf(pick);
    rec.state = ThreadState::Running;
    resumeThread(rec);
    if (opts_.captureState) result.stepFootprints.push_back(stepFootprint_);

    // Wake sleeping threads whose covered reordering just became
    // observable: an executed step dependent with the entry's footprint
    // (or the entry's own thread being scheduled) invalidates it.
    if (!sleep.empty() && opts_.captureState &&
        result.steps - 1 >= opts_.sleepProcessFrom) {
      const Footprint& executed = result.stepFootprints.back();
      for (std::size_t k = sleep.size(); k-- > 0;) {
        if (sleep[k].tid == pick || sleep[k].fp.dependentWith(executed)) {
          sleep.erase(sleep.begin() + static_cast<std::ptrdiff_t>(k));
        }
      }
    }

    if (rec.state == ThreadState::Finished && rec.error) {
      result.outcome = Outcome::Exception;
      try {
        std::rethrow_exception(rec.error);
      } catch (const std::exception& e) {
        result.errorMessage = e.what();
      } catch (...) {
        result.errorMessage = "unknown exception";
      }
      break;
    }
  }
}

void VirtualScheduler::abortRun() {
  aborting_ = true;
  for (auto& rec : threads_) {
    if (rec->state != ThreadState::Finished) {
      // Wake it; it will observe aborting_, throw ExecutionAborted through
      // the user stack (RAII releases any held resources) and finish.
      // Strictly sequential: wait for each to finish before waking the next
      // so that at most one logical thread ever executes at a time.
      resumeThread(*rec);
      CONFAIL_ASSERT(rec->state == ThreadState::Finished,
                     "aborted thread did not finish");
    }
  }
}

void VirtualScheduler::resumeThread(ThreadRecord& rec) {
  if (rec.fiber) {
#ifdef CONFAIL_FIBERS
    // The fiber's stack is about to change: no frozen image matches it
    // from here on.
    rec.fiber->version = nextSnapshotVersion();
    tlsBinding = TlsBinding{this, &rec};
    swapcontext(&fiberRt_->controllerCtx, &rec.fiber->ctx);
    tlsBinding = TlsBinding{};
#endif
  } else {
    rec.sem.release();
    controllerSem_.acquire();
  }
}

void VirtualScheduler::checkAbort() const {
  if (aborting_) {
    throw ExecutionAborted("virtual scheduler run aborted");
  }
}

void VirtualScheduler::yield() {
  CONFAIL_ASSERT(onLogicalThread(), "yield off a logical thread");
  // During teardown a thread may pass a schedule point while unwinding
  // (e.g. a Synchronized destructor releasing a lock).  Yielding is
  // optional, so make it a no-op instead of throwing mid-unwind.
  if (aborting_) return;
  // Never park while an exception is propagating on this thread: if the
  // run were aborted while parked, the abort exception would collide with
  // the in-flight one and std::terminate.  Skipping the schedule point is
  // always safe.
  if (std::uncaught_exceptions() > 0) return;
  auto& rec = *static_cast<ThreadRecord*>(tlsBinding.record);
  rec.state = ThreadState::Runnable;
  switchToController(rec);
}

namespace {
// Footprint tag of a blocking resource: the rendezvous point between a
// block() and the unblock()/reblock() that releases it.
std::uint64_t blockTag(BlockKind kind, std::uint64_t resource) {
  return fpTag('b', (static_cast<std::uint64_t>(kind) << 56) ^ resource);
}
}  // namespace

void VirtualScheduler::block(BlockKind kind, std::uint64_t resource) {
  CONFAIL_ASSERT(onLogicalThread(), "block off a logical thread");
  checkAbort();
  noteAccess(blockTag(kind, resource), /*isWrite=*/true);
  auto& rec = *static_cast<ThreadRecord*>(tlsBinding.record);
  rec.state = ThreadState::Blocked;
  rec.blockKind = kind;
  rec.blockResource = resource;
  switchToController(rec);
}

void VirtualScheduler::switchToController(ThreadRecord& rec) {
  if (rec.fiber) {
#ifdef CONFAIL_FIBERS
    swapcontext(&rec.fiber->ctx, &fiberRt_->controllerCtx);
#endif
  } else {
    controllerSem_.release();
    rec.sem.acquire();
  }
  checkAbort();
  CONFAIL_ASSERT(rec.state == ThreadState::Running,
                 "scheduled thread not marked running");
}

void VirtualScheduler::unblock(ThreadId t) {
  ThreadRecord& rec = recordOf(t);
  CONFAIL_ASSERT(rec.state == ThreadState::Blocked,
                 "unblock of a thread that is not blocked");
  noteAccess(blockTag(rec.blockKind, rec.blockResource), /*isWrite=*/true);
  rec.state = ThreadState::Runnable;
  rec.blockKind = BlockKind::None;
  rec.blockResource = 0;
}

void VirtualScheduler::joinThread(ThreadId t) {
  CONFAIL_ASSERT(onLogicalThread(), "joinThread off a logical thread");
  ThreadId self = currentThread();
  CONFAIL_CHECK(t != self, UsageError, "a thread cannot join itself");
  ThreadRecord& target = recordOf(t);
  if (target.state == ThreadState::Finished) return;
  target.joiners.push_back(self);
  block(BlockKind::Join, t);
}

void VirtualScheduler::reblock(ThreadId t, BlockKind kind,
                               std::uint64_t resource) {
  ThreadRecord& rec = recordOf(t);
  CONFAIL_ASSERT(rec.state == ThreadState::Blocked,
                 "reblock of a thread that is not blocked");
  noteAccess(blockTag(rec.blockKind, rec.blockResource), /*isWrite=*/true);
  noteAccess(blockTag(kind, resource), /*isWrite=*/true);
  rec.blockKind = kind;
  rec.blockResource = resource;
}

ThreadId VirtualScheduler::currentThread() const {
  if (tlsBinding.sched != this || tlsBinding.record == nullptr) {
    return events::kNoThread;
  }
  return static_cast<const ThreadRecord*>(tlsBinding.record)->id;
}

bool VirtualScheduler::onLogicalThread() const {
  return tlsBinding.sched == this && tlsBinding.record != nullptr;
}

const std::string& VirtualScheduler::threadName(ThreadId t) const {
  return recordOf(t).name;
}

BlockKind VirtualScheduler::blockKindOf(ThreadId t) const {
  return recordOf(t).blockKind;
}

std::size_t VirtualScheduler::threadCount() const { return threads_.size(); }

void VirtualScheduler::addIdleHandler(IdleHandler* h) {
  CONFAIL_ASSERT(h != nullptr, "null idle handler");
  idleHandlers_.push_back(h);
}

void VirtualScheduler::addFingerprintSource(const FingerprintSource* s) {
  CONFAIL_ASSERT(s != nullptr, "null fingerprint source");
  fingerprintSources_.push_back(s);
}

void VirtualScheduler::removeFingerprintSource(const FingerprintSource* s) {
  for (auto it = fingerprintSources_.begin(); it != fingerprintSources_.end();
       ++it) {
    if (*it == s) {
      fingerprintSources_.erase(it);
      return;
    }
  }
}

void VirtualScheduler::addSnapshotSource(SnapshotSource* s) {
  CONFAIL_ASSERT(s != nullptr, "null snapshot source");
  snapshotSources_.push_back(s);
  ++snapshotSourceGen_;
}

void VirtualScheduler::removeSnapshotSource(SnapshotSource* s) {
  for (auto it = snapshotSources_.begin(); it != snapshotSources_.end();
       ++it) {
    if (*it == s) {
      snapshotSources_.erase(it);
      ++snapshotSourceGen_;
      return;
    }
  }
}

std::shared_ptr<const VirtualScheduler::Snapshot>
VirtualScheduler::saveSnapshot() {
#ifdef CONFAIL_FIBERS
  CONFAIL_ASSERT(opts_.fibers && !onLogicalThread(),
                 "saveSnapshot outside a fiber session controller");
  auto snap = std::make_shared<Snapshot>();
  snap->threads.reserve(threads_.size());
  for (auto& recPtr : threads_) {
    ThreadRecord& rec = *recPtr;
    CONFAIL_ASSERT(rec.fiber != nullptr, "snapshot of a non-fiber thread");
    Snapshot::ThreadSnap ts;
    ts.state = rec.state;
    ts.blockKind = rec.blockKind;
    ts.blockResource = rec.blockResource;
    ts.joiners = rec.joiners;
    detail::Fiber& f = *rec.fiber;
    if (!f.lastImage || f.lastImage->version != f.version) {
      auto img = std::make_shared<detail::StackImage>();
      img->version = f.version;
      img->ctx = f.ctx;
      char* const top = f.stack.get() + f.stackSize;
      const char* from =
          reinterpret_cast<const char*>(contextSp(f.ctx)) - kRedZoneBytes;
      CONFAIL_ASSERT(from >= f.stack.get() && from < top,
                     "fiber stack pointer out of range");
      img->used = static_cast<std::size_t>(top - from);
      img->bytes = std::make_unique<char[]>(img->used);
      std::memcpy(img->bytes.get(), from, img->used);
      snap->freshBytes += img->used + sizeof(detail::StackImage);
      f.lastImage = std::move(img);
    }
    ts.stack = f.lastImage;
    snap->threads.push_back(std::move(ts));
  }
  snap->liveCount = liveCount_;
  snap->sources.reserve(snapshotSources_.size());
  for (SnapshotSource* s : snapshotSources_) {
    Snapshot::SourceSnap ss;
    ss.src = s;
    ss.payload = s->snapshotSave(ss.version, snap->freshBytes);
    snap->sources.push_back(std::move(ss));
  }
  snap->sourceGen = snapshotSourceGen_;
  return snap;
#else
  return nullptr;
#endif
}

bool VirtualScheduler::restoreSnapshot(const Snapshot& snap) {
#ifdef CONFAIL_FIBERS
  if (snap.sourceGen != snapshotSourceGen_ ||
      snap.threads.size() != threads_.size()) {
    // The program spawned threads or (un)registered sources mid-run: the
    // snapshot no longer describes this session's object graph.
    return false;
  }
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    ThreadRecord& rec = *threads_[i];
    const Snapshot::ThreadSnap& ts = snap.threads[i];
    rec.state = ts.state;
    rec.blockKind = ts.blockKind;
    rec.blockResource = ts.blockResource;
    rec.joiners = ts.joiners;
    rec.error = nullptr;
    detail::Fiber& f = *rec.fiber;
    const detail::StackImage& img = *ts.stack;
    if (f.version != img.version) {
      // Restore into the fiber's OWN ucontext object: the register file
      // was captured from it, and on x86-64 glibc it contains a pointer to
      // its own __fpregs_mem — valid only at this address.
      f.ctx = img.ctx;
      char* const top = f.stack.get() + f.stackSize;
      std::memcpy(top - img.used, img.bytes.get(), img.used);
      f.version = img.version;
      f.lastImage = ts.stack;
    }
  }
  liveCount_ = snap.liveCount;
  for (const Snapshot::SourceSnap& ss : snap.sources) {
    ss.src->snapshotRestore(ss.payload, ss.version);
  }
  stepFootprint_.clear();
  aborting_ = false;
  return true;
#else
  (void)snap;
  return false;
#endif
}

std::uint64_t VirtualScheduler::fingerprint() const {
  std::uint64_t h = kFpSeed;
  for (const auto& rec : threads_) {
    h = fpMix(h, (static_cast<std::uint64_t>(rec->state) << 40) ^
                     (static_cast<std::uint64_t>(rec->blockKind) << 32));
    h = fpMix(h, rec->blockResource);
  }
  for (const FingerprintSource* s : fingerprintSources_) {
    h = fpMix(h, s->stateFingerprint());
  }
  return h;
}

void VirtualScheduler::noteAccess(std::uint64_t tag, bool isWrite) {
  if (!opts_.captureState || !onLogicalThread()) return;
  if (isWrite) {
    stepFootprint_.addWrite(tag);
  } else {
    stepFootprint_.addRead(tag);
  }
}

void VirtualScheduler::noteGlobalEffect() {
  if (!opts_.captureState) return;
  stepFootprint_.global = true;
}

}  // namespace confail::sched
