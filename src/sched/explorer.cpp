#include "confail/sched/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <utility>

#include "confail/obs/metrics.hpp"
#include "confail/sched/fingerprint.hpp"
#include "confail/sched/incremental.hpp"
#include "confail/sched/prefix_tree.hpp"
#include "confail/sched/work_queue.hpp"

namespace confail::sched {

namespace {

/// An unexecuted schedule prefix (a node of the shared prefix tree), plus an
/// optional one-shot sleep entry.
///
/// The sleep entry records the step that the parent run took at this item's
/// branch point (the spine choice) together with that step's footprint.  If
/// the child's own first step turns out to be independent of it, the child
/// must NOT branch back to the spine thread at its first decision point:
/// that sibling is the pure transposition of two commuting steps and leads
/// to a state explored from the parent's subtree.  The entry applies only
/// at depth == node->depth and is never inherited further down.
struct WorkItem {
  const PrefixNode* node = nullptr;
  ThreadId sleepThread = events::kNoThread;
  Footprint sleepFp;
};

/// Per-worker tallies, merged once at the end so that hot-loop counting is
/// uncontended and the merged totals are order-independent.
struct LocalStats {
  std::uint64_t runs = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t stepLimited = 0;
  std::uint64_t exceptions = 0;
  std::uint64_t prunedBranches = 0;
  std::uint64_t dedupedStates = 0;
  std::uint64_t dporBacktracks = 0;
  std::uint64_t fpLookups = 0;  ///< visited-set probes (dedup-rate denominator)
  std::uint64_t busyNs = 0;     ///< time spent executing runs (metrics only)
  std::uint64_t incrementalFallbacks = 0;  ///< runs bounced back to replay
  bool hasFailure = false;
  std::vector<ThreadId> firstFailure;
  Outcome firstFailureOutcome = Outcome::Completed;
};

/// Longest failing schedule the DPOR witness canonicalization will process;
/// longer ones (runaway step-limit runs) are reported raw.
constexpr std::size_t kCanonMaxLen = 4096;

/// Longest schedule head the DPOR race analysis scans (quadratic worst
/// case; bounded exploration keeps real runs far below this).
constexpr std::size_t kDporAnalysisWindow = 4096;

}  // namespace

/// The lexicographically smallest linearization of the run's Mazurkiewicz
/// trace, defined by program order plus the footprint dependence relation.
/// Reduction::Dpor executes only one representative per trace, so the
/// schedule it happens to run is an accident of traversal order; every
/// linearization of a trace reaches the same final state, and
/// Reduction::None — which executes them all — reports the smallest one.
/// Canonicalizing reproduces that witness without executing it.
///
/// The DAG is built from generating edges only: each step links to its
/// program-order predecessor and, per other thread, to that thread's last
/// dependent step; transitivity through program order recovers the full
/// dependence relation.  Greedily emitting the smallest-thread-id ready
/// step yields the lex-min topological order (standard exchange argument),
/// and program-order chains guarantee at most one ready step per thread.
/// Acyclicity is free: every edge points forward in the executed order.
///
/// Footprints alone under-approximate causality in one case: a thread
/// woken from a blocked state whose resumption segment touches nothing
/// records an empty footprint, so nothing orders it after the step that
/// woke it — and the lex-min linearization may hoist the resumption above
/// its waker, yielding a schedule that does not replay (the thread is
/// still blocked there).  The recorded choice sets carry exactly the
/// missing fact: if the step's thread was absent from a choice set since
/// its previous step, the last step executed while it was absent is the
/// one that enabled it (wake or spawn), and gets an explicit edge.
std::vector<ThreadId> canonicalTraceWitness(const RunResult& result) {
  const std::vector<ThreadId>& s = result.schedule;
  const std::size_t n = s.size();
  if (n == 0 || n > kCanonMaxLen || result.stepFootprints.size() < n ||
      result.choiceSets.size() < n) {
    return s;
  }

  ThreadId maxTid = 0;
  for (ThreadId t : s) maxTid = std::max(maxTid, t);
  std::vector<std::uint32_t> indeg(n, 0);
  std::vector<std::vector<std::uint32_t>> succ(n);
  std::vector<char> linked(static_cast<std::size_t>(maxTid) + 1);
  for (std::size_t i = 1; i < n; ++i) {
    std::fill(linked.begin(), linked.end(), 0);
    std::size_t threadsLinked = 0;
    for (std::size_t j = i; j-- > 0 && threadsLinked <= maxTid;) {
      const ThreadId t = s[j];
      if (linked[t]) continue;
      if (t == s[i] ||
          result.stepFootprints[j].dependentWith(result.stepFootprints[i])) {
        succ[j].push_back(static_cast<std::uint32_t>(i));
        ++indeg[i];
        linked[t] = 1;
        ++threadsLinked;
      }
    }
    // Enabledness edge (see the doc comment above): the last step executed
    // while s[i]'s thread was not in the choice set enabled it.  Earlier
    // disabled periods are covered inductively through the program-order
    // predecessor's own enabledness edge.
    for (std::size_t j = i; j-- > 0;) {
      if (s[j] == s[i]) break;
      const std::vector<ThreadId>& cs = result.choiceSets[j];
      if (std::find(cs.begin(), cs.end(), s[i]) == cs.end()) {
        succ[j].push_back(static_cast<std::uint32_t>(i));
        ++indeg[i];
        break;
      }
    }
  }

  using Ready = std::pair<ThreadId, std::uint32_t>;
  std::priority_queue<Ready, std::vector<Ready>, std::greater<Ready>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push({s[i], static_cast<std::uint32_t>(i)});
  }
  std::vector<ThreadId> out;
  out.reserve(n);
  while (!ready.empty()) {
    const auto [tid, i] = ready.top();
    ready.pop();
    out.push_back(tid);
    for (std::uint32_t k : succ[i]) {
      if (--indeg[k] == 0) ready.push({s[k], k});
    }
  }
  return out;
}

ExhaustiveExplorer::Stats ExhaustiveExplorer::explore(const Program& program,
                                                      const RunCallback& cb) const {
  std::size_t workers = opts_.workers;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  const bool dporMode = opts_.reduction == Reduction::Dpor;
  const bool sleepMode = opts_.reduction == Reduction::Sleep;
  // DPOR ignores the fingerprint dedup table (a state's backtrack set
  // depends on the races along the path that reached it).
  const bool fpPruning = opts_.fingerprintPruning && !dporMode;
  const bool captureState = fpPruning || opts_.reduction != Reduction::None;
  // Incremental exploration needs copyable fiber stacks; without them every
  // worker silently uses plain prefix replay.
  const bool incrementalMode = opts_.incremental && fibersSupported();
  // Flipped (once, by whichever worker discovers it) when the program turns
  // out not to be snapshot-safe, or a session detects mid-run object-graph
  // mutation: every run from then on takes the replay path.
  std::atomic<bool> snapshotUnsafe{false};

  WorkStealQueue<WorkItem> queue(workers);
  PrefixArena arena(workers);
  VisitedSet visited;
  std::atomic<std::uint64_t> runsClaimed{0};
  std::atomic<bool> budgetExhausted{false};
  std::atomic<bool> stoppedByCallback{false};
  std::mutex cbMu;        // serializes the user run callback
  std::mutex progressMu;  // serializes onProgress (heartbeats never touch cbMu)
  std::mutex mergeMu;     // guards the merged Stats
  Stats stats;
  bool mergedHasFailure = false;
  std::uint64_t fpLookupsTotal = 0;
  // Incremental-session tallies (merged under mergeMu like everything else).
  std::uint64_t snapStores = 0;
  std::uint64_t snapEvictions = 0;
  std::uint64_t snapBudgetSkips = 0;
  std::uint64_t incrementalFallbacksTotal = 0;
  std::size_t snapRetainedBytes = 0;

  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  obs::Registry* const metrics = opts_.metrics;
  // Resolve histogram handles once; per-run observes are relaxed atomics.
  obs::Histogram* const runStepsH =
      metrics != nullptr ? &metrics->histogram("explorer.run_steps") : nullptr;
  obs::Histogram* const runsPerWorkerH =
      metrics != nullptr ? &metrics->histogram("explorer.runs_per_worker")
                         : nullptr;
  obs::Histogram* const utilizationH =
      metrics != nullptr
          ? &metrics->histogram("explorer.worker_utilization_pct")
          : nullptr;

  auto elapsedSecSince = [](Clock::time_point from) {
    return std::chrono::duration<double>(Clock::now() - from).count();
  };

  auto worker = [&](std::size_t self) {
    LocalStats local;
    // The worker's incremental session, built lazily on its first run (the
    // constructor executes the program once to build the object graph and
    // learn whether it declared itself snapshot-safe).  Work stolen from
    // another worker restores from whatever THIS session has checkpointed —
    // at worst a shallower ancestor plus gap replay, never wrong.
    std::unique_ptr<IncrementalRunner> incRunner;
    // Reusable per-worker scratch: the materialized prefix lent to
    // PrefixReplayStrategy, the executed spine's tree nodes, and (DPOR)
    // the ancestor chain of the current work item.
    std::vector<ThreadId> prefixBuf;
    std::vector<const PrefixNode*> spineBuf;
    std::vector<const PrefixNode*> chainBuf;
    std::vector<char> seenTid;
    // Children branched by the current run, published to the queue in one
    // batch only after the whole branch analysis has finished.  This is
    // load-bearing for DPOR counter determinism, not just a lock-traffic
    // optimization: a child made visible mid-analysis can be stolen, run
    // (instantly, under incremental exploration) and analyzed while its
    // parent's analysis is still claiming branches — and whichever side
    // wins a shared tryClaim installs ITS sleep set on the new node,
    // making prune counts depend on thread timing.  Deferring publication
    // guarantees every claim an analysis makes settles before any child of
    // that analysis can contend for it, which restores the ordering the
    // serial explorer gets for free.
    std::vector<WorkItem> childBuf;
    // (DPOR) sleepAt[j - prefixLen] is the sleep set at decision point j of
    // the current run, re-evolved from the work item's node so backtrack
    // candidates can be tested against the state they would branch in.
    std::vector<std::vector<SleepEntry>> sleepAt;
    const Clock::time_point workerStart = Clock::now();
    while (std::optional<WorkItem> item = queue.next(self)) {
      // Claim a slot in the run budget before executing.  fetch_add makes
      // the claim exact under contention: at most maxRuns runs execute.
      const std::uint64_t claimed = runsClaimed.fetch_add(1);
      if (claimed >= opts_.maxRuns) {
        budgetExhausted.store(true, std::memory_order_relaxed);
        queue.stop();
        queue.done();
        continue;
      }

      if (opts_.progressIntervalRuns != 0 && opts_.onProgress &&
          (claimed + 1) % opts_.progressIntervalRuns == 0) {
        Progress p;
        p.runs = claimed + 1;
        p.queueDepth = queue.queuedApprox();
        p.steals = queue.steals();
        p.elapsedSec = elapsedSecSince(t0);
        p.runsPerSec = p.elapsedSec > 0.0
                           ? static_cast<double>(p.runs) / p.elapsedSec
                           : 0.0;
        std::lock_guard<std::mutex> g(progressMu);
        opts_.onProgress(p);
      }

      // With sleep sets, keep the displaced spine thread out of the child's
      // own first free pick: the transposed schedule then appears as a
      // sibling branch, where the independence check can prune it.
      const std::size_t prefixLen = item->node->depth;
      materializePrefix(item->node, prefixBuf);
      const ThreadId avoid =
          sleepMode ? item->sleepThread : events::kNoThread;
      Clock::time_point runStart;
      if (metrics != nullptr) runStart = Clock::now();
      RunResult result;
      bool ranIncremental = false;
      if (incrementalMode &&
          !snapshotUnsafe.load(std::memory_order_relaxed)) {
        if (incRunner == nullptr) {
          IncrementalRunner::Config rcfg;
          rcfg.maxSteps = opts_.maxSteps;
          rcfg.captureState = captureState;
          rcfg.budgetBytes = opts_.snapshotBudgetBytes;
          rcfg.metrics = metrics;
          incRunner = std::make_unique<IncrementalRunner>(program, rcfg);
        }
        if (incRunner->usable()) {
          std::optional<RunResult> r = incRunner->run(
              item->node, prefixBuf, avoid, opts_.maxBranchDepth, dporMode);
          if (r.has_value()) {
            result = std::move(*r);
            ranIncremental = true;
          } else {
            ++local.incrementalFallbacks;
            snapshotUnsafe.store(true, std::memory_order_relaxed);
          }
        } else {
          ++local.incrementalFallbacks;
          snapshotUnsafe.store(true, std::memory_order_relaxed);
        }
      }
      if (!ranIncremental) {
        PrefixReplayStrategy strategy(prefixBuf.data(), prefixBuf.size(),
                                      avoid);
        VirtualScheduler::Options schedOpts;
        schedOpts.maxSteps = opts_.maxSteps;
        schedOpts.captureState = captureState;
        schedOpts.metrics = metrics;
        if (dporMode) {
          // The node's stored sleep set is valid just before its last
          // replayed step; the scheduler replays the wake rule from there
          // and keeps sleeping threads out of every free pick.
          schedOpts.sleepSet = item->node->sleep;
          schedOpts.sleepProcessFrom = prefixLen > 0 ? prefixLen - 1 : 0;
          schedOpts.sleepFilterFrom = prefixLen;
          schedOpts.sleepFilterTo = opts_.maxBranchDepth;
        }
        VirtualScheduler sched(strategy, schedOpts);
        program(sched);
        result = sched.run();
      }
      if (metrics != nullptr) {
        local.busyNs += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 runStart)
                .count());
        runStepsH->observe(result.schedule.size());
      }

      ++local.runs;
      if (result.sleepPruned) {
        // The run stopped at an all-asleep decision point: it is a
        // redundant prefix, not a leaf of the reduced tree.  It still
        // consumed a run-budget slot and its executed steps still get race
        // analysis below, but it reports no outcome and sees no callback.
        ++local.prunedBranches;
      } else {
        switch (result.outcome) {
          case Outcome::Completed: ++local.completed; break;
          case Outcome::Deadlock: ++local.deadlocks; break;
          case Outcome::StepLimit: ++local.stepLimited; break;
          case Outcome::Exception: ++local.exceptions; break;
        }
        if (result.outcome != Outcome::Completed) {
          if (dporMode) {
            std::vector<ThreadId> witness = canonicalTraceWitness(result);
            if (!local.hasFailure || witness < local.firstFailure) {
              local.hasFailure = true;
              local.firstFailure = std::move(witness);
              local.firstFailureOutcome = result.outcome;
            }
          } else if (!local.hasFailure ||
                     result.schedule < local.firstFailure) {
            local.hasFailure = true;
            local.firstFailure = result.schedule;
            local.firstFailureOutcome = result.outcome;
          }
        }

        if (cb) {
          std::lock_guard<std::mutex> g(cbMu);
          if (!stoppedByCallback.load(std::memory_order_relaxed) &&
              !cb(result.schedule, result)) {
            stoppedByCallback.store(true, std::memory_order_relaxed);
            queue.stop();
          }
        }
      }

      if (!queue.stopped()) {
        const std::size_t branchLimit =
            std::min(result.choiceSets.size(), opts_.maxBranchDepth);

        // (DPOR) Re-evolve the sleep set across the executed steps so that
        // sleepSetAt(j) — the set valid just before step j — is available
        // for every decision point a backtrack could land on.  For points
        // inside the replayed prefix the ancestor nodes carry their stored
        // sets; past the prefix the wake rule is replayed step by step
        // (exactly what the scheduler just did while filtering picks).
        std::size_t analysisLen = 0;
        if (dporMode) {
          if (result.schedule.size() > prefixLen) {
            item->node->tryClaim(result.schedule[prefixLen]);
          }
          materializeChain(item->node, chainBuf);
          analysisLen =
              std::min({result.schedule.size(), result.stepFootprints.size(),
                        result.choiceSets.size(), kDporAnalysisWindow});
          sleepAt.resize(analysisLen > prefixLen ? analysisLen - prefixLen
                                                 : 0);
          for (std::size_t j = prefixLen; j < analysisLen; ++j) {
            std::vector<SleepEntry>& dst = sleepAt[j - prefixLen];
            dst.clear();
            if (j == 0) continue;  // the root's sleep set is empty
            const std::vector<SleepEntry>& prev =
                j == prefixLen ? item->node->sleep
                               : sleepAt[j - prefixLen - 1];
            const Footprint& fp = result.stepFootprints[j - 1];
            const ThreadId ran = result.schedule[j - 1];
            for (const SleepEntry& e : prev) {
              if (e.tid != ran && !e.fp.dependentWith(fp)) dst.push_back(e);
            }
          }
        }
        auto sleepSetAt =
            [&](std::size_t j) -> const std::vector<SleepEntry>& {
          return j < prefixLen ? chainBuf[j + 1]->sleep
                               : sleepAt[j - prefixLen];
        };

        // Nodes of this run's executed spine, built lazily from the work
        // item's node: spineAt(d) is the prefix-tree node for
        // schedule[0..d), d >= prefixLen.  Under DPOR each built node also
        // claims its spine continuation in the parent's expansion mask, so
        // backtracking elsewhere cannot re-enqueue this very run, and
        // records the sleep set valid before its last step.
        spineBuf.clear();
        spineBuf.push_back(item->node);
        auto spineAt = [&](std::size_t d) -> const PrefixNode* {
          while (prefixLen + spineBuf.size() <= d) {
            const std::size_t at = prefixLen + spineBuf.size() - 1;
            PrefixNode* n =
                arena.child(self, spineBuf.back(), result.schedule[at]);
            if (dporMode) {
              n->sleep = sleepSetAt(at);
              if (at + 1 < result.schedule.size()) {
                n->tryClaim(result.schedule[at + 1]);
              }
            }
            // A checkpoint taken at this depth during the run was parked by
            // depth (its node did not exist yet); key it to the node so the
            // children branched off it can restore instead of replay.
            if (ranIncremental) incRunner->bind(n);
            spineBuf.push_back(n);
          }
          return spineBuf[d - prefixLen];
        };

        if (dporMode) {
          // Source-set DPOR: instead of enqueueing every untried sibling,
          // scan the executed schedule for races — pairs of dependent steps
          // by different threads — and enqueue only the reversals they
          // demand.  For each step i and each other thread, that thread's
          // *last* step dependent with i is the race to reverse (earlier
          // races are reversed transitively when the new runs are
          // re-analyzed); the candidate set at decision point j is the
          // racing thread itself if it was enabled there, else
          // conservatively every enabled thread (Flanagan–Godefroid).
          // tryClaim makes each (decision point, thread) branch enqueue
          // exactly-once across all workers.
          //
          // Steps before prefixLen-1 replayed identical schedules in the
          // ancestor runs that built this prefix, so their races were
          // analyzed there against the same tree nodes; analysis starts at
          // the first step this run is the first to execute.  Runs longer
          // than kDporAnalysisWindow (runaway step-limit runs) only get
          // their head analyzed — bounded exploration keeps real runs far
          // below the window.
          ThreadId maxTid = 0;
          for (std::size_t i = 0; i < analysisLen; ++i) {
            maxTid = std::max(maxTid, result.schedule[i]);
          }
          const std::size_t first = prefixLen > 0 ? prefixLen - 1 : 0;
          for (std::size_t i = std::max<std::size_t>(first, 1); i < analysisLen;
               ++i) {
            const ThreadId p = result.schedule[i];
            seenTid.assign(static_cast<std::size_t>(maxTid) + 1, 0);
            seenTid[p] = 1;  // own thread: program order, not a race
            std::size_t threadsSeen = 1;
            for (std::size_t j = i; j-- > 0 && threadsSeen <= maxTid;) {
              const ThreadId t = result.schedule[j];
              if (seenTid[t]) continue;
              if (!result.stepFootprints[j].dependentWith(
                      result.stepFootprints[i])) {
                continue;
              }
              if (j >= branchLimit) {
                // The race exists but the depth bound forbids branching at
                // j.  Keep scanning: an earlier dependent step of t below
                // the bound would normally be shadowed by this one (its
                // reversal is reached transitively through reversing j
                // first), but with j cut off that path is gone and the
                // earlier race must be reversed directly.
                continue;
              }
              seenTid[t] = 1;
              ++threadsSeen;
              const std::vector<ThreadId>& enabled = result.choiceSets[j];
              if (enabled.size() <= 1) continue;
              const PrefixNode* at = j < prefixLen ? chainBuf[j] : spineAt(j);
              const std::vector<SleepEntry>& asleep = sleepSetAt(j);
              auto backtrack = [&](ThreadId q) {
                if (q == result.schedule[j]) return;
                for (const SleepEntry& e : asleep) {
                  if (e.tid == q) {
                    // q's step here is covered by the sibling that put it
                    // to sleep — reversing this race is redundant.
                    ++local.prunedBranches;
                    return;
                  }
                }
                if (!at->tryClaim(q)) return;
                PrefixNode* ch = arena.child(self, at, q);
                // FG sleep inheritance: the branch that ran first at this
                // decision point goes to sleep in every later sibling (its
                // reordering with q is covered by its own subtree).
                ch->sleep = asleep;
                ch->sleep.push_back(
                    SleepEntry{result.schedule[j], result.stepFootprints[j]});
                WorkItem child;
                child.node = ch;
                childBuf.push_back(std::move(child));
                ++local.dporBacktracks;
              };
              if (std::find(enabled.begin(), enabled.end(), p) !=
                  enabled.end()) {
                backtrack(p);
              } else {
                for (ThreadId q : enabled) backtrack(q);
              }
            }
          }
        } else {
          // Branch: for every decision point past the replayed prefix where
          // more than one thread was runnable, queue the untried siblings.
          // Descending outer order + LIFO own-pop keeps the serial (workers
          // == 1) traversal bit-identical to the legacy recursive DFS.
          for (std::size_t i = branchLimit; i-- > prefixLen;) {
            const std::vector<ThreadId>& choices = result.choiceSets[i];
            if (choices.size() <= 1) continue;

            if (fpPruning) {
              // Key on (depth, fingerprint): the insert is exactly-once
              // across all workers, so whichever run reaches the state first
              // expands it and every other run skips it — the total branch
              // count is the same regardless of who wins.
              ++local.fpLookups;
              const std::uint64_t key =
                  fpMix(fpMix(kFpSeed, i), result.fingerprints[i]);
              if (!visited.insert(key)) {
                ++local.dedupedStates;
                local.prunedBranches += choices.size() - 1;
                continue;
              }
            }

            const PrefixNode* at = spineAt(i);
            for (ThreadId alt : choices) {
              if (alt == result.schedule[i]) continue;
              if (sleepMode && i == prefixLen && prefixLen > 0 &&
                  alt == item->sleepThread &&
                  result.stepFootprints[prefixLen - 1].independentWith(
                      item->sleepFp)) {
                // First step of this child is independent of the spine step
                // it displaced; swapping them back reaches a state already
                // covered by the parent's subtree.
                ++local.prunedBranches;
                continue;
              }
              WorkItem child;
              child.node = arena.child(self, at, alt);
              if (sleepMode) {
                child.sleepThread = result.schedule[i];
                child.sleepFp = result.stepFootprints[i];
              }
              childBuf.push_back(std::move(child));
            }
          }
        }
        queue.pushAll(self, childBuf);
      }

      queue.done();
    }

    if (metrics != nullptr) {
      runsPerWorkerH->observe(local.runs);
      const double wallSec = elapsedSecSince(workerStart);
      const double busySec = static_cast<double>(local.busyNs) * 1e-9;
      if (wallSec > 0.0) {
        utilizationH->observe(static_cast<std::uint64_t>(
            std::min(100.0, 100.0 * busySec / wallSec)));
      }
    }

    std::lock_guard<std::mutex> g(mergeMu);
    stats.runs += local.runs;
    stats.completed += local.completed;
    stats.deadlocks += local.deadlocks;
    stats.stepLimited += local.stepLimited;
    stats.exceptions += local.exceptions;
    stats.prunedBranches += local.prunedBranches;
    stats.dedupedStates += local.dedupedStates;
    stats.dporBacktracks += local.dporBacktracks;
    fpLookupsTotal += local.fpLookups;
    incrementalFallbacksTotal += local.incrementalFallbacks;
    if (incRunner != nullptr) {
      const IncrementalRunner::Tally& t = incRunner->tally();
      stats.snapshotRestores += t.restores;
      stats.replayStepsAvoided += t.replayStepsAvoided;
      stats.snapshotPeakBytes = std::max(stats.snapshotPeakBytes, t.peakBytes);
      snapStores += t.stores;
      snapEvictions += t.evictions;
      snapBudgetSkips += t.budgetSkips;
      snapRetainedBytes += t.retainedBytes;
    }
    if (local.hasFailure &&
        (!mergedHasFailure || local.firstFailure < stats.firstFailure)) {
      mergedHasFailure = true;
      stats.firstFailure = std::move(local.firstFailure);
      stats.firstFailureOutcome = local.firstFailureOutcome;
    }
  };

  WorkItem root;
  root.node = arena.root();
  queue.push(0, std::move(root));  // the root: the empty prefix

  std::vector<std::thread> extra;
  extra.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    extra.emplace_back(worker, w);
  }
  worker(0);  // the calling thread is worker 0
  for (std::thread& t : extra) t.join();

  stats.exhausted = !budgetExhausted.load() && !stoppedByCallback.load();
  stats.stoppedByCallback = stoppedByCallback.load();

  if (metrics != nullptr) {
    const double elapsedSec = elapsedSecSince(t0);
    metrics->counter("explorer.runs").add(stats.runs);
    metrics->counter("explorer.completed").add(stats.completed);
    metrics->counter("explorer.deadlocks").add(stats.deadlocks);
    metrics->counter("explorer.step_limited").add(stats.stepLimited);
    metrics->counter("explorer.exceptions").add(stats.exceptions);
    metrics->counter("explorer.pruned_branches").add(stats.prunedBranches);
    metrics->counter("explorer.deduped_states").add(stats.dedupedStates);
    metrics->counter("explorer.dpor_backtracks").add(stats.dporBacktracks);
    metrics->counter("explorer.steals").add(queue.steals());
    metrics->counter("explorer.steal_batch").add(queue.stealBatches());
    metrics->gauge("explorer.workers").set(static_cast<double>(workers));
    metrics->gauge("explorer.elapsed_sec").set(elapsedSec);
    metrics->gauge("explorer.runs_per_sec")
        .set(elapsedSec > 0.0 ? static_cast<double>(stats.runs) / elapsedSec
                              : 0.0);
    // Fraction of fingerprint probes that hit an already-expanded state.
    // 0 when pruning is off (no probes).
    metrics->gauge("explorer.dedup_hit_rate")
        .set(fpLookupsTotal > 0
                 ? static_cast<double>(stats.dedupedStates) /
                       static_cast<double>(fpLookupsTotal)
                 : 0.0);
    metrics->gauge("explorer.queue_depth")
        .set(static_cast<double>(queue.queuedApprox()));
    metrics->gauge("explorer.prefix_arena_bytes")
        .set(static_cast<double>(arena.bytes()));
    metrics->gauge("explorer.visited_load_factor").set(visited.loadFactor());
    // Companion to the aggregate: the fullest stripe's occupancy, exposing
    // shard imbalance the mean load factor averages away.
    metrics->gauge("explorer.visited_load_factor_peak_shard")
        .set(visited.maxShardLoadFactor());
    metrics->counter("explorer.snapshot_restores").add(stats.snapshotRestores);
    metrics->counter("explorer.snapshot_stores").add(snapStores);
    metrics->counter("explorer.snapshot_evictions").add(snapEvictions);
    metrics->counter("explorer.snapshot_budget_skips").add(snapBudgetSkips);
    metrics->counter("explorer.replay_steps_avoided")
        .add(stats.replayStepsAvoided);
    metrics->counter("explorer.incremental_fallbacks")
        .add(incrementalFallbacksTotal);
    metrics->gauge("explorer.snapshot_bytes")
        .set(static_cast<double>(snapRetainedBytes));
    metrics->gauge("explorer.snapshot_bytes_peak")
        .set(static_cast<double>(stats.snapshotPeakBytes));
  }
  return stats;
}

}  // namespace confail::sched
