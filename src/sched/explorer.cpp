#include "confail/sched/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "confail/obs/metrics.hpp"
#include "confail/sched/fingerprint.hpp"
#include "confail/sched/work_queue.hpp"

namespace confail::sched {

namespace {

/// An unexecuted schedule prefix, plus an optional one-shot sleep entry.
///
/// The sleep entry records the step that the parent run took at this item's
/// branch point (the spine choice) together with that step's footprint.  If
/// the child's own first step turns out to be independent of it, the child
/// must NOT branch back to the spine thread at its first decision point:
/// that sibling is the pure transposition of two commuting steps and leads
/// to a state explored from the parent's subtree.  The entry applies only
/// at depth == prefix.size() and is never inherited further down.
struct WorkItem {
  std::vector<ThreadId> prefix;
  ThreadId sleepThread = events::kNoThread;
  Footprint sleepFp;
};

/// Per-worker tallies, merged once at the end so that hot-loop counting is
/// uncontended and the merged totals are order-independent.
struct LocalStats {
  std::uint64_t runs = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t stepLimited = 0;
  std::uint64_t exceptions = 0;
  std::uint64_t prunedBranches = 0;
  std::uint64_t dedupedStates = 0;
  std::uint64_t fpLookups = 0;  ///< visited-set probes (dedup-rate denominator)
  std::uint64_t busyNs = 0;     ///< time spent executing runs (metrics only)
  bool hasFailure = false;
  std::vector<ThreadId> firstFailure;
  Outcome firstFailureOutcome = Outcome::Completed;
};

}  // namespace

ExhaustiveExplorer::Stats ExhaustiveExplorer::explore(const Program& program,
                                                      const RunCallback& cb) const {
  std::size_t workers = opts_.workers;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  const bool captureState = opts_.fingerprintPruning || opts_.sleepSets;

  WorkStealQueue<WorkItem> queue(workers);
  VisitedSet visited;
  std::atomic<std::uint64_t> runsClaimed{0};
  std::atomic<bool> budgetExhausted{false};
  std::atomic<bool> stoppedByCallback{false};
  std::mutex cbMu;      // serializes the user callback
  std::mutex mergeMu;   // guards the merged Stats
  Stats stats;
  bool mergedHasFailure = false;
  std::uint64_t fpLookupsTotal = 0;

  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  obs::Registry* const metrics = opts_.metrics;
  // Resolve histogram handles once; per-run observes are relaxed atomics.
  obs::Histogram* const runStepsH =
      metrics != nullptr ? &metrics->histogram("explorer.run_steps") : nullptr;
  obs::Histogram* const runsPerWorkerH =
      metrics != nullptr ? &metrics->histogram("explorer.runs_per_worker")
                         : nullptr;
  obs::Histogram* const utilizationH =
      metrics != nullptr
          ? &metrics->histogram("explorer.worker_utilization_pct")
          : nullptr;

  auto elapsedSecSince = [](Clock::time_point from) {
    return std::chrono::duration<double>(Clock::now() - from).count();
  };

  auto worker = [&](std::size_t self) {
    LocalStats local;
    const Clock::time_point workerStart = Clock::now();
    while (std::optional<WorkItem> item = queue.next(self)) {
      // Claim a slot in the run budget before executing.  fetch_add makes
      // the claim exact under contention: at most maxRuns runs execute.
      const std::uint64_t claimed = runsClaimed.fetch_add(1);
      if (claimed >= opts_.maxRuns) {
        budgetExhausted.store(true, std::memory_order_relaxed);
        queue.stop();
        queue.done();
        continue;
      }

      if (opts_.progressIntervalRuns != 0 && opts_.onProgress &&
          (claimed + 1) % opts_.progressIntervalRuns == 0) {
        Progress p;
        p.runs = claimed + 1;
        p.queueDepth = queue.queuedApprox();
        p.steals = queue.steals();
        p.elapsedSec = elapsedSecSince(t0);
        p.runsPerSec = p.elapsedSec > 0.0
                           ? static_cast<double>(p.runs) / p.elapsedSec
                           : 0.0;
        std::lock_guard<std::mutex> g(cbMu);
        opts_.onProgress(p);
      }

      // With sleep sets, keep the displaced spine thread out of the child's
      // own first free pick: the transposed schedule then appears as a
      // sibling branch, where the independence check can prune it.
      PrefixReplayStrategy strategy(
          item->prefix,
          opts_.sleepSets ? item->sleepThread : events::kNoThread);
      VirtualScheduler::Options schedOpts;
      schedOpts.maxSteps = opts_.maxSteps;
      schedOpts.captureState = captureState;
      schedOpts.metrics = metrics;
      VirtualScheduler sched(strategy, schedOpts);
      Clock::time_point runStart;
      if (metrics != nullptr) runStart = Clock::now();
      program(sched);
      RunResult result = sched.run();
      if (metrics != nullptr) {
        local.busyNs += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 runStart)
                .count());
        runStepsH->observe(result.schedule.size());
      }

      ++local.runs;
      switch (result.outcome) {
        case Outcome::Completed: ++local.completed; break;
        case Outcome::Deadlock: ++local.deadlocks; break;
        case Outcome::StepLimit: ++local.stepLimited; break;
        case Outcome::Exception: ++local.exceptions; break;
      }
      if (result.outcome != Outcome::Completed &&
          (!local.hasFailure || result.schedule < local.firstFailure)) {
        local.hasFailure = true;
        local.firstFailure = result.schedule;
        local.firstFailureOutcome = result.outcome;
      }

      if (cb) {
        std::lock_guard<std::mutex> g(cbMu);
        if (!stoppedByCallback.load(std::memory_order_relaxed) &&
            !cb(result.schedule, result)) {
          stoppedByCallback.store(true, std::memory_order_relaxed);
          queue.stop();
        }
      }

      if (!queue.stopped()) {
        // Branch: for every decision point past the replayed prefix where
        // more than one thread was runnable, queue the untried siblings.
        // Descending outer order + LIFO own-pop keeps the serial (workers
        // == 1) traversal bit-identical to the legacy recursive DFS.
        const std::size_t prefixLen = item->prefix.size();
        const std::size_t branchLimit =
            std::min(result.choiceSets.size(), opts_.maxBranchDepth);
        for (std::size_t i = branchLimit; i-- > prefixLen;) {
          const std::vector<ThreadId>& choices = result.choiceSets[i];
          if (choices.size() <= 1) continue;

          if (opts_.fingerprintPruning) {
            // Key on (depth, fingerprint): the insert is exactly-once
            // across all workers, so whichever run reaches the state first
            // expands it and every other run skips it — the total branch
            // count is the same regardless of who wins.
            ++local.fpLookups;
            const std::uint64_t key =
                fpMix(fpMix(kFpSeed, i), result.fingerprints[i]);
            if (!visited.insert(key)) {
              ++local.dedupedStates;
              local.prunedBranches += choices.size() - 1;
              continue;
            }
          }

          for (ThreadId alt : choices) {
            if (alt == result.schedule[i]) continue;
            if (opts_.sleepSets && i == prefixLen && prefixLen > 0 &&
                alt == item->sleepThread &&
                result.stepFootprints[prefixLen - 1].independentWith(
                    item->sleepFp)) {
              // First step of this child is independent of the spine step
              // it displaced; swapping them back reaches a state already
              // covered by the parent's subtree.
              ++local.prunedBranches;
              continue;
            }
            WorkItem child;
            child.prefix.assign(
                result.schedule.begin(),
                result.schedule.begin() + static_cast<std::ptrdiff_t>(i));
            child.prefix.push_back(alt);
            if (opts_.sleepSets) {
              child.sleepThread = result.schedule[i];
              child.sleepFp = result.stepFootprints[i];
            }
            queue.push(self, std::move(child));
          }
        }
      }

      queue.done();
    }

    if (metrics != nullptr) {
      runsPerWorkerH->observe(local.runs);
      const double wallSec = elapsedSecSince(workerStart);
      const double busySec = static_cast<double>(local.busyNs) * 1e-9;
      if (wallSec > 0.0) {
        utilizationH->observe(static_cast<std::uint64_t>(
            std::min(100.0, 100.0 * busySec / wallSec)));
      }
    }

    std::lock_guard<std::mutex> g(mergeMu);
    stats.runs += local.runs;
    stats.completed += local.completed;
    stats.deadlocks += local.deadlocks;
    stats.stepLimited += local.stepLimited;
    stats.exceptions += local.exceptions;
    stats.prunedBranches += local.prunedBranches;
    stats.dedupedStates += local.dedupedStates;
    fpLookupsTotal += local.fpLookups;
    if (local.hasFailure &&
        (!mergedHasFailure || local.firstFailure < stats.firstFailure)) {
      mergedHasFailure = true;
      stats.firstFailure = std::move(local.firstFailure);
      stats.firstFailureOutcome = local.firstFailureOutcome;
    }
  };

  queue.push(0, WorkItem{});  // the root: the empty prefix

  std::vector<std::thread> extra;
  extra.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    extra.emplace_back(worker, w);
  }
  worker(0);  // the calling thread is worker 0
  for (std::thread& t : extra) t.join();

  stats.exhausted = !budgetExhausted.load() && !stoppedByCallback.load();
  stats.stoppedByCallback = stoppedByCallback.load();

  if (metrics != nullptr) {
    const double elapsedSec = elapsedSecSince(t0);
    metrics->counter("explorer.runs").add(stats.runs);
    metrics->counter("explorer.completed").add(stats.completed);
    metrics->counter("explorer.deadlocks").add(stats.deadlocks);
    metrics->counter("explorer.step_limited").add(stats.stepLimited);
    metrics->counter("explorer.exceptions").add(stats.exceptions);
    metrics->counter("explorer.pruned_branches").add(stats.prunedBranches);
    metrics->counter("explorer.deduped_states").add(stats.dedupedStates);
    metrics->counter("explorer.steals").add(queue.steals());
    metrics->gauge("explorer.workers").set(static_cast<double>(workers));
    metrics->gauge("explorer.elapsed_sec").set(elapsedSec);
    metrics->gauge("explorer.runs_per_sec")
        .set(elapsedSec > 0.0 ? static_cast<double>(stats.runs) / elapsedSec
                              : 0.0);
    // Fraction of fingerprint probes that hit an already-expanded state.
    // 0 when pruning is off (no probes).
    metrics->gauge("explorer.dedup_hit_rate")
        .set(fpLookupsTotal > 0
                 ? static_cast<double>(stats.dedupedStates) /
                       static_cast<double>(fpLookupsTotal)
                 : 0.0);
    metrics->gauge("explorer.queue_depth")
        .set(static_cast<double>(queue.queuedApprox()));
  }
  return stats;
}

}  // namespace confail::sched
