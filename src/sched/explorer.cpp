#include "confail/sched/explorer.hpp"

namespace confail::sched {

ExhaustiveExplorer::Stats ExhaustiveExplorer::explore(const Program& program,
                                                      const RunCallback& cb) const {
  Stats stats;
  // DFS over schedule prefixes.  Each entry is a prefix that has not yet
  // been executed.  Last-in-first-out gives depth-first order so related
  // interleavings are explored together.
  std::vector<std::vector<ThreadId>> pending;
  pending.push_back({});

  while (!pending.empty()) {
    if (stats.runs >= opts_.maxRuns) {
      return stats;  // budget exhausted; stats.exhausted stays false
    }
    std::vector<ThreadId> prefix = std::move(pending.back());
    pending.pop_back();

    PrefixReplayStrategy strategy(prefix);
    VirtualScheduler::Options schedOpts;
    schedOpts.maxSteps = opts_.maxSteps;
    VirtualScheduler sched(strategy, schedOpts);
    program(sched);
    RunResult result = sched.run();
    ++stats.runs;

    switch (result.outcome) {
      case Outcome::Completed: ++stats.completed; break;
      case Outcome::Deadlock: ++stats.deadlocks; break;
      case Outcome::StepLimit: ++stats.stepLimited; break;
      case Outcome::Exception: ++stats.exceptions; break;
    }
    if (result.outcome != Outcome::Completed && stats.firstFailure.empty()) {
      stats.firstFailure = result.schedule;
      stats.firstFailureOutcome = result.outcome;
    }

    if (cb && !cb(result.schedule, result)) {
      stats.stoppedByCallback = true;
      return stats;
    }

    // Branch: for every decision point past the replayed prefix where more
    // than one thread was runnable, queue the untried alternatives.
    // Reverse order so the lowest-index branch is explored next (DFS).
    const std::size_t branchLimit =
        std::min(result.choiceSets.size(), opts_.maxBranchDepth);
    for (std::size_t i = branchLimit; i-- > prefix.size();) {
      const std::vector<ThreadId>& choices = result.choiceSets[i];
      if (choices.size() <= 1) continue;
      for (ThreadId alt : choices) {
        if (alt == result.schedule[i]) continue;
        std::vector<ThreadId> next(result.schedule.begin(),
                                   result.schedule.begin() +
                                       static_cast<std::ptrdiff_t>(i));
        next.push_back(alt);
        pending.push_back(std::move(next));
      }
    }
  }
  stats.exhausted = true;
  return stats;
}

}  // namespace confail::sched
