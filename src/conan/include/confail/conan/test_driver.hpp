// ConAn-style deterministic test driver.
//
// A test is a set of calls, each bound to a named test thread and a start
// tick.  Each test thread executes its calls in order; before each call it
// performs clock.await(startTick), so the tester controls the exact order
// in which component methods are invoked — Brinch Hansen's reproducible
// monitor testing, as extended by the ConAn tool the paper builds on.
//
// After the run, each call gets a CallReport with its completion tick and
// observed value, checked against the expectations.  This is the paper's
// "check call completion time" detection technique (Table 1 testing notes
// for T3, T4 and T5 failures): a call that completes too early reveals a
// skipped wait (FF-T3) or premature wake (EF-T5); a call that never
// completes reveals a lost notification (FF-T5), a held lock (FF-T2/FF-T4)
// or an erroneous wait (EF-T3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "confail/clock/abstract_clock.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace confail::conan {

using clock::AbstractClock;
using monitor::Runtime;

/// One scripted component call.
struct Call {
  std::string thread;     ///< test-thread name (threads are created per name)
  std::uint64_t startTick = 0;  ///< clock.await(startTick) before invoking
  std::string label;      ///< for reports, e.g. "receive()#1"
  std::function<std::int64_t()> action;  ///< the call; returns observed value

  /// Inclusive tick window in which the call must complete.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> completionWindow;
  /// Expected return value of action.
  std::optional<std::int64_t> expectedValue;
  /// If true, the call is expected to never complete (the run is expected
  /// to end with this call still blocked — e.g. when testing a mutant that
  /// loses a notification).
  bool expectHang = false;
  /// Tester's intent: whether this call is supposed to suspend on wait()
  /// before completing.  Used by the taxonomy classifier to tell FF-T5
  /// (expected wait, never notified) from EF-T3 (unexpected wait).
  std::optional<bool> expectWait;
};

/// Outcome of one scripted call.
struct CallReport {
  std::string thread;
  std::string label;
  std::uint64_t startTick = 0;
  bool completed = false;
  std::uint64_t completedAtTick = 0;
  std::optional<std::int64_t> value;
  std::string error;  ///< exception text if the action threw
  std::optional<bool> expectWait;  ///< copied from the Call (classifier hint)

  bool timeOk = true;
  bool valueOk = true;
  bool hangOk = true;

  bool passed() const {
    return error.empty() && timeOk && valueOk && hangOk;
  }

  std::string describe() const;
};

/// Aggregate result of a driver execution.
struct Results {
  sched::RunResult run;  ///< scheduler outcome (virtual mode)
  std::vector<CallReport> reports;

  bool allPassed() const;
  std::size_t failures() const;
  std::string describe() const;
};

class TestDriver {
 public:
  /// The driver uses (but does not own) the runtime and clock.  Components
  /// under test are constructed by the caller against the same runtime.
  TestDriver(Runtime& rt, AbstractClock& clk);

  /// Add a scripted call.  Calls on the same thread run in insertion order.
  TestDriver& add(Call c);

  /// Convenience: add a call returning nothing.
  TestDriver& addVoid(std::string thread, std::uint64_t startTick,
                      std::string label, std::function<void()> action,
                      std::optional<std::pair<std::uint64_t, std::uint64_t>>
                          completionWindow = std::nullopt,
                      bool expectHang = false);

  /// Execute the scripted scenario.
  ///   Virtual mode: spawns one logical thread per test-thread name, runs
  ///   the scheduler (the abstract clock auto-advances when idle) and
  ///   returns exact reports.  A deadlock outcome is normal when expectHang
  ///   calls are present.
  ///   Real mode: spawns real threads plus a ticker thread that advances
  ///   the clock whenever all scripted threads are awaiting or done; joins
  ///   with a wall-clock timeout per tick.
  Results execute();

 private:
  struct Slot {
    Call call;
    CallReport report;
  };

  void runThreadCalls(const std::string& threadName);

  Runtime& rt_;
  AbstractClock& clk_;
  std::vector<Slot> slots_;
  std::vector<std::string> threadOrder_;  // distinct names, first-seen order
};

}  // namespace confail::conan
