#include "confail/conan/test_driver.hpp"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "confail/support/assert.hpp"

namespace confail::conan {

std::string CallReport::describe() const {
  std::ostringstream os;
  os << thread << " @" << startTick << " " << label << ": ";
  if (!completed) {
    os << "did not complete";
  } else {
    os << "completed @" << completedAtTick;
    if (value) os << " -> " << *value;
  }
  if (!error.empty()) os << " [threw: " << error << "]";
  os << (passed() ? "  PASS" : "  FAIL");
  if (!timeOk) os << " (completion tick outside window)";
  if (!valueOk) os << " (wrong value)";
  if (!hangOk) os << (completed ? " (expected to hang)" : " (hung)");
  return os.str();
}

bool Results::allPassed() const {
  for (const auto& r : reports) {
    if (!r.passed()) return false;
  }
  return true;
}

std::size_t Results::failures() const {
  std::size_t n = 0;
  for (const auto& r : reports) n += r.passed() ? 0 : 1;
  return n;
}

std::string Results::describe() const {
  std::ostringstream os;
  os << "run outcome: " << sched::outcomeName(run.outcome) << "\n";
  for (const auto& r : reports) os << "  " << r.describe() << "\n";
  os << (allPassed() ? "ALL PASSED" : std::to_string(failures()) + " FAILED");
  return os.str();
}

TestDriver::TestDriver(Runtime& rt, AbstractClock& clk) : rt_(rt), clk_(clk) {}

TestDriver& TestDriver::add(Call c) {
  CONFAIL_CHECK(static_cast<bool>(c.action), UsageError, "call without action");
  bool known = false;
  for (const auto& n : threadOrder_) known = known || (n == c.thread);
  if (!known) threadOrder_.push_back(c.thread);
  Slot s;
  s.report.thread = c.thread;
  s.report.label = c.label;
  s.report.startTick = c.startTick;
  s.report.expectWait = c.expectWait;
  s.call = std::move(c);
  slots_.push_back(std::move(s));
  return *this;
}

TestDriver& TestDriver::addVoid(
    std::string thread, std::uint64_t startTick, std::string label,
    std::function<void()> action,
    std::optional<std::pair<std::uint64_t, std::uint64_t>> completionWindow,
    bool expectHang) {
  Call c;
  c.thread = std::move(thread);
  c.startTick = startTick;
  c.label = std::move(label);
  c.action = [fn = std::move(action)]() -> std::int64_t {
    fn();
    return 0;
  };
  c.completionWindow = completionWindow;
  c.expectHang = expectHang;
  return add(std::move(c));
}

void TestDriver::runThreadCalls(const std::string& threadName) {
  for (Slot& s : slots_) {
    if (s.call.thread != threadName) continue;
    clk_.await(s.call.startTick);
    try {
      std::int64_t v = s.call.action();
      s.report.value = v;
      s.report.completed = true;
      s.report.completedAtTick = clk_.time();
    } catch (const ExecutionAborted&) {
      throw;  // scheduler teardown: propagate
    } catch (const std::exception& e) {
      s.report.error = e.what();
      s.report.completed = true;
      s.report.completedAtTick = clk_.time();
    }
  }
}

Results TestDriver::execute() {
  Results results;

  if (rt_.isVirtual()) {
    for (const std::string& name : threadOrder_) {
      rt_.spawn(name, [this, name] { runThreadCalls(name); });
    }
    // The abstract clock auto-advances whenever every logical thread is
    // blocked, so the run either completes or ends in a genuine deadlock
    // (which is legitimate when expectHang calls are present).
    results.run = rt_.scheduler().run();
  } else {
    for (const Slot& s : slots_) {
      CONFAIL_CHECK(!s.call.expectHang, UsageError,
                    "expectHang calls require virtual mode");
    }
    std::atomic<std::size_t> threadsDone{0};
    const std::size_t total = threadOrder_.size();
    for (const std::string& name : threadOrder_) {
      rt_.spawn(name, [this, name, &threadsDone] {
        runThreadCalls(name);
        threadsDone.fetch_add(1, std::memory_order_release);
      });
    }
    // Ticker: advance logical time until every scripted thread finished.
    // Real mode is best-effort (used for benches and demos); deterministic
    // verdicts come from virtual mode.
    std::thread ticker([&] {
      while (threadsDone.load(std::memory_order_acquire) < total) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        clk_.tick();
      }
    });
    rt_.joinAll();
    ticker.join();
    results.run.outcome = sched::Outcome::Completed;
  }

  // Evaluate expectations.
  for (Slot& s : slots_) {
    CallReport& r = s.report;
    const Call& c = s.call;
    if (r.completed) {
      r.hangOk = !c.expectHang;
      if (c.completionWindow) {
        r.timeOk = r.completedAtTick >= c.completionWindow->first &&
                   r.completedAtTick <= c.completionWindow->second;
      }
      if (c.expectedValue && r.error.empty()) {
        r.valueOk = r.value.has_value() && *r.value == *c.expectedValue;
      }
    } else {
      r.hangOk = c.expectHang;
    }
    results.reports.push_back(r);
  }
  return results;
}

}  // namespace confail::conan
