#include "confail/gen/oracle.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "confail/detect/report_sink.hpp"
#include "confail/detect/suite.hpp"
#include "confail/gen/interpret.hpp"
#include "confail/ingest/pipeline.hpp"
#include "confail/inject/campaign.hpp"
#include "confail/inject/explore_config.hpp"
#include "confail/obs/trace_export.hpp"
#include "confail/petri/cross_check.hpp"
#include "confail/sched/explorer.hpp"
#include "confail/taxonomy/taxonomy.hpp"

namespace confail::gen {

namespace {

using Reduction = sched::ExhaustiveExplorer::Reduction;

const char* reductionName(Reduction r) {
  switch (r) {
    case Reduction::None:
      return "none";
    case Reduction::Sleep:
      return "sleep";
    case Reduction::Dpor:
      return "dpor";
  }
  return "?";
}

/// Everything two equivalent explorations must agree on.  The snapshot_*
/// stats are deliberately absent: they count mechanism (checkpoint reuse),
/// which legitimately differs between incremental and replay.
struct Observables {
  std::uint64_t runs = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t stepLimited = 0;
  std::uint64_t exceptions = 0;
  std::uint64_t prunedBranches = 0;
  std::uint64_t dedupedStates = 0;
  std::uint64_t dporBacktracks = 0;
  bool exhausted = false;
  std::vector<sched::ThreadId> firstFailure;
  sched::Outcome firstFailureOutcome = sched::Outcome::Completed;
  std::set<std::uint64_t> deadlockSigs;

  bool operator==(const Observables&) const = default;
};

std::string scheduleStr(const std::vector<sched::ThreadId>& s) {
  std::string out = "[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(s[i]);
  }
  return out + "]";
}

/// First differing field, for failure details.
std::string diffObs(const std::string& la, const Observables& a,
                    const std::string& lb, const Observables& b) {
  auto num = [&](const char* f, std::uint64_t x, std::uint64_t y) {
    return std::string(f) + ": " + la + "=" + std::to_string(x) + " " + lb +
           "=" + std::to_string(y);
  };
  if (a.runs != b.runs) return num("runs", a.runs, b.runs);
  if (a.completed != b.completed) return num("completed", a.completed, b.completed);
  if (a.deadlocks != b.deadlocks) return num("deadlocks", a.deadlocks, b.deadlocks);
  if (a.stepLimited != b.stepLimited) {
    return num("stepLimited", a.stepLimited, b.stepLimited);
  }
  if (a.exceptions != b.exceptions) {
    return num("exceptions", a.exceptions, b.exceptions);
  }
  if (a.prunedBranches != b.prunedBranches) {
    return num("prunedBranches", a.prunedBranches, b.prunedBranches);
  }
  if (a.dedupedStates != b.dedupedStates) {
    return num("dedupedStates", a.dedupedStates, b.dedupedStates);
  }
  if (a.dporBacktracks != b.dporBacktracks) {
    return num("dporBacktracks", a.dporBacktracks, b.dporBacktracks);
  }
  if (a.exhausted != b.exhausted) {
    return num("exhausted", a.exhausted ? 1 : 0, b.exhausted ? 1 : 0);
  }
  if (a.deadlockSigs != b.deadlockSigs) {
    return num("distinct deadlock states", a.deadlockSigs.size(),
               b.deadlockSigs.size()) +
           " (or different states)";
  }
  if (a.firstFailure != b.firstFailure) {
    return "firstFailure: " + la + "=" + scheduleStr(a.firstFailure) + " " +
           lb + "=" + scheduleStr(b.firstFailure);
  }
  if (a.firstFailureOutcome != b.firstFailureOutcome) {
    return std::string("firstFailureOutcome: ") + la + "=" +
           sched::outcomeName(a.firstFailureOutcome) + " " + lb + "=" +
           sched::outcomeName(b.firstFailureOutcome);
  }
  return "equal";
}

struct ExploreOut {
  Observables obs;
  /// Raw failing schedules (collected only when asked).
  std::vector<std::vector<sched::ThreadId>> failures;
};

ExploreOut explorePr(const Program& p, Reduction red, std::size_t depth,
                     std::size_t workers, bool incremental,
                     std::uint64_t maxRuns, std::uint64_t maxSteps,
                     bool collectFailures, std::uint64_t& tally) {
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = maxRuns;
  eo.maxSteps = maxSteps;
  eo.maxBranchDepth = depth;
  eo.workers = workers;
  eo.reduction = red;
  eo.incremental = incremental;
  sched::ExhaustiveExplorer ex(eo);
  ExploreOut out;
  const auto stats = ex.explore(
      [&p](sched::VirtualScheduler& s) { interpret(p, s); },
      [&](const std::vector<sched::ThreadId>& schedule,
          const sched::RunResult& r) {
        if (r.outcome == sched::Outcome::Deadlock) {
          out.obs.deadlockSigs.insert(
              inject::ExploreConfig::deadlockSignature(r));
        }
        if (collectFailures && r.outcome != sched::Outcome::Completed) {
          out.failures.push_back(schedule);
        }
        return true;
      });
  tally += stats.runs;
  out.obs.runs = stats.runs;
  out.obs.completed = stats.completed;
  out.obs.deadlocks = stats.deadlocks;
  out.obs.stepLimited = stats.stepLimited;
  out.obs.exceptions = stats.exceptions;
  out.obs.prunedBranches = stats.prunedBranches;
  out.obs.dedupedStates = stats.dedupedStates;
  out.obs.dporBacktracks = stats.dporBacktracks;
  out.obs.exhausted = stats.exhausted;
  out.obs.firstFailure = stats.firstFailure;
  out.obs.firstFailureOutcome = stats.firstFailureOutcome;
  return out;
}

/// Replay a schedule with state capture and canonicalize its trace.
std::vector<sched::ThreadId> canonicalFailure(
    const Program& p, const std::vector<sched::ThreadId>& schedule,
    std::uint64_t maxSteps) {
  sched::PrefixReplayStrategy strategy(schedule);
  sched::VirtualScheduler::Options so;
  so.maxSteps = maxSteps;
  so.captureState = true;
  sched::VirtualScheduler s(strategy, so);
  interpret(p, s);
  return sched::canonicalTraceWitness(s.run());
}

/// The DropDeadlocks sabotage: the reference side misreports deadlocks.
void applySabotage(Observables& o) {
  o.completed += o.deadlocks;
  o.deadlocks = 0;
  o.deadlockSigs.clear();
  if (o.firstFailureOutcome == sched::Outcome::Deadlock) {
    o.firstFailure.clear();
    o.firstFailureOutcome = sched::Outcome::Completed;
  }
}

OracleOutcome incrementalVsReplay(const Program& p, const OracleConfig& oc,
                                  std::uint64_t& tally) {
  OracleOutcome out;
  out.oracle = "incremental-vs-replay";
  for (Reduction red : {Reduction::None, Reduction::Dpor}) {
    auto inc = explorePr(p, red, oc.maxBranchDepth, 1, true, oc.maxRuns,
                         oc.maxSteps, false, tally);
    auto rep = explorePr(p, red, oc.maxBranchDepth, 1, false, oc.maxRuns,
                         oc.maxSteps, false, tally);
    if (!inc.obs.exhausted || !rep.obs.exhausted) {
      out.skipped = true;
      out.detail = "bounded tree not exhausted within budget";
      return out;
    }
    if (oc.sabotage == Sabotage::DropDeadlocks) applySabotage(rep.obs);
    if (!(inc.obs == rep.obs)) {
      out.ok = false;
      out.detail = std::string("reduction=") + reductionName(red) + ": " +
                   diffObs("incremental", inc.obs, "replay", rep.obs);
      return out;
    }
  }
  return out;
}

OracleOutcome reductionEquivalence(const Program& p, const OracleConfig& oc,
                                   std::uint64_t& tally) {
  OracleOutcome out;
  out.oracle = "reduction-equivalence";
  const std::size_t unbounded = static_cast<std::size_t>(-1);
  auto none = explorePr(p, Reduction::None, unbounded, 1, true, oc.fullMaxRuns,
                        oc.maxSteps, true, tally);
  if (!none.obs.exhausted) {
    out.skipped = true;
    out.detail = "full enumeration not exhausted in " +
                 std::to_string(oc.fullMaxRuns) + " runs";
    return out;
  }
  // Canonical witness comparison needs a replay per failing run; above the
  // cap, compare only the failure sets.
  const bool canon = none.failures.size() <= oc.canonicalizeCap;
  std::vector<sched::ThreadId> minCanon;
  if (canon) {
    for (const auto& f : none.failures) {
      auto c = canonicalFailure(p, f, oc.maxSteps);
      if (minCanon.empty() || c < minCanon) minCanon = std::move(c);
    }
  }
  for (Reduction red : {Reduction::Sleep, Reduction::Dpor}) {
    auto r = explorePr(p, red, unbounded, 1, true, oc.fullMaxRuns, oc.maxSteps,
                       false, tally);
    const std::string label = reductionName(red);
    if (!r.obs.exhausted) {
      out.ok = false;
      out.detail = label + " did not exhaust a tree full enumeration did";
      return out;
    }
    if (r.obs.runs > none.obs.runs) {
      out.ok = false;
      out.detail = label + " ran more than full enumeration (" +
                   std::to_string(r.obs.runs) + " > " +
                   std::to_string(none.obs.runs) + ")";
      return out;
    }
    if (r.obs.deadlockSigs != none.obs.deadlockSigs) {
      out.ok = false;
      out.detail = label + ": distinct deadlock states " +
                   std::to_string(r.obs.deadlockSigs.size()) + " != " +
                   std::to_string(none.obs.deadlockSigs.size()) +
                   " (or different states)";
      return out;
    }
    if (r.obs.firstFailure.empty() != none.failures.empty()) {
      out.ok = false;
      out.detail = label + ": failure presence mismatch vs full enumeration";
      return out;
    }
    // Only DPOR promises the canonical lex-min witness (Sleep reports the
    // lex-min *executed* failing schedule, which may be a different
    // representative of the same trace).
    if (red == Reduction::Dpor && canon && r.obs.firstFailure != minCanon) {
      out.ok = false;
      out.detail = "dpor witness " + scheduleStr(r.obs.firstFailure) +
                   " != min canonical failure " + scheduleStr(minCanon);
      return out;
    }
  }
  return out;
}

OracleOutcome workerDeterminism(const Program& p, const OracleConfig& oc,
                                std::uint64_t& tally) {
  OracleOutcome out;
  out.oracle = "worker-determinism";
  if (oc.workerCounts.size() < 2) {
    out.skipped = true;
    out.detail = "fewer than two worker counts configured";
    return out;
  }
  for (Reduction red :
       {Reduction::None, Reduction::Sleep, Reduction::Dpor}) {
    auto base = explorePr(p, red, oc.maxBranchDepth, oc.workerCounts[0], true,
                          oc.maxRuns, oc.maxSteps, false, tally);
    if (!base.obs.exhausted) {
      out.skipped = true;
      out.detail = "bounded tree not exhausted within budget";
      return out;
    }
    for (std::size_t i = 1; i < oc.workerCounts.size(); ++i) {
      auto other = explorePr(p, red, oc.maxBranchDepth, oc.workerCounts[i],
                             true, oc.maxRuns, oc.maxSteps, false, tally);
      if (!(base.obs == other.obs)) {
        out.ok = false;
        out.detail = std::string("reduction=") + reductionName(red) +
                     " workers=" + std::to_string(oc.workerCounts[i]) + ": " +
                     diffObs("w" + std::to_string(oc.workerCounts[0]),
                             base.obs,
                             "w" + std::to_string(oc.workerCounts[i]),
                             other.obs);
        return out;
      }
    }
  }
  return out;
}

OracleOutcome cleanNegativeControl(const Program& p, const OracleConfig& oc,
                                   std::uint64_t& tally) {
  OracleOutcome out;
  out.oracle = "clean-negative-control";
  const auto sc = asScenario(p, "gen_clean");
  // Single-threaded monitor use is expected in tiny generated programs, so
  // the unnecessary-sync structural critique is excluded — every other
  // detector must stay silent on a clean program.
  detect::DetectorSuite::Options dso;
  dso.includeUnnecessarySync = false;
  detect::DetectorSuite suite(dso);

  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = oc.maxRuns;
  eo.maxSteps = oc.maxSteps;
  eo.maxBranchDepth = oc.maxBranchDepth;
  eo.workers = 1;
  inject::ExploreConfig cfg;
  cfg.scenario(sc).captureRuns().explorer(eo);

  std::uint64_t failing = 0;
  std::uint64_t findings = 0;
  std::string first;
  const auto outcome = cfg.explore([&](const inject::RunView& v) {
    if (v.result.outcome != sched::Outcome::Completed) {
      ++failing;
      if (first.empty()) {
        first = std::string("outcome ") + sched::outcomeName(v.result.outcome);
      }
    }
    if (v.trace != nullptr) {
      const auto fs = suite.analyze(*v.trace);
      findings += fs.size();
      if (!fs.empty() && first.empty()) first = fs.front().describe(*v.trace);
    }
    return true;
  });
  tally += outcome.stats.runs;
  if (failing != 0 || findings != 0) {
    out.ok = false;
    out.detail = std::to_string(failing) + " failing runs, " +
                 std::to_string(findings) + " findings on a clean program (" +
                 first + ")";
  }
  return out;
}

OracleOutcome injectionDetection(const Program& p, const OracleConfig& oc,
                                 std::uint64_t& tally) {
  OracleOutcome out;
  out.oracle = "injection-detection";
  const bool hasWait = p.has(OpKind::Wait);
  const bool hasNotify = p.has(OpKind::Notify) || p.has(OpKind::NotifyAll);
  // Classes whose detection the program's structure *guarantees* (see the
  // header comment): anything weaker would make the oracle flaky.
  std::vector<taxonomy::FailureClass> classes;
  if (p.monitorShared() && !hasWait) {
    classes.push_back(taxonomy::FailureClass::FF_T4);
  }
  if (hasWait) classes.push_back(taxonomy::FailureClass::EF_T3);
  if (hasWait && !hasNotify) classes.push_back(taxonomy::FailureClass::EF_T5);
  if (classes.empty()) {
    out.skipped = true;
    out.detail = "no structurally guaranteed class applies";
    return out;
  }

  const auto sc = asScenario(p, "gen_fuzz");
  inject::CampaignOptions copts;
  copts.maxRuns = oc.maxRuns;
  copts.maxSteps = oc.maxSteps;
  copts.maxBranchDepth = oc.maxBranchDepth;
  copts.workers = 1;
  copts.negativeControls = false;
  for (taxonomy::FailureClass cls : classes) {
    inject::InjectionPlan plan;
    plan.cls = cls;
    // FF-T4 leaks every outermost unlock (deadlock guaranteed); the wake
    // injections fire once so one deviated wake must be caught.
    if (cls != taxonomy::FailureClass::FF_T4) plan.count = 1;
    const auto cell = inject::runCell(sc, plan, copts);
    tally += cell.runs;
    if (cell.deviatedRuns > 0 && !cell.caught) {
      out.ok = false;
      out.detail = std::string(taxonomy::failureClassName(cls)) +
                   " injected (" + std::to_string(cell.deviatedRuns) +
                   " deviated runs) but no detector caught it";
      return out;
    }
  }
  return out;
}

OracleOutcome streamingEquivalence(const Program& p, const OracleConfig& oc,
                                   std::uint64_t& tally) {
  OracleOutcome out;
  out.oracle = "streaming-equivalence";
  const auto sc = asScenario(p, "gen_stream");

  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = oc.maxRuns;
  eo.maxSteps = oc.maxSteps;
  eo.maxBranchDepth = oc.maxBranchDepth;
  eo.workers = 1;
  inject::ExploreConfig cfg;
  cfg.scenario(sc).captureRuns().explorer(eo);

  std::size_t checked = 0;
  const auto outcome = cfg.explore([&](const inject::RunView& v) {
    if (v.trace == nullptr) return true;
    const events::Trace& trace = *v.trace;

    detect::DetectorSuite suite;
    detect::ReportSink offline;
    offline.setSource("differential");
    for (const auto& report : suite.analyzeEach(trace)) {
      offline.addAll(report.detector, report.findings);
    }

    ingest::IngestPipeline pipe(ingest::IngestOptions{});
    detect::ReportSink online;
    online.setSource("differential");
    std::istringstream in(obs::toJsonl(trace));
    const ingest::IngestStats st = pipe.run(in, online);

    if (st.malformed != 0 || st.truncated != 0) {
      out.ok = false;
      out.detail = "lossless JSONL export decoded with " +
                   std::to_string(st.malformed) + " malformed lines, " +
                   std::to_string(st.truncated) + " truncated tails";
      return false;
    }
    if (st.eventsAnalyzed != trace.size()) {
      out.ok = false;
      out.detail = "streamed " + std::to_string(st.eventsAnalyzed) +
                   " events, trace recorded " + std::to_string(trace.size());
      return false;
    }
    const std::string offDoc = offline.toJson(detect::TraceNames(trace));
    const std::string onDoc = online.toJson(pipe.names());
    if (offDoc != onDoc) {
      out.ok = false;
      out.detail = "offline and streaming findings documents differ (" +
                   std::to_string(offline.size()) + " vs " +
                   std::to_string(online.size()) + " findings)";
      return false;
    }
    ++checked;
    return checked < oc.streamingRunCap;
  });
  tally += outcome.stats.runs;
  if (out.ok && checked == 0) {
    out.skipped = true;
    out.detail = "no captured runs within budget";
  }
  return out;
}

OracleOutcome modelCrossCheck(const Program& p, const OracleConfig& oc,
                              std::uint64_t& tally) {
  OracleOutcome out;
  out.oracle = "model-cross-check";
  const auto sc = asScenario(p, "gen_model");

  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = oc.maxRuns;
  eo.maxSteps = oc.maxSteps;
  eo.maxBranchDepth = oc.maxBranchDepth;
  eo.workers = 1;
  inject::ExploreConfig cfg;
  cfg.scenario(sc).captureRuns().explorer(eo);

  petri::ModelCrossChecker checker;
  const auto outcome = cfg.explore([&](const inject::RunView& v) {
    if (v.trace != nullptr) {
      checker.addRun(*v.trace, v.result.outcome != sched::Outcome::Completed);
    }
    return checker.report().ok;
  });
  tally += outcome.stats.runs;

  const petri::CrossCheckReport& rep = checker.report();
  if (!rep.ok) {
    out.ok = false;
    out.detail = rep.firstViolation;
    return out;
  }
  if (rep.inScopeRuns == 0) {
    out.skipped = true;
    out.detail = rep.runs == 0 ? "no captured runs within budget"
                               : "no in-scope runs (nested monitors or no"
                                 " monitor activity)";
  }
  return out;
}

}  // namespace

const std::vector<std::string>& oracleNames() {
  static const std::vector<std::string> kNames = {
      "incremental-vs-replay", "reduction-equivalence", "worker-determinism",
      "clean-negative-control", "injection-detection",
      "streaming-equivalence", "model-cross-check"};
  return kNames;
}

OracleConfig onlyOracle(const OracleConfig& oc, const std::string& name) {
  OracleConfig c = oc;
  c.checkIncremental = name == "incremental-vs-replay";
  c.checkReductions = name == "reduction-equivalence";
  c.checkWorkers = name == "worker-determinism";
  c.checkClean = name == "clean-negative-control";
  c.checkInjection = name == "injection-detection";
  c.checkStreaming = name == "streaming-equivalence";
  c.checkModel = name == "model-cross-check";
  return c;
}

OracleReport runOracles(const Program& p, const OracleConfig& oc) {
  OracleReport report;
  if (oc.checkIncremental) {
    report.outcomes.push_back(
        incrementalVsReplay(p, oc, report.exploreRuns));
  }
  if (oc.checkReductions) {
    report.outcomes.push_back(reductionEquivalence(p, oc, report.exploreRuns));
  }
  if (oc.checkWorkers) {
    report.outcomes.push_back(workerDeterminism(p, oc, report.exploreRuns));
  }
  if (oc.checkClean) {
    report.outcomes.push_back(cleanNegativeControl(p, oc, report.exploreRuns));
  }
  if (oc.checkInjection) {
    report.outcomes.push_back(injectionDetection(p, oc, report.exploreRuns));
  }
  if (oc.checkStreaming) {
    report.outcomes.push_back(streamingEquivalence(p, oc, report.exploreRuns));
  }
  if (oc.checkModel) {
    report.outcomes.push_back(modelCrossCheck(p, oc, report.exploreRuns));
  }
  return report;
}

}  // namespace confail::gen
