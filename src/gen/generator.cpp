#include "confail/gen/generator.hpp"

#include <algorithm>

#include "confail/support/rng.hpp"

namespace confail::gen {

namespace {

struct LoopFrame {
  std::size_t lockBase;
  bool nonEmpty;
};

/// Mutable per-thread draw state.
struct ThreadDraw {
  std::vector<std::uint8_t> lockStack;
  std::vector<LoopFrame> loops;
  ThreadIR ir;

  void emit(Op op) {
    // Mirror validate(): any op but LoopEnd makes the innermost body
    // non-empty (LoopBegin marks the *enclosing* frame before pushing).
    if (!loops.empty() && op.kind != OpKind::LoopEnd) {
      loops.back().nonEmpty = true;
    }
    switch (op.kind) {
      case OpKind::Lock:
        lockStack.push_back(op.obj);
        break;
      case OpKind::Unlock:
        lockStack.pop_back();
        break;
      case OpKind::LoopBegin:
        loops.push_back(LoopFrame{lockStack.size(), false});
        break;
      case OpKind::LoopEnd:
        loops.pop_back();
        break;
      default:
        break;
    }
    ir.ops.push_back(op);
  }
};

}  // namespace

std::uint64_t GenConfig::streamTag() const {
  confail::SplitMix64 mix(0x67656e2d69723031ull);  // "gen-ir01"
  std::uint64_t h = mix.next();
  auto fold = [&h](std::uint64_t v) {
    confail::SplitMix64 m(h ^ v);
    h = m.next();
  };
  fold(static_cast<std::uint64_t>(minThreads));
  fold(static_cast<std::uint64_t>(maxThreads));
  fold(static_cast<std::uint64_t>(maxMonitors));
  fold(static_cast<std::uint64_t>(maxVars));
  fold(static_cast<std::uint64_t>(maxOpsPerThread));
  fold(static_cast<std::uint64_t>(maxLoopIters));
  fold(static_cast<std::uint64_t>(maxLockDepth));
  fold((allowWaitNotify ? 1ull : 0ull) | (allowLoops ? 2ull : 0ull) |
       (cleanOnly ? 4ull : 0ull));
  return h;
}

Program generate(std::uint64_t seed, const GenConfig& cfg) {
  confail::Xoshiro256 rng(seed ^ cfg.streamTag());

  Program p;
  p.seed = seed;
  const int nThreads =
      cfg.minThreads +
      static_cast<int>(rng.below(
          static_cast<std::uint64_t>(cfg.maxThreads - cfg.minThreads + 1)));
  p.monitors = static_cast<std::uint8_t>(
      1 + rng.below(static_cast<std::uint64_t>(cfg.maxMonitors)));
  p.vars = static_cast<std::uint8_t>(
      1 + rng.below(static_cast<std::uint64_t>(cfg.maxVars)));
  const std::size_t lockDepthCap = std::min<std::size_t>(
      static_cast<std::size_t>(cfg.maxLockDepth), kMaxLockNest);

  for (int ti = 0; ti < nThreads; ++ti) {
    ThreadDraw d;
    const std::size_t target =
        3 + rng.below(static_cast<std::uint64_t>(
                std::max(1, cfg.maxOpsPerThread - 2)));
    while (d.ir.ops.size() < target) {
      // Weighted candidate kinds, assembled in a fixed order so the draw
      // sequence is a pure function of (seed, cfg).
      struct Cand {
        OpKind kind;
        int weight;
      };
      std::vector<Cand> cands;
      const bool inLoop = !d.loops.empty();
      const std::size_t lockBase = inLoop ? d.loops.back().lockBase : 0;

      // Lock: in clean mode, only in ascending monitor order (deadlock
      // freedom by a global lock hierarchy).
      bool canLock = d.lockStack.size() < lockDepthCap;
      if (cfg.cleanOnly && canLock) {
        canLock = d.lockStack.empty() || d.lockStack.back() + 1 < p.monitors;
      }
      if (canLock) cands.push_back({OpKind::Lock, 4});
      if (!d.lockStack.empty() && d.lockStack.size() > lockBase) {
        cands.push_back({OpKind::Unlock, 3});
      }
      if (cfg.allowWaitNotify && !cfg.cleanOnly && !d.lockStack.empty()) {
        cands.push_back({OpKind::Wait, 1});
        cands.push_back({OpKind::Notify, 1});
        cands.push_back({OpKind::NotifyAll, 1});
      }
      // Read/Write: in clean mode, var v is guarded by monitor v % monitors
      // and may only be touched while that monitor is held.
      bool canAccess = true;
      if (cfg.cleanOnly) {
        canAccess = false;
        for (std::uint8_t v = 0; v < p.vars && !canAccess; ++v) {
          const auto guard = static_cast<std::uint8_t>(v % p.monitors);
          canAccess = std::find(d.lockStack.begin(), d.lockStack.end(),
                                guard) != d.lockStack.end();
        }
      }
      if (canAccess) {
        cands.push_back({OpKind::Read, 3});
        cands.push_back({OpKind::Write, 3});
      }
      cands.push_back({OpKind::Yield, 1});
      if (cfg.allowLoops && d.loops.size() < 2 &&
          d.ir.ops.size() + 3 <= target) {
        cands.push_back({OpKind::LoopBegin, 1});
      }
      if (inLoop && d.loops.back().nonEmpty &&
          d.lockStack.size() == lockBase) {
        cands.push_back({OpKind::LoopEnd, 2});
      }

      int total = 0;
      for (const Cand& c : cands) total += c.weight;
      auto pick = static_cast<int>(rng.below(static_cast<std::uint64_t>(total)));
      OpKind kind = cands.back().kind;
      for (const Cand& c : cands) {
        if (pick < c.weight) {
          kind = c.kind;
          break;
        }
        pick -= c.weight;
      }

      Op op;
      op.kind = kind;
      switch (kind) {
        case OpKind::Lock:
          if (cfg.cleanOnly) {
            const std::uint8_t lo =
                d.lockStack.empty()
                    ? std::uint8_t{0}
                    : static_cast<std::uint8_t>(d.lockStack.back() + 1);
            op.obj = static_cast<std::uint8_t>(
                lo + rng.below(static_cast<std::uint64_t>(p.monitors - lo)));
          } else {
            op.obj = static_cast<std::uint8_t>(rng.below(p.monitors));
          }
          break;
        case OpKind::Unlock:
          op.obj = d.lockStack.back();
          break;
        case OpKind::Wait:
        case OpKind::Notify:
        case OpKind::NotifyAll:
          op.obj = d.lockStack[rng.pickIndex(d.lockStack)];
          break;
        case OpKind::Read:
        case OpKind::Write:
          if (cfg.cleanOnly) {
            std::vector<std::uint8_t> guarded;
            for (std::uint8_t v = 0; v < p.vars; ++v) {
              const auto guard = static_cast<std::uint8_t>(v % p.monitors);
              if (std::find(d.lockStack.begin(), d.lockStack.end(), guard) !=
                  d.lockStack.end()) {
                guarded.push_back(v);
              }
            }
            op.obj = guarded[rng.pickIndex(guarded)];
          } else {
            op.obj = static_cast<std::uint8_t>(rng.below(p.vars));
          }
          break;
        case OpKind::LoopBegin:
          op.iters = static_cast<std::uint8_t>(
              1 + rng.below(static_cast<std::uint64_t>(
                      std::max(1, cfg.maxLoopIters))));
          break;
        default:
          break;
      }
      d.emit(op);
    }

    // Close the thread: drain open loops (lock-balanced) and the lock stack.
    while (!d.loops.empty() || !d.lockStack.empty()) {
      if (!d.loops.empty()) {
        LoopFrame& f = d.loops.back();
        if (d.lockStack.size() > f.lockBase) {
          d.emit(Op{OpKind::Unlock, d.lockStack.back(), 0});
        } else if (!f.nonEmpty) {
          d.emit(Op{OpKind::Yield, 0, 0});
        } else {
          d.emit(Op{OpKind::LoopEnd, 0, 0});
        }
      } else {
        d.emit(Op{OpKind::Unlock, d.lockStack.back(), 0});
      }
    }
    p.threads.push_back(std::move(d.ir));
  }
  return p;
}

}  // namespace confail::gen
