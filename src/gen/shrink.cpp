#include "confail/gen/shrink.hpp"

#include <algorithm>
#include <utility>

namespace confail::gen {

namespace {

Program dropThread(const Program& p, std::size_t ti) {
  Program c = p;
  c.threads.erase(c.threads.begin() +
                  static_cast<std::ptrdiff_t>(ti));
  return c;
}

Program dropRange(const Program& p, std::size_t ti, std::size_t i,
                  std::size_t j) {
  Program c = p;
  auto& ops = c.threads[ti].ops;
  ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i),
            ops.begin() + static_cast<std::ptrdiff_t>(j + 1));
  return c;
}

Program dropPair(const Program& p, std::size_t ti, std::size_t i,
                 std::size_t j) {
  Program c = p;
  auto& ops = c.threads[ti].ops;
  ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(j));
  ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
  return c;
}

Program dropOne(const Program& p, std::size_t ti, std::size_t i) {
  Program c = p;
  auto& ops = c.threads[ti].ops;
  ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
  return c;
}

/// Matched (begin, end) index pairs of `kind` begin ops in one thread.
std::vector<std::pair<std::size_t, std::size_t>> loopPairs(
    const ThreadIR& t) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < t.ops.size(); ++i) {
    if (t.ops[i].kind == OpKind::LoopBegin) {
      stack.push_back(i);
    } else if (t.ops[i].kind == OpKind::LoopEnd && !stack.empty()) {
      pairs.emplace_back(stack.back(), i);
      stack.pop_back();
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::vector<std::pair<std::size_t, std::size_t>> lockPairs(
    const ThreadIR& t) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < t.ops.size(); ++i) {
    if (t.ops[i].kind == OpKind::Lock) {
      stack.push_back(i);
    } else if (t.ops[i].kind == OpKind::Unlock && !stack.empty()) {
      pairs.emplace_back(stack.back(), i);
      stack.pop_back();
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

/// Renumber monitors/vars to the used subset (shrinks the declared counts).
bool compact(Program& c) {
  std::vector<std::uint8_t> monMap(c.monitors, 255);
  std::vector<std::uint8_t> varMap(c.vars, 255);
  std::uint8_t nextMon = 0;
  std::uint8_t nextVar = 0;
  for (const ThreadIR& t : c.threads) {
    for (const Op& op : t.ops) {
      switch (op.kind) {
        case OpKind::Lock:
        case OpKind::Unlock:
        case OpKind::Wait:
        case OpKind::Notify:
        case OpKind::NotifyAll:
          if (monMap[op.obj] == 255) monMap[op.obj] = nextMon++;
          break;
        case OpKind::Read:
        case OpKind::Write:
          if (varMap[op.obj] == 255) varMap[op.obj] = nextVar++;
          break;
        default:
          break;
      }
    }
  }
  const std::uint8_t newMons = std::max<std::uint8_t>(1, nextMon);
  const std::uint8_t newVars = std::max<std::uint8_t>(1, nextVar);
  if (newMons == c.monitors && newVars == c.vars) return false;
  for (ThreadIR& t : c.threads) {
    for (Op& op : t.ops) {
      switch (op.kind) {
        case OpKind::Lock:
        case OpKind::Unlock:
        case OpKind::Wait:
        case OpKind::Notify:
        case OpKind::NotifyAll:
          op.obj = monMap[op.obj];
          break;
        case OpKind::Read:
        case OpKind::Write:
          op.obj = varMap[op.obj];
          break;
        default:
          break;
      }
    }
  }
  c.monitors = newMons;
  c.vars = newVars;
  return true;
}

/// All shrink candidates of `p`, in the fixed greedy order.
std::vector<Program> candidates(const Program& p) {
  std::vector<Program> out;
  // 1. Whole threads, cheapest first win.
  if (p.threads.size() > 1) {
    for (std::size_t ti = 0; ti < p.threads.size(); ++ti) {
      out.push_back(dropThread(p, ti));
    }
  }
  for (std::size_t ti = 0; ti < p.threads.size(); ++ti) {
    // 2. Loops: drop entirely, then unroll to a single pass, then iters=1.
    for (const auto& [i, j] : loopPairs(p.threads[ti])) {
      out.push_back(dropRange(p, ti, i, j));
      out.push_back(dropPair(p, ti, i, j));
      if (p.threads[ti].ops[i].iters > 1) {
        Program c = p;
        c.threads[ti].ops[i].iters = 1;
        out.push_back(std::move(c));
      }
    }
    // 3. Lock regions: drop the whole critical section, then just the pair.
    for (const auto& [i, j] : lockPairs(p.threads[ti])) {
      out.push_back(dropRange(p, ti, i, j));
      out.push_back(dropPair(p, ti, i, j));
    }
    // 4. Single leaf ops.
    for (std::size_t i = 0; i < p.threads[ti].ops.size(); ++i) {
      switch (p.threads[ti].ops[i].kind) {
        case OpKind::Wait:
        case OpKind::Notify:
        case OpKind::NotifyAll:
        case OpKind::Read:
        case OpKind::Write:
        case OpKind::Yield:
          out.push_back(dropOne(p, ti, i));
          break;
        default:
          break;
      }
    }
  }
  // 5. Declared-object compaction.
  {
    Program c = p;
    if (compact(c)) out.push_back(std::move(c));
  }
  return out;
}

/// Strictly-decreasing size measure, so greedy acceptance terminates.
std::uint64_t measure(const Program& p) {
  std::uint64_t iters = 0;
  for (const ThreadIR& t : p.threads) {
    for (const Op& op : t.ops) {
      if (op.kind == OpKind::LoopBegin) iters += op.iters;
    }
  }
  return (static_cast<std::uint64_t>(p.opCount()) << 24) + (iters << 10) +
         p.monitors + p.vars + p.threads.size();
}

}  // namespace

ShrinkResult shrink(const Program& p,
                    const std::function<bool(const Program&)>& fails,
                    const ShrinkOptions& opts) {
  ShrinkResult r;
  r.program = p;
  while (r.attempts < opts.maxAttempts) {
    bool acceptedThisPass = false;
    for (Program& cand : candidates(r.program)) {
      if (r.attempts >= opts.maxAttempts) break;
      if (measure(cand) >= measure(r.program)) continue;
      if (!cand.validate()) continue;
      ++r.attempts;
      if (fails(cand)) {
        cand.seed = p.seed;  // provenance survives shrinking
        r.program = std::move(cand);
        ++r.accepted;
        acceptedThisPass = true;
        break;  // restart candidate enumeration on the smaller program
      }
    }
    if (!acceptedThisPass) {
      r.fixpoint = r.attempts < opts.maxAttempts;
      break;
    }
  }
  return r;
}

}  // namespace confail::gen
