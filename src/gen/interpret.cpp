#include "confail/gen/interpret.hpp"

#include <memory>
#include <vector>

#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"

namespace confail::gen {

namespace {

using components::scenarios::Instruments;

struct State {
  events::Trace ownTrace;
  monitor::Runtime rt;
  std::shared_ptr<void> decoration;  ///< outlives components, not rt
  Program prog;                      ///< owned copy; closures index into it
  std::vector<std::unique_ptr<monitor::Monitor>> mons;
  std::vector<std::unique_ptr<monitor::SharedVar<int>>> vars;

  State(sched::VirtualScheduler& sc, const Program& p, const Instruments& i)
      : rt(i.trace != nullptr ? *i.trace : ownTrace, sc, 1, i.metrics),
        decoration(i.decorate ? i.decorate(rt) : nullptr),
        prog(p) {
    for (std::uint8_t m = 0; m < prog.monitors; ++m) {
      mons.push_back(std::make_unique<monitor::Monitor>(
          rt, "m" + std::to_string(m)));
    }
    for (std::uint8_t v = 0; v < prog.vars; ++v) {
      vars.push_back(std::make_unique<monitor::SharedVar<int>>(
          rt, "v" + std::to_string(v), 0));
    }
  }
};

/// Execute one thread's ops.  Loop bookkeeping is a fixed-size array of
/// plain integers — a fiber stack snapshot captures it by value, which is
/// what makes interpreted programs snapshot-safe.
void runThread(State& st, std::size_t ti) {
  const std::vector<Op>& ops = st.prog.threads[ti].ops;
  struct LoopFrame {
    std::uint32_t begin;
    std::uint32_t remaining;
  };
  LoopFrame frames[kMaxLoopNest];
  std::size_t depth = 0;
  for (std::size_t pc = 0; pc < ops.size(); ++pc) {
    const Op op = ops[pc];
    switch (op.kind) {
      case OpKind::Lock:
        st.mons[op.obj]->lock();
        break;
      case OpKind::Unlock:
        st.mons[op.obj]->unlock();
        break;
      case OpKind::Wait:
        st.mons[op.obj]->wait();
        break;
      case OpKind::Notify:
        st.mons[op.obj]->notifyOne();
        break;
      case OpKind::NotifyAll:
        st.mons[op.obj]->notifyAll();
        break;
      case OpKind::Read:
        (void)st.vars[op.obj]->get();
        break;
      case OpKind::Write:
        // peek() observes without a schedule point, so a Write is exactly
        // one scheduled access (the set), like the hand-written scenarios.
        st.vars[op.obj]->set(st.vars[op.obj]->peek() + 1);
        break;
      case OpKind::Yield:
        st.rt.schedulePoint();
        break;
      case OpKind::LoopBegin:
        frames[depth].begin = static_cast<std::uint32_t>(pc);
        frames[depth].remaining = op.iters;
        ++depth;
        break;
      case OpKind::LoopEnd:
        if (--frames[depth - 1].remaining > 0) {
          pc = frames[depth - 1].begin;  // re-enter the body
        } else {
          --depth;
        }
        break;
    }
  }
}

}  // namespace

void interpret(const Program& p, sched::VirtualScheduler& s,
               const Instruments& ins) {
  if (ins.trace != nullptr) ins.trace->clear();
  // Runtime, Monitor and SharedVar all implement the snapshot protocol and
  // the interpreter keeps no heap-owning locals across schedule points, so
  // incremental (checkpoint/restore) exploration applies.
  s.declareSnapshotSafe();
  auto st = std::make_shared<State>(s, p, ins);
  for (std::size_t ti = 0; ti < st->prog.threads.size(); ++ti) {
    st->rt.spawn("t" + std::to_string(ti), [st, ti] { runThread(*st, ti); });
  }
}

void interpret(const Program& p, sched::VirtualScheduler& s) {
  interpret(p, s, Instruments{});
}

components::scenarios::NamedScenario asScenario(const Program& p,
                                                std::string name) {
  components::scenarios::NamedScenario sc;
  auto prog = std::make_shared<Program>(p);
  sc.name = std::move(name);
  sc.fn = [prog](sched::VirtualScheduler& s) { interpret(*prog, s); };
  sc.ifn = [prog](sched::VirtualScheduler& s, const Instruments& ins) {
    interpret(*prog, s, ins);
  };
  sc.hasBuffer = false;
  // Generated programs are arbitrary: assume nothing about cleanliness.
  sc.faultSeeded = true;
  sc.usesMonitor = p.has(OpKind::Lock);
  sc.usesWaitNotify = p.has(OpKind::Wait) || p.has(OpKind::Notify) ||
                      p.has(OpKind::NotifyAll);
  sc.starveVictim = sc.usesMonitor ? "t0" : "";
  sc.blurb = "generated program (seed " + std::to_string(p.seed) + ")";
  return sc;
}

}  // namespace confail::gen
