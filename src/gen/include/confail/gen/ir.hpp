// The gen IR: a tiny structured language of monitor programs.
//
// A Program is N logical threads over M monitors and V shared ints; each
// thread is a flat op vector with structured (balanced) control:
//
//   op     := lock m | unlock m | wait m | notify m | notifyAll m
//           | read v | write v | yield
//           | loop k { op* }            (k >= 1 bounded iterations)
//
// Well-formedness (validate()) guarantees the program maps onto the monitor
// substrate without tripping its usage contracts: unlocks match the
// innermost held lock, wait/notify require the monitor held, loop bodies
// are lock-balanced (so iteration preserves the lock stack), nesting is
// bounded, and every thread ends with an empty lock stack.  Deadlocks,
// lost notifications and races remain fully expressible — well-formedness
// constrains *syntax*, not schedules.
//
// The IR is deliberately value-semantic and order-deterministic: render()
// is the canonical byte-exact text form the determinism properties compare,
// and equality is structural.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace confail::gen {

enum class OpKind : std::uint8_t {
  Lock,
  Unlock,
  Wait,
  Notify,
  NotifyAll,
  Read,
  Write,
  Yield,
  LoopBegin,
  LoopEnd,
};

/// Short mnemonic ("lock", "notifyAll", ...).
const char* opKindName(OpKind k);

struct Op {
  OpKind kind = OpKind::Yield;
  /// Monitor index (Lock..NotifyAll) or shared-var index (Read/Write);
  /// unused otherwise.
  std::uint8_t obj = 0;
  /// LoopBegin only: iteration count (>= 1).
  std::uint8_t iters = 0;

  bool operator==(const Op&) const = default;
};

struct ThreadIR {
  std::vector<Op> ops;

  bool operator==(const ThreadIR&) const = default;
};

/// Interpreter bound honored by validate(): max depth of nested loops.
inline constexpr std::size_t kMaxLoopNest = 4;
/// Max depth of the per-thread lock stack validate() allows.
inline constexpr std::size_t kMaxLockNest = 6;

struct Program {
  std::uint8_t monitors = 1;
  std::uint8_t vars = 1;
  /// Provenance only (which fuzz seed generated this); not part of
  /// structural equality.
  std::uint64_t seed = 0;
  std::vector<ThreadIR> threads;

  /// Total op count across threads (loop bodies counted once).
  std::size_t opCount() const;

  /// Any op of this kind anywhere in the program?
  bool has(OpKind k) const;

  /// Do at least two distinct threads contain a Lock of the same monitor?
  bool monitorShared() const;

  /// Canonical multi-line text form; byte-identical iff the programs are
  /// structurally identical (seed included, as a header comment).
  std::string render() const;

  /// Well-formedness (see file comment).  On failure, *why (when non-null)
  /// receives a one-line reason.
  bool validate(std::string* why = nullptr) const;

  bool operator==(const Program& o) const {
    return monitors == o.monitors && vars == o.vars && threads == o.threads;
  }
};

}  // namespace confail::gen
