// Differential oracles: the invariants the codebase promises, checked on
// machine-generated programs.
//
// Each oracle re-states a guarantee that is already unit-tested on the
// hand-written registry scenarios and asserts it on an arbitrary generated
// program:
//
//   incremental-vs-replay    incremental (checkpoint/restore) exploration
//                            produces the same runs, failure sets and
//                            canonical witnesses as prefix replay, per
//                            reduction (sched_incremental_test's contract);
//   reduction-equivalence    when full enumeration exhausts the unbounded
//                            tree within budget, Sleep and Dpor find the
//                            same distinct-deadlock set, and Dpor's
//                            canonical witness equals the minimum over the
//                            canonicalized failures of the full enumeration
//                            (sched_dpor_test's contract) — skipped, not
//                            failed, when the tree is too big to exhaust;
//   worker-determinism       bounded exploration Stats are identical at
//                            {1,2,8} workers for every reduction
//                            (sched_parallel_test's contract);
//   clean-negative-control   a cleanOnly-generated program (guarded
//                            accesses, ascending lock order, no
//                            wait/notify) completes on every schedule and
//                            the detector battery stays silent
//                            (inject_test's negative-control contract);
//   injection-detection      Table-1 classes whose deviation point the
//                            program structurally guarantees are caught by
//                            the detector battery when injected
//                            (campaign's contract): FF-T4 on programs
//                            where >= 2 threads lock a common monitor and
//                            nobody waits, EF-T3 on programs with a wait,
//                            EF-T5 on programs with a wait and no notify;
//   streaming-equivalence    replaying a recorded run's JSONL export
//                            through the streaming ingest pipeline yields a
//                            findings document byte-identical to the
//                            offline DetectorSuite's on the same trace
//                            (the ingest pipeline's differential contract);
//   model-cross-check        every marking a generated program's runs visit
//                            is a reachable marking of the thread/lock
//                            Petri net of the same shape, and all-waiting
//                            failure states are dead in the gated net
//                            (petri/cross_check.hpp's explorer ⊆ net
//                            contract) — nested-monitor programs are out of
//                            the Figure-1 protocol's scope and skip.
//
// Sabotage deliberately breaks a guarantee to prove the harness can see
// failures (the ISSUE's broken-oracle acceptance test): DropDeadlocks makes
// the *reference* (replay) side of incremental-vs-replay misreport
// deadlocked runs as completed, so any in-bounds deadlocking seed trips the
// oracle and shrinks to the minimal deadlocking program.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "confail/gen/ir.hpp"

namespace confail::gen {

enum class Sabotage : std::uint8_t {
  None,
  /// Reference (replay) side of incremental-vs-replay counts deadlocks as
  /// completions and drops their signatures/witnesses.
  DropDeadlocks,
};

struct OracleConfig {
  std::uint64_t maxRuns = 2000;      ///< bounded-depth exploration budget
  std::uint64_t fullMaxRuns = 3000;  ///< unbounded-enumeration budget
  std::uint64_t maxSteps = 1500;
  std::size_t maxBranchDepth = 4;
  std::vector<std::size_t> workerCounts = {1, 2, 8};
  /// Reduction-equivalence canonicalizes witnesses only when the full
  /// enumeration has at most this many failing runs (each costs a replay).
  std::size_t canonicalizeCap = 200;

  bool checkIncremental = true;
  bool checkReductions = true;
  bool checkWorkers = true;
  bool checkInjection = true;
  bool checkStreaming = true;
  bool checkModel = true;
  /// Runs per program the streaming oracle differentials (each costs an
  /// offline battery pass plus a full encode/decode/streaming pass).
  std::size_t streamingRunCap = 5;
  /// Off by default: only meaningful for cleanOnly-generated programs
  /// (the fuzz harness runs it on the clean tier).
  bool checkClean = false;

  Sabotage sabotage = Sabotage::None;
};

struct OracleOutcome {
  std::string oracle;
  bool ok = true;
  bool skipped = false;   ///< precondition unmet (e.g. tree not exhausted)
  std::string detail;     ///< failure diff / skip reason
};

struct OracleReport {
  std::vector<OracleOutcome> outcomes;
  std::uint64_t exploreRuns = 0;  ///< explorer runs spent on this program

  bool ok() const {
    for (const OracleOutcome& o : outcomes) {
      if (!o.skipped && !o.ok) return false;
    }
    return true;
  }
  const OracleOutcome* firstFailure() const {
    for (const OracleOutcome& o : outcomes) {
      if (!o.skipped && !o.ok) return &o;
    }
    return nullptr;
  }
};

/// The oracle names, in run order (CLI --oracle filter values).
const std::vector<std::string>& oracleNames();

/// Restrict a config to a single oracle by name (unknown name: all off).
OracleConfig onlyOracle(const OracleConfig& oc, const std::string& name);

/// Run every enabled oracle against `p` (assumed valid).
OracleReport runOracles(const Program& p, const OracleConfig& oc);

}  // namespace confail::gen
