// IR interpreter: run a gen::Program on the VirtualScheduler / Runtime
// substrate, and wrap one as a first-class NamedScenario.
//
// The interpreter mirrors the hand-written scenarios in
// components/scenarios.hpp exactly: a shared State (trace, Runtime,
// injection decoration, monitors "m0..", shared vars "v0..") kept alive by
// the spawn closures, declareSnapshotSafe() so incremental exploration
// applies, and threads named "t0..".  Loop state lives in fixed-size stack
// locals (no heap-owning locals cross a schedule point), so fiber snapshots
// capture it correctly.
//
// asScenario() is how generated programs enter the existing machinery:
// the returned NamedScenario is a self-contained value (it owns a copy of
// the Program) whose capability flags are computed from the IR, usable
// anywhere a registry entry is — ExploreConfig::scenario(),
// inject::runCell(), the detector suite.
#pragma once

#include <string>

#include "confail/components/scenario_registry.hpp"
#include "confail/gen/ir.hpp"

namespace confail::gen {

/// Spawn the program's threads on `s` (instrumented form).  The program
/// must be valid (validate() == true); op references past the declared
/// monitor/var counts are undefined behavior.
void interpret(const Program& p, sched::VirtualScheduler& s,
               const components::scenarios::Instruments& ins);

/// Uninstrumented form (exploration program callback).
void interpret(const Program& p, sched::VirtualScheduler& s);

/// Wrap a generated program as a first-class scenario value.
components::scenarios::NamedScenario asScenario(const Program& p,
                                                std::string name);

}  // namespace confail::gen
