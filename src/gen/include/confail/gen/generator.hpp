// Seed-deterministic monitor-program generator.
//
// generate(seed, cfg) draws a well-formed gen::Program from a Xoshiro256
// stream seeded by (seed, cfg) alone — same seed + same config is
// byte-identical IR on every host, every build, every run (the determinism
// property tests compare render() bytes).  All randomness flows through
// confail's seeded RNG; nothing here consults std::random_device, rand()
// or the wall clock.
//
// Two tiers share the machinery:
//
//   * the default tier emits arbitrary well-formed programs — lock nesting,
//     wait/notify placement, loops, unguarded accesses — the food for the
//     differential oracles (incremental == replay, reductions == full
//     enumeration, worker determinism, injection campaigns);
//   * cleanOnly restricts the draw to programs that are deadlock-free and
//     race-free *by construction* (ascending lock order, every var guarded
//     by its designated monitor, no wait/notify), the food for the
//     detector negative-control oracle.
#pragma once

#include <cstdint>

#include "confail/gen/ir.hpp"

namespace confail::gen {

struct GenConfig {
  /// Thread count is drawn from [minThreads, maxThreads].
  int minThreads = 2;
  int maxThreads = 3;
  int maxMonitors = 2;
  int maxVars = 2;
  /// Per-thread op budget is drawn from [3, maxOpsPerThread] (structural
  /// closers — unlocks, loop ends — may exceed it by the open nesting).
  int maxOpsPerThread = 10;
  int maxLoopIters = 2;
  int maxLockDepth = 2;
  bool allowWaitNotify = true;
  bool allowLoops = true;
  /// Deadlock- and race-free by construction (see file comment).
  bool cleanOnly = false;

  /// Mixed into the seed so distinct configs draw distinct streams.
  std::uint64_t streamTag() const;
};

Program generate(std::uint64_t seed, const GenConfig& cfg);

}  // namespace confail::gen
