// Greedy IR shrinking: reduce a failing program to a minimal reproducer.
//
// shrink() repeatedly proposes structurally smaller candidate programs in a
// fixed, deterministic order — drop a whole thread, drop a loop, unroll a
// loop to a single iteration, drop a lock/unlock region or just the pair,
// drop a single leaf op, shrink the declared monitor/var counts — keeping a
// candidate only when it still validates AND the caller's failure predicate
// still holds, then restarts from the accepted program.  The process runs
// to a fixpoint (no candidate accepted in a full pass) or until the attempt
// budget is spent.
//
// Determinism: the candidate order is a pure function of the program, and
// the predicate is assumed deterministic (everything in confail is), so
// shrinking the same program twice yields byte-identical results — the
// shrinker unit tests assert exactly that.
#pragma once

#include <cstdint>
#include <functional>

#include "confail/gen/ir.hpp"

namespace confail::gen {

struct ShrinkOptions {
  /// Cap on predicate evaluations (each candidate that validates costs 1).
  std::size_t maxAttempts = 500;
};

struct ShrinkResult {
  Program program;          ///< the smallest still-failing program found
  std::size_t attempts = 0; ///< predicate evaluations spent
  std::size_t accepted = 0; ///< candidates that kept the failure
  bool fixpoint = false;    ///< a full pass proposed nothing acceptable
};

/// `fails` must return true when the candidate still exhibits the failure.
/// The input program is assumed to fail (it is returned unchanged if no
/// smaller candidate does).
ShrinkResult shrink(const Program& p,
                    const std::function<bool(const Program&)>& fails,
                    const ShrinkOptions& opts = {});

}  // namespace confail::gen
