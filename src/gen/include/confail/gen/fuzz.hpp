// The fuzz campaign: generate → oracle → shrink, over a seed range.
//
// For each seed the harness draws the default-tier program and runs the
// enabled differential oracles on it; when the clean oracle is enabled it
// additionally draws the same seed's cleanOnly-tier program and runs the
// detector negative control on that.  A failing oracle turns into a
// FuzzFailure carrying a greedily shrunk minimal reproducer (the shrink
// predicate is "that same oracle still fails"), and the campaign stops
// after maxFailures failing seeds.
//
// The report follows the confail.injection.v1 conventions: a versioned
// schema (confail.fuzz.v1), machine-readable JSON, a human rendering ending
// in a FUZZ OK|FAIL verdict line, and the two throughput figures
// (generated-programs/sec, oracle explorer-runs/sec) the committed
// BENCH_fuzz.json tracks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "confail/gen/generator.hpp"
#include "confail/gen/ir.hpp"
#include "confail/gen/oracle.hpp"
#include "confail/gen/shrink.hpp"

namespace confail::gen {

struct FuzzOptions {
  std::uint64_t seedBegin = 0;
  std::uint64_t seedEnd = 100;  ///< exclusive
  GenConfig cfg;                ///< default tier (cleanOnly forced off)
  OracleConfig oracle;          ///< which oracles run, and their budgets
  bool shrinkFailures = true;
  ShrinkOptions shrinkOpts;
  std::size_t maxFailures = 5;  ///< stop the campaign after this many
  bool stderrProgress = false;  ///< heartbeat line every 50 seeds
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::string oracle;
  std::string detail;        ///< the original (unshrunk) failure detail
  bool cleanTier = false;    ///< failed on the cleanOnly-tier program
  std::size_t originalOps = 0;
  Program shrunk;            ///< minimal reproducer (== original if -shrink)
  std::size_t shrinkAttempts = 0;
};

struct FuzzReport {
  std::uint64_t seedBegin = 0;
  std::uint64_t seedEnd = 0;
  std::uint64_t seedsRun = 0;
  std::uint64_t programsGenerated = 0;
  std::uint64_t oracleChecks = 0;  ///< oracle outcomes evaluated (not skipped)
  std::uint64_t oracleSkips = 0;
  std::uint64_t exploreRuns = 0;   ///< explorer runs spent (oracles + shrink)
  double elapsedSec = 0.0;
  Sabotage sabotage = Sabotage::None;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  double programsPerSec() const {
    return elapsedSec > 0.0
               ? static_cast<double>(programsGenerated) / elapsedSec
               : 0.0;
  }
  double oracleRunsPerSec() const {
    return elapsedSec > 0.0 ? static_cast<double>(exploreRuns) / elapsedSec
                            : 0.0;
  }

  /// Machine-readable document (schema confail.fuzz.v1).
  std::string toJson() const;
  /// Human rendering; last line is "FUZZ OK" or "FUZZ FAIL".
  std::string human() const;
};

FuzzReport runFuzz(const FuzzOptions& opts);

}  // namespace confail::gen
