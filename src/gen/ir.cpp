#include "confail/gen/ir.hpp"

#include <algorithm>

namespace confail::gen {

const char* opKindName(OpKind k) {
  switch (k) {
    case OpKind::Lock:
      return "lock";
    case OpKind::Unlock:
      return "unlock";
    case OpKind::Wait:
      return "wait";
    case OpKind::Notify:
      return "notify";
    case OpKind::NotifyAll:
      return "notifyAll";
    case OpKind::Read:
      return "read";
    case OpKind::Write:
      return "write";
    case OpKind::Yield:
      return "yield";
    case OpKind::LoopBegin:
      return "loop";
    case OpKind::LoopEnd:
      return "end";
  }
  return "?";
}

namespace {

bool isMonitorOp(OpKind k) {
  return k == OpKind::Lock || k == OpKind::Unlock || k == OpKind::Wait ||
         k == OpKind::Notify || k == OpKind::NotifyAll;
}

bool isVarOp(OpKind k) { return k == OpKind::Read || k == OpKind::Write; }

void renderOp(std::string& out, const Op& op) {
  out += opKindName(op.kind);
  if (isMonitorOp(op.kind)) {
    out += " m";
    out += std::to_string(op.obj);
  } else if (isVarOp(op.kind)) {
    out += " v";
    out += std::to_string(op.obj);
  } else if (op.kind == OpKind::LoopBegin) {
    out += ' ';
    out += std::to_string(op.iters);
  }
}

}  // namespace

std::size_t Program::opCount() const {
  std::size_t n = 0;
  for (const ThreadIR& t : threads) n += t.ops.size();
  return n;
}

bool Program::has(OpKind k) const {
  for (const ThreadIR& t : threads) {
    for (const Op& op : t.ops) {
      if (op.kind == k) return true;
    }
  }
  return false;
}

bool Program::monitorShared() const {
  for (std::uint8_t m = 0; m < monitors; ++m) {
    int lockers = 0;
    for (const ThreadIR& t : threads) {
      const bool locks =
          std::any_of(t.ops.begin(), t.ops.end(), [m](const Op& op) {
            return op.kind == OpKind::Lock && op.obj == m;
          });
      if (locks) ++lockers;
    }
    if (lockers >= 2) return true;
  }
  return false;
}

std::string Program::render() const {
  std::string out = "program seed=" + std::to_string(seed) +
                    " monitors=" + std::to_string(monitors) +
                    " vars=" + std::to_string(vars) +
                    " threads=" + std::to_string(threads.size()) + "\n";
  for (std::size_t ti = 0; ti < threads.size(); ++ti) {
    out += "  t" + std::to_string(ti) + ":";
    std::size_t depth = 0;
    for (const Op& op : threads[ti].ops) {
      if (op.kind == OpKind::LoopEnd && depth > 0) --depth;
      out += "\n    ";
      out.append(depth * 2, ' ');
      renderOp(out, op);
      if (op.kind == OpKind::LoopBegin) ++depth;
    }
    out += "\n";
  }
  return out;
}

bool Program::validate(std::string* why) const {
  auto fail = [why](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (threads.empty()) return fail("no threads");
  if (monitors == 0 && has(OpKind::Lock)) return fail("monitor op, 0 monitors");
  for (std::size_t ti = 0; ti < threads.size(); ++ti) {
    const std::string where = "t" + std::to_string(ti) + ": ";
    std::vector<std::uint8_t> lockStack;
    // Per loop frame: the lock depth at entry (the body must restore it)
    // and whether the body has emitted at least one op.
    struct LoopFrame {
      std::size_t lockBase;
      bool nonEmpty;
    };
    std::vector<LoopFrame> loops;
    for (const Op& op : threads[ti].ops) {
      if (!loops.empty() && op.kind != OpKind::LoopEnd) {
        loops.back().nonEmpty = true;
      }
      switch (op.kind) {
        case OpKind::Lock:
          if (op.obj >= monitors) return fail(where + "lock: bad monitor");
          if (lockStack.size() >= kMaxLockNest) {
            return fail(where + "lock nesting too deep");
          }
          lockStack.push_back(op.obj);
          break;
        case OpKind::Unlock:
          if (lockStack.empty() || lockStack.back() != op.obj) {
            return fail(where + "unlock does not match innermost lock");
          }
          if (!loops.empty() && lockStack.size() <= loops.back().lockBase) {
            return fail(where + "unlock crosses loop boundary");
          }
          lockStack.pop_back();
          break;
        case OpKind::Wait:
        case OpKind::Notify:
        case OpKind::NotifyAll:
          if (op.obj >= monitors) {
            return fail(where + "wait/notify: bad monitor");
          }
          if (std::find(lockStack.begin(), lockStack.end(), op.obj) ==
              lockStack.end()) {
            return fail(where + "wait/notify without holding the monitor");
          }
          break;
        case OpKind::Read:
        case OpKind::Write:
          if (op.obj >= vars) return fail(where + "read/write: bad var");
          break;
        case OpKind::Yield:
          break;
        case OpKind::LoopBegin:
          if (op.iters == 0) return fail(where + "loop with 0 iterations");
          if (loops.size() >= kMaxLoopNest) {
            return fail(where + "loop nesting too deep");
          }
          loops.push_back(LoopFrame{lockStack.size(), false});
          break;
        case OpKind::LoopEnd:
          if (loops.empty()) return fail(where + "end without loop");
          if (!loops.back().nonEmpty) return fail(where + "empty loop body");
          if (lockStack.size() != loops.back().lockBase) {
            return fail(where + "loop body not lock-balanced");
          }
          loops.pop_back();
          break;
      }
    }
    if (!loops.empty()) return fail(where + "unterminated loop");
    if (!lockStack.empty()) return fail(where + "locks held at thread end");
  }
  return true;
}

}  // namespace confail::gen
