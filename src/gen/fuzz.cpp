#include "confail/gen/fuzz.hpp"

#include <chrono>
#include <cstdio>

#include "confail/obs/json.hpp"

namespace confail::gen {

namespace {

const char* sabotageName(Sabotage s) {
  switch (s) {
    case Sabotage::None:
      return "none";
    case Sabotage::DropDeadlocks:
      return "drop-deadlocks";
  }
  return "?";
}

/// The cleanOnly sibling of the default-tier config: same knobs, but the
/// draw is restricted to deadlock/race-free-by-construction programs.
GenConfig cleanConfig(const GenConfig& cfg) {
  GenConfig c = cfg;
  c.cleanOnly = true;
  c.allowWaitNotify = false;
  return c;
}

}  // namespace

FuzzReport runFuzz(const FuzzOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  FuzzReport report;
  report.seedBegin = opts.seedBegin;
  report.seedEnd = opts.seedEnd;
  report.sabotage = opts.oracle.sabotage;

  GenConfig defaultCfg = opts.cfg;
  defaultCfg.cleanOnly = false;
  const GenConfig cleanCfg = cleanConfig(opts.cfg);

  // The clean negative control runs on the clean tier; everything else on
  // the default tier.
  OracleConfig defaultOracle = opts.oracle;
  defaultOracle.checkClean = false;
  OracleConfig cleanOracle = opts.oracle;
  cleanOracle.checkIncremental = false;
  cleanOracle.checkReductions = false;
  cleanOracle.checkWorkers = false;
  cleanOracle.checkInjection = false;
  cleanOracle.checkStreaming = false;
  cleanOracle.checkModel = false;

  const bool anyDefault =
      defaultOracle.checkIncremental || defaultOracle.checkReductions ||
      defaultOracle.checkWorkers || defaultOracle.checkInjection ||
      defaultOracle.checkStreaming || defaultOracle.checkModel;

  for (std::uint64_t seed = opts.seedBegin;
       seed < opts.seedEnd && report.failures.size() < opts.maxFailures;
       ++seed) {
    ++report.seedsRun;
    if (opts.stderrProgress && (seed - opts.seedBegin) % 50 == 0) {
      std::fprintf(stderr, "fuzz: seed %llu (%llu runs so far)\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(report.exploreRuns));
    }

    struct Tier {
      Program program;
      const OracleConfig* oracle;
      bool clean;
    };
    std::vector<Tier> tiers;
    if (anyDefault) {
      tiers.push_back(Tier{generate(seed, defaultCfg), &defaultOracle, false});
    }
    if (opts.oracle.checkClean) {
      tiers.push_back(Tier{generate(seed, cleanCfg), &cleanOracle, true});
    }

    for (const Tier& tier : tiers) {
      ++report.programsGenerated;
      std::string why;
      if (!tier.program.validate(&why)) {
        // A generator bug, not a substrate bug: report it unshrunk.
        FuzzFailure f;
        f.seed = seed;
        f.oracle = "generator-validity";
        f.detail = why;
        f.cleanTier = tier.clean;
        f.originalOps = tier.program.opCount();
        f.shrunk = tier.program;
        report.failures.push_back(std::move(f));
        continue;
      }
      const OracleReport r = runOracles(tier.program, *tier.oracle);
      report.exploreRuns += r.exploreRuns;
      for (const OracleOutcome& o : r.outcomes) {
        if (o.skipped) {
          ++report.oracleSkips;
        } else {
          ++report.oracleChecks;
        }
      }
      const OracleOutcome* fail = r.firstFailure();
      if (fail == nullptr) continue;

      FuzzFailure f;
      f.seed = seed;
      f.oracle = fail->oracle;
      f.detail = fail->detail;
      f.cleanTier = tier.clean;
      f.originalOps = tier.program.opCount();
      f.shrunk = tier.program;
      if (opts.shrinkFailures) {
        const OracleConfig single = onlyOracle(*tier.oracle, fail->oracle);
        std::uint64_t shrinkRuns = 0;
        const ShrinkResult sr = shrink(
            tier.program,
            [&](const Program& cand) {
              const OracleReport rr = runOracles(cand, single);
              shrinkRuns += rr.exploreRuns;
              const OracleOutcome* ff = rr.firstFailure();
              return ff != nullptr && ff->oracle == fail->oracle;
            },
            opts.shrinkOpts);
        report.exploreRuns += shrinkRuns;
        f.shrunk = sr.program;
        f.shrinkAttempts = sr.attempts;
      }
      report.failures.push_back(std::move(f));
      if (report.failures.size() >= opts.maxFailures) break;
    }
  }

  report.elapsedSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

std::string FuzzReport::toJson() const {
  obs::JsonWriter w;
  w.beginObject();
  w.field("schema", "confail.fuzz.v1");
  w.field("seed_begin", seedBegin);
  w.field("seed_end", seedEnd);
  w.field("seeds_run", seedsRun);
  w.field("sabotage", sabotageName(sabotage));
  w.field("programs_generated", programsGenerated);
  w.field("oracle_checks", oracleChecks);
  w.field("oracle_skips", oracleSkips);
  w.field("explore_runs", exploreRuns);
  w.field("elapsed_ms", elapsedSec * 1000.0);
  w.field("programs_per_sec", programsPerSec());
  w.field("oracle_runs_per_sec", oracleRunsPerSec());
  w.key("failures");
  w.beginArray();
  for (const FuzzFailure& f : failures) {
    w.beginObject();
    w.field("seed", f.seed);
    w.field("oracle", f.oracle);
    w.field("detail", f.detail);
    w.field("tier", f.cleanTier ? "clean" : "default");
    w.field("original_ops", f.originalOps);
    w.field("shrunk_ops", f.shrunk.opCount());
    w.field("shrink_attempts", f.shrinkAttempts);
    w.field("shrunk_program", f.shrunk.render());
    w.endObject();
  }
  w.endArray();
  w.field("ok", ok());
  w.endObject();
  return w.str();
}

std::string FuzzReport::human() const {
  std::string out;
  out += "fuzz: seeds [" + std::to_string(seedBegin) + ", " +
         std::to_string(seedEnd) + ")";
  if (sabotage != Sabotage::None) {
    out += std::string(" sabotage=") + sabotageName(sabotage);
  }
  out += "\n";
  out += "  seeds run          " + std::to_string(seedsRun) + "\n";
  out += "  programs generated " + std::to_string(programsGenerated) + "\n";
  out += "  oracle checks      " + std::to_string(oracleChecks) +
         " (skipped " + std::to_string(oracleSkips) + ")\n";
  out += "  explorer runs      " + std::to_string(exploreRuns) + "\n";
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "  throughput         %.1f programs/sec, %.1f oracle "
                "runs/sec\n",
                programsPerSec(), oracleRunsPerSec());
  out += buf;
  for (const FuzzFailure& f : failures) {
    out += "failure: seed " + std::to_string(f.seed) + " oracle " + f.oracle +
           " (" + (f.cleanTier ? "clean" : "default") + " tier)\n";
    out += "  " + f.detail + "\n";
    out += "  shrunk to " + std::to_string(f.shrunk.opCount()) + " ops (from " +
           std::to_string(f.originalOps) + ", " +
           std::to_string(f.shrinkAttempts) + " attempts)\n";
    out += f.shrunk.render();
  }
  out += ok() ? "FUZZ OK\n" : "FUZZ FAIL\n";
  return out;
}

}  // namespace confail::gen
