#include "confail/cofg/method_model.hpp"

namespace confail::cofg {

const char* itemKindName(ItemKind k) {
  switch (k) {
    case ItemKind::WaitLoop: return "wait-loop";
    case ItemKind::WaitIf: return "wait-if";
    case ItemKind::Notify: return "notify";
    case ItemKind::NotifyAll: return "notifyAll";
  }
  return "?";
}

}  // namespace confail::cofg
