// Concurrency Flow Graph (CoFG) construction — paper Section 6.
//
// Nodes are the concurrency statements of one method (plus Start/End);
// each arc is the code region between two consecutive concurrency
// statements along some feasible path, annotated with
//   * the Figure-1 transitions fired along that region, and
//   * the guard condition required to traverse it.
//
// For the producer-consumer receive() method the construction yields
// exactly the paper's five arcs:
//   1. start -> wait        (guard true on entry)         T1 T2 T3
//   2. wait -> wait         (guard true again after wake) T3 T5 T2 T3
//   3. wait -> notifyAll    (guard false after wake)      T3 T5 T2 T5
//   4. start -> notifyAll   (guard false on entry)        T1 T2 T5
//   5. notifyAll -> end                                   T5 T4
//
// Note on arc 3: the paper prints "T3, T4, T5".  Deriving the annotation
// from the model, a woken waiter fires T5 (woken) then T2 (re-acquire)
// before reaching the notifyAll — there is no lock release (T4) between a
// wait and a notifyAll in the same synchronized method.  We reproduce the
// paper's printed list in the Figure-3 bench for fidelity but mark it as a
// suspected erratum; the computed annotation is used everywhere else.
// All four other arcs match the paper exactly under the same derivation
// rule (source-node firings followed by destination-node firings).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "confail/cofg/method_model.hpp"

namespace confail::cofg {

enum class NodeKind : std::uint8_t { Start, Wait, Notify, NotifyAll, End };

const char* nodeKindName(NodeKind k);

struct Node {
  NodeKind kind = NodeKind::Start;
  /// Index of the generating item in the MethodModel sequence
  /// (disambiguates methods with several waits or notifies); 0 for
  /// Start/End.
  std::uint32_t site = 0;

  bool operator==(const Node&) const = default;
  std::string label() const;
};

struct CofgArc {
  Node src;
  Node dst;
  /// Figure-1 transition names fired traversing this arc, e.g. {"T1","T2","T3"}.
  std::vector<std::string> transitions;
  /// Guard requirement to traverse the arc, e.g. "guard (curPos == 0) true on entry".
  std::string condition;

  std::string label() const { return src.label() + " -> " + dst.label(); }
  std::string transitionString() const;
};

class Cofg {
 public:
  /// Build the CoFG of a method model (see file comment for the rules).
  static Cofg build(const MethodModel& model);

  const std::string& methodName() const { return methodName_; }
  const std::vector<CofgArc>& arcs() const { return arcs_; }

  /// Index of the arc src->dst, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t findArc(const Node& src, const Node& dst) const;

  /// Arcs leaving `src`, as indices.
  std::vector<std::size_t> arcsFrom(const Node& src) const;

  /// Graphviz DOT rendering.
  std::string toDot() const;

  /// Human-readable arc listing (one line per arc).
  std::string describe() const;

 private:
  std::string methodName_;
  std::vector<CofgArc> arcs_;
};

}  // namespace confail::cofg
