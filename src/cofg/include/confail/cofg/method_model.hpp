// MethodModel: the concurrency-statement skeleton of a component method,
// from which its Concurrency Flow Graph is constructed (paper Section 6).
//
// Only concurrency-relevant statements matter for the CoFG; everything else
// is an opaque code region on the arcs between them.  A method is modelled
// as an ordered sequence of items:
//   * WaitLoop  — `while (guard) wait();`  (the correct Java idiom)
//   * WaitIf    — `if (guard) wait();`     (the classic EF-T5-vulnerable bug;
//                  modelable so mutant CoFGs can be built and compared)
//   * Notify    — `notify();`
//   * NotifyAll — `notifyAll();`
// plus the implicit Start (entering the synchronized method: T1,T2) and End
// (leaving it: T4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace confail::cofg {

enum class ItemKind : std::uint8_t { WaitLoop, WaitIf, Notify, NotifyAll };

const char* itemKindName(ItemKind k);

struct Item {
  ItemKind kind;
  std::string guardDescription;  ///< e.g. "curPos == 0" (wait items only)
  /// Notify items only: the call sits under a condition (e.g. a barrier's
  /// last arriver, a latch reaching zero) and control may bypass it.
  bool optional = false;
};

class MethodModel {
 public:
  /// `isSynchronized` is true for `synchronized` methods (the normal case);
  /// false models a method whose body is not a critical section, in which
  /// case Start/End contribute no lock transitions to arc annotations.
  explicit MethodModel(std::string name, bool isSynchronized = true)
      : name_(std::move(name)), synchronized_(isSynchronized) {}

  MethodModel& waitLoop(std::string guardDescription) {
    items_.push_back(Item{ItemKind::WaitLoop, std::move(guardDescription)});
    return *this;
  }
  MethodModel& waitIf(std::string guardDescription) {
    items_.push_back(Item{ItemKind::WaitIf, std::move(guardDescription)});
    return *this;
  }
  MethodModel& notifyOne() {
    items_.push_back(Item{ItemKind::Notify, {}, false});
    return *this;
  }
  MethodModel& notifyAll() {
    items_.push_back(Item{ItemKind::NotifyAll, {}, false});
    return *this;
  }
  /// A notify executed only under some condition — control may skip it
  /// (e.g. `if (last) notifyAll();`).
  MethodModel& notifyOneOptional(std::string condition) {
    items_.push_back(Item{ItemKind::Notify, std::move(condition), true});
    return *this;
  }
  MethodModel& notifyAllOptional(std::string condition) {
    items_.push_back(Item{ItemKind::NotifyAll, std::move(condition), true});
    return *this;
  }

  const std::string& name() const { return name_; }
  bool isSynchronized() const { return synchronized_; }
  const std::vector<Item>& items() const { return items_; }

 private:
  std::string name_;
  bool synchronized_;
  std::vector<Item> items_;
};

}  // namespace confail::cofg
