// CoFG arc-coverage measurement over execution traces.
//
// The tracker replays a trace and, for each invocation of the instrumented
// method (bracketed by MethodEnter/MethodExit events), walks the CoFG:
// every concurrency event (WaitBegin, NotifyCall, NotifyAllCall) advances
// the cursor along the matching arc, and MethodExit closes the walk with
// the arc into End.  The result is a per-arc traversal count — the
// coverage measure the paper proposes as its test-selection criterion —
// plus any anomalies (event sequences with no matching arc, which indicate
// that the executed code does not conform to the declared MethodModel).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "confail/cofg/cofg.hpp"
#include "confail/events/trace.hpp"

namespace confail::obs {
class Gauge;
class Registry;
}

namespace confail::cofg {

struct CoverageAnomaly {
  std::uint64_t eventSeq = 0;
  events::ThreadId thread = events::kNoThread;
  std::string message;
};

// The tracker works both offline (process a recorded trace) and online
// (registered as an EventSink on the live Trace, it measures coverage
// *while the test executes* — the paper's future-work item 3, "coverage
// analysis during testing").
class CoverageTracker : public events::EventSink {
 public:
  CoverageTracker(const Cofg& graph, events::MethodId method)
      : graph_(&graph), method_(method), hits_(graph.arcs().size(), 0) {}

  /// Replay a full trace (only events of the tracked method matter).
  void process(const std::vector<events::Event>& events);

  /// Online mode: feed one event as it happens.  Register with
  /// Trace::addSink(&tracker) before spawning threads.
  void onEvent(const events::Event& e) override;

  /// Per-arc traversal counts, parallel to graph().arcs().
  const std::vector<std::uint64_t>& hits() const { return hits_; }

  std::size_t coveredArcs() const;
  std::size_t totalArcs() const { return hits_.size(); }
  double coverageFraction() const;

  /// Indices of arcs never traversed.
  std::vector<std::size_t> uncoveredArcs() const;

  /// Sequences of events that did not match any arc (model mismatch).
  const std::vector<CoverageAnomaly>& anomalies() const { return anomalies_; }

  const Cofg& graph() const { return *graph_; }

  /// Human-readable coverage report.
  std::string report(const events::Trace& trace) const;

  /// For each uncovered arc, a suggested node path from Start through the
  /// arc to End (a scenario a tester must construct), with the arc
  /// conditions that must be made true.
  std::string suggestSequences() const;

  /// One-shot publication of the current coverage to the
  /// <prefix>.arcs_covered / <prefix>.arcs_total / <prefix>.coverage gauges
  /// on `metrics`.  inject::ExploreConfig::capture() calls this for
  /// explored scenarios; see docs/injection.md (Migration).
  void publishTo(obs::Registry& metrics, const std::string& prefix) const;

 private:
  void onConcurrencyEvent(const events::Event& e, NodeKind kind);

  const Cofg* graph_;
  events::MethodId method_;
  std::vector<std::uint64_t> hits_;
  std::vector<CoverageAnomaly> anomalies_;

  // Per-thread cursor stacks (stack: methods may be re-entered recursively).
  std::map<events::ThreadId, std::vector<Node>> cursor_;
};

}  // namespace confail::cofg
