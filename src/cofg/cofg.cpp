#include "confail/cofg/cofg.hpp"

#include <sstream>

#include "confail/support/assert.hpp"
#include "confail/support/text.hpp"

namespace confail::cofg {

const char* nodeKindName(NodeKind k) {
  switch (k) {
    case NodeKind::Start: return "start";
    case NodeKind::Wait: return "wait";
    case NodeKind::Notify: return "notify";
    case NodeKind::NotifyAll: return "notifyAll";
    case NodeKind::End: return "end";
  }
  return "?";
}

std::string Node::label() const {
  std::string s = nodeKindName(kind);
  if (kind == NodeKind::Wait || kind == NodeKind::Notify ||
      kind == NodeKind::NotifyAll) {
    s += "#" + std::to_string(site);
  }
  return s;
}

std::string CofgArc::transitionString() const {
  return join(transitions, ", ");
}

namespace {

// Transitions fired when execution *leaves* a node (source side of an arc).
std::vector<std::string> sourceFirings(const Node& n, bool synced) {
  switch (n.kind) {
    case NodeKind::Start:
      // Entering the synchronized method: request + acquire the lock.
      return synced ? std::vector<std::string>{"T1", "T2"}
                    : std::vector<std::string>{};
    case NodeKind::Wait:
      // The wait itself (T3), being woken (T5), re-acquiring the lock (T2).
      return {"T3", "T5", "T2"};
    case NodeKind::Notify:
    case NodeKind::NotifyAll:
      // The notify call fires T5 of the woken waiter(s).
      return {"T5"};
    case NodeKind::End:
      break;
  }
  CONFAIL_ASSERT(false, "End cannot be an arc source");
  return {};
}

// Transitions fired when execution *reaches* a node (destination side).
std::vector<std::string> destFirings(const Node& n, bool synced) {
  switch (n.kind) {
    case NodeKind::Wait:
      return {"T3"};
    case NodeKind::Notify:
    case NodeKind::NotifyAll:
      return {"T5"};
    case NodeKind::End:
      // Leaving the synchronized method releases the lock.
      return synced ? std::vector<std::string>{"T4"}
                    : std::vector<std::string>{};
    case NodeKind::Start:
      break;
  }
  CONFAIL_ASSERT(false, "Start cannot be an arc destination");
  return {};
}

std::vector<std::string> concat(std::vector<std::string> a,
                                const std::vector<std::string>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

// The arc source cut short: for arc annotation of wait -> wait, the source
// wait's firings are [T3, T5, T2] and the destination adds T3, matching the
// paper's "T3, T5, T2, T3".

struct PendingSource {
  Node node;
  std::string leaveCondition;  // condition accumulated for leaving this node
};

}  // namespace

Cofg Cofg::build(const MethodModel& model) {
  Cofg g;
  g.methodName_ = model.name();
  const bool synced = model.isSynchronized();

  auto addArc = [&](const Node& src, const Node& dst, std::string condition) {
    CofgArc arc;
    arc.src = src;
    arc.dst = dst;
    arc.transitions = concat(sourceFirings(src, synced), destFirings(dst, synced));
    arc.condition = std::move(condition);
    g.arcs_.push_back(std::move(arc));
  };

  // Sources from which control may reach the next concurrency statement,
  // each with the guard condition that routes control past/out of it.
  std::vector<PendingSource> sources{
      PendingSource{Node{NodeKind::Start, 0}, ""}};

  const auto& items = model.items();
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    const Item& item = items[i];
    switch (item.kind) {
      case ItemKind::WaitLoop:
      case ItemKind::WaitIf: {
        Node waitNode{NodeKind::Wait, i};
        const std::string guard = item.guardDescription.empty()
                                      ? std::string("guard")
                                      : "(" + item.guardDescription + ")";
        // Reaching the wait requires the guard to hold.
        for (const PendingSource& s : sources) {
          std::string cond = s.leaveCondition;
          if (!cond.empty()) cond += "; ";
          cond += guard + " true on entry";
          addArc(s.node, waitNode, cond);
        }
        if (item.kind == ItemKind::WaitLoop) {
          // Woken but the guard holds again: wait -> wait.
          addArc(waitNode, waitNode, guard + " true again after wake");
        }
        // Control continues either by never waiting (guard false on entry:
        // previous sources persist) or by waking with the guard false.
        for (PendingSource& s : sources) {
          if (!s.leaveCondition.empty()) s.leaveCondition += "; ";
          s.leaveCondition += guard + " false on entry";
        }
        sources.push_back(PendingSource{
            waitNode, guard + (item.kind == ItemKind::WaitLoop
                                   ? " false after wake"
                                   : " (no re-check: if-guard)")});
        break;
      }
      case ItemKind::Notify:
      case ItemKind::NotifyAll: {
        Node n{item.kind == ItemKind::Notify ? NodeKind::Notify
                                             : NodeKind::NotifyAll,
               i};
        for (const PendingSource& s : sources) {
          std::string cond = s.leaveCondition;
          if (item.optional && !item.guardDescription.empty()) {
            if (!cond.empty()) cond += "; ";
            cond += "(" + item.guardDescription + ")";
          }
          addArc(s.node, n, cond);
        }
        if (item.optional) {
          // Control may bypass the conditional notify: previous sources
          // persist alongside the notify node.
          for (PendingSource& s : sources) {
            if (!s.leaveCondition.empty()) s.leaveCondition += "; ";
            s.leaveCondition += "not (" + item.guardDescription + ")";
          }
          sources.push_back(PendingSource{n, ""});
        } else {
          sources.assign(1, PendingSource{n, ""});
        }
        break;
      }
    }
  }

  Node end{NodeKind::End, 0};
  for (const PendingSource& s : sources) {
    addArc(s.node, end, s.leaveCondition);
  }
  return g;
}

std::size_t Cofg::findArc(const Node& src, const Node& dst) const {
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (arcs_[i].src == src && arcs_[i].dst == dst) return i;
  }
  return npos;
}

std::vector<std::size_t> Cofg::arcsFrom(const Node& src) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (arcs_[i].src == src) out.push_back(i);
  }
  return out;
}

std::string Cofg::toDot() const {
  std::ostringstream os;
  os << "digraph \"" << methodName_ << "\" {\n  rankdir=TB;\n";
  for (const CofgArc& a : arcs_) {
    os << "  \"" << a.src.label() << "\" -> \"" << a.dst.label()
       << "\" [label=\"" << a.transitionString() << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string Cofg::describe() const {
  std::ostringstream os;
  os << "CoFG for " << methodName_ << " (" << arcs_.size() << " arcs):\n";
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    const CofgArc& a = arcs_[i];
    os << "  " << (i + 1) << ". " << a.label() << "   fires: "
       << a.transitionString();
    if (!a.condition.empty()) os << "   when: " << a.condition;
    os << '\n';
  }
  return os.str();
}

}  // namespace confail::cofg
