#include "confail/cofg/coverage.hpp"

#include <sstream>

#include "confail/obs/metrics.hpp"
#include "confail/support/assert.hpp"

namespace confail::cofg {

using events::Event;
using events::EventKind;

void CoverageTracker::onConcurrencyEvent(const Event& e, NodeKind kind) {
  auto it = cursor_.find(e.thread);
  if (it == cursor_.end() || it->second.empty()) return;  // outside method
  Node& cur = it->second.back();

  // Find an arc from the cursor to a node of the required kind.  Site
  // ambiguity (several waits reachable from one node) is resolved by first
  // match — adequate for component methods, which in practice have one
  // concurrency statement per kind between guards.
  for (std::size_t idx : graph_->arcsFrom(cur)) {
    if (graph_->arcs()[idx].dst.kind == kind) {
      ++hits_[idx];
      cur = graph_->arcs()[idx].dst;
      return;
    }
  }
  anomalies_.push_back(CoverageAnomaly{
      e.seq, e.thread,
      "no CoFG arc from " + cur.label() + " to a " +
          std::string(nodeKindName(kind)) + " node"});
}

void CoverageTracker::onEvent(const Event& e) {
  switch (e.kind) {
    case EventKind::MethodEnter:
      if (static_cast<events::MethodId>(e.aux) == method_) {
        cursor_[e.thread].push_back(Node{NodeKind::Start, 0});
      }
      break;
    case EventKind::MethodExit:
      if (static_cast<events::MethodId>(e.aux) == method_) {
        auto it = cursor_.find(e.thread);
        if (it != cursor_.end() && !it->second.empty()) {
          onConcurrencyEvent(e, NodeKind::End);
          it->second.pop_back();
        }
      }
      break;
    case EventKind::WaitBegin:
      if (e.method == method_) onConcurrencyEvent(e, NodeKind::Wait);
      break;
    case EventKind::NotifyCall:
      if (e.method == method_) onConcurrencyEvent(e, NodeKind::Notify);
      break;
    case EventKind::NotifyAllCall:
      if (e.method == method_) onConcurrencyEvent(e, NodeKind::NotifyAll);
      break;
    default:
      break;
  }
}

void CoverageTracker::process(const std::vector<Event>& events) {
  for (const Event& e : events) onEvent(e);
}

void CoverageTracker::publishTo(obs::Registry& metrics,
                                const std::string& prefix) const {
  metrics.gauge(prefix + ".arcs_covered")
      .set(static_cast<double>(coveredArcs()));
  metrics.gauge(prefix + ".arcs_total").set(static_cast<double>(totalArcs()));
  metrics.gauge(prefix + ".coverage").set(coverageFraction());
}

std::size_t CoverageTracker::coveredArcs() const {
  std::size_t n = 0;
  for (std::uint64_t h : hits_) n += h > 0 ? 1 : 0;
  return n;
}

double CoverageTracker::coverageFraction() const {
  if (hits_.empty()) return 1.0;
  return static_cast<double>(coveredArcs()) / static_cast<double>(hits_.size());
}

std::vector<std::size_t> CoverageTracker::uncoveredArcs() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < hits_.size(); ++i) {
    if (hits_[i] == 0) out.push_back(i);
  }
  return out;
}

std::string CoverageTracker::report(const events::Trace& trace) const {
  std::ostringstream os;
  os << "CoFG coverage for " << trace.methodName(method_) << ": "
     << coveredArcs() << "/" << totalArcs() << " arcs ("
     << static_cast<int>(coverageFraction() * 100.0) << "%)\n";
  const auto& arcs = graph_->arcs();
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    os << "  [" << (hits_[i] > 0 ? "x" : " ") << "] " << arcs[i].label()
       << "  (" << hits_[i] << " traversals)"
       << "  fires: " << arcs[i].transitionString() << '\n';
  }
  if (!anomalies_.empty()) {
    os << "  anomalies (" << anomalies_.size()
       << " — executed code diverges from the declared model):\n";
    for (const auto& a : anomalies_) {
      os << "    seq=" << a.eventSeq << " thread=" << a.thread << ": "
         << a.message << '\n';
    }
  }
  return os.str();
}

std::string CoverageTracker::suggestSequences() const {
  std::ostringstream os;
  auto uncovered = uncoveredArcs();
  if (uncovered.empty()) {
    os << "all arcs covered; no additional sequences needed\n";
    return os.str();
  }
  const auto& arcs = graph_->arcs();
  for (std::size_t idx : uncovered) {
    const CofgArc& a = arcs[idx];
    os << "uncovered: " << a.label() << '\n';
    // Build a path Start -> ... -> src (BFS over arcs), then the arc, then
    // greedily to End.
    std::vector<Node> path;
    // BFS from Start to a.src.
    struct Visit { Node node; std::vector<Node> path; };
    std::vector<Visit> queue{Visit{Node{NodeKind::Start, 0}, {Node{NodeKind::Start, 0}}}};
    std::vector<Node> seen{Node{NodeKind::Start, 0}};
    bool found = a.src == Node{NodeKind::Start, 0};
    if (found) path = queue.front().path;
    for (std::size_t qi = 0; qi < queue.size() && !found; ++qi) {
      for (std::size_t e : graph_->arcsFrom(queue[qi].node)) {
        Node next = arcs[e].dst;
        bool visited = false;
        for (const Node& s : seen) visited = visited || s == next;
        if (visited) continue;
        seen.push_back(next);
        auto p = queue[qi].path;
        p.push_back(next);
        if (next == a.src) {
          path = p;
          found = true;
          break;
        }
        queue.push_back(Visit{next, std::move(p)});
      }
    }
    if (!found) {
      os << "  (source node unreachable from start — dead arc)\n";
      continue;
    }
    path.push_back(a.dst);
    // Greedy continuation to End.
    Node cur = a.dst;
    std::size_t guard = 0;
    while (!(cur.kind == NodeKind::End) && guard++ < 16) {
      auto outs = graph_->arcsFrom(cur);
      if (outs.empty()) break;
      // Prefer an arc that makes progress (not a self-loop).
      std::size_t pick = outs[0];
      for (std::size_t e : outs) {
        if (!(arcs[e].dst == cur)) {
          pick = e;
          break;
        }
      }
      cur = arcs[pick].dst;
      path.push_back(cur);
    }
    os << "  drive the method through:";
    for (const Node& n : path) os << ' ' << n.label();
    os << "\n  requiring: " << (a.condition.empty() ? "(none)" : a.condition)
       << '\n';
  }
  return os.str();
}

}  // namespace confail::cofg
