# Empty dependencies file for ablation_cofg_criterion.
# This may be replaced when dependencies are built.
