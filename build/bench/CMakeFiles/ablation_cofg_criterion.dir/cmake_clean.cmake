file(REMOVE_RECURSE
  "CMakeFiles/ablation_cofg_criterion.dir/ablation_cofg_criterion.cpp.o"
  "CMakeFiles/ablation_cofg_criterion.dir/ablation_cofg_criterion.cpp.o.d"
  "ablation_cofg_criterion"
  "ablation_cofg_criterion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cofg_criterion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
