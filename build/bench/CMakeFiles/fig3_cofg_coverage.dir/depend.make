# Empty dependencies file for fig3_cofg_coverage.
# This may be replaced when dependencies are built.
