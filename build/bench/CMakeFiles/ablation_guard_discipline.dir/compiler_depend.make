# Empty compiler generated dependencies file for ablation_guard_discipline.
# This may be replaced when dependencies are built.
