file(REMOVE_RECURSE
  "CMakeFiles/ablation_guard_discipline.dir/ablation_guard_discipline.cpp.o"
  "CMakeFiles/ablation_guard_discipline.dir/ablation_guard_discipline.cpp.o.d"
  "ablation_guard_discipline"
  "ablation_guard_discipline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_guard_discipline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
