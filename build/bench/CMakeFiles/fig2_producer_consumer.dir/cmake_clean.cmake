file(REMOVE_RECURSE
  "CMakeFiles/fig2_producer_consumer.dir/fig2_producer_consumer.cpp.o"
  "CMakeFiles/fig2_producer_consumer.dir/fig2_producer_consumer.cpp.o.d"
  "fig2_producer_consumer"
  "fig2_producer_consumer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_producer_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
