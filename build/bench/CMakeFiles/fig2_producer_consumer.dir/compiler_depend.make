# Empty compiler generated dependencies file for fig2_producer_consumer.
# This may be replaced when dependencies are built.
