# Empty compiler generated dependencies file for future_work_criteria_comparison.
# This may be replaced when dependencies are built.
