file(REMOVE_RECURSE
  "CMakeFiles/future_work_criteria_comparison.dir/future_work_criteria_comparison.cpp.o"
  "CMakeFiles/future_work_criteria_comparison.dir/future_work_criteria_comparison.cpp.o.d"
  "future_work_criteria_comparison"
  "future_work_criteria_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_work_criteria_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
