# Empty dependencies file for future_work_components.
# This may be replaced when dependencies are built.
