file(REMOVE_RECURSE
  "CMakeFiles/future_work_components.dir/future_work_components.cpp.o"
  "CMakeFiles/future_work_components.dir/future_work_components.cpp.o.d"
  "future_work_components"
  "future_work_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_work_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
