#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "confail::confail_support" for configuration "RelWithDebInfo"
set_property(TARGET confail::confail_support APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(confail::confail_support PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libconfail_support.a"
  )

list(APPEND _cmake_import_check_targets confail::confail_support )
list(APPEND _cmake_import_check_files_for_confail::confail_support "${_IMPORT_PREFIX}/lib/libconfail_support.a" )

# Import target "confail::confail_events" for configuration "RelWithDebInfo"
set_property(TARGET confail::confail_events APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(confail::confail_events PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libconfail_events.a"
  )

list(APPEND _cmake_import_check_targets confail::confail_events )
list(APPEND _cmake_import_check_files_for_confail::confail_events "${_IMPORT_PREFIX}/lib/libconfail_events.a" )

# Import target "confail::confail_sched" for configuration "RelWithDebInfo"
set_property(TARGET confail::confail_sched APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(confail::confail_sched PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libconfail_sched.a"
  )

list(APPEND _cmake_import_check_targets confail::confail_sched )
list(APPEND _cmake_import_check_files_for_confail::confail_sched "${_IMPORT_PREFIX}/lib/libconfail_sched.a" )

# Import target "confail::confail_monitor" for configuration "RelWithDebInfo"
set_property(TARGET confail::confail_monitor APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(confail::confail_monitor PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libconfail_monitor.a"
  )

list(APPEND _cmake_import_check_targets confail::confail_monitor )
list(APPEND _cmake_import_check_files_for_confail::confail_monitor "${_IMPORT_PREFIX}/lib/libconfail_monitor.a" )

# Import target "confail::confail_clock" for configuration "RelWithDebInfo"
set_property(TARGET confail::confail_clock APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(confail::confail_clock PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libconfail_clock.a"
  )

list(APPEND _cmake_import_check_targets confail::confail_clock )
list(APPEND _cmake_import_check_files_for_confail::confail_clock "${_IMPORT_PREFIX}/lib/libconfail_clock.a" )

# Import target "confail::confail_conan" for configuration "RelWithDebInfo"
set_property(TARGET confail::confail_conan APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(confail::confail_conan PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libconfail_conan.a"
  )

list(APPEND _cmake_import_check_targets confail::confail_conan )
list(APPEND _cmake_import_check_files_for_confail::confail_conan "${_IMPORT_PREFIX}/lib/libconfail_conan.a" )

# Import target "confail::confail_petri" for configuration "RelWithDebInfo"
set_property(TARGET confail::confail_petri APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(confail::confail_petri PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libconfail_petri.a"
  )

list(APPEND _cmake_import_check_targets confail::confail_petri )
list(APPEND _cmake_import_check_files_for_confail::confail_petri "${_IMPORT_PREFIX}/lib/libconfail_petri.a" )

# Import target "confail::confail_cofg" for configuration "RelWithDebInfo"
set_property(TARGET confail::confail_cofg APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(confail::confail_cofg PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libconfail_cofg.a"
  )

list(APPEND _cmake_import_check_targets confail::confail_cofg )
list(APPEND _cmake_import_check_files_for_confail::confail_cofg "${_IMPORT_PREFIX}/lib/libconfail_cofg.a" )

# Import target "confail::confail_detect" for configuration "RelWithDebInfo"
set_property(TARGET confail::confail_detect APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(confail::confail_detect PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libconfail_detect.a"
  )

list(APPEND _cmake_import_check_targets confail::confail_detect )
list(APPEND _cmake_import_check_files_for_confail::confail_detect "${_IMPORT_PREFIX}/lib/libconfail_detect.a" )

# Import target "confail::confail_taxonomy" for configuration "RelWithDebInfo"
set_property(TARGET confail::confail_taxonomy APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(confail::confail_taxonomy PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libconfail_taxonomy.a"
  )

list(APPEND _cmake_import_check_targets confail::confail_taxonomy )
list(APPEND _cmake_import_check_files_for_confail::confail_taxonomy "${_IMPORT_PREFIX}/lib/libconfail_taxonomy.a" )

# Import target "confail::confail_components" for configuration "RelWithDebInfo"
set_property(TARGET confail::confail_components APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(confail::confail_components PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libconfail_components.a"
  )

list(APPEND _cmake_import_check_targets confail::confail_components )
list(APPEND _cmake_import_check_files_for_confail::confail_components "${_IMPORT_PREFIX}/lib/libconfail_components.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
