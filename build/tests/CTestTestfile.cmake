# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_events[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_clock[1]_include.cmake")
include("/root/repo/build/tests/test_conan[1]_include.cmake")
include("/root/repo/build/tests/test_conan_extra[1]_include.cmake")
include("/root/repo/build/tests/test_petri[1]_include.cmake")
include("/root/repo/build/tests/test_cofg[1]_include.cmake")
include("/root/repo/build/tests/test_detect[1]_include.cmake")
include("/root/repo/build/tests/test_detect_extra[1]_include.cmake")
include("/root/repo/build/tests/test_taxonomy[1]_include.cmake")
include("/root/repo/build/tests/test_components[1]_include.cmake")
include("/root/repo/build/tests/test_property_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_property_components[1]_include.cmake")
include("/root/repo/build/tests/test_property_sched[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_fifo_lock[1]_include.cmake")
include("/root/repo/build/tests/test_alarm_clock[1]_include.cmake")
add_test(trace_tool_selftest "/root/repo/build/tools/confail_trace" "selftest")
set_tests_properties(trace_tool_selftest PROPERTIES  PASS_REGULAR_EXPRESSION "SELFTEST OK" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
