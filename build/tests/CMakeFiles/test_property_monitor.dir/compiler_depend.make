# Empty compiler generated dependencies file for test_property_monitor.
# This may be replaced when dependencies are built.
