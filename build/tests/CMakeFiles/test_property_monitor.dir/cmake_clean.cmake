file(REMOVE_RECURSE
  "CMakeFiles/test_property_monitor.dir/property_monitor_test.cpp.o"
  "CMakeFiles/test_property_monitor.dir/property_monitor_test.cpp.o.d"
  "test_property_monitor"
  "test_property_monitor.pdb"
  "test_property_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
