# Empty compiler generated dependencies file for test_property_sched.
# This may be replaced when dependencies are built.
