file(REMOVE_RECURSE
  "CMakeFiles/test_property_sched.dir/property_sched_test.cpp.o"
  "CMakeFiles/test_property_sched.dir/property_sched_test.cpp.o.d"
  "test_property_sched"
  "test_property_sched.pdb"
  "test_property_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
