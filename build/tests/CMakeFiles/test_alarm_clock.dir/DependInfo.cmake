
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alarm_clock_test.cpp" "tests/CMakeFiles/test_alarm_clock.dir/alarm_clock_test.cpp.o" "gcc" "tests/CMakeFiles/test_alarm_clock.dir/alarm_clock_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/confail_support.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/confail_events.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/confail_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/confail_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/confail_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/conan/CMakeFiles/confail_conan.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/confail_petri.dir/DependInfo.cmake"
  "/root/repo/build/src/cofg/CMakeFiles/confail_cofg.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/confail_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/confail_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/confail_components.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
