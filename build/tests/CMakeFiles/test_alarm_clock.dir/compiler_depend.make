# Empty compiler generated dependencies file for test_alarm_clock.
# This may be replaced when dependencies are built.
