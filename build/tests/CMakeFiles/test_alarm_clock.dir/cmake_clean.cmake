file(REMOVE_RECURSE
  "CMakeFiles/test_alarm_clock.dir/alarm_clock_test.cpp.o"
  "CMakeFiles/test_alarm_clock.dir/alarm_clock_test.cpp.o.d"
  "test_alarm_clock"
  "test_alarm_clock.pdb"
  "test_alarm_clock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alarm_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
