# Empty compiler generated dependencies file for test_property_components.
# This may be replaced when dependencies are built.
