file(REMOVE_RECURSE
  "CMakeFiles/test_property_components.dir/property_components_test.cpp.o"
  "CMakeFiles/test_property_components.dir/property_components_test.cpp.o.d"
  "test_property_components"
  "test_property_components.pdb"
  "test_property_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
