file(REMOVE_RECURSE
  "CMakeFiles/test_cofg.dir/cofg_test.cpp.o"
  "CMakeFiles/test_cofg.dir/cofg_test.cpp.o.d"
  "test_cofg"
  "test_cofg.pdb"
  "test_cofg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cofg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
