# Empty compiler generated dependencies file for test_cofg.
# This may be replaced when dependencies are built.
