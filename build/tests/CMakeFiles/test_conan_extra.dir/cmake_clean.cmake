file(REMOVE_RECURSE
  "CMakeFiles/test_conan_extra.dir/conan_extra_test.cpp.o"
  "CMakeFiles/test_conan_extra.dir/conan_extra_test.cpp.o.d"
  "test_conan_extra"
  "test_conan_extra.pdb"
  "test_conan_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conan_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
