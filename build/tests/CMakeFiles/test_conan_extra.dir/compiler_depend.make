# Empty compiler generated dependencies file for test_conan_extra.
# This may be replaced when dependencies are built.
