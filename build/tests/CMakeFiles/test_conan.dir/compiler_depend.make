# Empty compiler generated dependencies file for test_conan.
# This may be replaced when dependencies are built.
