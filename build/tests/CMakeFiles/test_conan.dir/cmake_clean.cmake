file(REMOVE_RECURSE
  "CMakeFiles/test_conan.dir/conan_test.cpp.o"
  "CMakeFiles/test_conan.dir/conan_test.cpp.o.d"
  "test_conan"
  "test_conan.pdb"
  "test_conan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
