file(REMOVE_RECURSE
  "CMakeFiles/test_petri.dir/petri_test.cpp.o"
  "CMakeFiles/test_petri.dir/petri_test.cpp.o.d"
  "test_petri"
  "test_petri.pdb"
  "test_petri[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
