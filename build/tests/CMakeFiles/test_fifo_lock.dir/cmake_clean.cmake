file(REMOVE_RECURSE
  "CMakeFiles/test_fifo_lock.dir/fifo_lock_test.cpp.o"
  "CMakeFiles/test_fifo_lock.dir/fifo_lock_test.cpp.o.d"
  "test_fifo_lock"
  "test_fifo_lock.pdb"
  "test_fifo_lock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifo_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
