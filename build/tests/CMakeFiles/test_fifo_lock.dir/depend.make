# Empty dependencies file for test_fifo_lock.
# This may be replaced when dependencies are built.
