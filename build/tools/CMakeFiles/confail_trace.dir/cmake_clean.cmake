file(REMOVE_RECURSE
  "CMakeFiles/confail_trace.dir/trace_tool.cpp.o"
  "CMakeFiles/confail_trace.dir/trace_tool.cpp.o.d"
  "confail_trace"
  "confail_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
