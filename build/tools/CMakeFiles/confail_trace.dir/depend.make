# Empty dependencies file for confail_trace.
# This may be replaced when dependencies are built.
