# Empty dependencies file for confail_clock.
# This may be replaced when dependencies are built.
