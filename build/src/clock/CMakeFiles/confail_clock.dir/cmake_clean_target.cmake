file(REMOVE_RECURSE
  "libconfail_clock.a"
)
