
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clock/abstract_clock.cpp" "src/clock/CMakeFiles/confail_clock.dir/abstract_clock.cpp.o" "gcc" "src/clock/CMakeFiles/confail_clock.dir/abstract_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monitor/CMakeFiles/confail_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/confail_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/confail_events.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/confail_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
