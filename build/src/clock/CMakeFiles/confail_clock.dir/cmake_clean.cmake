file(REMOVE_RECURSE
  "CMakeFiles/confail_clock.dir/abstract_clock.cpp.o"
  "CMakeFiles/confail_clock.dir/abstract_clock.cpp.o.d"
  "libconfail_clock.a"
  "libconfail_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
