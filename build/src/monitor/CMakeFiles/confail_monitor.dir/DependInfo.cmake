
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/monitor.cpp" "src/monitor/CMakeFiles/confail_monitor.dir/monitor.cpp.o" "gcc" "src/monitor/CMakeFiles/confail_monitor.dir/monitor.cpp.o.d"
  "/root/repo/src/monitor/runtime.cpp" "src/monitor/CMakeFiles/confail_monitor.dir/runtime.cpp.o" "gcc" "src/monitor/CMakeFiles/confail_monitor.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/confail_support.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/confail_events.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/confail_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
