file(REMOVE_RECURSE
  "CMakeFiles/confail_monitor.dir/monitor.cpp.o"
  "CMakeFiles/confail_monitor.dir/monitor.cpp.o.d"
  "CMakeFiles/confail_monitor.dir/runtime.cpp.o"
  "CMakeFiles/confail_monitor.dir/runtime.cpp.o.d"
  "libconfail_monitor.a"
  "libconfail_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
