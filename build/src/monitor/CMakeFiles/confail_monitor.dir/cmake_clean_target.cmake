file(REMOVE_RECURSE
  "libconfail_monitor.a"
)
