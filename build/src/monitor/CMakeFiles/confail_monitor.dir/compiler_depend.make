# Empty compiler generated dependencies file for confail_monitor.
# This may be replaced when dependencies are built.
