# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("events")
subdirs("sched")
subdirs("monitor")
subdirs("clock")
subdirs("conan")
subdirs("petri")
subdirs("cofg")
subdirs("detect")
subdirs("taxonomy")
subdirs("components")
