file(REMOVE_RECURSE
  "libconfail_taxonomy.a"
)
