# Empty compiler generated dependencies file for confail_taxonomy.
# This may be replaced when dependencies are built.
