file(REMOVE_RECURSE
  "CMakeFiles/confail_taxonomy.dir/classifier.cpp.o"
  "CMakeFiles/confail_taxonomy.dir/classifier.cpp.o.d"
  "CMakeFiles/confail_taxonomy.dir/table1.cpp.o"
  "CMakeFiles/confail_taxonomy.dir/table1.cpp.o.d"
  "CMakeFiles/confail_taxonomy.dir/taxonomy.cpp.o"
  "CMakeFiles/confail_taxonomy.dir/taxonomy.cpp.o.d"
  "libconfail_taxonomy.a"
  "libconfail_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
