
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/finding.cpp" "src/detect/CMakeFiles/confail_detect.dir/finding.cpp.o" "gcc" "src/detect/CMakeFiles/confail_detect.dir/finding.cpp.o.d"
  "/root/repo/src/detect/hb_detector.cpp" "src/detect/CMakeFiles/confail_detect.dir/hb_detector.cpp.o" "gcc" "src/detect/CMakeFiles/confail_detect.dir/hb_detector.cpp.o.d"
  "/root/repo/src/detect/lock_graph.cpp" "src/detect/CMakeFiles/confail_detect.dir/lock_graph.cpp.o" "gcc" "src/detect/CMakeFiles/confail_detect.dir/lock_graph.cpp.o.d"
  "/root/repo/src/detect/lockset.cpp" "src/detect/CMakeFiles/confail_detect.dir/lockset.cpp.o" "gcc" "src/detect/CMakeFiles/confail_detect.dir/lockset.cpp.o.d"
  "/root/repo/src/detect/release_discipline.cpp" "src/detect/CMakeFiles/confail_detect.dir/release_discipline.cpp.o" "gcc" "src/detect/CMakeFiles/confail_detect.dir/release_discipline.cpp.o.d"
  "/root/repo/src/detect/starvation.cpp" "src/detect/CMakeFiles/confail_detect.dir/starvation.cpp.o" "gcc" "src/detect/CMakeFiles/confail_detect.dir/starvation.cpp.o.d"
  "/root/repo/src/detect/suite.cpp" "src/detect/CMakeFiles/confail_detect.dir/suite.cpp.o" "gcc" "src/detect/CMakeFiles/confail_detect.dir/suite.cpp.o.d"
  "/root/repo/src/detect/unnecessary_sync.cpp" "src/detect/CMakeFiles/confail_detect.dir/unnecessary_sync.cpp.o" "gcc" "src/detect/CMakeFiles/confail_detect.dir/unnecessary_sync.cpp.o.d"
  "/root/repo/src/detect/wait_notify.cpp" "src/detect/CMakeFiles/confail_detect.dir/wait_notify.cpp.o" "gcc" "src/detect/CMakeFiles/confail_detect.dir/wait_notify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/confail_support.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/confail_events.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
