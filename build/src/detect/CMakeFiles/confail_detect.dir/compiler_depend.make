# Empty compiler generated dependencies file for confail_detect.
# This may be replaced when dependencies are built.
