file(REMOVE_RECURSE
  "libconfail_detect.a"
)
