file(REMOVE_RECURSE
  "CMakeFiles/confail_detect.dir/finding.cpp.o"
  "CMakeFiles/confail_detect.dir/finding.cpp.o.d"
  "CMakeFiles/confail_detect.dir/hb_detector.cpp.o"
  "CMakeFiles/confail_detect.dir/hb_detector.cpp.o.d"
  "CMakeFiles/confail_detect.dir/lock_graph.cpp.o"
  "CMakeFiles/confail_detect.dir/lock_graph.cpp.o.d"
  "CMakeFiles/confail_detect.dir/lockset.cpp.o"
  "CMakeFiles/confail_detect.dir/lockset.cpp.o.d"
  "CMakeFiles/confail_detect.dir/release_discipline.cpp.o"
  "CMakeFiles/confail_detect.dir/release_discipline.cpp.o.d"
  "CMakeFiles/confail_detect.dir/starvation.cpp.o"
  "CMakeFiles/confail_detect.dir/starvation.cpp.o.d"
  "CMakeFiles/confail_detect.dir/suite.cpp.o"
  "CMakeFiles/confail_detect.dir/suite.cpp.o.d"
  "CMakeFiles/confail_detect.dir/unnecessary_sync.cpp.o"
  "CMakeFiles/confail_detect.dir/unnecessary_sync.cpp.o.d"
  "CMakeFiles/confail_detect.dir/wait_notify.cpp.o"
  "CMakeFiles/confail_detect.dir/wait_notify.cpp.o.d"
  "libconfail_detect.a"
  "libconfail_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
