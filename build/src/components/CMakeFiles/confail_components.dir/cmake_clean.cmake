file(REMOVE_RECURSE
  "CMakeFiles/confail_components.dir/alarm_clock.cpp.o"
  "CMakeFiles/confail_components.dir/alarm_clock.cpp.o.d"
  "CMakeFiles/confail_components.dir/barrier.cpp.o"
  "CMakeFiles/confail_components.dir/barrier.cpp.o.d"
  "CMakeFiles/confail_components.dir/fifo_lock.cpp.o"
  "CMakeFiles/confail_components.dir/fifo_lock.cpp.o.d"
  "CMakeFiles/confail_components.dir/latch.cpp.o"
  "CMakeFiles/confail_components.dir/latch.cpp.o.d"
  "CMakeFiles/confail_components.dir/producer_consumer.cpp.o"
  "CMakeFiles/confail_components.dir/producer_consumer.cpp.o.d"
  "CMakeFiles/confail_components.dir/readers_writers.cpp.o"
  "CMakeFiles/confail_components.dir/readers_writers.cpp.o.d"
  "CMakeFiles/confail_components.dir/semaphore.cpp.o"
  "CMakeFiles/confail_components.dir/semaphore.cpp.o.d"
  "CMakeFiles/confail_components.dir/thread_pool.cpp.o"
  "CMakeFiles/confail_components.dir/thread_pool.cpp.o.d"
  "libconfail_components.a"
  "libconfail_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
