
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/components/alarm_clock.cpp" "src/components/CMakeFiles/confail_components.dir/alarm_clock.cpp.o" "gcc" "src/components/CMakeFiles/confail_components.dir/alarm_clock.cpp.o.d"
  "/root/repo/src/components/barrier.cpp" "src/components/CMakeFiles/confail_components.dir/barrier.cpp.o" "gcc" "src/components/CMakeFiles/confail_components.dir/barrier.cpp.o.d"
  "/root/repo/src/components/fifo_lock.cpp" "src/components/CMakeFiles/confail_components.dir/fifo_lock.cpp.o" "gcc" "src/components/CMakeFiles/confail_components.dir/fifo_lock.cpp.o.d"
  "/root/repo/src/components/latch.cpp" "src/components/CMakeFiles/confail_components.dir/latch.cpp.o" "gcc" "src/components/CMakeFiles/confail_components.dir/latch.cpp.o.d"
  "/root/repo/src/components/producer_consumer.cpp" "src/components/CMakeFiles/confail_components.dir/producer_consumer.cpp.o" "gcc" "src/components/CMakeFiles/confail_components.dir/producer_consumer.cpp.o.d"
  "/root/repo/src/components/readers_writers.cpp" "src/components/CMakeFiles/confail_components.dir/readers_writers.cpp.o" "gcc" "src/components/CMakeFiles/confail_components.dir/readers_writers.cpp.o.d"
  "/root/repo/src/components/semaphore.cpp" "src/components/CMakeFiles/confail_components.dir/semaphore.cpp.o" "gcc" "src/components/CMakeFiles/confail_components.dir/semaphore.cpp.o.d"
  "/root/repo/src/components/thread_pool.cpp" "src/components/CMakeFiles/confail_components.dir/thread_pool.cpp.o" "gcc" "src/components/CMakeFiles/confail_components.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monitor/CMakeFiles/confail_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/cofg/CMakeFiles/confail_cofg.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/confail_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/confail_events.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/confail_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
