# Empty dependencies file for confail_components.
# This may be replaced when dependencies are built.
