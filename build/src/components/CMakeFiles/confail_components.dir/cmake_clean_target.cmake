file(REMOVE_RECURSE
  "libconfail_components.a"
)
