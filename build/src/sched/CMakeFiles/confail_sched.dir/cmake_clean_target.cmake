file(REMOVE_RECURSE
  "libconfail_sched.a"
)
