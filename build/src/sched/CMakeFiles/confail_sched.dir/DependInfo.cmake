
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/explorer.cpp" "src/sched/CMakeFiles/confail_sched.dir/explorer.cpp.o" "gcc" "src/sched/CMakeFiles/confail_sched.dir/explorer.cpp.o.d"
  "/root/repo/src/sched/strategy.cpp" "src/sched/CMakeFiles/confail_sched.dir/strategy.cpp.o" "gcc" "src/sched/CMakeFiles/confail_sched.dir/strategy.cpp.o.d"
  "/root/repo/src/sched/virtual_scheduler.cpp" "src/sched/CMakeFiles/confail_sched.dir/virtual_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/confail_sched.dir/virtual_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/confail_support.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/confail_events.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
