# Empty dependencies file for confail_sched.
# This may be replaced when dependencies are built.
