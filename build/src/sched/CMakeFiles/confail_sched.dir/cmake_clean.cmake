file(REMOVE_RECURSE
  "CMakeFiles/confail_sched.dir/explorer.cpp.o"
  "CMakeFiles/confail_sched.dir/explorer.cpp.o.d"
  "CMakeFiles/confail_sched.dir/strategy.cpp.o"
  "CMakeFiles/confail_sched.dir/strategy.cpp.o.d"
  "CMakeFiles/confail_sched.dir/virtual_scheduler.cpp.o"
  "CMakeFiles/confail_sched.dir/virtual_scheduler.cpp.o.d"
  "libconfail_sched.a"
  "libconfail_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
