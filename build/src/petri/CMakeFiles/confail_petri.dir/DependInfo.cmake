
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/petri/invariants.cpp" "src/petri/CMakeFiles/confail_petri.dir/invariants.cpp.o" "gcc" "src/petri/CMakeFiles/confail_petri.dir/invariants.cpp.o.d"
  "/root/repo/src/petri/net.cpp" "src/petri/CMakeFiles/confail_petri.dir/net.cpp.o" "gcc" "src/petri/CMakeFiles/confail_petri.dir/net.cpp.o.d"
  "/root/repo/src/petri/reachability.cpp" "src/petri/CMakeFiles/confail_petri.dir/reachability.cpp.o" "gcc" "src/petri/CMakeFiles/confail_petri.dir/reachability.cpp.o.d"
  "/root/repo/src/petri/thread_lock_net.cpp" "src/petri/CMakeFiles/confail_petri.dir/thread_lock_net.cpp.o" "gcc" "src/petri/CMakeFiles/confail_petri.dir/thread_lock_net.cpp.o.d"
  "/root/repo/src/petri/trace_validator.cpp" "src/petri/CMakeFiles/confail_petri.dir/trace_validator.cpp.o" "gcc" "src/petri/CMakeFiles/confail_petri.dir/trace_validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/confail_support.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/confail_events.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
