file(REMOVE_RECURSE
  "CMakeFiles/confail_petri.dir/invariants.cpp.o"
  "CMakeFiles/confail_petri.dir/invariants.cpp.o.d"
  "CMakeFiles/confail_petri.dir/net.cpp.o"
  "CMakeFiles/confail_petri.dir/net.cpp.o.d"
  "CMakeFiles/confail_petri.dir/reachability.cpp.o"
  "CMakeFiles/confail_petri.dir/reachability.cpp.o.d"
  "CMakeFiles/confail_petri.dir/thread_lock_net.cpp.o"
  "CMakeFiles/confail_petri.dir/thread_lock_net.cpp.o.d"
  "CMakeFiles/confail_petri.dir/trace_validator.cpp.o"
  "CMakeFiles/confail_petri.dir/trace_validator.cpp.o.d"
  "libconfail_petri.a"
  "libconfail_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
