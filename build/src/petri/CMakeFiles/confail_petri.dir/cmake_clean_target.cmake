file(REMOVE_RECURSE
  "libconfail_petri.a"
)
