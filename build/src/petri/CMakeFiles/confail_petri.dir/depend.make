# Empty dependencies file for confail_petri.
# This may be replaced when dependencies are built.
