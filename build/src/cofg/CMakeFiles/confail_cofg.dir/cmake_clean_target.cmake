file(REMOVE_RECURSE
  "libconfail_cofg.a"
)
