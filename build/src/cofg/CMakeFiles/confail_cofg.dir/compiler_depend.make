# Empty compiler generated dependencies file for confail_cofg.
# This may be replaced when dependencies are built.
