file(REMOVE_RECURSE
  "CMakeFiles/confail_cofg.dir/cofg.cpp.o"
  "CMakeFiles/confail_cofg.dir/cofg.cpp.o.d"
  "CMakeFiles/confail_cofg.dir/coverage.cpp.o"
  "CMakeFiles/confail_cofg.dir/coverage.cpp.o.d"
  "CMakeFiles/confail_cofg.dir/method_model.cpp.o"
  "CMakeFiles/confail_cofg.dir/method_model.cpp.o.d"
  "libconfail_cofg.a"
  "libconfail_cofg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_cofg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
