
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cofg/cofg.cpp" "src/cofg/CMakeFiles/confail_cofg.dir/cofg.cpp.o" "gcc" "src/cofg/CMakeFiles/confail_cofg.dir/cofg.cpp.o.d"
  "/root/repo/src/cofg/coverage.cpp" "src/cofg/CMakeFiles/confail_cofg.dir/coverage.cpp.o" "gcc" "src/cofg/CMakeFiles/confail_cofg.dir/coverage.cpp.o.d"
  "/root/repo/src/cofg/method_model.cpp" "src/cofg/CMakeFiles/confail_cofg.dir/method_model.cpp.o" "gcc" "src/cofg/CMakeFiles/confail_cofg.dir/method_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/confail_support.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/confail_events.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
