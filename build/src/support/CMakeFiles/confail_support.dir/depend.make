# Empty dependencies file for confail_support.
# This may be replaced when dependencies are built.
