file(REMOVE_RECURSE
  "CMakeFiles/confail_support.dir/assert.cpp.o"
  "CMakeFiles/confail_support.dir/assert.cpp.o.d"
  "CMakeFiles/confail_support.dir/rng.cpp.o"
  "CMakeFiles/confail_support.dir/rng.cpp.o.d"
  "CMakeFiles/confail_support.dir/text.cpp.o"
  "CMakeFiles/confail_support.dir/text.cpp.o.d"
  "libconfail_support.a"
  "libconfail_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
