file(REMOVE_RECURSE
  "libconfail_support.a"
)
