# Empty compiler generated dependencies file for confail_events.
# This may be replaced when dependencies are built.
