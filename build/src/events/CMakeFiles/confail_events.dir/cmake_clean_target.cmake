file(REMOVE_RECURSE
  "libconfail_events.a"
)
