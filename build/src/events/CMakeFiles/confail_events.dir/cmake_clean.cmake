file(REMOVE_RECURSE
  "CMakeFiles/confail_events.dir/event.cpp.o"
  "CMakeFiles/confail_events.dir/event.cpp.o.d"
  "CMakeFiles/confail_events.dir/trace.cpp.o"
  "CMakeFiles/confail_events.dir/trace.cpp.o.d"
  "libconfail_events.a"
  "libconfail_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
