file(REMOVE_RECURSE
  "CMakeFiles/confail_conan.dir/test_driver.cpp.o"
  "CMakeFiles/confail_conan.dir/test_driver.cpp.o.d"
  "libconfail_conan.a"
  "libconfail_conan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confail_conan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
