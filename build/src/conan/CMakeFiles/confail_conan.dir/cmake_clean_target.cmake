file(REMOVE_RECURSE
  "libconfail_conan.a"
)
