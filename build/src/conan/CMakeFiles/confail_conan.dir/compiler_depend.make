# Empty compiler generated dependencies file for confail_conan.
# This may be replaced when dependencies are built.
