# Empty compiler generated dependencies file for starvation_fix.
# This may be replaced when dependencies are built.
