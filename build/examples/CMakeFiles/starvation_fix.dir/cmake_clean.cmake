file(REMOVE_RECURSE
  "CMakeFiles/starvation_fix.dir/starvation_fix.cpp.o"
  "CMakeFiles/starvation_fix.dir/starvation_fix.cpp.o.d"
  "starvation_fix"
  "starvation_fix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starvation_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
