# Empty compiler generated dependencies file for cofg_coverage.
# This may be replaced when dependencies are built.
