file(REMOVE_RECURSE
  "CMakeFiles/cofg_coverage.dir/cofg_coverage.cpp.o"
  "CMakeFiles/cofg_coverage.dir/cofg_coverage.cpp.o.d"
  "cofg_coverage"
  "cofg_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cofg_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
