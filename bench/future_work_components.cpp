// Future-work reproduction: "development of CoFGs and test sequences using
// this technique on a range of concurrent components" (paper Section 7,
// future work item 1 — promised, never published).
//
// For every component in the library this bench constructs the CoFGs of
// its methods, drives a hand-designed ConAn sequence against the
// component, measures arc coverage, and prints the uncovered arcs together
// with the generated test-sequence suggestions.  Some arcs are
// *structurally unreachable* without spurious wakeups (e.g. wait->wait in
// a semaphore whose notify only fires when the guard turned false); the
// bench documents exactly which, instead of hiding them — that distinction
// is itself a finding the paper's method surfaces.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "confail/clock/abstract_clock.hpp"
#include "confail/cofg/cofg.hpp"
#include "confail/cofg/coverage.hpp"
#include "confail/components/alarm_clock.hpp"
#include "confail/components/barrier.hpp"
#include "confail/components/bounded_buffer.hpp"
#include "confail/components/latch.hpp"
#include "confail/components/readers_writers.hpp"
#include "confail/components/semaphore.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace cofg = confail::cofg;
namespace comps = confail::components;
namespace ev = confail::events;
namespace sched = confail::sched;
using confail::clock::AbstractClock;
using confail::conan::TestDriver;
using confail::monitor::Runtime;

namespace {

int failures = 0;

struct Campaign {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};
  AbstractClock clk{rt};
  TestDriver driver{rt, clk};
};

struct MethodCheck {
  cofg::MethodModel model;
  ev::MethodId method;
  std::size_t expectCovered;  // structurally reachable arcs
};

void report(Campaign& c, const std::string& component,
            const std::vector<MethodCheck>& checks) {
  auto res = c.driver.execute();
  if (res.run.outcome != sched::Outcome::Completed) {
    std::printf("  [FAIL] %s sequence did not complete (%s)\n",
                component.c_str(), sched::outcomeName(res.run.outcome));
    ++failures;
    return;
  }
  for (const MethodCheck& mc : checks) {
    cofg::Cofg graph = cofg::Cofg::build(mc.model);
    cofg::CoverageTracker cov(graph, mc.method);
    cov.process(c.trace.events());
    bool ok = cov.coveredArcs() >= mc.expectCovered && cov.anomalies().empty();
    std::printf("  [%s] %-28s %zu/%zu arcs covered", ok ? "ok" : "FAIL",
                mc.model.name().c_str(), cov.coveredArcs(), cov.totalArcs());
    if (cov.coveredArcs() < cov.totalArcs()) {
      std::printf("  (unreachable without spurious wakeups: ");
      bool first = true;
      for (std::size_t idx : cov.uncoveredArcs()) {
        std::printf("%s%s", first ? "" : ", ",
                    graph.arcs()[idx].label().c_str());
        first = false;
      }
      std::printf(")");
    }
    std::printf("\n");
    if (!ok) {
      std::printf("%s", cov.suggestSequences().c_str());
      ++failures;
    }
  }
}

void boundedBufferCampaign() {
  std::printf("\nBoundedBuffer (capacity 1):\n");
  Campaign c;
  comps::BoundedBuffer<int> buf(c.rt, "buf", 1);
  auto take = [&buf] { (void)buf.take(); };
  auto put = [&buf] { buf.put(1); };
  // take arcs: two takers wait; a put wakes both, one re-waits.
  c.driver.addVoid("t1", 1, "take", take);
  c.driver.addVoid("t2", 2, "take", take);
  c.driver.addVoid("p1", 3, "put", put);
  c.driver.addVoid("p1", 4, "put", put);
  // put arcs: buffer left full by the tick-5 put; two puts wait; takes
  // release them one at a time so one re-waits on a re-filled buffer.
  c.driver.addVoid("p1", 5, "put", put);
  c.driver.addVoid("p2", 6, "put", put);
  c.driver.addVoid("p3", 7, "put", put);
  c.driver.addVoid("t1", 8, "take", take);
  c.driver.addVoid("t1", 9, "take", take);
  c.driver.addVoid("t1", 10, "take", take);
  report(c, "BoundedBuffer",
         {{comps::BoundedBuffer<int>::takeModel(), buf.takeMethodId(), 5},
          {comps::BoundedBuffer<int>::putModel(), buf.putMethodId(), 5}});
}

void semaphoreCampaign() {
  std::printf("\nCountingSemaphore (0 permits):\n");
  Campaign c;
  comps::CountingSemaphore sem(c.rt, "sem", 0);
  c.driver.addVoid("a", 1, "acquire", [&sem] { sem.acquire(); });
  c.driver.addVoid("b", 2, "release", [&sem] { sem.release(); });
  c.driver.addVoid("b", 3, "release", [&sem] { sem.release(); });
  c.driver.addVoid("a", 4, "acquire", [&sem] { sem.acquire(); });
  // acquire: start->wait, wait->end, start->end reachable; wait->wait is
  // unreachable without spurious wakeups (release only notifies after
  // making the guard false).  release: both arcs trivially covered.
  report(c, "CountingSemaphore",
         {{comps::CountingSemaphore::acquireModel(),
           sem.acquireMethodId(), 3},
          {comps::CountingSemaphore::releaseModel(),
           sem.releaseMethodId(), 2}});
}

void barrierCampaign() {
  std::printf("\nCyclicBarrier (3 parties, 2 generations):\n");
  Campaign c;
  comps::CyclicBarrier bar(c.rt, "bar", 3);
  for (int t = 0; t < 3; ++t) {
    c.driver.addVoid("t" + std::to_string(t),
                     static_cast<std::uint64_t>(t + 1), "await#1",
                     [&bar] { (void)bar.await(); });
    c.driver.addVoid("t" + std::to_string(t),
                     static_cast<std::uint64_t>(4 + t), "await#2",
                     [&bar] { (void)bar.await(); });
  }
  // Of the 7 arcs of the conditional-notify model, 4 are reachable:
  // start->wait (early arrivers), start->notifyAll + notifyAll->end (last
  // arriver), wait->end (woken waiters).  wait->wait needs a spurious
  // wake; wait->notifyAll and start->end are structurally impossible in
  // this component (waiters never notify; everyone waits or notifies).
  report(c, "CyclicBarrier",
         {{comps::CyclicBarrier::awaitModel(), bar.awaitMethodId(), 4}});
}

void latchCampaign() {
  std::printf("\nCountDownLatch (count 2):\n");
  Campaign c;
  comps::CountDownLatch latch(c.rt, "latch", 2);
  c.driver.addVoid("w", 1, "await", [&latch] { latch.await(); });
  c.driver.addVoid("d", 2, "countDown", [&latch] { latch.countDown(); });
  c.driver.addVoid("d", 3, "countDown", [&latch] { latch.countDown(); });
  c.driver.addVoid("w", 4, "await(open)", [&latch] { latch.await(); });
  // await: wait->wait unreachable — countDown only notifies at zero, when
  // the guard is false.
  report(c, "CountDownLatch",
         {{comps::CountDownLatch::awaitModel(), latch.awaitMethodId(), 3},
          {comps::CountDownLatch::countDownModel(),
           latch.countDownMethodId(), 3}});
}

void readersWritersCampaign() {
  std::printf("\nReadersWriters (Fair preference):\n");
  Campaign c;
  comps::ReadersWriters rw(c.rt, comps::ReadersWriters::Preference::Fair);
  // Writer 1 active; reader and writer 2 queue; endWrite(1) wakes both —
  // the reader re-waits (fair mode: writer 2 still queued): wait->wait.
  c.driver.addVoid("w1", 1, "startWrite", [&rw] { rw.startWrite(); });
  c.driver.addVoid("r", 2, "startRead", [&rw] { rw.startRead(); });
  c.driver.addVoid("w2", 3, "startWrite", [&rw] { rw.startWrite(); });
  c.driver.addVoid("w3", 4, "startWrite", [&rw] { rw.startWrite(); });
  // endWrite(1) wakes w2, w3 and the reader: w2 proceeds, w3 re-checks a
  // true guard (writer active) -> wait->wait; the fair-mode reader also
  // re-waits while writers are queued.
  c.driver.addVoid("w1", 5, "endWrite", [&rw] { rw.endWrite(); });
  c.driver.addVoid("w2", 6, "endWrite", [&rw] { rw.endWrite(); });
  c.driver.addVoid("w3", 7, "endWrite", [&rw] { rw.endWrite(); });
  c.driver.addVoid("r", 8, "endRead", [&rw] { rw.endRead(); });
  // Two overlapping readers: the first endRead is not the last reader
  // (no notify: start->end in endRead's CoFG), the second is.
  c.driver.addVoid("r", 9, "startRead(free)", [&rw] { rw.startRead(); });
  c.driver.addVoid("r2", 10, "startRead(overlap)", [&rw] { rw.startRead(); });
  c.driver.addVoid("r", 11, "endRead(non-last)", [&rw] { rw.endRead(); });
  c.driver.addVoid("r2", 12, "endRead(last)", [&rw] { rw.endRead(); });
  report(c, "ReadersWriters",
         {{comps::ReadersWriters::startReadModel(), rw.startReadMethodId(), 4},
          {comps::ReadersWriters::startWriteModel(), rw.startWriteMethodId(), 4},
          {comps::ReadersWriters::endWriteModel(), rw.endWriteMethodId(), 2},
          {comps::ReadersWriters::endReadModel(), rw.endReadMethodId(), 3}});
}

void alarmClockCampaign() {
  std::printf("\nAlarmClock:\n");
  Campaign c;
  comps::AlarmClock alarm(c.rt, "alarm");
  c.driver.addVoid("s", 1, "wakeMe(2)", [&alarm] { (void)alarm.wakeMe(2); });
  c.driver.addVoid("d", 2, "tick", [&alarm] { alarm.tick(); });
  c.driver.addVoid("d", 3, "tick", [&alarm] { alarm.tick(); });
  c.driver.addVoid("s", 4, "wakeMe(0)", [&alarm] { (void)alarm.wakeMe(0); });
  // wakeMe: all four arcs reachable — tick at logical time 1 wakes the
  // sleeper whose deadline is 2 (wait->wait), time 2 releases it
  // (wait->end); wakeMe(0) covers start->end.
  report(c, "AlarmClock",
         {{comps::AlarmClock::wakeMeModel(), alarm.wakeMeMethodId(), 4},
          {comps::AlarmClock::tickModel(), alarm.tickMethodId(), 2}});
}

}  // namespace

int main() {
  std::printf("=== Future work item 1: CoFGs for a range of components ===\n");
  std::printf("(paper Section 7: promised follow-up, reproduced here)\n");

  boundedBufferCampaign();
  semaphoreCampaign();
  barrierCampaign();
  latchCampaign();
  readersWritersCampaign();
  alarmClockCampaign();

  std::printf("\n%s\n", failures == 0 ? "FUTURE-WORK CoFG SUITE: OK"
                                      : "FUTURE-WORK CoFG SUITE: FAILURES");
  return failures == 0 ? 0 : 1;
}
