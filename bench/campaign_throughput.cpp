// Campaign service throughput: the cost of running an injection campaign
// through the `confail serve` job machinery versus the serial in-process
// baseline, emitted as BENCH_serve.json.
//
// Two passes over the same confail.job.v1 grid:
//
//   1. Serial baseline — expandShards + runShard in a loop on one thread,
//      then mergeShards.  This is the one-shot `confail inject --campaign`
//      path and the floor the service must not fall meaningfully below.
//
//   2. Campaign service — the job submitted into a fresh spool and served
//      to completion by an in-process worker pool (the daemon's sanitizer
//      configuration; the subprocess pool adds only exec/IO cost).  The
//      pass reports shards/sec and jobs/sec including every service
//      overhead: spool adoption, per-shard checkpoint writes, journal
//      appends and the final merge.
//
// Gates are correctness, not wall-clock (CI boxes vary): the service pass
// must complete all shards with zero failures, and its merged
// confail.findings.v1 document must be byte-identical to the serial
// merge — the determinism contract that makes crash-resume exact.
//
// `--smoke` shrinks the per-cell run budget so the binary finishes in a
// few seconds; the bench_smoke target runs that mode and commits the
// resulting BENCH_serve.json.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "confail/inject/job_spec.hpp"
#include "confail/serve/client.hpp"
#include "confail/serve/merge.hpp"
#include "confail/serve/server.hpp"

namespace inject = confail::inject;
namespace serve = confail::serve;

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

inject::JobSpec benchSpec(bool smoke) {
  inject::JobSpec spec;
  spec.name = "bench";
  spec.scenarios = {"fig2", "lock_order", "ff_t5_small"};
  spec.reductions = {confail::sched::ExhaustiveExplorer::Reduction::None,
                     confail::sched::ExhaustiveExplorer::Reduction::Sleep};
  spec.maxRuns = smoke ? 80 : 800;
  spec.maxSteps = 1000;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bool ok = true;

  std::printf("=== Campaign service throughput (%s mode) ===\n\n",
              smoke ? "smoke" : "full");

  const inject::JobSpec spec = benchSpec(smoke);
  const std::vector<inject::ShardSpec> shards = inject::expandShards(spec);

  confail::benchjson::Writer json;
  json.beginObject();
  json.field("bench", "campaign_throughput");
  json.field("smoke", smoke);
  json.field("shards", static_cast<std::uint64_t>(shards.size()));
  json.field("max_runs_per_cell", spec.maxRuns);

  // ---- 1. serial baseline --------------------------------------------------
  std::string serialFindings;
  double serialSec = 0.0;
  {
    inject::RunShardOptions ro;  // resolved names, no event capture
    std::vector<inject::ShardResult> results;
    results.reserve(shards.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (const inject::ShardSpec& s : shards) {
      results.push_back(inject::runShard(spec, s, ro));
    }
    serialSec = secondsSince(t0);
    const serve::MergedReports merged =
        serve::mergeShards(spec, "bench-serial", results);
    serialFindings = merged.findingsJson;
    const double sps =
        serialSec > 0.0 ? static_cast<double>(shards.size()) / serialSec : 0.0;
    std::printf("serial: %zu shards in %.2fs (%.2f shards/sec, "
                "%llu unique findings)\n",
                shards.size(), serialSec, sps,
                static_cast<unsigned long long>(merged.uniqueFindings));
    if (!merged.matrixOk) {
      std::printf("FAIL: serial campaign matrix not OK (control regression "
                  "or undetected seeded class)\n");
      ok = false;
    }
    json.key("serial");
    json.beginObject();
    json.field("seconds", serialSec);
    json.field("shards_per_sec", sps);
    json.field("unique_findings", merged.uniqueFindings);
    json.endObject();
  }

  // ---- 2. campaign service -------------------------------------------------
  {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t pool = hw < 2 ? 2 : (hw > 4 ? 4 : hw);
    const std::string root =
        (std::filesystem::temp_directory_path() /
         ("confail-bench-serve-" + std::to_string(::getpid())))
            .string();
    std::error_code ec;
    std::filesystem::remove_all(root, ec);

    const std::string id = serve::submitJob(root, spec);
    if (id.empty()) {
      std::printf("FAIL: submit into %s failed\n", root.c_str());
      ok = false;
    }

    serve::ServerOptions opts;
    opts.root = root;
    opts.poolSize = pool;
    opts.subprocess = false;  // in-process pool: the sanitizer-safe config
    opts.exitWhenIdle = true;
    opts.pollMs = 1;
    const auto t0 = std::chrono::steady_clock::now();
    const int rc = serve::Server(std::move(opts)).run();
    const double sec = secondsSince(t0);
    if (rc != 0) {
      std::printf("FAIL: server exited %d\n", rc);
      ok = false;
    }

    serve::JobState st;
    if (!serve::jobStatus(root, id, st) || st.status != "completed" ||
        st.shardsFailed != 0 || st.shardsDone != shards.size()) {
      std::printf("FAIL: job did not complete cleanly (status '%s', "
                  "%llu/%llu shards, %llu failed)\n",
                  st.status.c_str(),
                  static_cast<unsigned long long>(st.shardsDone),
                  static_cast<unsigned long long>(st.shardsTotal),
                  static_cast<unsigned long long>(st.shardsFailed));
      ok = false;
    }

    serve::JobResults res;
    if (!serve::jobResults(root, id, res) || !res.complete) {
      std::printf("FAIL: merged results missing\n");
      ok = false;
    }
    // The determinism gate: service merge == serial merge, byte for byte
    // (modulo the job id stamped into the document and the trailing
    // newline the store adds to files).
    std::string expected = serialFindings;
    for (std::string::size_type p = 0;
         (p = expected.find("bench-serial", p)) != std::string::npos;) {
      expected.replace(p, std::strlen("bench-serial"), id);
      p += id.size();
    }
    std::string got = res.findingsJson;
    while (!got.empty() && got.back() == '\n') got.pop_back();
    res.findingsJson = got;
    if (res.findingsJson != expected) {
      std::printf("FAIL: service findings differ from the serial merge\n");
      ok = false;
    }

    const double sps =
        sec > 0.0 ? static_cast<double>(shards.size()) / sec : 0.0;
    const double jps = sec > 0.0 ? 1.0 / sec : 0.0;
    std::printf("service: %zu shards in %.2fs (%.2f shards/sec, "
                "%.2f jobs/sec, pool %zu, findings %llu)\n",
                shards.size(), sec, sps, jps, pool,
                static_cast<unsigned long long>(st.findings));
    std::printf("service/serial wall-clock ratio: %.2fx\n",
                serialSec > 0.0 ? sec / serialSec : 0.0);

    json.key("service");
    json.beginObject();
    json.field("seconds", sec);
    json.field("shards_per_sec", sps);
    json.field("jobs_per_sec", jps);
    json.field("pool", static_cast<std::uint64_t>(pool));
    json.field("unique_findings", st.findings);
    json.field("findings_match_serial", res.findingsJson == expected);
    json.field("overhead_ratio", serialSec > 0.0 ? sec / serialSec : 0.0);
    json.endObject();

    std::filesystem::remove_all(root, ec);
  }

  json.endObject();
  if (!json.writeFile("BENCH_serve.json")) {
    std::printf("FAIL: could not write BENCH_serve.json\n");
    ok = false;
  } else {
    std::printf("\nwrote BENCH_serve.json\n");
  }

  std::printf("\n%s\n",
              ok ? "CAMPAIGN THROUGHPUT: OK" : "CAMPAIGN THROUGHPUT: FAILURES");
  return ok ? 0 : 1;
}
