// Ablation A: scheduler strategies vs bug exposure.
//
// The paper's premise is that free-running execution is a poor way to find
// concurrency failures and that controlled (deterministic) execution is
// needed.  This bench quantifies that on the substrate: a schedule-
// dependent FF-T5 bug (BoundedBuffer with notify() instead of notifyAll())
// is hunted by four strategies under equal run budgets:
//   round-robin      (the "fair JVM" — a single deterministic schedule)
//   random walk      (stress testing with seeds; ConTest-style)
//   PCT              (priority-based probabilistic concurrency testing)
//   exhaustive DFS   (bounded model checking of the schedule tree)
// Reported: exposure rate, runs-to-first-failure, and whether the failure
// is *proved* reachable.
#include <cstdio>
#include <memory>
#include <string>

#include "confail/components/bounded_buffer.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/explorer.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace comps = confail::components;
namespace ev = confail::events;
namespace sched = confail::sched;
using confail::monitor::Runtime;

namespace {

// The scenario: capacity-1 buffer, 2 producers x 2 items, 2 consumers x 2
// items, notify() instead of notifyAll().  Under many schedules the single
// notify wakes a same-side waiter and the system deadlocks (FF-T5,
// "a notify is called rather than a notifyAll").
void buildScenario(sched::VirtualScheduler& s) {
  // The State (and its trace) is kept alive by the spawned closures, which
  // the scheduler owns until the run finishes.
  struct State {
    ev::Trace trace;
    Runtime rt;
    comps::BoundedBuffer<int> buf;
    explicit State(sched::VirtualScheduler& sc)
        : rt(trace, sc, 1), buf(rt, "buf", 1, [] {
            comps::BoundedBuffer<int>::Faults f;
            f.notifyOneOnly = true;
            return f;
          }()) {}
  };
  auto st = std::make_shared<State>(s);
  for (int p = 0; p < 2; ++p) {
    st->rt.spawn("p" + std::to_string(p), [st] {
      for (int i = 0; i < 2; ++i) st->buf.put(i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    st->rt.spawn("c" + std::to_string(c), [st] {
      for (int i = 0; i < 2; ++i) (void)st->buf.take();
    });
  }
}

bool runOnce(sched::Strategy& strategy) {
  sched::VirtualScheduler::Options so;
  so.maxSteps = 20000;
  sched::VirtualScheduler s(strategy, so);
  buildScenario(s);
  return s.run().outcome == sched::Outcome::Deadlock;
}

}  // namespace

int main() {
  std::printf("=== Ablation A: scheduling strategy vs failure exposure ===\n");
  std::printf("target bug: FF-T5 (notify() where notifyAll() is required)\n\n");
  std::printf("%-16s %8s %10s %14s %s\n", "strategy", "runs", "exposed",
              "first-failure", "notes");

  const std::uint64_t budget = 200;
  int strategiesThatExposed = 0;

  {
    sched::RoundRobinStrategy rr;
    bool hit = runOnce(rr);
    std::printf("%-16s %8d %10s %14s %s\n", "round-robin", 1,
                hit ? "1" : "0", hit ? "1" : "-",
                "single deterministic fair schedule");
    strategiesThatExposed += hit ? 1 : 0;
  }

  {
    std::uint64_t exposed = 0, first = 0;
    for (std::uint64_t seed = 1; seed <= budget; ++seed) {
      sched::RandomWalkStrategy rw(seed);
      if (runOnce(rw)) {
        ++exposed;
        if (first == 0) first = seed;
      }
    }
    std::printf("%-16s %8llu %10llu %14s %s\n", "random-walk",
                static_cast<unsigned long long>(budget),
                static_cast<unsigned long long>(exposed),
                first ? std::to_string(first).c_str() : "-",
                "seeded stress (ConTest-style noise)");
    strategiesThatExposed += exposed > 0 ? 1 : 0;
  }

  {
    std::uint64_t exposed = 0, first = 0;
    for (std::uint64_t seed = 1; seed <= budget; ++seed) {
      sched::PctStrategy pct(seed, /*depth=*/3, /*expectedSteps=*/300);
      if (runOnce(pct)) {
        ++exposed;
        if (first == 0) first = seed;
      }
    }
    std::printf("%-16s %8llu %10llu %14s %s\n", "pct(d=3)",
                static_cast<unsigned long long>(budget),
                static_cast<unsigned long long>(exposed),
                first ? std::to_string(first).c_str() : "-",
                "probabilistic, depth-bounded");
    strategiesThatExposed += exposed > 0 ? 1 : 0;
  }

  std::uint64_t exhaustiveFirst = 0;
  {
    sched::ExhaustiveExplorer::Options eo;
    eo.maxRuns = budget;
    eo.maxSteps = 20000;
    sched::ExhaustiveExplorer explorer(eo);
    std::uint64_t runs = 0;
    auto stats = explorer.explore(
        [](sched::VirtualScheduler& s) { buildScenario(s); },
        [&runs, &exhaustiveFirst](const std::vector<ev::ThreadId>&,
                                  const sched::RunResult& r) {
          ++runs;
          if (r.outcome == sched::Outcome::Deadlock && exhaustiveFirst == 0) {
            exhaustiveFirst = runs;
          }
          return true;
        });
    std::printf("%-16s %8llu %10llu %14s %s\n", "exhaustive",
                static_cast<unsigned long long>(stats.runs),
                static_cast<unsigned long long>(stats.deadlocks),
                exhaustiveFirst ? std::to_string(exhaustiveFirst).c_str() : "-",
                stats.exhausted ? "tree fully covered (proof)"
                                : "budget-bounded");
    strategiesThatExposed += stats.deadlocks > 0 ? 1 : 0;
  }

  std::printf("\nreading: the fair deterministic schedule alone usually\n"
              "misses the bug; randomized strategies expose it with some\n"
              "probability; the exhaustive explorer finds it reliably and\n"
              "can prove reachability — the paper's argument for controlled\n"
              "execution made quantitative.\n");

  const bool ok = strategiesThatExposed >= 2 && exhaustiveFirst > 0;
  std::printf("\n%s\n", ok ? "ABLATION A: OK" : "ABLATION A: FAILURES");
  return ok ? 0 : 1;
}
