// Ablation A: scheduler strategies vs bug exposure.
//
// The paper's premise is that free-running execution is a poor way to find
// concurrency failures and that controlled (deterministic) execution is
// needed.  This bench quantifies that on the substrate: a schedule-
// dependent FF-T5 bug (BoundedBuffer with notify() instead of notifyAll(),
// scenarios::ffT5Notify) is hunted by five strategies under equal run
// budgets:
//   round-robin       (the "fair JVM" — a single deterministic schedule)
//   random walk       (stress testing with seeds; ConTest-style)
//   PCT               (priority-based probabilistic concurrency testing)
//   exhaustive DFS    (bounded model checking of the schedule tree)
//   exhaustive+prune  (same, with (depth, fingerprint) state dedup; its
//                      budget is sized to exhaust the deduped tree, which
//                      turns the budget-bounded search into a proof)
// Reported: exposure rate, runs-to-first-failure, and whether the failure
// is *proved* reachable.  Results also land in
// BENCH_ablation_schedulers.json; `--smoke` shrinks the seed budgets.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "confail/components/scenarios.hpp"
#include "confail/sched/explorer.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace ev = confail::events;
namespace sched = confail::sched;
namespace scenarios = confail::components::scenarios;

namespace {

bool runOnce(sched::Strategy& strategy) {
  sched::VirtualScheduler::Options so;
  so.maxSteps = 20000;
  sched::VirtualScheduler s(strategy, so);
  scenarios::ffT5Notify(s);
  return s.run().outcome == sched::Outcome::Deadlock;
}

struct Row {
  std::string strategy;
  std::uint64_t runs = 0;
  std::uint64_t exposed = 0;
  std::uint64_t firstFailure = 0;  // 0 = never
  std::string notes;
};

void printRow(const Row& r) {
  std::printf("%-18s %8llu %10llu %14s %s\n", r.strategy.c_str(),
              static_cast<unsigned long long>(r.runs),
              static_cast<unsigned long long>(r.exposed),
              r.firstFailure ? std::to_string(r.firstFailure).c_str() : "-",
              r.notes.c_str());
}

Row exploreRow(const char* name, std::uint64_t budget, bool prune,
               const char* notesIfExhausted) {
  sched::ExhaustiveExplorer::Options eo;
  eo.maxRuns = budget;
  eo.maxSteps = 20000;
  eo.fingerprintPruning = prune;
  sched::ExhaustiveExplorer explorer(eo);
  std::uint64_t runs = 0, first = 0;
  // Cast picks the uninstrumented overload; std::function's templated
  // constructor cannot resolve the overload set on its own.
  auto stats = explorer.explore(
      static_cast<void (*)(sched::VirtualScheduler&)>(scenarios::ffT5Notify),
      [&runs, &first](const std::vector<ev::ThreadId>&,
                      const sched::RunResult& r) {
        ++runs;
        if (r.outcome == sched::Outcome::Deadlock && first == 0) first = runs;
        return true;
      });
  Row row;
  row.strategy = name;
  row.runs = stats.runs;
  row.exposed = stats.deadlocks;
  row.firstFailure = first;
  row.notes = stats.exhausted ? notesIfExhausted : "budget-bounded";
  if (prune && stats.dedupedStates > 0) {
    row.notes += " (" + std::to_string(stats.dedupedStates) + " states deduped)";
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("=== Ablation A: scheduling strategy vs failure exposure ===\n");
  std::printf("target bug: FF-T5 (notify() where notifyAll() is required)\n\n");
  std::printf("%-18s %8s %10s %14s %s\n", "strategy", "runs", "exposed",
              "first-failure", "notes");

  const std::uint64_t budget = smoke ? 60 : 200;
  std::vector<Row> rows;

  {
    sched::RoundRobinStrategy rr;
    bool hit = runOnce(rr);
    rows.push_back({"round-robin", 1, hit ? 1ull : 0ull, hit ? 1ull : 0ull,
                    "single deterministic fair schedule"});
  }

  {
    Row row{"random-walk", budget, 0, 0, "seeded stress (ConTest-style noise)"};
    for (std::uint64_t seed = 1; seed <= budget; ++seed) {
      sched::RandomWalkStrategy rw(seed);
      if (runOnce(rw)) {
        ++row.exposed;
        if (row.firstFailure == 0) row.firstFailure = seed;
      }
    }
    rows.push_back(row);
  }

  {
    Row row{"pct(d=3)", budget, 0, 0, "probabilistic, depth-bounded"};
    for (std::uint64_t seed = 1; seed <= budget; ++seed) {
      sched::PctStrategy pct(seed, /*depth=*/3, /*expectedSteps=*/300);
      if (runOnce(pct)) {
        ++row.exposed;
        if (row.firstFailure == 0) row.firstFailure = seed;
      }
    }
    rows.push_back(row);
  }

  rows.push_back(
      exploreRow("exhaustive", budget, false, "tree fully covered (proof)"));
  // The pruned explorer gets a budget large enough to *exhaust* the deduped
  // tree (~6.6k runs) — a full reachability proof that the unpruned tree
  // (astronomically larger) cannot deliver under any practical budget.
  rows.push_back(exploreRow("exhaustive+prune", 10000, true,
                            "pruned tree covered (proof)"));

  for (const Row& r : rows) printRow(r);

  std::printf("\nreading: the fair deterministic schedule alone usually\n"
              "misses the bug; randomized strategies expose it with some\n"
              "probability; the exhaustive explorer finds it reliably and\n"
              "can prove reachability — the paper's argument for controlled\n"
              "execution made quantitative.  Fingerprint pruning collapses\n"
              "the schedule tree far enough to *exhaust* it — the proof the\n"
              "unpruned search cannot reach under any practical budget.\n");

  confail::benchjson::Writer json;
  json.beginObject();
  json.field("bench", "ablation_schedulers");
  json.field("smoke", smoke);
  json.field("budget", budget);
  json.key("rows");
  json.beginArray();
  for (const Row& r : rows) {
    json.beginObject();
    json.field("strategy", r.strategy);
    json.field("runs", r.runs);
    json.field("exposed", r.exposed);
    json.field("first_failure", r.firstFailure);
    json.field("notes", r.notes);
    json.endObject();
  }
  json.endArray();
  json.endObject();
  bool wrote = json.writeFile("BENCH_ablation_schedulers.json");
  if (wrote) {
    std::printf("\nwrote BENCH_ablation_schedulers.json\n");
  } else {
    std::printf("\nFAIL: could not write BENCH_ablation_schedulers.json\n");
  }

  int strategiesThatExposed = 0;
  for (const Row& r : rows) strategiesThatExposed += r.exposed > 0 ? 1 : 0;
  const std::uint64_t exhaustiveFirst = rows[3].firstFailure;
  const std::uint64_t prunedFirst = rows[4].firstFailure;
  const bool ok = strategiesThatExposed >= 2 && exhaustiveFirst > 0 &&
                  prunedFirst > 0 && wrote;
  std::printf("\n%s\n", ok ? "ABLATION A: OK" : "ABLATION A: FAILURES");
  return ok ? 0 : 1;
}
