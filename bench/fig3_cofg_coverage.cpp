// Figure 3 reproduction: Concurrency Flow Graphs for the producer-consumer.
//
// Regenerates the CoFGs of receive() and send() and checks them against the
// paper's arc list (Section 6, items 1-5), prints the DOT rendering, then
// runs the Section-6 style test sequence and reports arc coverage reaching
// 5/5, plus the per-arc transition annotations (with the arc-3 erratum
// called out: the paper prints "T3, T4, T5", the derivation yields
// "T3, T5, T2, T5").
#include <cstdio>
#include <string>

#include "confail/clock/abstract_clock.hpp"
#include "confail/cofg/cofg.hpp"
#include "confail/cofg/coverage.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/sched/virtual_scheduler.hpp"

namespace cofg = confail::cofg;
namespace ev = confail::events;
namespace sched = confail::sched;
using cofg::Cofg;
using cofg::Node;
using cofg::NodeKind;
using confail::clock::AbstractClock;
using confail::components::ProducerConsumer;
using confail::conan::TestDriver;
using confail::monitor::Runtime;

namespace {
int failures = 0;
void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) ++failures;
}
}  // namespace

int main() {
  std::printf("=== Figure 3: CoFGs for producer-consumer ===\n\n");

  Cofg receive = Cofg::build(ProducerConsumer::receiveModel());
  Cofg send = Cofg::build(ProducerConsumer::sendModel());

  std::printf("%s\n", receive.describe().c_str());
  std::printf("paper arc list (Section 6) vs derived annotations:\n");
  struct PaperArc {
    const char* label;
    const char* paper;
    Node src, dst;
  };
  const Node start{NodeKind::Start, 0};
  const Node wait{NodeKind::Wait, 0};
  const Node notifyAll{NodeKind::NotifyAll, 1};
  const Node end{NodeKind::End, 0};
  const PaperArc paperArcs[] = {
      {"1. start -> wait", "T1, T2, T3", start, wait},
      {"2. wait -> wait", "T3, T5, T2, T3", wait, wait},
      {"3. wait -> notifyAll", "T3, T4, T5", wait, notifyAll},
      {"4. start -> notifyAll", "T1, T2, T5", start, notifyAll},
      {"5. notifyAll -> end", "T5, T4", notifyAll, end},
  };
  check(receive.arcs().size() == 5, "receive() CoFG has exactly 5 arcs");
  for (const PaperArc& pa : paperArcs) {
    std::size_t idx = receive.findArc(pa.src, pa.dst);
    if (idx == Cofg::npos) {
      check(false, std::string(pa.label) + " present");
      continue;
    }
    std::string derived = receive.arcs()[idx].transitionString();
    bool match = derived == pa.paper;
    std::printf("  %-24s paper: %-14s derived: %-14s %s\n", pa.label,
                pa.paper, derived.c_str(),
                match ? "(match)" : "(ERRATUM: see note)");
    if (!match) {
      // Only the known arc-3 discrepancy is acceptable.
      check(std::string(pa.label).find("3.") != std::string::npos &&
                derived == "T3, T5, T2, T5",
            "mismatch is exactly the documented arc-3 erratum");
    }
  }
  std::printf("\n  note: between a wait and a notifyAll in the same\n"
              "  synchronized method the thread is woken (T5) and re-acquires\n"
              "  the lock (T2); no release (T4) occurs.  The paper's printed\n"
              "  \"T3, T4, T5\" for arc 3 appears to be a typo — every other\n"
              "  arc matches the same derivation rule exactly.\n\n");

  // "The CoFG for send is identical to that for receive in this case."
  bool identical = send.arcs().size() == receive.arcs().size();
  for (std::size_t i = 0; identical && i < send.arcs().size(); ++i) {
    identical = send.arcs()[i].src == receive.arcs()[i].src &&
                send.arcs()[i].dst == receive.arcs()[i].dst &&
                send.arcs()[i].transitions == receive.arcs()[i].transitions;
  }
  check(identical, "send() CoFG is identical in shape to receive()");

  std::printf("\nDOT rendering of receive():\n%s\n", receive.toDot().c_str());

  std::printf("--- coverage: Section 6 test sequence drives all 5 arcs ---\n");
  {
    ev::Trace trace;
    sched::RoundRobinStrategy strategy;
    sched::VirtualScheduler s(strategy);
    Runtime rt(trace, s, 1);
    AbstractClock clk(rt);
    TestDriver driver(rt, clk);
    ProducerConsumer pc(rt);

    // Receive-side arcs: two consumers wait early; single-char sends make
    // one consumer re-wait (wait->wait) and later receive without waiting.
    driver.addVoid("c1", 1, "receive", [&pc] { (void)pc.receive(); });
    driver.addVoid("c2", 2, "receive", [&pc] { (void)pc.receive(); });
    driver.addVoid("p", 3, "send(a)", [&pc] { pc.send("a"); });
    driver.addVoid("p", 4, "send(b)", [&pc] { pc.send("b"); });
    // Send-side arcs: a two-char message leaves the buffer non-empty, so the
    // next send waits (start->wait), wakes to a still-true guard when only
    // one char was drained (wait->wait), and proceeds when drained
    // (wait->notifyAll).
    driver.addVoid("p", 6, "send(cd)", [&pc] { pc.send("cd"); });
    driver.addVoid("c1", 7, "receive", [&pc] { (void)pc.receive(); });
    driver.addVoid("p", 8, "send(ef)", [&pc] { pc.send("ef"); });
    driver.addVoid("c1", 9, "receive", [&pc] { (void)pc.receive(); });
    driver.addVoid("p", 10, "send(gh)", [&pc] { pc.send("gh"); });
    driver.addVoid("c1", 11, "receive", [&pc] { (void)pc.receive(); });
    driver.addVoid("c1", 12, "receive", [&pc] { (void)pc.receive(); });
    driver.addVoid("c1", 13, "receive", [&pc] { (void)pc.receive(); });
    driver.addVoid("c1", 14, "receive", [&pc] { (void)pc.receive(); });
    auto res = driver.execute();
    check(res.run.outcome == sched::Outcome::Completed, "sequence completed");

    cofg::CoverageTracker cov(receive, pc.receiveMethodId());
    cov.process(trace.events());
    std::printf("%s\n", cov.report(trace).c_str());
    check(cov.coveredArcs() == 5, "receive(): 5/5 arcs covered");
    check(cov.anomalies().empty(), "no model-conformance anomalies");

    cofg::CoverageTracker covSend(send, pc.sendMethodId());
    covSend.process(trace.events());
    std::printf("%s\n", covSend.report(trace).c_str());
    check(covSend.coveredArcs() == 5, "send(): 5/5 arcs covered");
    check(covSend.anomalies().empty(), "no send anomalies");
  }

  std::printf("--- partial coverage produces concrete test suggestions ---\n");
  {
    ev::Trace trace;
    sched::RoundRobinStrategy strategy;
    sched::VirtualScheduler s(strategy);
    Runtime rt(trace, s, 1);
    AbstractClock clk(rt);
    TestDriver driver(rt, clk);
    ProducerConsumer pc(rt);
    driver.addVoid("p", 1, "send", [&pc] { pc.send("q"); });
    driver.addVoid("c", 2, "receive", [&pc] { (void)pc.receive(); });
    auto res = driver.execute();
    check(res.run.outcome == sched::Outcome::Completed, "happy path completed");
    cofg::CoverageTracker cov(receive, pc.receiveMethodId());
    cov.process(trace.events());
    std::printf("%s", cov.suggestSequences().c_str());
    check(cov.coveredArcs() == 2, "happy path covers only 2/5 arcs");
  }

  std::printf("\n%s\n", failures == 0 ? "FIGURE 3 REPRODUCTION: OK"
                                      : "FIGURE 3 REPRODUCTION: FAILURES");
  return failures == 0 ? 0 : 1;
}
