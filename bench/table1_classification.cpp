// Table 1 reproduction: the classification of concurrency failures.
//
// The paper derives ten failure classes (failure-to-fire / erroneous-firing
// x T1..T5) by HAZOP analysis, and names for each the technique that
// detects it.  This harness *executes* the table: for every class it
//   1. injects the corresponding fault into a real component (a seeded
//      mutant of the Figure 2 producer-consumer, or a purpose-built
//      scenario where the paper's conditions demand one),
//   2. runs the scenario deterministically under the virtual scheduler,
//   3. applies exactly the detection technique the Testing Notes column
//      prescribes (static/dynamic analysis detectors, or ConAn
//      completion-time checking), and
//   4. feeds the observations to the taxonomy classifier and verifies the
//      failure is classified into the intended class.
// It finally regenerates Table 1 with a "Reproduced by" column.
#include <cstdio>
#include <functional>
#include <map>
#include <sstream>
#include <string>

#include "bench_json.hpp"
#include "confail/clock/abstract_clock.hpp"
#include "confail/components/producer_consumer.hpp"
#include "confail/conan/test_driver.hpp"
#include "confail/detect/hb_detector.hpp"
#include "confail/detect/lock_graph.hpp"
#include "confail/detect/lockset.hpp"
#include "confail/detect/release_discipline.hpp"
#include "confail/detect/starvation.hpp"
#include "confail/detect/unnecessary_sync.hpp"
#include "confail/detect/wait_notify.hpp"
#include "confail/events/trace.hpp"
#include "confail/monitor/monitor.hpp"
#include "confail/monitor/runtime.hpp"
#include "confail/monitor/shared_var.hpp"
#include "confail/sched/virtual_scheduler.hpp"
#include "confail/taxonomy/classifier.hpp"
#include "confail/taxonomy/table1.hpp"

namespace detect = confail::detect;
namespace ev = confail::events;
namespace sched = confail::sched;
namespace tax = confail::taxonomy;
using confail::clock::AbstractClock;
using confail::components::ProducerConsumer;
using confail::conan::Call;
using confail::conan::TestDriver;
using confail::monitor::Monitor;
using confail::monitor::Runtime;
using confail::monitor::SharedVar;
using confail::monitor::Synchronized;
using tax::Classifier;
using tax::FailureClass;
using tax::FailureReport;

namespace {

struct Scenario {
  FailureClass target;
  std::string mutant;       // what fault is injected
  std::string technique;    // Table 1 testing-notes technique applied
  std::function<FailureReport()> run;
};

struct Harness {
  ev::Trace trace;
  sched::RoundRobinStrategy strategy;
  sched::VirtualScheduler sched{strategy};
  Runtime rt{trace, sched, 1};
};

std::vector<detect::Finding> runDetectors(const ev::Trace& trace) {
  detect::LocksetDetector lockset;
  detect::HbDetector hb;
  detect::LockOrderGraph lg;
  detect::WaitNotifyAnalyzer wn;
  detect::StarvationDetector sv;
  detect::UnnecessarySyncDetector us;
  detect::ReleaseDisciplineDetector rd;
  std::vector<detect::Finding> all;
  for (detect::Detector* d : std::initializer_list<detect::Detector*>{
           &lockset, &hb, &lg, &wn, &sv, &us, &rd}) {
    auto fs = d->analyze(trace);
    all.insert(all.end(), fs.begin(), fs.end());
  }
  return all;
}

// ---- FF-T1: interference ---------------------------------------------------
FailureReport scenarioFFT1() {
  Harness h;
  ProducerConsumer::Faults f;
  f.skipSync = true;
  ProducerConsumer pc(h.rt, f);
  h.rt.spawn("producer", [&] { pc.send("ab"); });
  for (int c = 0; c < 2; ++c) {
    h.rt.spawn("consumer" + std::to_string(c), [&] { (void)pc.receive(); });
  }
  auto run = h.sched.run();
  FailureReport report;
  Classifier::addFindings(report, runDetectors(h.trace), h.trace);
  Classifier::addRunOutcome(report, run, h.trace);
  return report;
}

// ---- EF-T1: unnecessary synchronization ------------------------------------
FailureReport scenarioEFT1() {
  Harness h;
  // A synchronized counter used by exactly one thread, never waited on:
  // Table 1's "no more than one thread accesses shared resources".
  Monitor m(h.rt, "gratuitous");
  SharedVar<int> counter(h.rt, "counter", 0);
  h.rt.spawn("only-thread", [&] {
    for (int i = 0; i < 10; ++i) {
      Synchronized sync(m);
      counter.set(counter.get() + 1);
    }
  });
  auto run = h.sched.run();
  FailureReport report;
  Classifier::addFindings(report, runDetectors(h.trace), h.trace);
  Classifier::addRunOutcome(report, run, h.trace);
  return report;
}

// ---- FF-T2: lock never granted (starvation mode) ----------------------------
FailureReport scenarioFFT2() {
  Harness h;
  Monitor::Options mopts;
  mopts.grantPolicy = confail::monitor::SelectPolicy::Lifo;  // unfair JVM
  Monitor m(h.rt, "hot", mopts);
  auto aggressor = [&] {
    m.lock();
    for (int k = 0; k < 6; ++k) h.rt.schedulePoint();
    for (int i = 0; i < 120; ++i) {
      m.notifyOne();
      m.wait();
    }
    m.unlock();
  };
  h.rt.spawn("aggressor-0", aggressor);
  h.rt.spawn("victim", [&] { Synchronized sync(m); });
  h.rt.spawn("aggressor-1", aggressor);
  auto run = h.sched.run();
  FailureReport report;
  Classifier::addFindings(report, runDetectors(h.trace), h.trace);
  Classifier::addRunOutcome(report, run, h.trace);
  return report;
}

// ---- FF-T3: required wait never made ----------------------------------------
FailureReport scenarioFFT3() {
  Harness h;
  AbstractClock clk(h.rt);
  TestDriver driver(h.rt, clk);
  ProducerConsumer::Faults f;
  f.skipWaitReceive = true;
  ProducerConsumer pc(h.rt, f);
  Call r;
  r.thread = "consumer";
  r.startTick = 1;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r.completionWindow = {{3, 3}};  // must suspend until the tick-3 send
  r.expectedValue = 'x';
  r.expectWait = true;
  driver.add(r);
  driver.addVoid("producer", 3, "send(x)", [&pc] { pc.send("x"); });
  auto res = driver.execute();
  return Classifier::classifyAll({}, res.run, res, h.trace);
}

// ---- EF-T3: erroneous wait ---------------------------------------------------
FailureReport scenarioEFT3() {
  Harness h;
  AbstractClock clk(h.rt);
  TestDriver driver(h.rt, clk);
  ProducerConsumer::Faults f;
  f.erroneousWaitSend = true;
  ProducerConsumer pc(h.rt, f);
  Call s;
  s.thread = "producer";
  s.startTick = 1;
  s.label = "send(x)";
  s.action = [&pc]() -> std::int64_t {
    pc.send("x");
    return 0;
  };
  s.completionWindow = {{1, 1}};  // empty buffer: must complete immediately
  s.expectWait = false;
  driver.add(s);
  auto res = driver.execute();
  return Classifier::classifyAll({}, res.run, res, h.trace);
}

// ---- FF-T4: lock never released ----------------------------------------------
FailureReport scenarioFFT4() {
  Harness h;
  AbstractClock clk(h.rt);
  TestDriver driver(h.rt, clk);
  ProducerConsumer::Faults f;
  f.holdLockForever = true;
  ProducerConsumer pc(h.rt, f);
  driver.addVoid("producer", 1, "send(x)", [&pc] { pc.send("x"); }, {{1, 1}});
  Call r;
  r.thread = "consumer";
  r.startTick = 2;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r.completionWindow = {{2, 2}};
  driver.add(r);
  Call r2;
  r2.thread = "consumer2";
  r2.startTick = 3;
  r2.label = "receive()";
  r2.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r2.completionWindow = {{3, 3}};
  driver.add(r2);
  auto res = driver.execute();
  auto report = Classifier::classifyAll(runDetectors(h.trace), res.run, res,
                                        h.trace);
  return report;
}

// ---- EF-T4: premature lock release --------------------------------------------
FailureReport scenarioEFT4() {
  Harness h;
  ProducerConsumer::Faults f;
  f.earlyReleaseSend = true;
  ProducerConsumer pc(h.rt, f);
  h.rt.spawn("producer", [&] { pc.send("x"); });
  h.rt.spawn("consumer", [&] { (void)pc.receive(); });
  auto run = h.sched.run();
  FailureReport report;
  Classifier::addFindings(report, runDetectors(h.trace), h.trace);
  Classifier::addRunOutcome(report, run, h.trace);
  return report;
}

// ---- FF-T5: thread never notified ----------------------------------------------
FailureReport scenarioFFT5() {
  Harness h;
  AbstractClock clk(h.rt);
  TestDriver driver(h.rt, clk);
  ProducerConsumer::Faults f;
  f.skipNotify = true;
  ProducerConsumer pc(h.rt, f);
  Call r;
  r.thread = "consumer";
  r.startTick = 1;
  r.label = "receive()";
  r.action = [&pc]() -> std::int64_t { return pc.receive(); };
  r.expectWait = true;
  r.completionWindow = {{2, 2}};
  driver.add(r);
  driver.addVoid("producer", 2, "send(x)", [&pc] { pc.send("x"); }, {{2, 2}});
  auto res = driver.execute();
  return Classifier::classifyAll(runDetectors(h.trace), res.run, res, h.trace);
}

// ---- EF-T5: premature notification / re-entry -----------------------------------
FailureReport scenarioEFT5() {
  Harness h;
  ProducerConsumer::Faults f;
  f.ifInsteadOfWhile = true;
  ProducerConsumer pc(h.rt, f);
  h.rt.spawn("consumer", [&] { (void)pc.receive(); });
  h.rt.spawn("producer", [&] {
    for (int k = 0; k < 4; ++k) h.rt.schedulePoint();
    pc.send("x");
  });
  auto run = h.sched.run();
  FailureReport report;
  Classifier::addFindings(report, runDetectors(h.trace), h.trace);
  Classifier::addRunOutcome(report, run, h.trace);
  return report;
}

}  // namespace

int main() {
  std::printf("=== Table 1: classification of concurrency failures ===\n");
  std::printf("Fault-injection matrix: one seeded mutant per class, detected\n"
              "by the technique the paper's Testing Notes column names.\n\n");

  std::vector<Scenario> scenarios = {
      {FailureClass::FF_T1, "ProducerConsumer with synchronization removed",
       "lockset (Eraser) + happens-before dynamic analysis", scenarioFFT1},
      {FailureClass::EF_T1, "synchronized counter used by a single thread",
       "unnecessary-sync dynamic analysis", scenarioEFT1},
      {FailureClass::FF_T2, "LIFO (unfair) lock grants + notify ping-pong",
       "starvation analysis (dynamic)", scenarioFFT2},
      {FailureClass::FF_T3, "receive() with the required wait removed",
       "ConAn completion-time check", scenarioFFT3},
      {FailureClass::EF_T3, "send() with an erroneous unconditional wait",
       "ConAn completion-time check", scenarioEFT3},
      {FailureClass::FF_T4, "receive() spins forever inside critical section",
       "completion-time check + lock-held analysis", scenarioFFT4},
      {FailureClass::EF_T4, "send() releases lock mid-update",
       "release-discipline static/dynamic analysis", scenarioEFT4},
      {FailureClass::FF_T5, "send()/receive() never notify",
       "completion-time check + wait-notify analysis", scenarioFFT5},
      {FailureClass::EF_T5, "if(guard) wait() instead of while(guard)",
       "guard-discipline analysis (premature re-entry vulnerability)",
       scenarioEFT5},
  };

  std::map<FailureClass, std::string> outcomes;
  outcomes[FailureClass::EF_T2] =
      "n/a by construction (substrate scheduler assumed correct)";

  confail::benchjson::Writer json;
  json.beginObject();
  json.field("bench", "table1_classification");
  json.key("rows");
  json.beginArray();

  int failures = 0;
  for (const Scenario& sc : scenarios) {
    FailureReport report = sc.run();
    const bool hit = report.has(sc.target);
    std::printf("%-6s mutant: %s\n", tax::failureClassName(sc.target),
                sc.mutant.c_str());
    std::printf("       technique: %s\n", sc.technique.c_str());
    std::printf("       classified: ");
    json.beginObject();
    json.field("class", tax::failureClassName(sc.target));
    json.field("mutant", sc.mutant);
    json.field("technique", sc.technique);
    json.key("classified_as");
    json.beginArray();
    bool first = true;
    for (FailureClass c : report.classes()) {
      std::printf("%s%s", first ? "" : ", ", tax::failureClassName(c));
      json.value(tax::failureClassName(c));
      first = false;
    }
    json.endArray();
    json.field("detected", hit);
    json.endObject();
    if (first) std::printf("(none)");
    std::printf("  ->  %s\n\n", hit ? "DETECTED" : "MISSED");
    if (!hit) ++failures;
    std::ostringstream cell;
    cell << (hit ? "DETECTED" : "MISSED") << " via " << sc.technique;
    outcomes[sc.target] = cell.str();
  }
  json.endArray();
  json.field("detected_classes", 9 - failures);
  json.field("applicable_classes", 9);
  json.field("ok", failures == 0);
  json.endObject();

  std::printf("%s\n",
              tax::renderTable1With("Reproduced by", outcomes).c_str());

  std::printf("%d/9 applicable failure classes detected and correctly "
              "classified (EF-T2 not applicable).\n",
              9 - failures);
  if (json.writeFile("BENCH_table1.json")) {
    std::printf("wrote BENCH_table1.json\n");
  } else {
    std::printf("FAIL: could not write BENCH_table1.json\n");
    return 1;
  }
  std::printf("%s\n", failures == 0 ? "TABLE 1 REPRODUCTION: OK"
                                    : "TABLE 1 REPRODUCTION: FAILURES");
  return failures == 0 ? 0 : 1;
}
